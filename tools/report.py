#!/usr/bin/env python3
"""Observability report: renders the telemetry sections of
``results/summary.json`` into a terminal-friendly digest.

Sections (each skipped gracefully when its metrics are absent):

* **Compile passes** — top pipeline passes by accumulated wall time,
  with how often each ran and how many rewrites it applied
  (``pass.*`` metrics; wall times from the ``metrics_wall`` section,
  counts from the deterministic ``metrics`` section).
* **Opclass profile** — per engine, the operation classes ranked by
  modeled cycles with their execution counts (``opclass.*`` metrics;
  recorded when the run was profiled via ``REPRO_PROFILE=1``).
* **Startup vs steady state** — per execution target, the modeled
  time-to-first-result pipeline (decode/parse, instantiate, startup
  compile) split from steady-state execution, with per-tier compile
  cycles (``startup.*`` metrics from the deterministic section).
* **Startup frontier** — digest of the E14 sweep when
  ``summary["startup_frontier"]`` is present: per host, the default
  policy's startup/steady point plus which tier policy wins each axis.
* **Cache / scheduler health** — compile-cache hit rates and sweep
  scheduler retry/timeout/lost counts (``cache.*`` / ``sched.*`` in the
  ``metrics_unstable`` section).
* **Sweep service** — request/cell admission, dedupe and memo-warm
  serves, scheduler batches and shard sweeps (``service.*`` counters in
  the ``metrics_unstable`` section, recorded when the summary came from
  a serving process or ``tools/bench_service.py``).

Stdlib-only and import-free of the package, so it can be pointed at a
``summary.json`` from any checkout: ``python tools/report.py
[results/summary.json]``.
"""

from __future__ import annotations

import json
import sys

#: Rows shown per ranked table.
TOP_N = 12


def _rule(title):
    return [title, "-" * len(title)]


def _fmt(value):
    if isinstance(value, float):
        return f"{value:,.3f}"
    return f"{value:,}"


def _pass_section(summary):
    det = summary.get("metrics", {})
    wall = summary.get("metrics_wall", {})
    rows = {}
    for name, value in wall.items():
        if name.startswith("pass.") and name.endswith(".wall_ms"):
            key = name[len("pass."):-len(".wall_ms")]
            rows.setdefault(key, {})["wall_ms"] = value
    for name, value in det.items():
        if not name.startswith("pass."):
            continue
        key, _, field = name[len("pass."):].rpartition(".")
        if key and field in ("applied", "rewrites"):
            rows.setdefault(key, {})[field] = value
    if not rows:
        return []
    ranked = sorted(rows.items(),
                    key=lambda kv: (-kv[1].get("wall_ms", 0.0), kv[0]))
    lines = _rule(f"Compile passes (top {min(TOP_N, len(ranked))} "
                  "by wall time)")
    lines.append(f"{'pass':<28} {'wall ms':>12} {'runs':>8} {'rewrites':>10}")
    for name, row in ranked[:TOP_N]:
        lines.append(f"{name:<28} {row.get('wall_ms', 0.0):>12,.3f} "
                     f"{row.get('applied', 0):>8,} "
                     f"{row.get('rewrites', 0):>10,}")
    return lines


def _opclass_section(summary):
    det = summary.get("metrics", {})
    engines = {}
    for name, value in det.items():
        if not name.startswith("opclass."):
            continue
        parts = name.split(".")
        if len(parts) != 4:
            continue
        _, engine, cls, field = parts
        engines.setdefault(engine, {}).setdefault(cls, {})[field] = value
    lines = []
    for engine in sorted(engines):
        table = engines[engine]
        ranked = sorted(table.items(),
                        key=lambda kv: (-kv[1].get("cycles", 0), kv[0]))
        total = sum(row.get("cycles", 0) for row in table.values())
        if lines:
            lines.append("")
        lines.extend(_rule(f"Opclass profile: {engine} "
                           f"(top {min(TOP_N, len(ranked))} by cycles)"))
        lines.append(f"{'opclass':<14} {'cycles':>16} {'ops':>14} {'share':>7}")
        for cls, row in ranked[:TOP_N]:
            cycles = row.get("cycles", 0)
            share = (100.0 * cycles / total) if total else 0.0
            lines.append(f"{cls:<14} {_fmt(cycles):>16} "
                         f"{row.get('count', 0):>14,} {share:>6.1f}%")
    return lines


def _health_section(summary):
    unstable = summary.get("metrics_unstable", {})
    cache = {k.split(".", 1)[1]: v for k, v in unstable.items()
             if k.startswith("cache.") and isinstance(v, (int, float))}
    sched = {k.split(".", 1)[1]: v for k, v in unstable.items()
             if k.startswith("sched.") and isinstance(v, (int, float))}
    lines = []
    if cache or sched:
        lines.extend(_rule("Cache / scheduler health"))
    if cache:
        probes = cache.get("hits", 0) + cache.get("misses", 0)
        rate = (100.0 * cache.get("hits", 0) / probes) if probes else 0.0
        lines.append(
            f"compile cache: {cache.get('hits', 0):,} hit(s) "
            f"({cache.get('memory_hits', 0):,} memory / "
            f"{cache.get('disk_hits', 0):,} disk), "
            f"{cache.get('misses', 0):,} miss(es), "
            f"{cache.get('stale', 0):,} stale, "
            f"{cache.get('puts', 0):,} write(s) — {rate:.1f}% hit rate")
    if sched:
        lines.append(
            f"scheduler: {sched.get('cells', 0):,} cell(s), "
            f"{sched.get('completed', 0):,} completed, "
            f"{sched.get('failures', 0):,} failed, "
            f"{sched.get('retries', 0):,} retried attempt(s), "
            f"{sched.get('timeouts', 0):,} timeout(s), "
            f"{sched.get('lost', 0):,} lost worker(s)")
    return lines


def _service_section(summary):
    unstable = summary.get("metrics_unstable", {})
    service = {k.split(".", 1)[1]: v for k, v in unstable.items()
               if k.startswith("service.") and isinstance(v, (int, float))}
    if not service:
        return []
    lines = _rule("Sweep service")
    requested = service.get("cells.requested", 0)
    deduped = service.get("cells.deduped", 0)
    warm = service.get("cells.warm", 0)
    swept = service.get("cells.swept", 0)
    lines.append(
        f"requests: {service.get('requests', 0):,} admitted, "
        f"{service.get('rejected', 0):,} rejected "
        f"(capacity/budget)")
    lines.append(
        f"cells: {requested:,} requested — {deduped:,} deduped against "
        f"in-flight work, {warm:,} served memo-warm, {swept:,} swept")
    if swept:
        sweeps = service.get("sweeps", 0)
        per = (swept / sweeps) if sweeps else 0.0
        lines.append(f"batches: {sweeps:,} scheduler sweep(s), "
                     f"{per:.1f} cell(s)/sweep")
    if service.get("tmp_swept"):
        lines.append(f"shard maintenance: {service['tmp_swept']:,} "
                     f"orphaned temp file(s) removed")
    return lines


def _measure_section(summary):
    det = summary.get("metrics", {})
    runs = {k.split(".")[1]: v for k, v in det.items()
            if k.startswith("measure.") and k.endswith(".runs")}
    if not runs:
        return []
    lines = _rule("Measurements")
    for target in sorted(runs):
        reps = det.get(f"measure.{target}.reps", 0)
        lines.append(f"{target}: {runs[target]:,} run(s), "
                     f"{reps:,} repetition(s)")
    total = det.get("measure.time_ms_total")
    if total is not None:
        lines.append(f"modeled execution time, all runs: {total:,.3f} ms")
    return lines


#: Scalar ``startup.<target>.*`` counters rendered per target, in
#: pipeline order (cycles before first result, then steady state).
_STARTUP_ROWS = (
    ("parse_cycles", "parse"),
    ("decode_cycles", "decode"),
    ("instantiate_cycles", "instantiate"),
    ("startup_compile_cycles", "startup compile"),
    ("ttfr_cycles", "time to first result"),
    ("tier_up_compile_cycles", "tier-up compile"),
    ("exec_cycles", "steady-state exec"),
)


def _startup_section(summary):
    det = summary.get("metrics", {})
    targets = {}
    for name, value in det.items():
        if not name.startswith("startup."):
            continue
        rest = name[len("startup."):]
        target, _, key = rest.partition(".")
        if not key:
            continue
        entry = targets.setdefault(target, {"scalars": {}, "tiers": {}})
        if key.startswith("tier.") and key.endswith(".cycles"):
            entry["tiers"][key[len("tier."):-len(".cycles")]] = value
        elif "." not in key:
            entry["scalars"][key] = value
    lines = []
    for target in sorted(targets):
        entry = targets[target]
        if lines:
            lines.append("")
        lines.extend(_rule(f"Startup vs steady state: {target}"))
        for key, label in _STARTUP_ROWS:
            if key in entry["scalars"]:
                lines.append(f"{label:<22} {entry['scalars'][key]:>18,.1f} "
                             f"cycles")
        ranked = sorted(entry["tiers"].items(),
                        key=lambda kv: (-kv[1], kv[0]))
        for tier, cycles in ranked:
            lines.append(f"  compile tier {tier:<12} {cycles:>14,.1f} cycles")
        tier_ups = entry["scalars"].get("tier_ups")
        tiered_up = entry["scalars"].get("tiered_up")
        if tier_ups is not None:
            lines.append(f"{'functions tiered up':<22} {tier_ups:>18,}")
        elif tiered_up is not None:
            lines.append(f"{'module tiered up':<22} "
                         f"{'yes' if tiered_up else 'no':>18}")
    return lines


def _frontier_section(summary):
    frontier = summary.get("startup_frontier")
    if not isinstance(frontier, dict) or not frontier:
        return []
    lines = _rule("Startup frontier (E14, geomean per host)")
    lines.append(f"{'host':<16} {'kind':<11} {'default ttfr':>13} "
                 f"{'steady':>8}   fastest start / fastest steady")
    for host in sorted(frontier):
        entry = frontier[host]
        policies = entry.get("policies", {})
        if not policies:
            continue
        default = policies.get("default") or next(iter(policies.values()))
        best_start = min(policies, key=lambda p: policies[p]["ttfr_ms"])
        best_steady = max(policies,
                          key=lambda p: policies[p]["steady_speed"])
        lines.append(
            f"{host:<16} {entry.get('kind', '?'):<11} "
            f"{default['ttfr_ms']:>11.3f}ms "
            f"{default['steady_speed']:>7.2f}x   "
            f"{best_start} / {best_steady}")
    return lines


def render_report(summary):
    """The full report text for one ``summary.json`` payload."""
    sections = [
        _measure_section(summary),
        _startup_section(summary),
        _frontier_section(summary),
        _pass_section(summary),
        _opclass_section(summary),
        _health_section(summary),
        _service_section(summary),
    ]
    populated = [section for section in sections if section]
    if not populated:
        return ("no telemetry in summary: run with --report (or "
                "REPRO_PROFILE=1) to record metrics")
    return "\n\n".join("\n".join(section) for section in populated)


def main(argv):
    path = argv[1] if len(argv) > 1 else "results/summary.json"
    try:
        with open(path) as handle:
            summary = json.load(handle)
    except FileNotFoundError:
        print(f"report: {path} not found — run results/run_all.py first",
              file=sys.stderr)
        return 1
    print(render_report(summary))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
