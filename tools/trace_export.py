"""Convert a ``REPRO_EVENTS`` JSONL stream to Chrome Trace Event JSON.

The obs event sink records distributed-trace spans (``tspan`` events
from :mod:`repro.obs.tracing`) and engine phase timelines (``trace``
events forwarded by ``ExecutionTrace.finalize``).  This tool folds them
into the Chrome Trace Event Format (the JSON array flavour with a
``traceEvents`` envelope) that https://ui.perfetto.dev and
``chrome://tracing`` load directly:

* every ``tspan`` becomes a complete ("X") event with ``ts``/``dur`` in
  microseconds, one lane (``tid``) per trace id, so a request's spans —
  ``service.request`` → ``service.batch`` / ``service.cache_probe`` →
  ``sched.attempt`` (retries included) — nest visually on the wallclock
  timeline;
* every engine ``trace`` phase event becomes an "X" event on its own
  lane per attempt span, with the engine's abstract cycle clock mapped
  1 cycle → 1 µs (phase events have no wallclock by design — the engine
  clock is deterministic);
* span links (``trace_id`` / ``span_id`` / ``parent_span_id`` and any
  extra fields) ride in ``args`` so the chain stays inspectable in the
  Perfetto details pane.

Scheduler lifecycle records (``cell_dispatch`` / ``cell``) carry no
timestamp — they are streaming progress markers, part of the service's
byte contract — and are not exported.

Stdlib-only on purpose: the exporter must run anywhere the JSONL file
can be copied, with no ``repro`` import.

Usage::

    python tools/trace_export.py events.jsonl -o trace.json
    python tools/trace_export.py events.jsonl --validate
"""

from __future__ import annotations

import argparse
import json
import sys

#: Keys of a ``tspan`` record consumed by the envelope rather than
#: forwarded as args.
_SPAN_ENVELOPE = frozenset({"event", "pid", "name", "ts_us", "dur_us"})

_TRACE_ENVELOPE = frozenset({"event", "pid", "phase", "start_cycles",
                             "cycles"})


def load_events(path):
    """Parse one JSONL event file; malformed lines are skipped (the sink
    is append-only best-effort across processes)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
    return records


def to_chrome_trace(records):
    """Fold event records into a Chrome Trace Event JSON object."""
    lanes = {}
    names = {}
    seen = {}

    def lane(key, name):
        tid = lanes.get(key)
        if tid is None:
            tid = lanes[key] = len(lanes) + 1
            names[tid] = name
        return tid

    events = []
    for record in records:
        kind = record.get("event")
        if kind == "tspan":
            trace_id = record.get("trace_id", "?")
            tid = lane(("span", trace_id), f"trace {trace_id[:8]}")
            args = {k: v for k, v in record.items()
                    if k not in _SPAN_ENVELOPE}
            events.append({
                "name": str(record.get("name", "span")),
                "cat": "span", "ph": "X",
                "ts": int(record.get("ts_us", 0)),
                "dur": max(0, int(record.get("dur_us", 0))),
                "pid": int(record.get("pid", 0)), "tid": tid,
                "args": args})
        elif kind == "trace":
            # Engine phases live on the deterministic cycle clock; give
            # each attempt (parent span) its own lane so per-lane time
            # is monotonic and retries don't overlap.
            parent = record.get("parent_span_id") or record.get("span_id")
            key = ("phase", record.get("trace_id"), parent,
                   record.get("pid"))
            label = f"engine {record.get('engine', '?')}"
            if parent:
                label += f" [{str(parent)[:8]}]"
            tid = lane(key, label)
            args = {k: v for k, v in record.items()
                    if k not in _TRACE_ENVELOPE}
            events.append({
                "name": str(record.get("phase", "phase")),
                "cat": "engine", "ph": "X",
                "ts": int(float(record.get("start_cycles", 0))),
                "dur": max(0, int(float(record.get("cycles", 0)))),
                "pid": int(record.get("pid", 0)), "tid": tid,
                "args": args})
    # Stable per-lane ordering: sort complete events by timestamp so
    # every (pid, tid) lane is monotonic by construction.
    events.sort(key=lambda e: (e["pid"], e["tid"], e["ts"]))
    for event in events:
        seen.setdefault((event["pid"], event["tid"]),
                        names[event["tid"]])
    metadata = [{"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                 "args": {"name": name}}
                for (pid, tid), name in sorted(seen.items())]
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(payload):
    """Check a trace object against the Chrome Trace Event schema subset
    this tool emits; returns the number of duration events.

    Required: a ``traceEvents`` list; every non-metadata event carries
    ``name``/``ph``/``pid``/``tid``/``ts`` (plus ``dur >= 0`` for "X"
    events); and per (pid, tid) lane the timestamps are monotonically
    non-decreasing.  Raises ``ValueError`` on the first violation."""
    if not isinstance(payload, dict) or \
            not isinstance(payload.get("traceEvents"), list):
        raise ValueError("missing traceEvents list")
    last_ts = {}
    counted = 0
    for i, event in enumerate(payload["traceEvents"]):
        if not isinstance(event, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        ph = event.get("ph")
        if ph == "M":
            continue
        for key in ("name", "ph", "pid", "tid", "ts"):
            if key not in event:
                raise ValueError(f"traceEvents[{i}] missing {key!r}")
        if not isinstance(event["ts"], int):
            raise ValueError(f"traceEvents[{i}] ts is not an integer")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, int) or dur < 0:
                raise ValueError(f"traceEvents[{i}] bad dur {dur!r}")
        lane_key = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(lane_key, event["ts"]):
            raise ValueError(
                f"traceEvents[{i}] ts {event['ts']} goes backwards in "
                f"lane {lane_key}")
        last_ts[lane_key] = event["ts"]
        counted += 1
    return counted


def export_file(events_path, out_path=None, validate=True):
    """Load ``events_path``, convert, optionally validate, and write the
    Chrome trace JSON (when ``out_path`` is given).  Returns the trace
    object."""
    payload = to_chrome_trace(load_events(events_path))
    if validate:
        validate_chrome_trace(payload)
    if out_path is not None:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=1, sort_keys=True)
            fh.write("\n")
    return payload


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Convert a REPRO_EVENTS JSONL file to Chrome Trace "
                    "Event JSON (Perfetto / chrome://tracing).")
    parser.add_argument("events", help="JSONL event file (REPRO_EVENTS)")
    parser.add_argument("-o", "--out", default=None,
                        help="output trace JSON path")
    parser.add_argument("--validate", action="store_true",
                        help="only validate; write nothing")
    args = parser.parse_args(argv)
    payload = export_file(args.events,
                          None if args.validate else args.out)
    spans = validate_chrome_trace(payload)
    if args.out and not args.validate:
        print(f"{spans} event(s) -> {args.out}")
    else:
        print(f"{spans} event(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main())
