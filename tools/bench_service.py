#!/usr/bin/env python
"""Sweep-service throughput benchmark: sustained requests/sec cold vs
memo-warm, written to ``BENCH_service.json``.

The workload is the tier-1 quick set served as one request per benchmark
(wasm / cheerp / O2 / size S / 1 repetition / chrome-desktop), issued by
a small pool of concurrent HTTP clients against an in-process
:class:`~repro.service.server.SweepServer` over an isolated cache
directory:

* **cold** — every cell is computed: the server canonicalizes, batches
  and schedules real compile+measure work.  Requests/sec here is
  compute-bound and scales with ``--jobs``.
* **warm** — the same requests repeated for ``--rounds`` rounds: every
  cell is served from the content-addressed result cache (DET metrics
  replayed), so requests/sec is service-overhead-bound.  This is the
  number that makes "shared warm cache" concrete: the ratio to cold is
  the cost a second client *doesn't* pay.
* **dedupe** — the cold phase fires each request from two clients at
  once; the twin is deduped against the in-flight future (or served
  warm if it lost the race), never recomputed — pinned by the
  ``sched.cells == cells`` assertion.

Byte-equality is asserted before anything is timed counts: every result
line streamed in either phase must equal the canonical
:func:`~repro.service.cells.direct_lines` serialization of the same
cell, and warm streams must equal cold streams byte-for-byte.

* **traced** — the warm phase repeated with ``REPRO_TRACE=1``: every
  line now carries trace/span ids, and stripping the ``trace`` key must
  recover the untraced stream exactly.  The ``tracing`` column records
  the throughput cost, measured over interleaved untraced/traced passes
  compared best-to-best (a single short window drifts more than the
  effect being measured); the gate is that tracing *off* costs zero
  bytes (the equality assertions above run against a tracing-capable
  server) and tracing *on* stays under a 5% requests/sec overhead
  (asserted in full runs; smoke runs are too short to time).

Usage::

    PYTHONPATH=src python tools/bench_service.py            # writes JSON
    PYTHONPATH=src python tools/bench_service.py --smoke    # 2 cells,
                                                            # no file
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

#: The cell slice served: cheap, real, deterministic.
BENCH_SLICE = {"targets": ["wasm"], "toolchains": ["cheerp"],
               "opt_levels": ["O2"], "sizes": ["S"], "repetitions": 1,
               "profiles": ["chrome-desktop"]}


def _payloads(benchmarks):
    return [dict(BENCH_SLICE, benchmarks=[name], client=f"bench-{i % 4}")
            for i, name in enumerate(benchmarks)]


def _result_lines(stream):
    return [line for line in stream
            if json.loads(line).get("event") == "result"]


async def _phase(server, loop, payloads, clients):
    """Issue every payload once, ``clients`` at a time; returns
    ``(per-payload result lines, wall seconds, request count)``."""
    from repro.service.client import request_lines

    host, port = server.host, server.port
    semaphore = asyncio.Semaphore(clients)

    async def one(payload):
        async with semaphore:
            return await loop.run_in_executor(
                None, lambda: _result_lines(
                    list(request_lines(host, port, payload))))

    start = time.perf_counter()
    streams = await asyncio.gather(*[one(p) for p in payloads])
    return list(streams), time.perf_counter() - start, len(payloads)


async def _bench(args, benchmarks):
    from repro.obs import SCHED, get_registry
    from repro.service import canonicalize_request, direct_lines
    from repro.service.client import get_json
    from repro.service.server import SweepServer

    server = SweepServer(host="127.0.0.1", port=0, jobs=args.jobs)
    await server.start()
    loop = asyncio.get_running_loop()
    payloads = _payloads(benchmarks)
    try:
        # -- cold: two concurrent clients per request (dedupe visible) --
        cold_streams, cold_s, _n = await _phase(
            server, loop, payloads + payloads, clients=args.clients)
        cold_requests = len(payloads) * 2

        # -- warm: every cell served from the result cache ---------------
        warm_payloads = payloads * args.rounds
        warm_streams, warm_s, warm_requests = await _phase(
            server, loop, warm_payloads, clients=args.clients)

        # -- equality gates ---------------------------------------------
        expected = {}
        for payload in payloads:
            cells = canonicalize_request(payload).cells
            key = json.dumps(payload, sort_keys=True)
            expected[key] = [line.encode("utf-8")
                             for line in direct_lines(cells)]
        checked = 0
        for payload, stream in zip(payloads + payloads + warm_payloads,
                                   cold_streams + warm_streams):
            key = json.dumps(payload, sort_keys=True)
            assert stream == expected[key], \
                f"stream diverged from direct path for {key}"
            checked += 1

        # -- traced warm passes: overhead of REPRO_TRACE=1 ---------------
        # A single ~100 ms warm window drifts ±10% between *identical*
        # passes (allocator/scheduler noise), so untraced and traced
        # passes are interleaved and compared best-to-best: the best of
        # each converges to that mode's true capability and the drift
        # cancels.
        passes = 1 if args.smoke else 4
        untraced_rounds = [warm_requests / warm_s]
        traced_rounds = []
        traced_streams = []
        extra_requests = 0
        for _ in range(passes):
            _plain, plain_s, plain_n = await _phase(
                server, loop, warm_payloads, clients=args.clients)
            untraced_rounds.append(plain_n / plain_s)
            extra_requests += plain_n
            os.environ["REPRO_TRACE"] = "1"
            try:
                traced_streams, traced_s, traced_n = await _phase(
                    server, loop, warm_payloads, clients=args.clients)
            finally:
                os.environ.pop("REPRO_TRACE", None)
            traced_rounds.append(traced_n / traced_s)
            extra_requests += traced_n
        for payload, stream in zip(warm_payloads, traced_streams):
            key = json.dumps(payload, sort_keys=True)
            stripped = []
            for line in stream:
                record = json.loads(line)
                assert "trace" in record, \
                    f"traced stream missing trace ids for {key}"
                record.pop("trace")
                stripped.append(json.dumps(record, sort_keys=True)
                                .encode("utf-8"))
            assert stripped == expected[key], \
                f"traced stream (minus ids) diverged for {key}"
        warm_rps = max(untraced_rounds)
        traced_rps = max(traced_rounds)
        overhead_pct = max(0.0, (warm_rps - traced_rps) / warm_rps * 100.0)
        if not args.smoke:
            assert overhead_pct < 5.0, \
                (f"tracing overhead {overhead_pct:.2f}% >= 5% "
                 f"({warm_rps:.1f} -> {traced_rps:.1f} req/s)")

        # -- counters ----------------------------------------------------
        for _ in range(200):            # let the last batch merge home
            counters = get_registry().export([SCHED])
            if counters.get("sched.cells"):
                break
            await asyncio.sleep(0.05)
        stats = await loop.run_in_executor(
            None, lambda: get_json(server.host, server.port, "/stats"))
        cells = len(payloads)
        assert counters.get("sched.cells", 0) == cells, \
            (f"expected exactly {cells} scheduled cells, saw "
             f"{counters.get('sched.cells', 0)} — dedupe broken?")
        twins = counters.get("service.cells.deduped", 0) + \
            counters.get("service.cells.warm", 0) - warm_requests \
            - extra_requests
        return {
            "cells": cells,
            "cold": {"requests": cold_requests,
                     "seconds": round(cold_s, 3),
                     "requests_per_s": round(cold_requests / cold_s, 3)},
            "warm": {"requests": warm_requests,
                     "seconds": round(warm_s, 3),
                     "requests_per_s": round(warm_requests / warm_s, 3)},
            "warm_speedup": round((cold_requests / cold_s and
                                   (warm_requests / warm_s) /
                                   (cold_requests / cold_s)), 1),
            "dedupe": {"scheduled_cells": counters.get("sched.cells", 0),
                       "twin_requests_not_recomputed": twins,
                       "deduped_in_flight":
                           counters.get("service.cells.deduped", 0)},
            "equality": {"streams_checked": checked,
                         "byte_identical_to_direct": True},
            "tracing": {
                "untraced_requests_per_s": round(warm_rps, 3),
                "traced_requests_per_s": round(traced_rps, 3),
                "overhead_pct": round(overhead_pct, 2),
                "untraced_overhead_bytes": 0,
                "traced_streams_checked": len(traced_streams),
            },
            "store": stats["store"],
        }
    finally:
        await server.stop()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="2 benchmarks, 1 warm round, no file written")
    parser.add_argument("--jobs", type=int,
                        default=min(4, os.cpu_count() or 1),
                        help="scheduler workers per sweep")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent HTTP clients")
    parser.add_argument("--rounds", type=int, default=5,
                        help="warm passes over the request set")
    parser.add_argument("--out", default=str(ROOT / "BENCH_service.json"))
    args = parser.parse_args(argv)

    from repro.experiments.common import QUICK_SET

    benchmarks = sorted(QUICK_SET)
    if args.smoke:
        benchmarks = benchmarks[:2]
        args.rounds = 1

    with tempfile.TemporaryDirectory(prefix="repro-bench-service-") as tmp:
        os.environ["REPRO_CACHE_DIR"] = tmp
        os.environ["REPRO_RESULT_CACHE"] = "1"
        os.environ["REPRO_CACHE_MEM"] = "256"
        from repro.cache import configure
        configure(root=tmp, disk=True)
        result = asyncio.run(_bench(args, benchmarks))

    payload = {
        "description": "sweep service sustained req/s, cold vs memo-warm: "
                       "quick set, one request per benchmark, "
                       "wasm/cheerp/O2/S/1 rep/chrome-desktop, every cold "
                       "request raced by a twin client (dedupe), every "
                       "stream byte-checked against the direct path",
        "python": platform.python_version(),
        "jobs": args.jobs,
        "clients": args.clients,
        **result,
    }
    print(json.dumps(payload, indent=2))
    if args.smoke:
        print("bench_service smoke ok", flush=True)
        return 0
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
