#!/usr/bin/env python
"""Import-layering checker for the engine core refactor.

Layer rules (bottom to top)::

    cfront -> ir -> backends        (compilation pipeline)
    engine core (repro.engine)      (shared tiering/stats/hostlib/trace)
    wasm | jsengine | native        (the three execution engines)
    env / harness / experiments     (measurement apparatus)
    service                         (benchmark-as-a-service front end)

Enforced here:

* ``repro.wasm``, ``repro.jsengine``, and ``repro.native`` must not
  import from each other — anywhere, even inside functions.  Shared
  mechanisms belong in ``repro.engine``.
* ``repro.engine`` must not import any of the three engine packages at
  module level (lazy function-level imports are allowed so the hostlib
  can build engine-value wrappers without an import cycle).
* Neither the engine packages nor the engine core may import the
  measurement apparatus (``repro.harness``, ``repro.experiments``) —
  anywhere, even inside functions.  Engines are below the harness; a
  back-edge would let an engine reach the sweep scheduler or the page
  runner and make worker-process execution order-dependent.
* ``repro.engine.threaded`` — the shared threaded-tier substrate — must
  stay dependency-free: no ``repro.*`` imports at all (stdlib only).
  Every engine's translator pre-binds its own state; anything the
  substrate pulled in would become an implicit dependency of all three.
* Each engine's ``threaded.py`` may reach into the engine core only for
  the substrate itself (``repro.engine.threaded``): the translators are
  leaves that pre-bind state handed to them by their host engine, so a
  tie to tiering/stats/hostlib internals would be a hidden layer edge.
* ``repro.engine.codegen`` — the codegen-tier substrate — may import
  only the threaded substrate it compiles from (``repro.engine.
  threaded``), the artifact cache that persists compiled units
  (``repro.cache``) and the telemetry leaf (``repro.obs``).  It loads
  generated code by unit key; a dependency on an engine or the pipeline
  would let compiled artifacts observe what they are supposed to replay.
* Each engine's ``codegen.py`` translator may reach the engine core only
  for the two substrates (``repro.engine.codegen`` and
  ``repro.engine.threaded``) — like the threaded translators, they are
  leaves whose state is pre-bound by the host engine.
* ``repro.obs`` — the telemetry layer — is a leaf below everything:
  any layer may import it, but it must not import any other ``repro.*``
  module, anywhere, even inside functions.  Instrumentation that pulled
  in pipeline or engine code would invert the dependency and make
  metrics collection able to change what it observes.
* ``repro.obs.tracing`` — the distributed-trace context — is the bottom
  of the telemetry layer itself: it may import only the event sink
  (``repro.obs.events``) and the env-flag helpers
  (``repro.obs.envflags``).  The context rides the worker Pipe protocol
  and is stamped by the scheduler, the service and the engine trace —
  an import of any of those (or of the metrics registry, which spans
  feed *through events*, not directly) would cycle the stack through
  its lowest leaf.
* ``repro.engine.compilemodel`` — the compiler cost models — is a leaf
  below the engines: it may import only the neutral opclass taxonomy
  (``repro.engine.opclass``).  Every engine and both profile layers
  price compiles through it, so anything else it pulled in would become
  a hidden dependency of the whole stack.
* ``repro.service`` — the sweep server — is the top of the stack: it
  may import anything in ``repro``, but no other ``repro`` package may
  import it, anywhere, even inside functions.  The service is a client
  of the harness and caches, never a dependency; a back-edge would let
  batch experiment code depend on server lifecycle.
* ``repro.env.runtimes`` — the standalone host profiles — sits beside
  ``repro.env.browser``: module-level imports must stay within
  ``repro.engine`` and ``repro.env`` (plus ``repro.jsengine.config``-free
  config plumbing via the browser module); engines may be reached only
  through lazy function-level imports, and the measurement apparatus
  never (profiles are inputs to the harness, not clients of it).

Exits non-zero and prints one line per violation; silent when clean.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: The sibling engine packages that must stay independent.
ENGINE_LAYERS = ("wasm", "jsengine", "native")

#: The measurement apparatus sitting above the engines; engines (and the
#: engine core) must never reach up into it.
APPARATUS_LAYERS = ("harness", "experiments")


def _imported_modules(node):
    """Full dotted ``repro.*`` module names imported by one import node."""
    if isinstance(node, ast.Import):
        names = [alias.name for alias in node.names]
    elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
        names = [node.module]
    else:
        return []
    return [name for name in names
            if name == "repro" or name.startswith("repro.")]


def _imported_packages(node):
    """Top-level ``repro.<pkg>`` names imported by one import node."""
    return [name.split(".")[1] for name in _imported_modules(node)
            if len(name.split(".")) > 1]


def check(src=SRC):
    violations = []
    for path in sorted(src.rglob("*.py")):
        rel = path.relative_to(src)
        layer = rel.parts[0] if len(rel.parts) > 1 else None
        tree = ast.parse(path.read_text(), filename=str(path))
        module_level_nodes = set()
        for stmt in tree.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Import, ast.ImportFrom)) and not \
                        isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef,
                                          ast.ClassDef)):
                    module_level_nodes.add(id(node))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for pkg in _imported_packages(node):
                if layer in ENGINE_LAYERS and pkg in ENGINE_LAYERS \
                        and pkg != layer:
                    violations.append(
                        f"src/repro/{rel}:{node.lineno}: {layer} layer "
                        f"imports repro.{pkg} (engine layers must only "
                        f"share code through repro.engine)")
                elif layer in ENGINE_LAYERS + ("engine",) \
                        and pkg in APPARATUS_LAYERS:
                    violations.append(
                        f"src/repro/{rel}:{node.lineno}: {layer} layer "
                        f"imports repro.{pkg} (engines sit below the "
                        f"measurement apparatus and must not reach up "
                        f"into it)")
                elif pkg == "service" and layer != "service":
                    violations.append(
                        f"src/repro/{rel}:{node.lineno}: {layer} layer "
                        f"imports repro.service (the service is the top "
                        f"of the stack — nothing below it may depend "
                        f"on it)")
                elif layer == "engine" and pkg in ENGINE_LAYERS \
                        and id(node) in module_level_nodes:
                    violations.append(
                        f"src/repro/{rel}:{node.lineno}: engine core "
                        f"imports repro.{pkg} at module level (use a "
                        f"lazy function-level import)")
            if layer == "obs":
                for mod in _imported_modules(node):
                    if mod != "repro.obs" and \
                            not mod.startswith("repro.obs."):
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: the telemetry "
                            f"layer imports {mod} (repro.obs is a leaf — "
                            f"everything may import it, it may import "
                            f"nothing from repro)")
            if rel.parts == ("obs", "tracing.py"):
                for mod in _imported_modules(node):
                    if mod not in ("repro.obs.events",
                                   "repro.obs.envflags"):
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: the trace "
                            f"context imports {mod} (repro.obs.tracing is "
                            f"the bottom of the telemetry leaf — only "
                            f"repro.obs.events and repro.obs.envflags are "
                            f"allowed)")
            if rel.parts == ("engine", "compilemodel.py"):
                for mod in _imported_modules(node):
                    if mod != "repro.engine.opclass":
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: the compile-"
                            f"model layer imports {mod} (repro.engine."
                            f"compilemodel is a leaf below the engines — "
                            f"only the opclass taxonomy is allowed)")
            if rel.parts == ("env", "runtimes.py"):
                for mod in _imported_modules(node):
                    allowed = (mod.startswith("repro.engine")
                               or mod.startswith("repro.env"))
                    engine_pkg = mod.split(".")[1] if "." in mod else ""
                    if engine_pkg in ENGINE_LAYERS \
                            and id(node) not in module_level_nodes:
                        continue   # lazy engine import (vm() wiring)
                    if not allowed:
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: the standalone "
                            f"runtime profiles import {mod} (repro.env."
                            f"runtimes may import the engine core and the "
                            f"env layer; engines only lazily, the "
                            f"measurement apparatus never)")
            if rel.parts == ("engine", "codegen.py"):
                for mod in _imported_modules(node):
                    if mod != "repro.engine.threaded" and \
                            not mod.startswith("repro.cache") and \
                            not mod.startswith("repro.obs"):
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: the codegen "
                            f"substrate imports {mod} (repro.engine."
                            f"codegen may only use the threaded substrate, "
                            f"repro.cache and repro.obs)")
            if rel.parts == ("engine", "threaded.py"):
                for mod in _imported_modules(node):
                    violations.append(
                        f"src/repro/{rel}:{node.lineno}: the threaded-tier "
                        f"substrate imports {mod} (repro.engine.threaded "
                        f"must stay dependency-free — stdlib only)")
            elif layer in ENGINE_LAYERS and rel.parts[-1] == "threaded.py":
                for mod in _imported_modules(node):
                    if mod.startswith("repro.engine") \
                            and mod != "repro.engine.threaded":
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: engine "
                            f"translator imports {mod} (threaded tiers may "
                            f"only use the repro.engine.threaded substrate; "
                            f"other engine-core state must be pre-bound by "
                            f"the host engine)")
            elif layer in ENGINE_LAYERS and rel.parts[-1] == "codegen.py":
                for mod in _imported_modules(node):
                    if mod.startswith("repro.engine") and mod not in (
                            "repro.engine.codegen",
                            "repro.engine.threaded"):
                        violations.append(
                            f"src/repro/{rel}:{node.lineno}: engine "
                            f"translator imports {mod} (codegen tiers may "
                            f"only use the repro.engine.codegen and "
                            f"repro.engine.threaded substrates; other "
                            f"engine-core state must be pre-bound by the "
                            f"host engine)")
    return violations


def main():
    violations = check()
    for line in violations:
        print(line)
    if violations:
        print(f"{len(violations)} layering violation(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
