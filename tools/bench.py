#!/usr/bin/env python
"""Interpreter-tier benchmark: reference ladders vs threaded code vs
generated Python.

Two layers of measurement, written to ``BENCH_interp.json``:

* **micro** — one hot kernel per engine (Wasm VM, JS engine, native
  machine), identical abstract work under the three interpreter tiers:
  ``REPRO_FAST_INTERP=0`` (reference ladders), ``REPRO_CODEGEN=0``
  (prepare-once threaded tier) and the default (threaded blocks compiled
  to generated Python).  The engines are deterministic, so all tiers
  must also agree on every cycle/op-count — the run asserts that before
  it times anything.
* **sweep** — a cold (result-memoizer off, compile cache warm) pass of
  the golden quick-sweep slice (``table2_summary`` over the tier-1
  benchmark subset), timed under all three knob settings.

Usage::

    PYTHONPATH=src python tools/bench.py           # full run, writes JSON
    PYTHONPATH=src python tools/bench.py --smoke   # seconds-scale check,
                                                   # no file written

``--smoke`` runs the micro kernels at a reduced iteration count and only
gates the cross-tier stats-equality check (plus a sane speedup ratio);
tier-1 CI exercises it.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))     # tests.golden_config for the sweep slice

# Measurements must be live, never memoized.
os.environ["REPRO_RESULT_CACHE"] = "0"

#: The tier ladder, cheapest-dispatch last (see ``engine/codegen.py``).
TIERS = ("reference", "threaded", "codegen")

MICRO_C = """
double buf[1024];
int main() {
  double acc = 0.0;
  int checksum = 0;
  for (int i = 0; i < 1024; i++) buf[i] = i * 0.5;
  for (int rep = 0; rep < %(reps)d; rep++) {
    for (int i = 0; i < 1024; i++) {
      acc = acc + buf[i] * 1.0000001 - (double)(i & 7);
      checksum = (checksum ^ (i << 3)) + ((checksum >> 5) & 1023);
    }
  }
  printf("%%d", checksum + (int)(acc / 1048576.0));
  return 0;
}
"""


def _micro_sources(reps):
    return MICRO_C % {"reps": reps}


def _set_tier(tier):
    os.environ["REPRO_FAST_INTERP"] = "0" if tier == "reference" else "1"
    os.environ["REPRO_CODEGEN"] = "1" if tier == "codegen" else "0"


def _time_best(fn, repeats):
    """Best-of-N wall time (seconds) plus the last return value."""
    best = float("inf")
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def _wasm_runner(reps):
    from repro.backends import generate_wasm
    from repro.cfront import parse_c, preprocess
    from repro.engine.hostlib import wasm_host_imports
    from repro.wasm import WasmVM, validate_module

    module = generate_wasm(parse_c(preprocess(_micro_sources(reps))))
    validate_module(module)

    def run():
        output = []
        vm = WasmVM()
        inst = vm.instantiate(module, wasm_host_imports(output, None))
        inst.invoke("main")
        return output, inst.stats.cycles, inst.stats.instructions, \
            tuple(inst.stats.op_counts)
    return run


def _js_runner(reps):
    from repro.backends import generate_js
    from repro.cfront import parse_c, preprocess
    from repro.harness import install_c_host
    from repro.jsengine import JsEngine

    source = generate_js(parse_c(preprocess(_micro_sources(reps))))

    def run():
        output = []
        engine = JsEngine()
        install_c_host(engine, output)
        engine.load_script(source)
        engine.call_global("main")
        return output, engine.stats.cycles, engine.stats.instructions, \
            tuple(engine.stats.op_counts), engine.stats.gc_runs
    return run


def _native_runner(reps):
    from repro.backends import generate_x86
    from repro.cfront import parse_c, preprocess
    from repro.native import execute_program

    program = generate_x86(parse_c(preprocess(_micro_sources(reps))))

    def run():
        result, stats = execute_program(program, "main")
        return result, stats.prints, stats.cycles, stats.instructions, \
            tuple(stats.op_counts)
    return run


def micro_bench(reps, repeats):
    """Time each engine's micro kernel under all three tiers; assert that
    the observable stats are identical before trusting the timing."""
    runners = {
        "wasm": _wasm_runner,
        "js": _js_runner,
        "native": _native_runner,
    }
    out = {}
    for name, make in runners.items():
        runner = make(reps)
        _set_tier("codegen")
        runner()                  # translate + compile outside the clock
        seconds = {tier: float("inf") for tier in TIERS}
        observed = {}
        # The host's effective CPU speed drifts over a run; timing every
        # tier inside each round (instead of tier-by-tier) keeps the
        # speedup ratios honest under that drift.
        for _ in range(repeats):
            for tier in TIERS:
                _set_tier(tier)
                t0 = time.perf_counter()
                observed[tier] = runner()
                seconds[tier] = min(seconds[tier],
                                    time.perf_counter() - t0)
        for tier in TIERS[1:]:
            if observed[tier] != observed["reference"]:
                raise SystemExit(
                    f"bench: {name} tiers disagree on observable stats:\n"
                    f"  reference: {observed['reference']}\n"
                    f"  {tier}: {observed[tier]}")
        out[name] = {
            "reference_s": round(seconds["reference"], 6),
            "threaded_s": round(seconds["threaded"], 6),
            "codegen_s": round(seconds["codegen"], 6),
            "threaded_speedup": round(
                seconds["reference"] / seconds["threaded"], 3),
            "codegen_speedup": round(
                seconds["threaded"] / seconds["codegen"], 3),
            "total_speedup": round(
                seconds["reference"] / seconds["codegen"], 3),
            "stats_identical": True,
        }
        print(f"micro/{name}: ref {seconds['reference']:.3f}s  "
              f"threaded {seconds['threaded']:.3f}s  "
              f"codegen {seconds['codegen']:.3f}s  "
              f"(codegen vs threaded "
              f"{out[name]['codegen_speedup']:.2f}x)", flush=True)
    return out


def sweep_bench():
    """Cold quick-sweep (golden tier-1 slice) under all three tiers.

    The compile cache is warmed by a throwaway pass first so the timed
    passes measure execution, not C-frontend work."""
    from repro.experiments import table2_summary
    from tests.golden_config import OPT_SET, _context

    def run_sweep():
        return table2_summary(_context(OPT_SET))

    seconds = {}
    texts = {}
    _set_tier("codegen")
    run_sweep()                       # warm the compile + codegen caches
    for tier in TIERS:
        _set_tier(tier)
        seconds[tier], result = _time_best(run_sweep, 1)
        texts[tier] = result["text"]
    if len(set(texts.values())) != 1:
        raise SystemExit("bench: sweep outputs differ between tiers")
    print(f"sweep: ref {seconds['reference']:.3f}s  "
          f"threaded {seconds['threaded']:.3f}s  "
          f"codegen {seconds['codegen']:.3f}s", flush=True)
    return {
        "slice": "table2_summary/" + ",".join(OPT_SET),
        "reference_s": round(seconds["reference"], 3),
        "threaded_s": round(seconds["threaded"], 3),
        "codegen_s": round(seconds["codegen"], 3),
        "threaded_speedup": round(
            seconds["reference"] / seconds["threaded"], 3),
        "codegen_speedup": round(
            seconds["threaded"] / seconds["codegen"], 3),
        "outputs_identical": True,
    }


def _interp_metrics():
    """Snapshot of the ``interp.*`` registry counters accumulated by the
    benchmark's fast-tier runs."""
    from repro.obs import SCHED, get_registry
    return {name: value
            for name, value in get_registry().export([SCHED]).items()
            if name.startswith("interp.")}


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="fast cross-tier stats-equality gate; "
                             "does not write BENCH_interp.json")
    parser.add_argument("--out", default=str(ROOT / "BENCH_interp.json"))
    args = parser.parse_args(argv)

    if args.smoke:
        micro = micro_bench(reps=30, repeats=1)
        slowest = min(e["total_speedup"] for e in micro.values())
        print(f"smoke ok: all three tiers stats-identical; "
              f"min total speedup {slowest}x")
        return 0

    micro = micro_bench(reps=400, repeats=3)
    floor = min(e["codegen_speedup"] for e in micro.values())
    if floor < 3.0:
        raise SystemExit(
            f"bench: codegen tier must be >=3x over threaded on every "
            f"micro kernel; measured {floor}x")
    sweep = sweep_bench()
    payload = {
        "description": "REPRO_FAST_INTERP=0 (reference ladders) vs "
                       "REPRO_CODEGEN=0 (threaded tier) vs default "
                       "(generated Python); identical observable stats "
                       "asserted before timing",
        "python": sys.version.split()[0],
        "micro": micro,
        "sweep": sweep,
        # Fast-tier translation counters from the metrics registry:
        # per-engine translated functions/blocks, dispatch handlers built,
        # superinstruction fusion wins, budget deopts taken, and codegen
        # compile-cache hits/misses.
        "interp_metrics": _interp_metrics(),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
