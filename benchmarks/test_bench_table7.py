"""E7: Table 7 — Wasm tier configurations, Chrome vs Firefox."""

from benchmarks.conftest import run_once
from repro.experiments import table7_tier_comparison


def test_bench_tier_comparison(benchmark, ctx):
    result = run_once(benchmark, lambda: table7_tier_comparison(ctx))
    print()
    print(result["text"])
    overall = result["summary"]["Overall"]
    # Paper: default vs basic-only ≈ 1.09–1.12x; default vs opt-only
    # slightly below 1.
    assert overall["LiftOff"] > 1.0
    assert overall["Baseline"] > 1.0
    assert overall["TurboFan"] < 1.2
    assert overall["Ion"] <= 1.05
