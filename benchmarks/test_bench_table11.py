"""E13: Table 11 — Chrome parameters per experiment (Appendix A)."""

from benchmarks.conftest import run_once
from repro.experiments import table11_chrome_flags


def test_bench_chrome_flags(benchmark, ctx):
    result = run_once(benchmark, lambda: table11_chrome_flags())
    print()
    print(result["text"])
    assert len(result["data"]) == 8
