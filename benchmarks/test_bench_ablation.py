"""Ablation (DESIGN.md / paper §5 future work): what does a Wasm-tailored
pipeline buy over the stock LLVM -O2 pipeline?

Three configurations per benchmark:
* ``O2``    — the stock pipeline (vectorize + remat, tuned for x86);
* ``Oz``    — the accidental winner the paper found;
* ``Owasm`` — the extension pipeline: Oz's pass set plus Binaryen-style
  peephole and address strength reduction in the backend.
"""

from benchmarks.conftest import run_once
from repro.analysis import format_table, geomean


def _sweep(ctx):
    runner = ctx.runner()
    rows = []
    ratios = {"Oz": [], "Owasm": []}
    for benchmark in ctx.benchmarks():
        times = {}
        for level in ("O2", "Oz", "Owasm"):
            artifact = ctx.wasm(benchmark, "M", level)
            times[level] = runner.run_wasm(artifact).time_ms
        for level in ("Oz", "Owasm"):
            ratios[level].append(times[level] / times["O2"])
        rows.append([benchmark.name, times["O2"], times["Oz"],
                     times["Owasm"]])
    text = format_table(["benchmark", "O2 ms", "Oz ms", "Owasm ms"], rows,
                        title="Ablation: Wasm-tailored pipeline vs stock")
    return {"ratios": ratios, "text": text}


def test_bench_tailored_pipeline(benchmark, ctx):
    result = run_once(benchmark, lambda: _sweep(ctx))
    oz = geomean(result["ratios"]["Oz"])
    owasm = geomean(result["ratios"]["Owasm"])
    print()
    print(result["text"])
    print(f"\nGeomean vs -O2: Oz {oz:.3f}, Owasm {owasm:.3f} "
          "(the tailored pipeline should at least match Oz)")
    assert owasm <= oz * 1.02
    assert owasm < 1.0
