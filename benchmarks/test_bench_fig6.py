"""E2: Fig. 6 — optimization levels on the x86 control toolchain."""

from benchmarks.conftest import run_once
from repro.analysis import geomean
from repro.experiments import figure6_opt_levels_x86


def test_bench_fig6(benchmark, ctx):
    result = run_once(benchmark, lambda: figure6_opt_levels_x86(ctx))
    print()
    print(result["text"])
    times = [entry["time"]["Ofast/O2"] for entry in result["data"].values()]
    sizes = [entry["code_size"]["Ofast/O2"]
             for entry in result["data"].values()]
    # Paper: Ofast fastest (0.97x) and larger (1.11x) on x86.
    assert geomean(times) < 1.0
    assert geomean(sizes) > 1.0
