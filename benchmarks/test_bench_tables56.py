"""E5: Tables 5/6 — input sizes on desktop Firefox."""

from benchmarks.conftest import run_once
from repro.experiments import input_size_tables


def test_bench_firefox_input_sizes(benchmark, ctx):
    result = run_once(benchmark,
                      lambda: input_size_tables(ctx, "firefox"))
    print()
    print(result["text"])
    stats = result["exec"]
    # Paper shape (Table 5): Wasm's advantage *grows* with input size on
    # Firefox, and small inputs are its weakest spot.
    assert stats["XS"]["all_gmean"] < stats["XL"]["all_gmean"] * 1.2
    assert stats["XS"]["sd_count"] >= stats["M"]["sd_count"]
    assert result["memory"]["XL"]["wasm_kb"] > \
        10 * result["memory"]["M"]["wasm_kb"]
