"""E8: Table 8 + Figs. 12/13 — browsers × platforms."""

from benchmarks.conftest import run_once
from repro.experiments import table8_browsers_platforms


def test_bench_browsers_platforms(benchmark, ctx):
    result = run_once(benchmark, lambda: table8_browsers_platforms(ctx))
    print()
    print(result["text"])
    data = result["data"]
    # Paper's orderings (Table 8):
    # desktop Wasm: Firefox < Chrome < Edge
    assert data[("firefox", "desktop")]["wasm_ms"] < \
        data[("chrome", "desktop")]["wasm_ms"] < \
        data[("edge", "desktop")]["wasm_ms"]
    # desktop JS: Chrome < Firefox < Edge (the Chrome/Firefox gap is
    # small — 1.06x in the paper — so a near-tie tolerance is applied)
    assert data[("chrome", "desktop")]["js_ms"] < \
        data[("firefox", "desktop")]["js_ms"] * 1.1
    assert data[("firefox", "desktop")]["js_ms"] < \
        data[("edge", "desktop")]["js_ms"]
    # mobile JS: Firefox < Edge < Chrome
    assert data[("firefox", "mobile")]["js_ms"] < \
        data[("edge", "mobile")]["js_ms"] < \
        data[("chrome", "mobile")]["js_ms"]
    # mobile Wasm: Edge < Chrome < Firefox
    assert data[("edge", "mobile")]["wasm_ms"] < \
        data[("chrome", "mobile")]["wasm_ms"] < \
        data[("firefox", "mobile")]["wasm_ms"]
    # Wasm uses several times more memory than JS everywhere.
    for key, entry in data.items():
        assert entry["wasm_kb"] > 2.0 * entry["js_kb"], key
