"""E10: Table 9 — manually-written JavaScript programs."""

from benchmarks.conftest import run_once
from repro.experiments import table9_manual_js


def test_bench_manual_js(benchmark, ctx):
    result = run_once(benchmark, lambda: table9_manual_js(ctx))
    print()
    print(result["text"])
    data = result["data"]
    # Paper shapes: library JS slower than Cheerp JS on PolyBench rows;
    # AES and SHA (W3C) are the exceptions that beat Cheerp; manual
    # PolyBench rows use more memory (plain arrays live on the JS heap).
    assert data["3mm"]["manual_ms"] > data["3mm"]["cheerp_ms"]
    assert data["Heat-3d (W3C)"]["manual_ms"] > \
        data["Heat-3d (W3C)"]["cheerp_ms"]
    assert data["SHA (W3C)"]["manual_ms"] < data["SHA (W3C)"]["cheerp_ms"]
    assert data["AES"]["manual_ms"] < 2.0 * data["AES"]["cheerp_ms"]
    assert data["3mm"]["manual_kb"] > data["3mm"]["cheerp_kb"]
