"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one of the paper's tables/figures
and prints it.  By default the representative QUICK_SET (15 of the 41
benchmarks) is swept so `pytest benchmarks/ --benchmark-only` finishes in
minutes; set ``REPRO_FULL=1`` to sweep all 41 (as ``results/run_all.py``
does — its full-suite outputs are committed under ``results/``).
``REPRO_QUICK=1`` wins over ``REPRO_FULL`` (the CI fast path), and the
persistent compile cache (``REPRO_CACHE_DIR``) makes warm re-runs skip
every compile.

These suites assert *shape properties* of deterministic experiment
results, so measurement memoization is sound here: result caching is
enabled (like ``results/run_all.py`` does for itself) and a warm cache
skips the measurement runs too.  The unit tests under ``tests/`` keep it
off — they monkeypatch collectors and host imports.  Export
``REPRO_RESULT_CACHE=0`` to force live measurement.
"""

import os

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(autouse=True)
def _result_cache(monkeypatch):
    """Turn on measurement memoization for this directory only (an env
    default would leak into ``tests/``, which relies on live runs)."""
    monkeypatch.setenv("REPRO_RESULT_CACHE",
                       os.environ.get("REPRO_RESULT_CACHE", "1"))


def _quick():
    if os.environ.get("REPRO_QUICK"):
        return True
    return not os.environ.get("REPRO_FULL")


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(quick=_quick(), repetitions=1)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
