"""Benchmark harness configuration.

Each ``test_bench_*`` file regenerates one of the paper's tables/figures
and prints it.  By default the representative QUICK_SET (15 of the 41
benchmarks) is swept so `pytest benchmarks/ --benchmark-only` finishes in
minutes; set ``REPRO_FULL=1`` to sweep all 41 (as ``results/run_all.py``
does — its full-suite outputs are committed under ``results/``).
"""

import os

import pytest

from repro.experiments import ExperimentContext


def _quick():
    return not os.environ.get("REPRO_FULL")


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(quick=_quick(), repetitions=1)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1,
                              warmup_rounds=0)
