"""E1: Fig. 5 + Table 2 (JS/WASM columns) — optimization levels on the
Wasm and genericjs targets, Chrome desktop."""

from benchmarks.conftest import run_once
from repro.experiments import (
    figure5_opt_levels, figure6_opt_levels_x86, table2_summary,
)


def test_bench_fig5_table2(benchmark, ctx):
    def run():
        fig5 = figure5_opt_levels(ctx)
        fig6 = figure6_opt_levels_x86(ctx)
        return table2_summary(ctx, fig5=fig5, fig6=fig6)

    result = run_once(benchmark, run)
    print()
    print(result["fig5"]["text"])
    print()
    print(result["text"])
    data = result["data"]
    # Paper shapes: Oz fastest for Wasm and -O2 never the winner; the x86
    # control behaves as designed (O1 clearly slower than O2).  Wasm's
    # O1/O2 sits at ~1.0 in this reproduction (paper: 0.88; deviation
    # documented in EXPERIMENTS.md E1), so it is asserted as ≤ parity.
    assert data[("Exec. Time", "Oz/O2")]["wasm"] < 1.0
    assert data[("Exec. Time", "O1/O2")]["wasm"] <= 1.05
    assert data[("Exec. Time", "Oz/O2")]["wasm"] <= \
        data[("Exec. Time", "O1/O2")]["wasm"]
    assert data[("Exec. Time", "O1/O2")]["x86"] > 1.1
