"""E11: Tables 10 + 12 — real-world applications."""

from benchmarks.conftest import run_once
from repro.experiments import table10_realworld, table12_longjs_ops


def test_bench_realworld(benchmark, ctx):
    result = run_once(benchmark, lambda: table10_realworld())
    print()
    print(result["text"])
    table12 = table12_longjs_ops(result["longjs"])
    print()
    print(table12["text"])
    # Paper shapes: Wasm wins all six experiments; FFmpeg's margin is the
    # largest (WebWorker parallelism); Hyphenopoly's the smallest
    # (I/O-bound); Long.js JS runs far more arithmetic ops than Wasm.
    for entry in result["longjs"].values():
        assert entry["ratio"] < 1.0
        assert entry["js_checksum"] == entry["wasm_checksum"]
    for entry in result["hyphenopoly"].values():
        assert 0.3 < entry["ratio"] < 1.25
    assert result["ffmpeg"]["ratio"] < \
        min(e["ratio"] for e in result["hyphenopoly"].values())
    mul = result["longjs"]["multiplication"]
    assert sum(mul["js_ops"].values()) > 4 * sum(mul["wasm_ops"].values())
