"""E4: Fig. 9 + Tables 3/4 — input sizes on desktop Chrome."""

from benchmarks.conftest import run_once
from repro.experiments import input_size_tables


def test_bench_chrome_input_sizes(benchmark, ctx):
    result = run_once(benchmark,
                      lambda: input_size_tables(ctx, "chrome"))
    print()
    print(result["text"])
    stats = result["exec"]
    memory = result["memory"]
    # Paper shapes: Wasm dominates at XS; the gap narrows with size;
    # JS memory flat, Wasm memory grows steeply at L/XL.
    assert stats["XS"]["all_gmean"] > 2.0
    assert stats["XS"]["all_gmean"] > stats["L"]["all_gmean"]
    assert stats["L"]["sd_count"] > 0
    assert memory["XL"]["js_kb"] < 1.5 * memory["XS"]["js_kb"]
    assert memory["XL"]["wasm_kb"] > 10 * memory["M"]["wasm_kb"]
