"""E9 (§4.5): JS↔Wasm context-switch overhead micro-benchmark."""

from benchmarks.conftest import run_once
from repro.experiments import context_switch_overhead


def test_bench_context_switch(benchmark, ctx):
    result = run_once(benchmark, lambda: context_switch_overhead())
    print()
    print(result["text"])
    # Paper: Firefox spends only ~0.13x of Chrome's time.
    assert result["data"]["firefox"]["vs_chrome"] < 0.3
