"""E12: Fig. 11 — five-number summaries of the optimization-level data."""

from benchmarks.conftest import run_once
from repro.experiments import figure11_five_number


def test_bench_five_number(benchmark, ctx):
    result = run_once(benchmark, lambda: figure11_five_number(ctx))
    print()
    print(result["text"])
    data = result["data"]
    # Paper (Appendix B): x86 O1/O2 and Oz/O2 execution-time medians sit
    # above 1; code-size spreads are tight.
    assert data[("x86", "time", "O1/O2")].median > 1.0
    assert data[("x86", "time", "Oz/O2")].median > 1.0
    wasm_cs = data[("WASM", "code_size", "Oz/O2")]
    assert wasm_cs.maximum - wasm_cs.minimum < 0.5
