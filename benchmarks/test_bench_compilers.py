"""E3 (§4.2.2): Cheerp vs Emscripten."""

from benchmarks.conftest import run_once
from repro.experiments import compare_cheerp_emscripten


def test_bench_cheerp_vs_emscripten(benchmark, ctx):
    result = run_once(benchmark, lambda: compare_cheerp_emscripten(ctx))
    print()
    print(result["text"])
    # Paper: Emscripten 2.70x faster, 6.02x more memory.
    assert result["summary"]["speedup_gmean"] > 1.1
    assert result["summary"]["memory_gmean"] > 2.0
