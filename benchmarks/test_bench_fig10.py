"""E6: Fig. 10 — JIT improvement for JS vs Wasm."""

from benchmarks.conftest import run_once
from repro.experiments import figure10_jit_improvement


def test_bench_jit_improvement(benchmark, ctx):
    result = run_once(benchmark, lambda: figure10_jit_improvement(ctx))
    print()
    print(result["text"])
    js = [e["improvement"] for e in result["data"]["js"].values()]
    wasm = [e["improvement"] for e in result["data"]["wasm"].values()]
    # Paper: JS gains are large, Wasm ratios "mostly near 1".
    assert max(js) > 3.0
    assert sum(v > 2.0 for v in wasm) == 0
