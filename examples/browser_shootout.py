"""§4.5 reproduced on one benchmark: the same Wasm/JS pair across the six
browser × platform settings, showing the inversions the paper reports
(Firefox fastest for desktop Wasm but slowest for mobile Wasm, etc.).

    python examples/browser_shootout.py [benchmark]
"""

import sys

from repro.compilers import CheerpCompiler
from repro.env import (
    DESKTOP, MOBILE, chrome_desktop, chrome_mobile, edge_desktop,
    edge_mobile, firefox_desktop, firefox_mobile,
)
from repro.harness import PageRunner
from repro.suites import get_benchmark

SETTINGS = [
    (chrome_desktop, DESKTOP), (firefox_desktop, DESKTOP),
    (edge_desktop, DESKTOP), (chrome_mobile, MOBILE),
    (firefox_mobile, MOBILE), (edge_mobile, MOBILE),
]


def main(name="gemm"):
    benchmark = get_benchmark(name)
    defines = benchmark.defines("M")
    cheerp = CheerpCompiler(linear_heap_size=1024 * 1024)
    wasm = cheerp.compile_wasm(benchmark.source, defines, "O2", name)
    js = cheerp.compile_js(benchmark.source, defines, "O2", name)

    print(f"{name}, M input, six deployment settings (Table 8 layout)\n")
    print(f"{'setting':20s} {'wasm ms':>9s} {'js ms':>9s} "
          f"{'wasm KB':>9s} {'js KB':>8s}")
    for profile_fn, platform in SETTINGS:
        profile = profile_fn()
        runner = PageRunner(profile, platform, repetitions=2)
        wasm_m = runner.run_wasm(wasm)
        js_m = runner.run_js(js)
        label = f"{profile.name} {platform.kind}"
        print(f"{label:20s} {wasm_m.time_ms:9.3f} {js_m.time_ms:9.3f} "
              f"{wasm_m.memory_kb:9.0f} {js_m.memory_kb:8.0f}")
    print("\nExpected shape: desktop Wasm is fastest on Firefox; mobile "
          "Wasm is slowest on Firefox (Cranelift on ARM64); Edge mobile "
          "beats Chrome mobile on both targets (§4.5).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gemm")
