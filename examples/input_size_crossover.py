"""§4.3 reproduced on one benchmark: WebAssembly dominates on small
inputs, JavaScript's JIT catches up as the input grows, and Wasm memory
grows with the dataset while the JS heap stays flat.

    python examples/input_size_crossover.py [benchmark]
"""

import sys

from repro.compilers import CheerpCompiler
from repro.env import DESKTOP, chrome_desktop
from repro.harness import PageRunner
from repro.suites import SIZE_CLASSES, get_benchmark


def main(name="jacobi-2d"):
    benchmark = get_benchmark(name)
    cheerp = CheerpCompiler(linear_heap_size=1024 * 1024)
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=2)

    print(f"{name} across the five input sizes (desktop Chrome)\n")
    print(f"{'size':5s} {'wasm ms':>9s} {'js ms':>9s} {'js/wasm':>8s} "
          f"{'wasm KB':>10s} {'js KB':>8s}")
    for size in SIZE_CLASSES:
        defines = benchmark.defines(size)
        wasm = runner.run_wasm(cheerp.compile_wasm(
            benchmark.source, defines, "O2", name))
        js = runner.run_js(cheerp.compile_js(
            benchmark.source, defines, "O2", name))
        print(f"{size:5s} {wasm.time_ms:9.3f} {js.time_ms:9.3f} "
              f"{js.time_ms / wasm.time_ms:8.2f} "
              f"{wasm.memory_kb:10.0f} {js.memory_kb:8.0f}")
    print("\nExpected shape: the js/wasm ratio shrinks as inputs grow "
          "(JIT warm-up amortises); Wasm memory tracks the dataset while "
          "the JS heap stays flat (Tables 3/4).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "jacobi-2d")
