"""§4.6.2 reproduced: the three real-world dual-implementation libraries —
Long.js (64-bit arithmetic), Hyphenopoly (hyphenation), FFmpeg
(transcoding with WebWorkers).

    python examples/realworld_apps.py
"""

from repro.apps import FfmpegApp, HyphenopolyApp, LongJsApp


def main():
    print("Long.js — 64-bit integer arithmetic (wasm i64 vs 16-bit "
          "chunked JS)")
    for label, entry in LongJsApp(iterations=2000).run().items():
        print(f"  {label:15s} wasm {entry['wasm_ms']:7.2f} ms | "
              f"js {entry['js_ms']:7.2f} ms | ratio {entry['ratio']:.3f} "
              f"| checksums match: "
              f"{entry['js_checksum'] == entry['wasm_checksum']}")
        ops = entry["js_ops"]
        print(f"    js ops: ADD={ops['ADD']} MUL={ops['MUL']} "
              f"SHIFT={ops['SHIFT']} AND={ops['AND']} "
              f"(wasm: {sum(entry['wasm_ops'].values())} total)")

    print("\nHyphenopoly — pattern hyphenation (I/O-bound: near parity)")
    for language, entry in HyphenopolyApp(text_bytes=2048).run().items():
        print(f"  {language:6s} wasm {entry['wasm_ms']:7.2f} ms | "
              f"js {entry['js_ms']:7.2f} ms | ratio {entry['ratio']:.3f} "
              f"| {entry['wasm_points']} hyphenation points")

    print("\nFFmpeg — mp4→avi transcode (wasm uses a 4-WebWorker pool)")
    entry = FfmpegApp(frames=16).run()
    print(f"  {entry['frames']} frames on {entry['workers']} workers: "
          f"wasm {entry['wasm_ms']:7.1f} ms | js {entry['js_ms']:7.1f} ms "
          f"| ratio {entry['ratio']:.3f}")
    print("\nPaper's Table 10 ratios: 0.73/0.52/0.58 (Long.js), "
          "0.94/0.96 (Hyphenopoly), 0.275 (FFmpeg).")


if __name__ == "__main__":
    main()
