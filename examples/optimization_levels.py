"""The paper's §4.2 counter-intuition, reproduced on one benchmark:
compiler optimization levels behave as designed on x86 but not on
WebAssembly.

    python examples/optimization_levels.py [benchmark]
"""

import sys

from repro.compilers import CheerpCompiler, LlvmX86Compiler
from repro.env import DESKTOP, chrome_desktop
from repro.harness import PageRunner
from repro.native import execute_program
from repro.suites import get_benchmark

LEVELS = ("O1", "O2", "Ofast", "Oz")


def main(name="gemm"):
    benchmark = get_benchmark(name)
    defines = benchmark.defines("M")
    cheerp = CheerpCompiler(linear_heap_size=1024 * 1024)
    llvm = LlvmX86Compiler()
    runner = PageRunner(chrome_desktop(), DESKTOP, repetitions=2)

    print(f"{name} ({benchmark.description}), M input\n")
    print(f"{'level':6s} {'wasm ms':>10s} {'wasm bytes':>11s} "
          f"{'x86 cycles':>12s} {'x86 bytes':>10s}")
    rows = {}
    for level in LEVELS:
        wasm = cheerp.compile_wasm(benchmark.source, defines, level, name)
        wasm_ms = runner.run_wasm(wasm).time_ms
        native = llvm.compile(benchmark.source, defines, level, name)
        _, stats = execute_program(native.program, "main")
        rows[level] = (wasm_ms, wasm.code_size, stats.cycles,
                       native.code_size)
        print(f"{level:6s} {wasm_ms:10.3f} {wasm.code_size:11d} "
              f"{stats.cycles:12.0f} {native.code_size:10d}")

    print("\nRelative to -O2 (the paper's Table 2 convention):")
    base = rows["O2"]
    for level in ("O1", "Ofast", "Oz"):
        row = rows[level]
        print(f"  {level}/O2: wasm time {row[0] / base[0]:.2f}x, "
              f"x86 time {row[2] / base[2]:.2f}x")
    print("\nExpected shape: on x86, -O2/-Ofast win decisively; on Wasm "
          "the size-optimised -Oz is the one to beat (§4.2.1).")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "gemm")
