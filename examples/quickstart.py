"""Quickstart: compile one C program to WebAssembly and JavaScript, run
both in a modelled browser, and compare the two metrics the paper
measures.

    python examples/quickstart.py
"""

from repro.compilers import CheerpCompiler
from repro.env import DESKTOP, chrome_desktop
from repro.harness import PageRunner
from repro.wasm import module_to_wat

C_SOURCE = """
#define N 32
double A[N][N];
double x[N];
double y[N];

void init() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = (double)(i % 7) / N;
    for (j = 0; j < N; j++)
      A[i][j] = (double)((i * j + 1) % N) / N;
  }
}

void matvec() {
  int i, j;
  for (i = 0; i < N; i++) {
    y[i] = 0.0;
    for (j = 0; j < N; j++)
      y[i] += A[i][j] * x[j];
  }
}

double checksum() {
  double s = 0.0;
  int i;
  for (i = 0; i < N; i++)
    s += y[i];
  return s;
}

int main() {
  init();
  matvec();
  printf("%f", checksum());
  return 0;
}
"""


def main():
    # 1. Compile with the Cheerp facade (the paper's §3.2 setup).
    cheerp = CheerpCompiler(linear_heap_size=1024 * 1024)
    wasm = cheerp.compile_wasm(C_SOURCE, opt_level="O2", name="matvec")
    js = cheerp.compile_js(C_SOURCE, opt_level="O2", name="matvec")
    print(f"Wasm binary: {wasm.code_size} bytes  |  "
          f"genericjs source: {js.code_size} bytes")

    # 2. Peek at the generated WebAssembly (Fig. 4 style).
    print("\n--- WAT excerpt ---")
    print("\n".join(module_to_wat(wasm.module).splitlines()[:12]))

    # 3. Run both on modelled desktop Chrome (5 repetitions, §3.3.2).
    runner = PageRunner(chrome_desktop(), DESKTOP)
    wasm_result = runner.run_wasm(wasm)
    js_result = runner.run_js(js)

    print("\n--- Measurements (desktop Chrome v79) ---")
    for result in (wasm_result, js_result):
        print(f"{result.target:5s}: {result.time_ms:8.3f} ms   "
              f"{result.memory_kb:10.1f} KB   output={result.output[0]:.6f}")
    ratio = js_result.time_ms / wasm_result.time_ms
    print(f"\nWasm is {ratio:.2f}x {'faster' if ratio > 1 else 'slower'} "
          "than JavaScript on this workload.")


if __name__ == "__main__":
    main()
