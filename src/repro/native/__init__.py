"""x86 model: a register-machine ISA, executor, and cost/size model.

This is the paper's control experiment (Fig. 6, Table 2 'x86' column): the
same IR and the same pass pipelines, lowered to a target where LLVM's
optimizations behave as designed — ``-vectorize-loops`` maps to real SIMD,
``-Ofast`` produces the fastest code, ``-Oz`` the smallest.
"""

from repro.native.machine import (
    NativeFunction,
    NativeProgram,
    NativeStats,
    NOp,
    execute_program,
    program_byte_size,
)

__all__ = [
    "NOp",
    "NativeFunction",
    "NativeProgram",
    "NativeStats",
    "execute_program",
    "program_byte_size",
]
