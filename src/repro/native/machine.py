"""Register-machine ISA and executor for the x86 model.

Instructions are tuples ``(op, dst, a, b, vector)``:

* ``dst``/``a``/``b`` are virtual register indices (immediates are loaded
  with ``MOVI``); loads/stores use ``a`` as the address register and ``b``
  as a constant byte offset.
* ``vector`` marks instructions inside a vectorized loop body: they execute
  normally (per-lane semantics are preserved because the loop still runs
  every iteration) but are charged at SIMD throughput — 4 lanes per issue
  with a small overhead factor.

The cost model is a classic per-op latency table; the byte-size model gives
the Fig. 6 code-size axis (SIMD encodings with VEX prefixes are longer,
which is why ``-Ofast``'s x86 output is ~10% larger).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.engine.hostlib import native_libm
from repro.engine.opclass import OpClass
from repro.engine.stats import EngineStats
from repro.errors import TrapError
from repro.obs import new_profile

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF


def _w32(v):
    v &= _MASK32
    return v - 0x100000000 if v & 0x80000000 else v


def _w64(v):
    v &= _MASK64
    return v - 0x10000000000000000 if v & 0x8000000000000000 else v


class NOp(enum.IntEnum):
    MOVI = 0
    MOV = 1
    # 32-bit integer ALU.
    ADD32 = 2; SUB32 = 3; MUL32 = 4; DIVS32 = 5; DIVU32 = 6
    REMS32 = 7; REMU32 = 8; AND32 = 9; OR32 = 10; XOR32 = 11
    SHL32 = 12; SHRS32 = 13; SHRU32 = 14; NEG32 = 15; NOT32 = 16
    BNOT32 = 17
    # 64-bit integer ALU.
    ADD64 = 18; SUB64 = 19; MUL64 = 20; DIVS64 = 21; DIVU64 = 22
    REMS64 = 23; REMU64 = 24; AND64 = 25; OR64 = 26; XOR64 = 27
    SHL64 = 28; SHRS64 = 29; SHRU64 = 30; NEG64 = 31; BNOT64 = 32
    NOT64 = 33
    # Comparisons (set 0/1).
    EQ32 = 34; NE32 = 35; LTS32 = 36; LTU32 = 37; LES32 = 38; LEU32 = 39
    GTS32 = 40; GTU32 = 41; GES32 = 42; GEU32 = 43
    EQ64 = 44; NE64 = 45; LTS64 = 46; LTU64 = 47; LES64 = 48; LEU64 = 49
    GTS64 = 50; GTU64 = 51; GES64 = 52; GEU64 = 53
    FEQ = 54; FNE = 55; FLT = 56; FLE = 57; FGT = 58; FGE = 59
    # Floating point.
    FADD = 60; FSUB = 61; FMUL = 62; FDIV = 63; FSQRT = 64; FABS = 65
    FNEG = 66; FFLOOR = 67; FCEIL = 68
    # Conversions.
    I2F_S32 = 69; I2F_U32 = 70; I2F_S64 = 71; F2I32 = 72; F2I64 = 73
    SX32TO64 = 74; ZX32TO64 = 75; TRUNC64TO32 = 76
    # Memory.
    LOAD8U = 77; LOAD8S = 78; LOAD16U = 79; LOAD32 = 80; LOAD64 = 81
    LOADF = 82
    STORE8 = 83; STORE16 = 84; STORE32 = 85; STORE64 = 86; STOREF = 87
    # Control.
    JMP = 88; JZ = 89; JNZ = 90; CALL = 91; RET = 92; RETV = 93
    # Host (print / libm handled natively at full speed on x86).
    HOSTCALL = 94
    SELECT = 95


def _cost_table():
    cost = [1.0] * (max(NOp) + 1)
    for op in (NOp.MUL32, NOp.MUL64, NOp.FMUL):
        cost[op] = 3.0
    for op in (NOp.DIVS32, NOp.DIVU32, NOp.REMS32, NOp.REMU32):
        cost[op] = 18.0
    for op in (NOp.DIVS64, NOp.DIVU64, NOp.REMS64, NOp.REMU64):
        cost[op] = 24.0
    cost[NOp.FDIV] = 14.0
    cost[NOp.FSQRT] = 13.0
    for op in range(NOp.LOAD8U, NOp.LOADF + 1):
        cost[op] = 2.0
    for op in range(NOp.STORE8, NOp.STOREF + 1):
        cost[op] = 2.0
    cost[NOp.CALL] = 6.0
    cost[NOp.HOSTCALL] = 20.0
    cost[NOp.JMP] = 1.0
    cost[NOp.JZ] = 1.2
    cost[NOp.JNZ] = 1.2
    cost[NOp.MOVI] = 0.5
    cost[NOp.MOV] = 0.5
    for op in (NOp.RET, NOp.RETV):
        cost[op] = 2.0
    return cost


N_COST = _cost_table()


def _class_table():
    """Attribute each native op to the shared :class:`OpClass` taxonomy so
    Table 12-style operation profiles can be compared across engines."""
    table = [OpClass.OTHER] * (max(NOp) + 1)
    groups = {
        OpClass.CONST: (NOp.MOVI,),
        OpClass.LOCAL: (NOp.MOV,),
        OpClass.ADD: (NOp.ADD32, NOp.SUB32, NOp.NEG32, NOp.ADD64, NOp.SUB64,
                      NOp.NEG64, NOp.FADD, NOp.FSUB, NOp.FNEG),
        OpClass.MUL: (NOp.MUL32, NOp.MUL64, NOp.FMUL),
        OpClass.DIV: (NOp.DIVS32, NOp.DIVU32, NOp.DIVS64, NOp.DIVU64,
                      NOp.FDIV),
        OpClass.REM: (NOp.REMS32, NOp.REMU32, NOp.REMS64, NOp.REMU64),
        OpClass.SHIFT: (NOp.SHL32, NOp.SHRS32, NOp.SHRU32, NOp.SHL64,
                        NOp.SHRS64, NOp.SHRU64),
        OpClass.AND: (NOp.AND32, NOp.AND64),
        OpClass.OR: (NOp.OR32, NOp.OR64),
        OpClass.XOR: (NOp.XOR32, NOp.XOR64),
        OpClass.CMP: tuple(NOp(i) for i in range(NOp.EQ32, NOp.FGE + 1)) +
                     (NOp.NOT32, NOp.NOT64),
        OpClass.CONVERT: (NOp.I2F_S32, NOp.I2F_U32, NOp.I2F_S64, NOp.F2I32,
                          NOp.F2I64, NOp.SX32TO64, NOp.ZX32TO64,
                          NOp.TRUNC64TO32),
        OpClass.LOAD: tuple(NOp(i) for i in range(NOp.LOAD8U,
                                                  NOp.LOADF + 1)),
        OpClass.STORE: tuple(NOp(i) for i in range(NOp.STORE8,
                                                   NOp.STOREF + 1)),
        OpClass.CONTROL: (NOp.JMP, NOp.JZ, NOp.JNZ, NOp.RET, NOp.RETV,
                          NOp.SELECT),
        OpClass.CALL: (NOp.CALL, NOp.HOSTCALL),
    }
    for cls, ops in groups.items():
        for op in ops:
            table[op] = cls
    return table


N_OP_CLASS = _class_table()

#: Fraction of scalar cost charged per vector-marked instruction: 4 lanes
#: per issue with ~15% packing overhead.
VECTOR_COST_FACTOR = 0.29
#: Vector (VEX-prefixed) encodings are longer.
VECTOR_EXTRA_BYTES = 2


def _byte_size(op, vector):
    if op == NOp.MOVI:
        base = 7
    elif op in (NOp.JMP, NOp.JZ, NOp.JNZ, NOp.CALL):
        base = 5
    elif NOp.LOAD8U <= op <= NOp.STOREF:
        base = 4
    elif op in (NOp.HOSTCALL,):
        base = 7
    else:
        base = 3
    return base + (VECTOR_EXTRA_BYTES if vector else 0)


@dataclass
class NativeFunction:
    name: str
    nparams: int
    nregs: int
    code: list                     # list of (op, dst, a, b, vector)
    returns_value: bool = False


@dataclass
class NativeProgram:
    name: str = "program"
    functions: dict = field(default_factory=dict)
    memory_bytes: int = 0
    data: list = field(default_factory=list)   # (offset, bytes)
    meta: dict = field(default_factory=dict)


@dataclass
class NativeStats(EngineStats):
    """Shared :class:`~repro.engine.stats.EngineStats` protocol plus the
    native machine's captured stdout."""

    prints: list = field(default_factory=list)


def program_byte_size(program):
    """Code size in bytes (the Fig. 6 metric)."""
    total = 64  # ELF-ish header/fixed overhead
    for fn in program.functions.values():
        for op, _d, _a, _b, vector in fn.code:
            total += _byte_size(op, vector)
    return total


def program_code_unit(program):
    """The program as a :class:`~repro.engine.compilemodel.CodeUnit`
    (static opclass census + byte size), so an ahead-of-time compile can
    be priced by a modeled compiler."""
    from repro.engine.compilemodel import CodeUnit, normalize_telemetry
    counts = [0] * (max(OpClass) + 1)
    total_ops = 0
    for fn in program.functions.values():
        for op, _d, _a, _b, _vector in fn.code:
            counts[N_OP_CLASS[op]] += 1
            total_ops += 1
    return CodeUnit(
        name=program.name,
        static_instrs=total_ops,
        code_bytes=program_byte_size(program),
        functions=len(program.functions),
        opclass_counts=tuple(counts),
        pass_telemetry=normalize_telemetry(
            program.meta.get("pass_telemetry", ())))


class _Machine:
    def __init__(self, program, max_instructions=None, compile_model=None):
        self.program = program
        self.memory = bytearray(program.memory_bytes)
        for offset, data in program.data:
            self.memory[offset:offset + len(data)] = data
        self.stats = NativeStats()
        if compile_model is not None:
            # Native code is compiled ahead of time: one charge for the
            # whole program, priced by the model (no tiering).
            self.stats.compile_cycles += \
                compile_model.compile_cycles(program_code_unit(program))
        self.budget = max_instructions
        self._fast = _threaded.fast_interp_enabled()
        self._codegen_on = _codegen.codegen_enabled()
        self._profile = new_profile("native")
        #: id(fn) → ThreadedFunction; translations pre-bind this machine's
        #: stats/memory, so the cache is per machine.  Keyed by id because
        #: NativeFunction is an (unhashable) dataclass; the program keeps
        #: every function alive, so ids are stable for the machine's life.
        #: ``_codegen`` caches the generated runners the same way.
        self._threaded = {}
        self._codegen = {}

    def call(self, name, *args):
        fn = self.program.functions[name]
        return self._run(fn, list(args))

    def _run(self, fn, args):
        # Frame entry (the deopt resume goes through _run_from directly,
        # so a deopted frame is not double-counted).
        if self._profile is not None:
            self._profile.call(fn.name)
        if self._fast:
            if self._codegen_on:
                cg = self._codegen.get(id(fn))
                if cg is None:
                    cg = _codegen.translate(fn, self) or _codegen.DECLINED
                    self._codegen[id(fn)] = cg
                if cg is not _codegen.DECLINED:
                    return cg(args)
            tf = self._threaded.get(id(fn))
            if tf is None:
                tf = _threaded.translate(fn, self)
                self._threaded[id(fn)] = tf
            return _threaded.run(self, tf, args)
        regs = [0] * fn.nregs
        regs[:len(args)] = args
        return self._run_from(fn, regs, 0)

    def _run_from(self, fn, regs, pc, cycles=0.0, instret=0):
        """Reference interpreter loop — the differential oracle for the
        threaded tier.  Resumable mid-frame: the threaded tier deopts here
        (with its pending unflushed accumulators) when the instruction
        budget cannot cover a whole block."""
        import struct as _s
        code = fn.code
        n = len(code)
        stats = self.stats
        mem = self.memory
        klass = N_OP_CLASS
        counts = stats.op_counts
        prof = self._profile
        fprof = prof.frame(fn.name) if prof is not None else None
        try:
            while pc < n:
                op, dst, a, b, vector = code[pc]
                cycles += N_COST[op] * (VECTOR_COST_FACTOR if vector
                                        else 1.0)
                counts[klass[op]] += 1
                instret += 1
                if fprof is not None:
                    # int() flattens the NOp enum so profile keys pickle
                    # and stringify as plain integers.
                    key = int(op) + (256 if vector else 0)
                    fprof[key] = fprof.get(key, 0) + 1
                if self.budget is not None:
                    self.budget -= 1
                    if self.budget < 0:
                        raise TrapError("instruction budget exhausted")
                pc += 1
                if op == NOp.MOVI:
                    regs[dst] = a
                elif op == NOp.MOV:
                    regs[dst] = regs[a]
                elif op == NOp.ADD32:
                    regs[dst] = _w32(regs[a] + regs[b])
                elif op == NOp.SUB32:
                    regs[dst] = _w32(regs[a] - regs[b])
                elif op == NOp.MUL32:
                    regs[dst] = _w32(regs[a] * regs[b])
                elif op == NOp.FADD:
                    regs[dst] = regs[a] + regs[b]
                elif op == NOp.FSUB:
                    regs[dst] = regs[a] - regs[b]
                elif op == NOp.FMUL:
                    regs[dst] = regs[a] * regs[b]
                elif op == NOp.FDIV:
                    x, y = regs[a], regs[b]
                    if y == 0.0:
                        regs[dst] = (math.nan if x == 0.0 or x != x else
                                     math.copysign(math.inf, x) *
                                     math.copysign(1.0, y))
                    else:
                        regs[dst] = x / y
                elif op == NOp.JZ:
                    if not regs[a]:
                        pc = dst
                elif op == NOp.JNZ:
                    if regs[a]:
                        pc = dst
                elif op == NOp.JMP:
                    pc = dst
                elif op == NOp.LOADF:
                    regs[dst] = _s.unpack_from("<d", mem, regs[a] + b)[0]
                elif op == NOp.STOREF:
                    _s.pack_into("<d", mem, regs[a] + b, regs[dst])
                elif op == NOp.LOAD32:
                    regs[dst] = _s.unpack_from("<i", mem, regs[a] + b)[0]
                elif op == NOp.STORE32:
                    _s.pack_into("<I", mem, regs[a] + b,
                                 regs[dst] & _MASK32)
                elif op == NOp.LOAD64:
                    regs[dst] = _s.unpack_from("<q", mem, regs[a] + b)[0]
                elif op == NOp.STORE64:
                    _s.pack_into("<Q", mem, regs[a] + b,
                                 regs[dst] & _MASK64)
                elif op == NOp.LOAD8U:
                    regs[dst] = mem[regs[a] + b]
                elif op == NOp.LOAD8S:
                    v = mem[regs[a] + b]
                    regs[dst] = v - 256 if v >= 128 else v
                elif op == NOp.LOAD16U:
                    addr = regs[a] + b
                    regs[dst] = mem[addr] | (mem[addr + 1] << 8)
                elif op == NOp.STORE8:
                    mem[regs[a] + b] = regs[dst] & 0xFF
                elif op == NOp.STORE16:
                    addr = regs[a] + b
                    v = regs[dst] & 0xFFFF
                    mem[addr] = v & 0xFF
                    mem[addr + 1] = v >> 8
                elif NOp.EQ32 <= op <= NOp.FGE:
                    x, y = regs[a], regs[b]
                    regs[dst] = 1 if _compare(op, x, y) else 0
                elif op == NOp.DIVS32 or op == NOp.DIVS64:
                    x, y = regs[a], regs[b]
                    if y == 0:
                        raise TrapError("integer divide by zero")
                    q = abs(x) // abs(y)
                    q = q if (x < 0) == (y < 0) else -q
                    regs[dst] = _w32(q) if op == NOp.DIVS32 else _w64(q)
                elif op == NOp.DIVU32:
                    y = regs[b] & _MASK32
                    if y == 0:
                        raise TrapError("integer divide by zero")
                    regs[dst] = _w32((regs[a] & _MASK32) // y)
                elif op == NOp.DIVU64:
                    y = regs[b] & _MASK64
                    if y == 0:
                        raise TrapError("integer divide by zero")
                    regs[dst] = _w64((regs[a] & _MASK64) // y)
                elif op == NOp.REMS32 or op == NOp.REMS64:
                    x, y = regs[a], regs[b]
                    if y == 0:
                        raise TrapError("integer divide by zero")
                    r = abs(x) % abs(y)
                    regs[dst] = -r if x < 0 else r
                elif op == NOp.REMU32:
                    y = regs[b] & _MASK32
                    if y == 0:
                        raise TrapError("integer divide by zero")
                    regs[dst] = _w32((regs[a] & _MASK32) % y)
                elif op == NOp.REMU64:
                    y = regs[b] & _MASK64
                    if y == 0:
                        raise TrapError("integer divide by zero")
                    regs[dst] = _w64((regs[a] & _MASK64) % y)
                elif op == NOp.AND32:
                    regs[dst] = _w32(regs[a] & regs[b])
                elif op == NOp.OR32:
                    regs[dst] = _w32(regs[a] | regs[b])
                elif op == NOp.XOR32:
                    regs[dst] = _w32(regs[a] ^ regs[b])
                elif op == NOp.SHL32:
                    regs[dst] = _w32(regs[a] << (regs[b] & 31))
                elif op == NOp.SHRS32:
                    regs[dst] = regs[a] >> (regs[b] & 31)
                elif op == NOp.SHRU32:
                    regs[dst] = _w32((regs[a] & _MASK32) >> (regs[b] & 31))
                elif op == NOp.ADD64:
                    regs[dst] = _w64(regs[a] + regs[b])
                elif op == NOp.SUB64:
                    regs[dst] = _w64(regs[a] - regs[b])
                elif op == NOp.MUL64:
                    regs[dst] = _w64(regs[a] * regs[b])
                elif op == NOp.AND64:
                    regs[dst] = _w64(regs[a] & regs[b])
                elif op == NOp.OR64:
                    regs[dst] = _w64(regs[a] | regs[b])
                elif op == NOp.XOR64:
                    regs[dst] = _w64(regs[a] ^ regs[b])
                elif op == NOp.SHL64:
                    regs[dst] = _w64(regs[a] << (regs[b] & 63))
                elif op == NOp.SHRS64:
                    regs[dst] = regs[a] >> (regs[b] & 63)
                elif op == NOp.SHRU64:
                    regs[dst] = _w64((regs[a] & _MASK64) >> (regs[b] & 63))
                elif op == NOp.NEG32:
                    regs[dst] = _w32(-regs[a])
                elif op == NOp.NEG64:
                    regs[dst] = _w64(-regs[a])
                elif op == NOp.NOT32 or op == NOp.NOT64:
                    regs[dst] = 1 if regs[a] == 0 else 0
                elif op == NOp.BNOT32:
                    regs[dst] = _w32(~regs[a])
                elif op == NOp.BNOT64:
                    regs[dst] = _w64(~regs[a])
                elif op == NOp.FSQRT:
                    v = regs[a]
                    regs[dst] = math.nan if v < 0 else math.sqrt(v)
                elif op == NOp.FABS:
                    regs[dst] = abs(regs[a])
                elif op == NOp.FNEG:
                    regs[dst] = -regs[a]
                elif op == NOp.FFLOOR:
                    regs[dst] = float(math.floor(regs[a]))
                elif op == NOp.FCEIL:
                    regs[dst] = float(math.ceil(regs[a]))
                elif op == NOp.I2F_S32 or op == NOp.I2F_S64:
                    regs[dst] = float(regs[a])
                elif op == NOp.I2F_U32:
                    regs[dst] = float(regs[a] & _MASK32)
                elif op == NOp.F2I32:
                    v = regs[a]
                    # Same boundary semantics as the Wasm VM's
                    # i32.trunc_f64_s: valid iff trunc(v) fits i32, so
                    # doubles down to (but excluding) -2^31 - 1 convert.
                    if v != v or v >= 2147483648.0 or v <= -2147483649.0:
                        raise TrapError("invalid f64→i32 conversion")
                    regs[dst] = int(v)
                elif op == NOp.F2I64:
                    v = regs[a]
                    # -2^63 is representable and valid; only the upper
                    # bound is exclusive (mirrors i64.trunc_f64_s).
                    if v != v or v >= 9223372036854775808.0 \
                            or v < -9223372036854775808.0:
                        raise TrapError("invalid f64→i64 conversion")
                    regs[dst] = int(v)
                elif op == NOp.SX32TO64:
                    regs[dst] = regs[a]
                elif op == NOp.ZX32TO64:
                    regs[dst] = regs[a] & _MASK32
                elif op == NOp.TRUNC64TO32:
                    regs[dst] = _w32(regs[a])
                elif op == NOp.CALL:
                    name, arg_regs = a
                    callee = self.program.functions[name]
                    stats.cycles += cycles
                    stats.instructions += instret
                    cycles = 0.0
                    instret = 0
                    result = self._run(callee, [regs[r] for r in arg_regs])
                    if dst >= 0:
                        regs[dst] = result
                elif op == NOp.HOSTCALL:
                    name, arg_regs = a
                    result = self._host(name, [regs[r] for r in arg_regs])
                    if dst >= 0:
                        regs[dst] = result
                elif op == NOp.SELECT:
                    cond_reg, then_reg, else_reg = a
                    regs[dst] = regs[then_reg] if regs[cond_reg] \
                        else regs[else_reg]
                elif op == NOp.RETV:
                    stats.cycles += cycles
                    stats.instructions += instret
                    return regs[a]
                elif op == NOp.RET:
                    break
                else:
                    raise TrapError(f"unimplemented native op {op}")
        finally:
            if instret:
                stats.cycles += cycles
                stats.instructions += instret
        return None

    def _host(self, name, args):
        self.stats.host_calls += 1
        if name.startswith("__print"):
            self.stats.prints.append(args[0])
            return 0
        # libm runs at home on x86: HOSTCALL's op cost already covers it.
        return native_libm(name)(*args)


def _compare(op, x, y):
    if op in (NOp.EQ32, NOp.EQ64, NOp.FEQ):
        return x == y
    if op in (NOp.NE32, NOp.NE64, NOp.FNE):
        return x != y
    if op in (NOp.LTS32, NOp.LTS64, NOp.FLT):
        return x < y
    if op in (NOp.LES32, NOp.LES64, NOp.FLE):
        return x <= y
    if op in (NOp.GTS32, NOp.GTS64, NOp.FGT):
        return x > y
    if op in (NOp.GES32, NOp.GES64, NOp.FGE):
        return x >= y
    if op == NOp.LTU32:
        return (x & _MASK32) < (y & _MASK32)
    if op == NOp.LEU32:
        return (x & _MASK32) <= (y & _MASK32)
    if op == NOp.GTU32:
        return (x & _MASK32) > (y & _MASK32)
    if op == NOp.GEU32:
        return (x & _MASK32) >= (y & _MASK32)
    if op == NOp.LTU64:
        return (x & _MASK64) < (y & _MASK64)
    if op == NOp.LEU64:
        return (x & _MASK64) <= (y & _MASK64)
    if op == NOp.GTU64:
        return (x & _MASK64) > (y & _MASK64)
    if op == NOp.GEU64:
        return (x & _MASK64) >= (y & _MASK64)
    raise TrapError(f"bad comparison op {op}")


def execute_program(program, entry="main", args=(), max_instructions=None,
                    compile_model=None):
    """Run a native program; returns (result, NativeStats).

    ``compile_model`` (a :class:`~repro.engine.compilemodel.
    CompilerModel`) charges the ahead-of-time compile of the whole
    program into ``stats.compile_cycles``; ``None`` keeps the legacy
    free-compile accounting."""
    machine = _Machine(program, max_instructions,
                       compile_model=compile_model)
    result = machine.call(entry, *args)
    return result, machine.stats


# Bound at the bottom to break the cycle: the threaded tier imports this
# module's tables (N_COST, NOp, ...) at its top.
from repro.native import threaded as _threaded  # noqa: E402
from repro.native import codegen as _codegen    # noqa: E402
