"""Threaded-code execution tier for the native register machine.

Exactness rules (see :mod:`repro.engine.threaded`) as they apply here:

* **Cycles self-charge per op.**  Vector-marked instructions are charged
  ``N_COST[op] * VECTOR_COST_FACTOR`` (0.29 — not dyadic), so per-block
  float batching would reorder the sum; every handler adds its own
  pre-bound constant in the reference's left-fold order instead.  The
  integer counters (``instructions``, ``op_counts``, budget) batch per
  block with rewinds on trap-capable handlers.
* **The RETV double-flush is intentional.**  The reference ``RETV`` arm
  flushes the frame-local accumulators and returns *without zeroing
  them*, so the ``finally`` flush runs a second time.  The threaded
  terminator and trampoline reproduce both flushes in the same order —
  bit for bit, including the duplicated float addition.
* **Budget deopt.**  ``machine.budget`` is shared across frames and
  decremented per instruction by the reference.  A block entered with
  fewer budget units than instructions hands the frame to the reference
  ladder (resumed at the block's start pc with the pending unflushed
  cycle/instret accumulators), which traps at the exact instruction with
  the exact partial stats.
"""

from __future__ import annotations

import math
import struct as _struct

from repro.engine.threaded import (
    class_deltas, fast_interp_enabled, match_tail, split_blocks,
)
from repro.errors import TrapError
from repro.obs import SCHED, get_registry
from repro.native.machine import (
    N_COST, N_OP_CLASS, NOp, VECTOR_COST_FACTOR, _w32, _w64,
)

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

_UNPACK_D = _struct.Struct("<d").unpack_from
_UNPACK_I = _struct.Struct("<i").unpack_from
_UNPACK_Q = _struct.Struct("<q").unpack_from
_PACK_D = _struct.Struct("<d").pack_into
_PACK_I = _struct.Struct("<I").pack_into
_PACK_Q = _struct.Struct("<Q").pack_into

_TERM_OPS = frozenset((88, 89, 90, 91, 92, 93))   # JMP JZ JNZ CALL RET RETV
_BRANCHES = frozenset((88, 89, 90))


def _div_s32(x, y):
    if y == 0:
        raise TrapError("integer divide by zero")
    q = abs(x) // abs(y)
    return _w32(q if (x < 0) == (y < 0) else -q)


def _div_s64(x, y):
    if y == 0:
        raise TrapError("integer divide by zero")
    q = abs(x) // abs(y)
    return _w64(q if (x < 0) == (y < 0) else -q)


def _div_u32(x, y):
    y &= _MASK32
    if y == 0:
        raise TrapError("integer divide by zero")
    return _w32((x & _MASK32) // y)


def _div_u64(x, y):
    y &= _MASK64
    if y == 0:
        raise TrapError("integer divide by zero")
    return _w64((x & _MASK64) // y)


def _rem_s(x, y):
    if y == 0:
        raise TrapError("integer divide by zero")
    r = abs(x) % abs(y)
    return -r if x < 0 else r


def _rem_u32(x, y):
    y &= _MASK32
    if y == 0:
        raise TrapError("integer divide by zero")
    return _w32((x & _MASK32) % y)


def _rem_u64(x, y):
    y &= _MASK64
    if y == 0:
        raise TrapError("integer divide by zero")
    return _w64((x & _MASK64) % y)


def _fdiv(x, y):
    if y == 0.0:
        if x == 0.0 or x != x:
            return math.nan
        return math.copysign(math.inf, x) * math.copysign(1.0, y)
    return x / y


def _f2i32(v):
    if v != v or v >= 2147483648.0 or v <= -2147483649.0:
        raise TrapError("invalid f64→i32 conversion")
    return int(v)


def _f2i64(v):
    if v != v or v >= 9223372036854775808.0 or v < -9223372036854775808.0:
        raise TrapError("invalid f64→i64 conversion")
    return int(v)


#: Pure binary value functions (comparisons return 1/0 as stored).
_BINVAL = {
    2: lambda x, y: _w32(x + y),
    3: lambda x, y: _w32(x - y),
    4: lambda x, y: _w32(x * y),
    9: lambda x, y: _w32(x & y),
    10: lambda x, y: _w32(x | y),
    11: lambda x, y: _w32(x ^ y),
    12: lambda x, y: _w32(x << (y & 31)),
    13: lambda x, y: x >> (y & 31),
    14: lambda x, y: _w32((x & _MASK32) >> (y & 31)),
    18: lambda x, y: _w64(x + y),
    19: lambda x, y: _w64(x - y),
    20: lambda x, y: _w64(x * y),
    25: lambda x, y: _w64(x & y),
    26: lambda x, y: _w64(x | y),
    27: lambda x, y: _w64(x ^ y),
    28: lambda x, y: _w64(x << (y & 63)),
    29: lambda x, y: x >> (y & 63),
    30: lambda x, y: _w64((x & _MASK64) >> (y & 63)),
    60: lambda x, y: x + y,
    61: lambda x, y: x - y,
    62: lambda x, y: x * y,
    63: _fdiv,
}

#: Comparison truth functions for EQ32..FGE (34..59).
_CMPVAL = {
    NOp.EQ32: lambda x, y: x == y,
    NOp.NE32: lambda x, y: x != y,
    NOp.LTS32: lambda x, y: x < y,
    NOp.LTU32: lambda x, y: (x & _MASK32) < (y & _MASK32),
    NOp.LES32: lambda x, y: x <= y,
    NOp.LEU32: lambda x, y: (x & _MASK32) <= (y & _MASK32),
    NOp.GTS32: lambda x, y: x > y,
    NOp.GTU32: lambda x, y: (x & _MASK32) > (y & _MASK32),
    NOp.GES32: lambda x, y: x >= y,
    NOp.GEU32: lambda x, y: (x & _MASK32) >= (y & _MASK32),
    NOp.EQ64: lambda x, y: x == y,
    NOp.NE64: lambda x, y: x != y,
    NOp.LTS64: lambda x, y: x < y,
    NOp.LTU64: lambda x, y: (x & _MASK64) < (y & _MASK64),
    NOp.LES64: lambda x, y: x <= y,
    NOp.LEU64: lambda x, y: (x & _MASK64) <= (y & _MASK64),
    NOp.GTS64: lambda x, y: x > y,
    NOp.GTU64: lambda x, y: (x & _MASK64) > (y & _MASK64),
    NOp.GES64: lambda x, y: x >= y,
    NOp.GEU64: lambda x, y: (x & _MASK64) >= (y & _MASK64),
    NOp.FEQ: lambda x, y: x == y,
    NOp.FNE: lambda x, y: x != y,
    NOp.FLT: lambda x, y: x < y,
    NOp.FLE: lambda x, y: x <= y,
    NOp.FGT: lambda x, y: x > y,
    NOp.FGE: lambda x, y: x >= y,
}
_CMPVAL = {int(k): v for k, v in _CMPVAL.items()}

_TRAP_BINVAL = {
    5: _div_s32, 6: _div_u32, 7: _rem_s, 8: _rem_u32,
    21: _div_s64, 22: _div_u64, 23: _rem_s, 24: _rem_u64,
}

#: Pure unary value functions.
_UNVAL = {
    15: lambda v: _w32(-v),
    16: lambda v: 1 if v == 0 else 0,
    17: lambda v: _w32(~v),
    31: lambda v: _w64(-v),
    32: lambda v: _w64(~v),
    33: lambda v: 1 if v == 0 else 0,
    64: lambda v: math.nan if v < 0 else math.sqrt(v),
    65: abs,
    66: lambda v: -v,
    69: float,
    70: lambda v: float(v & _MASK32),
    71: float,
    74: lambda v: v,
    75: lambda v: v & _MASK32,
    76: _w32,
}

_TRAP_UNVAL = {
    67: lambda v: float(math.floor(v)),
    68: lambda v: float(math.ceil(v)),
    72: _f2i32,
    73: _f2i64,
}

_LOADS = frozenset(range(77, 83))
_STORES = frozenset(range(83, 88))

SUPPORTED_OPS = (set(_BINVAL) | set(_CMPVAL) | set(_TRAP_BINVAL)
                 | set(_UNVAL) | set(_TRAP_UNVAL) | set(_LOADS)
                 | set(_STORES) | set(_TERM_OPS) | {0, 1, 94, 95})


def _build_tail_patterns():
    tails = []
    for br in (89, 90):                   # JZ / JNZ
        for cmp_op in _CMPVAL:
            tails.append(((cmp_op, br), (cmp_op, br)))
    return tails


_TAIL_PATTERNS = _build_tail_patterns()


class _Block:
    __slots__ = ("start", "n", "deltas", "op_deltas", "seq", "term")

    def __init__(self, start, n, deltas, op_deltas, seq, term):
        self.start = start
        self.n = n
        self.deltas = deltas
        self.op_deltas = op_deltas    # sparse (key, count) — profiler;
        self.seq = seq                # keys carry the vector bit (bit 8)
        self.term = term


class ThreadedFunction:
    __slots__ = ("fn", "blocks", "nregs", "budget_mode")

    def __init__(self, fn, blocks, nregs, budget_mode):
        self.fn = fn
        self.blocks = blocks
        self.nregs = nregs
        self.budget_mode = budget_mode


def translate(fn, machine):
    code = fn.code
    n = len(code)
    for pc, instr in enumerate(code):
        if instr[0] not in SUPPORTED_OPS:
            raise TrapError(
                f"{fn.name}: unimplemented native op {instr[0]} at pc {pc} "
                f"(threaded tier has no handler)")

    leaders = {0}
    for pc, instr in enumerate(code):
        op = instr[0]
        if op in _TERM_OPS:
            leaders.add(pc + 1)
            if op in _BRANCHES:
                leaders.add(instr[1])    # dst carries the jump target
    ranges = split_blocks(n, leaders)
    block_index = {start: bi for bi, (start, _end) in enumerate(ranges)}

    def bi_of(pc):
        return -1 if pc >= n else block_index[pc]

    stats = machine.stats
    counts = stats.op_counts
    mem = machine.memory
    functions = machine.program.functions
    budget_mode = machine.budget is not None

    blocks = []
    handler_total = 0
    fusion_wins = 0
    for start, end in ranges:
        ops = code[start:end]
        blk_n = len(ops)
        classes = [int(N_OP_CLASS[instr[0]]) for instr in ops]
        deltas = class_deltas(classes)
        op_deltas = class_deltas(
            [int(instr[0]) + (256 if instr[4] else 0) for instr in ops])
        charges = [N_COST[instr[0]] * (VECTOR_COST_FACTOR if instr[4]
                                       else 1.0) for instr in ops]
        nbi = bi_of(end)

        def make_rewind(idx):
            """Integer rewind: the cycle stream is self-charged, so only
            the block-batched instret / op-class / budget charges for the
            instructions after ``idx`` are subtracted."""
            n_sfx = blk_n - (idx + 1)
            delta_sfx = class_deltas(classes[idx + 1:])
            if budget_mode:
                def rewind(acc):
                    acc[1] -= n_sfx
                    for ci, d in delta_sfx:
                        counts[ci] -= d
                    machine.budget += n_sfx
            else:
                def rewind(acc):
                    acc[1] -= n_sfx
                    for ci, d in delta_sfx:
                        counts[ci] -= d
            return rewind

        def single(instr, idx):
            op, dst, a, b, _vector = instr
            c = charges[idx]
            if op == 0:       # MOVI
                def h(regs, acc, c=c, d=dst, k=a):
                    acc[0] += c
                    regs[d] = k
                return h
            if op == 1:       # MOV
                def h(regs, acc, c=c, d=dst, a=a):
                    acc[0] += c
                    regs[d] = regs[a]
                return h
            if op == 60:      # FADD
                def h(regs, acc, c=c, d=dst, a=a, b=b):
                    acc[0] += c
                    regs[d] = regs[a] + regs[b]
                return h
            if op == 62:      # FMUL
                def h(regs, acc, c=c, d=dst, a=a, b=b):
                    acc[0] += c
                    regs[d] = regs[a] * regs[b]
                return h
            if op in _CMPVAL:
                def h(regs, acc, c=c, f=_CMPVAL[op], d=dst, a=a, b=b):
                    acc[0] += c
                    regs[d] = 1 if f(regs[a], regs[b]) else 0
                return h
            if op in _BINVAL:
                def h(regs, acc, c=c, f=_BINVAL[op], d=dst, a=a, b=b):
                    acc[0] += c
                    regs[d] = f(regs[a], regs[b])
                return h
            if op in _TRAP_BINVAL:
                rw = make_rewind(idx)

                def h(regs, acc, c=c, f=_TRAP_BINVAL[op], d=dst, a=a, b=b,
                      rw=rw):
                    acc[0] += c
                    try:
                        regs[d] = f(regs[a], regs[b])
                    except BaseException:
                        rw(acc)
                        raise
                return h
            if op in _UNVAL:
                def h(regs, acc, c=c, f=_UNVAL[op], d=dst, a=a):
                    acc[0] += c
                    regs[d] = f(regs[a])
                return h
            if op in _TRAP_UNVAL:
                rw = make_rewind(idx)

                def h(regs, acc, c=c, f=_TRAP_UNVAL[op], d=dst, a=a,
                      rw=rw):
                    acc[0] += c
                    try:
                        regs[d] = f(regs[a])
                    except BaseException:
                        rw(acc)
                        raise
                return h
            if op in _LOADS or op in _STORES:
                rw = make_rewind(idx)
                if op == 82:      # LOADF
                    def body(regs, d=dst, a=a, b=b):
                        regs[d] = _UNPACK_D(mem, regs[a] + b)[0]
                elif op == 80:    # LOAD32
                    def body(regs, d=dst, a=a, b=b):
                        regs[d] = _UNPACK_I(mem, regs[a] + b)[0]
                elif op == 81:    # LOAD64
                    def body(regs, d=dst, a=a, b=b):
                        regs[d] = _UNPACK_Q(mem, regs[a] + b)[0]
                elif op == 77:    # LOAD8U
                    def body(regs, d=dst, a=a, b=b):
                        regs[d] = mem[regs[a] + b]
                elif op == 78:    # LOAD8S
                    def body(regs, d=dst, a=a, b=b):
                        v = mem[regs[a] + b]
                        regs[d] = v - 256 if v >= 128 else v
                elif op == 79:    # LOAD16U
                    def body(regs, d=dst, a=a, b=b):
                        addr = regs[a] + b
                        regs[d] = mem[addr] | (mem[addr + 1] << 8)
                elif op == 87:    # STOREF
                    def body(regs, d=dst, a=a, b=b):
                        _PACK_D(mem, regs[a] + b, regs[d])
                elif op == 85:    # STORE32
                    def body(regs, d=dst, a=a, b=b):
                        _PACK_I(mem, regs[a] + b, regs[d] & _MASK32)
                elif op == 86:    # STORE64
                    def body(regs, d=dst, a=a, b=b):
                        _PACK_Q(mem, regs[a] + b, regs[d] & _MASK64)
                elif op == 83:    # STORE8
                    def body(regs, d=dst, a=a, b=b):
                        mem[regs[a] + b] = regs[d] & 0xFF
                else:             # 84: STORE16
                    def body(regs, d=dst, a=a, b=b):
                        addr = regs[a] + b
                        v = regs[d] & 0xFFFF
                        mem[addr] = v & 0xFF
                        mem[addr + 1] = v >> 8

                def h(regs, acc, c=c, body=body, rw=rw):
                    acc[0] += c
                    try:
                        body(regs)
                    except BaseException:
                        rw(acc)
                        raise
                return h
            if op == 94:      # HOSTCALL
                rw = make_rewind(idx)
                name, arg_regs = a

                def h(regs, acc, c=c, name=name, arg_regs=arg_regs,
                      d=dst, rw=rw):
                    acc[0] += c
                    try:
                        result = machine._host(
                            name, [regs[r] for r in arg_regs])
                    except BaseException:
                        rw(acc)
                        raise
                    if d >= 0:
                        regs[d] = result
                return h
            if op == 95:      # SELECT
                cond_reg, then_reg, else_reg = a

                def h(regs, acc, c=c, d=dst, cr=cond_reg, tr=then_reg,
                      er=else_reg):
                    acc[0] += c
                    regs[d] = regs[tr] if regs[cr] else regs[er]
                return h
            raise TrapError(
                f"{fn.name}: unimplemented native op {op} (threaded tier)")

        def make_term(instr):
            op, dst, a, _b, _vector = instr
            c = charges[blk_n - 1]
            if op == 88:      # JMP
                tbi = bi_of(dst)

                def term(regs, acc, c=c, tbi=tbi):
                    acc[0] += c
                    return tbi
                return term
            if op in (89, 90):  # JZ / JNZ
                tbi = bi_of(dst)
                jump_if = op == 90

                def term(regs, acc, c=c, a=a, tbi=tbi, nbi=nbi,
                         jump_if=jump_if):
                    acc[0] += c
                    if bool(regs[a]) == jump_if:
                        return tbi
                    return nbi
                return term
            if op == 91:      # CALL
                name, arg_regs = a
                callee = functions[name]

                def term(regs, acc, c=c, callee=callee, arg_regs=arg_regs,
                         d=dst, nbi=nbi):
                    acc[0] += c
                    stats.cycles += acc[0]
                    stats.instructions += acc[1]
                    acc[0] = 0.0
                    acc[1] = 0
                    result = machine._run(callee,
                                          [regs[r] for r in arg_regs])
                    if d >= 0:
                        regs[d] = result
                    return nbi
                return term
            if op == 93:      # RETV: flush WITHOUT zeroing — the
                # trampoline's finally flushes a second time, replicating
                # the reference ladder's double-count to the bit.
                def term(regs, acc, c=c, a=a):
                    acc[0] += c
                    stats.cycles += acc[0]
                    stats.instructions += acc[1]
                    acc[2] = regs[a]
                    return -1
                return term
            # RET
            def term(regs, acc, c=c):
                acc[0] += c
                return -1
            return term

        has_term = bool(ops) and ops[-1][0] in _TERM_OPS
        body_ops = ops[:-1] if has_term else ops
        term = None
        if has_term and ops[-1][0] in (89, 90) and blk_n >= 2:
            hit = match_tail(ops, lambda o: o[0], _TAIL_PATTERNS)
            if hit is not None:
                cmp_instr = ops[-2]
                br_instr = ops[-1]
                # Fuse only when the branch tests the compare's result
                # register; the result is still written (it may be live).
                if br_instr[2] == cmp_instr[1]:
                    f = _CMPVAL[cmp_instr[0]]
                    c1 = charges[blk_n - 2]
                    c2 = charges[blk_n - 1]
                    tbi = bi_of(br_instr[1])
                    jump_if = br_instr[0] == 90
                    d, x, y = cmp_instr[1], cmp_instr[2], cmp_instr[3]

                    def term(regs, acc, c1=c1, c2=c2, f=f, d=d, x=x, y=y,
                             tbi=tbi, nbi=nbi, jump_if=jump_if):
                        t = acc[0]
                        t += c1
                        t += c2
                        acc[0] = t
                        v = 1 if f(regs[x], regs[y]) else 0
                        regs[d] = v
                        if bool(v) == jump_if:
                            return tbi
                        return nbi
                    body_ops = ops[:-2]
        if term is None:
            if has_term:
                term = make_term(ops[-1])
            else:
                def term(regs, acc, nbi=nbi):
                    return nbi

        seq = []
        for i, instr in enumerate(body_ops):
            seq.append(single(instr, i))
        handler_total += len(seq)
        fusion_wins += blk_n - (1 if has_term else 0) - len(body_ops)
        blocks.append(_Block(start, blk_n, deltas, op_deltas, seq, term))

    reg = get_registry()
    reg.counter_add("interp.native.translated_functions", 1, SCHED)
    reg.counter_add("interp.native.translated_blocks", len(blocks), SCHED)
    reg.counter_add("interp.native.handlers", handler_total, SCHED)
    reg.counter_add("interp.native.fused_superinstructions", fusion_wins,
                    SCHED)
    return ThreadedFunction(fn, blocks, fn.nregs, budget_mode)


def run(machine, tf, args):
    """Execute a translated frame; observationally identical to the
    reference ``_Machine._run_from`` including its flush quirks."""
    regs = [0] * tf.nregs
    regs[:len(args)] = args
    stats = machine.stats
    counts = stats.op_counts
    blocks = tf.blocks
    budget_mode = tf.budget_mode
    acc = [0.0, 0, None]
    prof = machine._profile
    fprof = prof.frame(tf.fn.name) if prof is not None else None
    bi = 0 if blocks else -1
    try:
        while bi >= 0:
            blk = blocks[bi]
            if budget_mode:
                r = machine.budget
                if r < blk.n:
                    # Deopt: hand the frame (with pending unflushed
                    # accumulators) to the reference ladder, which charges
                    # op-by-op and traps at the exact instruction.
                    get_registry().counter_add("interp.native.deopts", 1,
                                               SCHED)
                    pending_cycles = acc[0]
                    pending_instret = acc[1]
                    acc[0] = 0.0
                    acc[1] = 0
                    return machine._run_from(tf.fn, regs, blk.start,
                                             pending_cycles,
                                             pending_instret)
                machine.budget = r - blk.n
            acc[1] += blk.n
            for ci, d in blk.deltas:
                counts[ci] += d
            if fprof is not None:
                for key, d in blk.op_deltas:
                    fprof[key] = fprof.get(key, 0) + d
            for h in blk.seq:
                h(regs, acc)
            bi = blk.term(regs, acc)
    finally:
        if acc[1]:
            stats.cycles += acc[0]
            stats.instructions += acc[1]
    return acc[2]
