"""Codegen execution tier for the native register machine.

Emits each function's threaded-code basic blocks as generated Python:
registers become locals ``r0..rN``, the frame accumulators become locals
``cyc``/``ic``, and dispatch is the same resumable ``bi`` if-chain the
Wasm translator uses.  The exactness rules of the threaded tier
(:mod:`repro.native.threaded`) map onto emitted source directly:

* **Cycles self-charge per op** — every op emits its own ``cyc += c``
  statement with the pre-scaled charge (``N_COST[op] *
  VECTOR_COST_FACTOR`` for vector-marked instructions) as a literal, so
  the float sum associates in the reference's left-fold order.  The
  integer counters batch per block with literal rewind statements inside
  each trap guard.
* **The RETV double-flush is intentional** — the ``RETV`` arm flushes
  ``cyc``/``ic`` without zeroing and returns through the ``finally``
  flush, duplicating the float addition bit-for-bit like the reference
  and threaded tiers.
* **Budget deopt** — a block entered with fewer budget units than
  instructions materialises the register locals back into a list and
  resumes the reference ladder mid-frame with the pending unflushed
  accumulators.

Registers make this translator simpler than the Wasm one: there is no
stack-depth analysis and therefore nothing to decline — every supported
function translates.
"""

from __future__ import annotations

import math as _math

from repro.engine.codegen import (
    DECLINED, Emitter, codegen_enabled, literal, load_factory, unit_key,
)
from repro.engine.threaded import class_deltas, split_blocks
from repro.errors import TrapError
from repro.obs import SCHED, get_registry
from repro.native import threaded as _thr
from repro.native.machine import (
    N_COST, N_OP_CLASS, VECTOR_COST_FACTOR,
)

__all__ = ["codegen_enabled", "translate", "DECLINED"]

_M32 = "4294967295"
_S32 = "2147483648"
_W32 = "4294967296"
_M64 = "18446744073709551615"
_S64 = "9223372036854775808"
_W64 = "18446744073709551616"

#: Comparison operator source per op (unsigned ones add masks below).
_CMP_OPS = {34: "==", 35: "!=", 36: "<", 38: "<=", 40: ">", 42: ">=",
            44: "==", 45: "!=", 46: "<", 48: "<=", 50: ">", 52: ">=",
            54: "==", 55: "!=", 56: "<", 57: "<=", 58: ">", 59: ">="}
_CMP_U32 = {37: "<", 39: "<=", 41: ">", 43: ">="}
_CMP_U64 = {47: "<", 49: "<=", 51: ">", 53: ">="}

_I32_WRAP = {2: "+", 3: "-", 4: "*", 9: "&", 10: "|", 11: "^"}
_I64_WRAP = {18: "+", 19: "-", 20: "*", 25: "&", 26: "|", 27: "^"}
_F_ARITH = {60: "+", 61: "-", 62: "*"}


class _FnEmitter:
    def __init__(self, fn, code, ranges, block_index, budget_mode,
                 profiling):
        self.fn = fn
        self.code = code
        self.ranges = ranges
        self.block_index = block_index
        self.budget_mode = budget_mode
        self.profiling = profiling
        self.names = set()
        self.callees = {}        # call-target name -> cf_{i} local
        #: Per-block op-class/profiler deltas, flushed lazily in the
        #: ``finally`` (see ``emit_flush``): ``{bi: (classes, prof)}``.
        self.block_counts = {}
        self.out = Emitter()

    def use(self, name):
        self.names.add(name)
        return name

    def callee(self, name):
        local = self.callees.get(name)
        if local is None:
            local = self.callees[name] = f"cf_{len(self.callees)}"
        return local

    def bi_of(self, pc):
        return -1 if pc >= len(self.code) else self.block_index[pc]

    def emit_jump(self, tbi, fall_bi=None):
        if tbi == -1:
            self.out.emit("return None")
        elif tbi == fall_bi:
            self.out.emit(f"bi = {tbi}")
        else:
            self.out.emit(f"bi = {tbi}")
            self.out.emit("continue")

    def emit_rewind(self, classes, idx):
        """Integer rewind: cycles self-charge, so only the block-batched
        instret / op-class / budget suffix is subtracted."""
        n_sfx = len(classes) - (idx + 1)
        if n_sfx:
            self.out.emit(f"ic -= {n_sfx}")
        for ci, d in class_deltas(classes[idx + 1:]):
            self.out.emit(f"{self.use('counts')}[{ci}] -= {d}")
        if self.budget_mode and n_sfx:
            self.out.emit(f"{self.use('machine')}.budget += {n_sfx}")

    def emit_flush(self):
        """Apply the per-block op-class counters accumulated by the
        dispatch loop; runs once in the ``finally``."""
        out = self.out
        for bi in sorted(self.block_counts):
            deltas, prof = self.block_counts[bi]
            if not deltas and not prof:
                continue
            out.emit(f"if nb{bi}:")
            with out.block():
                for ci, dc in deltas:
                    mul = f"nb{bi}" if dc == 1 else f"{dc} * nb{bi}"
                    out.emit(f"{self.use('counts')}[{ci}] += {mul}")
                for key, dc in prof:
                    mul = f"nb{bi}" if dc == 1 else f"{dc} * nb{bi}"
                    out.emit(f"fprof[{key}] = fprof.get({key}, 0) + {mul}")

    def guarded(self, body_lines, classes, idx):
        self.out.emit("try:")
        with self.out.block():
            for line in body_lines:
                self.out.emit(line)
        self.out.emit("except BaseException:")
        with self.out.block():
            self.emit_rewind(classes, idx)
            self.out.emit("raise")

    def emit_op(self, instr, classes, idx):
        op, dst, a, b, _vector = instr
        op = int(op)
        out = self.out
        d, ra, rb = f"r{dst}", f"r{a}", f"r{b}"
        if op == 0:                       # MOVI
            out.emit(f"{d} = {literal(a)}")
            return
        if op == 1:                       # MOV
            out.emit(f"{d} = {ra}")
            return
        if op in _I32_WRAP:
            out.emit(f"t_ = ({ra} {_I32_WRAP[op]} {rb}) & {_M32}")
            out.emit(f"{d} = t_ - {_W32} if t_ & {_S32} else t_")
            return
        if op in _I64_WRAP:
            out.emit(f"t_ = ({ra} {_I64_WRAP[op]} {rb}) & {_M64}")
            out.emit(f"{d} = t_ - {_W64} if t_ & {_S64} else t_")
            return
        if op in _F_ARITH:
            out.emit(f"{d} = {ra} {_F_ARITH[op]} {rb}")
            return
        if op == 63:                      # FDIV
            out.emit(f"{d} = {self.use('fdiv')}({ra}, {rb})")
            return
        if op == 12:                      # SHL32
            out.emit(f"t_ = ({ra} << ({rb} & 31)) & {_M32}")
            out.emit(f"{d} = t_ - {_W32} if t_ & {_S32} else t_")
            return
        if op == 13:                      # SHRS32
            out.emit(f"{d} = {ra} >> ({rb} & 31)")
            return
        if op == 14:                      # SHRU32
            out.emit(f"t_ = (({ra} & {_M32}) >> ({rb} & 31)) & {_M32}")
            out.emit(f"{d} = t_ - {_W32} if t_ & {_S32} else t_")
            return
        if op == 28:                      # SHL64
            out.emit(f"t_ = ({ra} << ({rb} & 63)) & {_M64}")
            out.emit(f"{d} = t_ - {_W64} if t_ & {_S64} else t_")
            return
        if op == 29:                      # SHRS64
            out.emit(f"{d} = {ra} >> ({rb} & 63)")
            return
        if op == 30:                      # SHRU64
            out.emit(f"t_ = (({ra} & {_M64}) >> ({rb} & 63)) & {_M64}")
            out.emit(f"{d} = t_ - {_W64} if t_ & {_S64} else t_")
            return
        if op in _CMP_OPS:
            out.emit(f"{d} = 1 if {ra} {_CMP_OPS[op]} {rb} else 0")
            return
        if op in _CMP_U32:
            out.emit(f"{d} = 1 if ({ra} & {_M32}) {_CMP_U32[op]} "
                     f"({rb} & {_M32}) else 0")
            return
        if op in _CMP_U64:
            out.emit(f"{d} = 1 if ({ra} & {_M64}) {_CMP_U64[op]} "
                     f"({rb} & {_M64}) else 0")
            return
        if op in _thr._TRAP_BINVAL:
            self.guarded([f"{d} = {self.use(f'vf{op}')}({ra}, {rb})"],
                         classes, idx)
            return
        if op in (15, 17):                # NEG32 / BNOT32
            expr = f"-{ra}" if op == 15 else f"~{ra}"
            out.emit(f"t_ = ({expr}) & {_M32}")
            out.emit(f"{d} = t_ - {_W32} if t_ & {_S32} else t_")
            return
        if op in (31, 32):                # NEG64 / BNOT64
            expr = f"-{ra}" if op == 31 else f"~{ra}"
            out.emit(f"t_ = ({expr}) & {_M64}")
            out.emit(f"{d} = t_ - {_W64} if t_ & {_S64} else t_")
            return
        if op in (16, 33):                # NOT32 / NOT64
            out.emit(f"{d} = 1 if {ra} == 0 else 0")
            return
        if op == 64:                      # FSQRT
            out.emit(f"{d} = {self.use('nan')} if {ra} < 0 "
                     f"else {self.use('sqrt')}({ra})")
            return
        if op == 65:
            out.emit(f"{d} = abs({ra})")
            return
        if op == 66:
            out.emit(f"{d} = -{ra}")
            return
        if op in (69, 71):                # I2F_S32 / I2F_S64
            out.emit(f"{d} = float({ra})")
            return
        if op == 70:                      # I2F_U32
            out.emit(f"{d} = float({ra} & {_M32})")
            return
        if op == 74:                      # SX32TO64
            out.emit(f"{d} = {ra}")
            return
        if op == 75:                      # ZX32TO64
            out.emit(f"{d} = {ra} & {_M32}")
            return
        if op == 76:                      # TRUNC64TO32
            out.emit(f"t_ = {ra} & {_M32}")
            out.emit(f"{d} = t_ - {_W32} if t_ & {_S32} else t_")
            return
        if op in _thr._TRAP_UNVAL:
            self.guarded([f"{d} = {self.use(f'vf{op}')}({ra})"],
                         classes, idx)
            return
        if op in _thr._LOADS:
            addr = f"{ra} + {b}" if b else ra
            if op == 82:
                body = [f"{d} = {self.use('u_d')}({self.use('mem')}, "
                        f"{addr})[0]"]
            elif op == 80:
                body = [f"{d} = {self.use('u_i')}({self.use('mem')}, "
                        f"{addr})[0]"]
            elif op == 81:
                body = [f"{d} = {self.use('u_q')}({self.use('mem')}, "
                        f"{addr})[0]"]
            elif op == 77:
                body = [f"{d} = {self.use('mem')}[{addr}]"]
            elif op == 78:
                body = [f"t_ = {self.use('mem')}[{addr}]",
                        f"{d} = t_ - 256 if t_ >= 128 else t_"]
            else:                         # 79: LOAD16U
                body = [f"a_ = {addr}",
                        f"{d} = {self.use('mem')}[a_] | "
                        f"({self.use('mem')}[a_ + 1] << 8)"]
            self.guarded(body, classes, idx)
            return
        if op in _thr._STORES:
            addr = f"{ra} + {b}" if b else ra
            if op == 87:
                body = [f"{self.use('p_d')}({self.use('mem')}, {addr}, "
                        f"{d})"]
            elif op == 85:
                body = [f"{self.use('p_i')}({self.use('mem')}, {addr}, "
                        f"{d} & {_M32})"]
            elif op == 86:
                body = [f"{self.use('p_q')}({self.use('mem')}, {addr}, "
                        f"{d} & {_M64})"]
            elif op == 83:
                body = [f"{self.use('mem')}[{addr}] = {d} & 255"]
            else:                         # 84: STORE16
                body = [f"a_ = {addr}",
                        f"t_ = {d} & 65535",
                        f"{self.use('mem')}[a_] = t_ & 255",
                        f"{self.use('mem')}[a_ + 1] = t_ >> 8"]
            self.guarded(body, classes, idx)
            return
        if op == 94:                      # HOSTCALL
            name, arg_regs = a
            arg_list = ", ".join(f"r{r}" for r in arg_regs)
            self.guarded([f"t_ = {self.use('host')}({name!r}, "
                          f"[{arg_list}])"], classes, idx)
            if dst >= 0:
                out.emit(f"{d} = t_")
            return
        if op == 95:                      # SELECT
            cr, tr, er = a
            out.emit(f"{d} = r{tr} if r{cr} else r{er}")
            return
        raise TrapError(
            f"{self.fn.name}: unimplemented native op {op} (codegen tier)")

    def emit_term(self, instr, charge, bi, fall_bi):
        op, dst, a, _b, _vector = instr
        op = int(op)
        out = self.out
        out.emit(f"cyc += {literal(charge)}")
        if op == 88:                      # JMP
            self.emit_jump(self.bi_of(dst), fall_bi=fall_bi)
        elif op in (89, 90):              # JZ / JNZ
            cond = f"r{a}" if op == 90 else f"not r{a}"
            out.emit(f"if {cond}:")
            with out.block():
                self.emit_jump(self.bi_of(dst))
            self.emit_jump(fall_bi, fall_bi=bi + 1)
        elif op == 91:                    # CALL: flush, zero, recurse
            name, arg_regs = a
            out.emit(f"{self.use('stats')}.cycles += cyc")
            out.emit("stats.instructions += ic")
            out.emit("cyc = 0.0")
            out.emit("ic = 0")
            arg_list = ", ".join(f"r{r}" for r in arg_regs)
            target = self.use(self.callee(name))
            call = f"{self.use('run_')}({target}, [{arg_list}])"
            if dst >= 0:
                out.emit(f"r{dst} = {call}")
            else:
                out.emit(call)
            self.emit_jump(fall_bi, fall_bi=bi + 1)
        elif op == 93:                    # RETV: flush WITHOUT zeroing —
            # the finally flush runs again (reference double-count).
            out.emit(f"{self.use('stats')}.cycles += cyc")
            out.emit("stats.instructions += ic")
            out.emit(f"return r{a}")
        else:                             # 92: RET
            out.emit("return None")

    def emit_block(self, bi):
        out = self.out
        start, end = self.ranges[bi]
        ops = self.code[start:end]
        classes = [int(N_OP_CLASS[int(i[0])]) for i in ops]
        charges = [N_COST[int(i[0])] * (VECTOR_COST_FACTOR if i[4]
                                        else 1.0) for i in ops]
        out.emit(f"if bi == {bi}:")
        with out.block():
            if self.budget_mode:
                out.emit(f"r_ = {self.use('machine')}.budget")
                out.emit(f"if r_ < {len(ops)}:")
                with out.block():
                    out.emit(f"{self.use('deopt')}()")
                    out.emit("_pc = cyc")
                    out.emit("_pi = ic")
                    out.emit("cyc = 0.0")
                    out.emit("ic = 0")
                    regs = ", ".join(f"r{i}" for i in
                                     range(self.fn.nregs))
                    out.emit(f"return {self.use('run_from')}"
                             f"({self.use('fn')}, [{regs}], {start}, "
                             f"_pc, _pi)")
                out.emit(f"machine.budget = r_ - {len(ops)}")
            if ops:
                # Op-class counters accumulate in a per-block local and
                # flush in the ``finally`` — integer adds commute, so the
                # totals match the eager per-block batching at every
                # externally observable point (guards rewind the engine
                # counters directly; ``ic`` stays eager because the CALL
                # and RETV flushes hand it to the reference quirks).
                out.emit(f"ic += {len(ops)}")
                out.emit(f"nb{bi} += 1")
                keys = [int(i[0]) + (256 if i[4] else 0) for i in ops]
                self.block_counts[bi] = (
                    list(class_deltas(classes)),
                    list(class_deltas(keys)) if self.profiling else [])
            has_term = bool(ops) and int(ops[-1][0]) in _thr._TERM_OPS
            body = ops[:-1] if has_term else ops
            for idx, instr in enumerate(body):
                out.emit(f"cyc += {literal(charges[idx])}")
                self.emit_op(instr, classes, idx)
            if has_term:
                self.emit_term(ops[-1], charges[-1], bi, self.bi_of(end))
            else:
                self.emit_jump(self.bi_of(end), fall_bi=bi + 1)

    def build(self):
        out = self.out
        body = Emitter()
        self.out = body
        with body.block():
            with body.block():
                body.emit("_n = len(args)")
                for i in range(self.fn.nregs):
                    body.emit(f"r{i} = args[{i}] if {i} < _n else 0")
                body.emit("cyc = 0.0")
                body.emit("ic = 0")
                if self.profiling:
                    body.emit(f"fprof = {self.use('prof_frame')}"
                              f"({self.use('fn_name')})")
                if not self.ranges:
                    body.emit("return None")
                else:
                    live = [bi for bi, (start, end)
                            in enumerate(self.ranges) if end > start]
                    if live:
                        body.emit(" = ".join(
                            f"nb{bi}" for bi in live) + " = 0")
                    body.emit("try:")
                    with body.block():
                        body.emit("bi = 0")
                        body.emit("while True:")
                        with body.block():
                            for bi in range(len(self.ranges)):
                                self.emit_block(bi)
                            body.emit("raise AssertionError"
                                      "('codegen: lost dispatch')")
                    body.emit("finally:")
                    with body.block():
                        body.emit("if ic:")
                        with body.block():
                            body.emit(f"{self.use('stats')}.cycles += cyc")
                            body.emit("stats.instructions += ic")
                        self.emit_flush()
        self.out = out
        out.emit("def make(ns):")
        with out.block():
            for name in sorted(self.names):
                if name.startswith("cf_"):
                    continue
                out.emit(f"{name} = ns[{name!r}]")
            for cname, local in sorted(self.callees.items()):
                out.emit(f"{local} = ns['callees'][{cname!r}]")
            out.emit("def run(args):")
            out.lines.extend(body.lines)
            out.emit("return run")
        return out.source()


def translate(fn, machine):
    """Build (or load warm) the generated runner for one native function
    on one machine.  Registers need no static analysis, so the native
    translator never declines."""
    code = fn.code
    for pc, instr in enumerate(code):
        if int(instr[0]) not in _thr.SUPPORTED_OPS:
            raise TrapError(
                f"{fn.name}: unimplemented native op {instr[0]} at pc "
                f"{pc} (codegen tier has no handler)")

    for instr in code:
        if int(instr[0]) == 0 and not isinstance(
                instr[2], (int, float, str, bytes, bool, type(None))):
            # A MOVI immediate the source emitter cannot literalise:
            # decline to the threaded tier rather than fail mid-build.
            get_registry().counter_add("interp.native.codegen_declined",
                                       1, SCHED)
            return None

    leaders = {0}
    for pc, instr in enumerate(code):
        op = int(instr[0])
        if op in _thr._TERM_OPS:
            leaders.add(pc + 1)
            if op in _thr._BRANCHES:
                leaders.add(instr[1])
    ranges = split_blocks(len(code), leaders)
    block_index = {start: bi for bi, (start, _end) in enumerate(ranges)}

    budget_mode = machine.budget is not None
    profiling = machine._profile is not None
    key = unit_key("native", (
        repr(code), fn.nregs, budget_mode, profiling))

    def build_source():
        emitter = _FnEmitter(fn, code, ranges, block_index, budget_mode,
                             profiling)
        return emitter.build()

    factory = load_factory("native", key, build_source)

    functions = machine.program.functions
    ns = {
        "machine": machine, "stats": machine.stats,
        "counts": machine.stats.op_counts, "mem": machine.memory,
        "fn": fn, "fn_name": fn.name, "run_from": machine._run_from,
        "run_": machine._run, "host": machine._host,
        "nan": float("nan"),
        "u_d": _thr._UNPACK_D, "u_i": _thr._UNPACK_I,
        "u_q": _thr._UNPACK_Q, "p_d": _thr._PACK_D,
        "p_i": _thr._PACK_I, "p_q": _thr._PACK_Q,
        "fdiv": _thr._fdiv,
        "deopt": lambda: get_registry().counter_add(
            "interp.native.codegen_deopts", 1, SCHED),
        "callees": {name: functions[name] for name in functions},
    }
    ns["sqrt"] = _math.sqrt
    if machine._profile is not None:
        ns["prof_frame"] = machine._profile.frame
    for op, f in _thr._TRAP_BINVAL.items():
        ns[f"vf{op}"] = f
    for op, f in _thr._TRAP_UNVAL.items():
        ns[f"vf{op}"] = f

    reg = get_registry()
    reg.counter_add("interp.native.codegen_functions", 1, SCHED)
    reg.counter_add("interp.native.codegen_blocks", len(ranges), SCHED)
    return factory(ns)
