"""Measurement harness: HTML page construction, timer instrumentation,
the page runner that executes compiled artifacts under a browser profile +
platform and collects DevTools metrics (§3.3–3.4), and the fault-tolerant
process-parallel experiment scheduler."""

from repro.harness.page import HtmlPage
from repro.harness.measurement import Measurement
from repro.harness.parallel import (
    CELL_TIMEOUT_ENV,
    CellFailure,
    FAULT_INJECT_ENV,
    FaultPlan,
    JOBS_ENV,
    RETRIES_ENV,
    SweepResult,
    default_cell_timeout,
    default_jobs,
    default_retries,
    parallel_map,
    run_sweep,
)
from repro.harness.runner import PageRunner, install_c_host

__all__ = ["CELL_TIMEOUT_ENV", "CellFailure", "FAULT_INJECT_ENV",
           "FaultPlan", "HtmlPage", "JOBS_ENV", "Measurement", "PageRunner",
           "RETRIES_ENV", "SweepResult", "default_cell_timeout",
           "default_jobs", "default_retries", "install_c_host",
           "parallel_map", "run_sweep"]
