"""Measurement harness: HTML page construction, timer instrumentation,
the page runner that executes compiled artifacts under a browser profile +
platform and collects DevTools metrics (§3.3–3.4), and the process-parallel
experiment scheduler."""

from repro.harness.page import HtmlPage
from repro.harness.measurement import Measurement
from repro.harness.parallel import JOBS_ENV, default_jobs, parallel_map
from repro.harness.runner import PageRunner, install_c_host

__all__ = ["HtmlPage", "JOBS_ENV", "Measurement", "PageRunner",
           "default_jobs", "install_c_host", "parallel_map"]
