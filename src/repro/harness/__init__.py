"""Measurement harness: HTML page construction, timer instrumentation,
and the page runner that executes compiled artifacts under a browser
profile + platform and collects DevTools metrics (§3.3–3.4)."""

from repro.harness.page import HtmlPage
from repro.harness.measurement import Measurement
from repro.harness.runner import PageRunner, install_c_host

__all__ = ["HtmlPage", "Measurement", "PageRunner", "install_c_host"]
