"""Process-parallel experiment scheduler.

The benchmark × configuration grid is embarrassingly parallel: every
(benchmark, toolchain, opt level, input size, browser profile) cell
compiles and measures independently, and the engines are deterministic, so
fanning the grid out across worker processes must — and does — produce
results identical to serial execution.  :func:`parallel_map` is the
primitive: an order-preserving map that dispatches to a
``multiprocessing`` pool when more than one job is requested and degrades
to a plain serial loop otherwise (``REPRO_JOBS=1``).

Determinism contract:

* results come back in input order (``Pool.map`` preserves ordering
  regardless of completion order), so merged dicts iterate exactly as the
  serial loop would insert them;
* workers share the persistent compile cache on disk — writes are atomic
  and idempotent, so racing workers at worst duplicate a compile;
* worker callables must be module-level (picklable); per-item chunking
  keeps the longest-running benchmark from serialising a whole chunk.
"""

from __future__ import annotations

import multiprocessing
import os

#: Environment variable selecting the worker count.  Unset: one worker per
#: CPU.  ``REPRO_JOBS=1``: serial execution in the calling process.
JOBS_ENV = "REPRO_JOBS"


def default_jobs():
    """Worker count from ``REPRO_JOBS``, else the CPU count."""
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def _pool_context():
    # fork is the cheap path (workers inherit the imported package and the
    # warm in-memory caches); fall back to spawn where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def parallel_map(fn, items, jobs=None):
    """Order-preserving ``[fn(item) for item in items]``, fanned out over
    ``jobs`` worker processes when ``jobs > 1``.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one) when the parallel path is taken.
    """
    items = list(items)
    if jobs is None:
        jobs = default_jobs()
    jobs = min(jobs, len(items))
    if jobs <= 1:
        return [fn(item) for item in items]
    with _pool_context().Pool(processes=jobs) as pool:
        return pool.map(fn, items, chunksize=1)
