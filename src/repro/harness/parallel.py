"""Fault-tolerant process-parallel experiment scheduler.

The benchmark × configuration grid is embarrassingly parallel: every
(benchmark, toolchain, opt level, input size, browser profile) cell
compiles and measures independently, and the engines are deterministic, so
fanning the grid out across worker processes must — and does — produce
results identical to serial execution.

A production sweep serving the full 41-benchmark grid cannot afford the
old ``Pool.map`` failure mode, where one crashed or hung worker aborted
the whole map and discarded every completed cell.  :func:`run_sweep` is
the primitive now: an order-preserving map that

* captures per-cell exceptions into structured :class:`CellFailure`
  records (label, error, traceback, attempt count) instead of
  propagating them;
* retries failed attempts up to ``REPRO_RETRIES`` times with a bounded,
  deterministic exponential backoff — the backoff sleeps happen in the
  scheduler between dispatches, never inside a measured cell, so results
  are unaffected by wall-clock timing;
* enforces a per-cell timeout (``REPRO_CELL_TIMEOUT``) on the parallel
  path by killing the hung worker process and spawning a replacement
  (serial in-process execution cannot kill itself; timeouts need
  ``jobs >= 2``);
* degrades gracefully: the returned :class:`SweepResult` merges all
  successful results in input order and carries the failure report.

:func:`parallel_map` keeps the strict list-of-results contract on top:
it raises :class:`~repro.errors.SweepError` — which still carries the
partial results — if any cell ultimately fails.

Determinism contract (unchanged from the ``Pool.map`` era):

* results come back in input order regardless of completion order, so
  merged dicts iterate exactly as the serial loop would insert them;
* workers share the persistent compile cache on disk — writes are atomic
  and idempotent, so racing workers at worst duplicate a compile;
* worker callables must be module-level (picklable); cells are dispatched
  one at a time so the longest-running benchmark never serialises a
  whole chunk.

Fault injection: a :class:`FaultPlan` (or the ``REPRO_FAULT_INJECT``
environment variable) deterministically crashes, hangs, or flakes
specific cells by label so tests and operational drills can assert the
scheduler's recovery behavior without patching benchmark code.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mpc

from repro.errors import SweepError
from repro.obs import (
    SCHED, TraceContext, emit, emit_span, events_enabled, get_registry,
    trace_span,
)

#: Environment variable selecting the worker count.  Unset: one worker per
#: CPU.  ``REPRO_JOBS=1``: serial execution in the calling process.
JOBS_ENV = "REPRO_JOBS"

#: Environment variable selecting how many times a failed cell is retried
#: before it is reported as a :class:`CellFailure`.  Default: 1.
RETRIES_ENV = "REPRO_RETRIES"

#: Environment variable bounding one cell attempt, in seconds (float).
#: Unset or ``0``: no timeout.  Enforced on the parallel path only.
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: Environment variable carrying a :class:`FaultPlan` spec, e.g.
#: ``gemm=crash;SHA=flake:2;lu=hang:1``.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

#: Deterministic backoff schedule: ``base`` seconds doubled per failed
#: attempt, capped at ``cap``.
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 1.0

#: An injected hang sleeps this long per nap so a killed worker dies
#: promptly; after ``_HANG_TOTAL_S`` the hang gives up and crashes instead
#: (a guard against hanging forever when no cell timeout is armed).
_HANG_NAP_S = 0.05
_HANG_TOTAL_S = 3600.0


def default_jobs():
    """Worker count from ``REPRO_JOBS``, else the CPU count."""
    env = os.environ.get(JOBS_ENV, "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


def default_retries():
    """Retry budget per cell from ``REPRO_RETRIES``, else 1."""
    env = os.environ.get(RETRIES_ENV, "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return 1


def default_cell_timeout():
    """Per-cell timeout in seconds from ``REPRO_CELL_TIMEOUT``, else
    ``None`` (no timeout)."""
    env = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
    if env:
        try:
            seconds = float(env)
            return seconds if seconds > 0 else None
        except ValueError:
            pass
    return None


def backoff_delay(attempt, base=BACKOFF_BASE_S, cap=BACKOFF_CAP_S):
    """Seconds to wait before re-dispatching after failed ``attempt``
    (1-based).  Purely a function of the attempt number, so retry timing
    is reproducible."""
    return min(cap, base * (2 ** (attempt - 1)))


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


class InjectedFault(RuntimeError):
    """The exception raised inside a worker by :class:`FaultPlan` (tests
    and operational fault drills)."""


class FaultPlan:
    """Deterministic per-cell fault injection.

    A plan maps cell *labels* (benchmark names in experiment sweeps,
    stringified indices by default) to directives:

    ``crash[:N]``
        raise :class:`InjectedFault` on every attempt (or the first ``N``).
    ``flake[:N]``
        crash the first ``N`` attempts (default 1), then succeed — the
        transient failure the retry path exists for.
    ``hang[:N]``
        sleep until the cell timeout kills the worker (attempts beyond
        ``N`` run normally; no ``N`` means every attempt hangs).

    The same syntax, joined with ``;`` or ``,``, is accepted from the
    ``REPRO_FAULT_INJECT`` environment variable:
    ``gemm=crash;SHA=flake:2;lu=hang:1``.
    """

    KINDS = ("crash", "flake", "hang")

    def __init__(self, spec=None):
        self.directives = {}
        if spec is None:
            return
        if isinstance(spec, str):
            pairs = [chunk for piece in spec.replace(",", ";").split(";")
                     if (chunk := piece.strip())]
            spec_items = []
            for chunk in pairs:
                if "=" not in chunk:
                    raise ValueError(
                        f"bad fault directive {chunk!r}: expected "
                        "label=kind[:count]")
                label, directive = chunk.split("=", 1)
                spec_items.append((label.strip(), directive.strip()))
        else:
            spec_items = list(spec.items())
        for label, directive in spec_items:
            self.directives[str(label)] = self._parse(directive)

    @staticmethod
    def _parse(directive):
        kind, _, count = str(directive).partition(":")
        kind = kind.strip().lower()
        if kind not in FaultPlan.KINDS:
            raise ValueError(f"bad fault kind {kind!r}: expected one of "
                             f"{FaultPlan.KINDS}")
        if count:
            attempts = int(count)
            if attempts < 1:
                raise ValueError(f"bad fault count in {directive!r}")
        else:
            attempts = 1 if kind == "flake" else None
        return (kind, attempts)

    @classmethod
    def from_env(cls):
        """The plan armed via ``REPRO_FAULT_INJECT``, or ``None``."""
        spec = os.environ.get(FAULT_INJECT_ENV, "").strip()
        return cls(spec) if spec else None

    def spec(self):
        """Canonical string form (used to ship the plan to workers)."""
        return ";".join(
            f"{label}={kind}" + (f":{count}" if count is not None else "")
            for label, (kind, count) in sorted(self.directives.items()))

    def __bool__(self):
        return bool(self.directives)

    def apply(self, label, attempt):
        """Inject the configured fault for ``label`` at ``attempt``
        (1-based), if any.  Called in the worker before the cell runs."""
        directive = self.directives.get(label)
        if directive is None:
            return
        kind, count = directive
        if count is not None and attempt > count:
            return
        if kind == "hang":
            naps = int(_HANG_TOTAL_S / _HANG_NAP_S)
            for _ in range(naps):
                time.sleep(_HANG_NAP_S)
        raise InjectedFault(
            f"injected {kind} for cell {label!r} (attempt {attempt})")


# ---------------------------------------------------------------------------
# Failure records and sweep results
# ---------------------------------------------------------------------------


@dataclass
class CellFailure:
    """One cell that exhausted its attempts.

    ``kind`` is ``"crash"`` (the cell raised), ``"timeout"`` (the worker
    was killed after ``REPRO_CELL_TIMEOUT``), or ``"lost"`` (the worker
    process died without reporting — e.g. a segfault or ``os._exit``).
    ``context`` is filled in by higher layers (experiment name, params).
    """

    index: int
    label: str
    error: str
    message: str
    traceback: str
    attempts: int
    kind: str = "crash"
    context: dict = field(default_factory=dict)

    def describe(self):
        where = self.context.get("experiment")
        cell = f"{where}/{self.label}" if where else self.label
        return (f"{cell}: {self.error}: {self.message} "
                f"[{self.kind}, {self.attempts} attempt(s)]")


@dataclass
class SweepResult:
    """Outcome of one sweep: ``values`` is aligned with the input items
    (``None`` where the cell failed) and ``failures`` holds one
    :class:`CellFailure` per failed cell, in input order."""

    values: list
    failures: list

    @property
    def ok(self):
        return not self.failures

    def failed_indices(self):
        return {failure.index for failure in self.failures}

    def merged(self):
        """Successful results only, in input order — what a serial loop
        over the surviving cells would have produced."""
        failed = self.failed_indices()
        return [value for index, value in enumerate(self.values)
                if index not in failed]

    def report(self):
        """Human-readable failure report (one line per failed cell)."""
        if not self.failures:
            return f"sweep ok: {len(self.values)} cell(s) completed"
        lines = [f"sweep degraded: {len(self.failures)} of "
                 f"{len(self.values)} cell(s) failed"]
        lines.extend("  " + failure.describe() for failure in self.failures)
        return "\n".join(lines)

    def raise_if_failed(self):
        if self.failures:
            raise SweepError(self)
        return self


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _worker_main(conn, fn, plan_spec):
    """Worker loop: receive ``(index, attempt, label, item, trace)``
    tasks, run them, report ``("ok", index, value, metrics)`` or
    ``("err", index, ...)``.  ``metrics`` is the registry diff the attempt
    produced; the scheduler applies the per-cell diffs in *input* order so
    the merged registry is byte-identical to a serial run.  A failed
    attempt restores the worker's registry to its pre-attempt snapshot, so
    retried flakes leave no metric residue.  ``trace`` is an optional
    :class:`~repro.obs.TraceContext` wire tuple: when present the attempt
    runs inside a ``sched.attempt`` span (activated, so engine phase
    events nest under it) whose deterministic id the scheduler can
    re-derive if it has to kill this worker.  The worker never dies on a
    cell exception — only on EOF/sentinel or when the scheduler kills
    it."""
    plan = FaultPlan(plan_spec) if plan_spec else None
    reg = get_registry()
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, attempt, label, item, trace = task
        ctx = TraceContext.from_wire(trace)
        snap = reg.snapshot()
        try:
            with trace_span("sched.attempt", ctx=ctx, parts=(attempt,),
                            label=label, attempt=attempt):
                if plan is not None:
                    plan.apply(label, attempt)
                value = fn(item)
            message = ("ok", index, value, reg.diff(snap))
        except BaseException as exc:
            reg.restore(snap)
            message = ("err", index, type(exc).__name__, str(exc),
                       traceback.format_exc())
        try:
            conn.send(message)
        except Exception as exc:
            # The value itself failed to pickle: report that as the
            # cell's error rather than silently dying.
            conn.send(("err", index, type(exc).__name__,
                       f"result not sendable: {exc}",
                       traceback.format_exc()))


def _pool_context():
    # fork is the cheap path (workers inherit the imported package and the
    # warm in-memory caches); fall back to spawn where fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class _Worker:
    """One scheduler-owned worker process plus its task pipe."""

    def __init__(self, ctx, fn, plan_spec):
        self.conn, child = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main,
                                   args=(child, fn, plan_spec), daemon=True)
        self.process.start()
        child.close()
        self.task = None           # (index, attempt) while busy
        self.deadline = None       # monotonic kill time while busy
        self.dispatched_ts = None  # epoch time of the in-flight dispatch

    def dispatch(self, index, attempt, label, item, timeout, trace=None):
        self.task = (index, attempt)
        self.deadline = (time.monotonic() + timeout) if timeout else None
        self.dispatched_ts = time.time()
        self.conn.send((index, attempt, label, item,
                        trace.to_wire() if trace is not None else None))

    def kill(self):
        try:
            self.conn.close()
        except OSError:
            pass
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)
        if self.process.is_alive():
            self.process.kill()
            self.process.join(timeout=5)

    def shutdown(self):
        """Polite stop for an idle worker."""
        try:
            self.conn.send(None)
        except (OSError, BrokenPipeError):
            pass
        self.kill()


# ---------------------------------------------------------------------------
# The scheduler
# ---------------------------------------------------------------------------


class _Scheduler:
    def __init__(self, fn, items, labels, jobs, retries, timeout,
                 fault_plan, sleep, on_result=None, traces=None):
        self.fn = fn
        self.on_result = on_result
        self.items = items
        self.labels = labels
        self.traces = traces      # per-cell TraceContext (or None), aligned
        self.jobs = jobs
        self.retries = retries
        self.timeout = timeout
        self.plan_spec = fault_plan.spec() if fault_plan else None
        self.sleep = sleep
        self.values = [None] * len(items)
        self.failures = {}
        self.queue = deque((index, 1) for index in range(len(items)))
        self.backoff = {}  # index -> seconds to wait before re-dispatch
        self.done = 0
        self.metric_payloads = [None] * len(items)
        self.enqueued_at = {}   # index -> monotonic time of (re-)enqueue
        self.start = time.monotonic()

    def run(self):
        ctx = _pool_context()
        workers = [self._spawn(ctx) for _ in range(self.jobs)]
        try:
            while self.done < len(self.items):
                self._dispatch(workers)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    break  # defensive: nothing queued, nothing running
                ready = _mpc.wait([w.conn for w in busy],
                                  timeout=self._wait_timeout(busy))
                for worker in busy:
                    if worker.conn in ready:
                        self._collect(worker, workers, ctx)
                self._reap_timeouts(workers, ctx)
        finally:
            for worker in workers:
                worker.shutdown()
        failures = [self.failures[i] for i in sorted(self.failures)]
        # Merge the workers' metric diffs in *input* order: the resulting
        # registry state is independent of completion order and identical
        # to what the serial path accumulates.
        reg = get_registry()
        for payload in self.metric_payloads:
            if payload is not None:
                reg.apply(payload)
        reg.counter_add("sched.cells", len(self.items), SCHED)
        reg.counter_add("sched.completed",
                        len(self.items) - len(failures), SCHED)
        # Register the retry counter even on clean sweeps so scrapers
        # (the /metrics endpoint) always see it.
        reg.counter_add("sched.retries", 0, SCHED)
        if failures:
            reg.counter_add("sched.failures", len(failures), SCHED)
        return SweepResult(self.values, failures)

    def _spawn(self, ctx):
        return _Worker(ctx, self.fn, self.plan_spec)

    def _trace(self, index):
        return self.traces[index] if self.traces is not None else None

    def _trace_fields(self, index):
        ctx = self._trace(index)
        return ctx.fields() if ctx is not None else {}

    def _dispatch(self, workers):
        for worker in workers:
            if worker.task is None and self.queue:
                index, attempt = self.queue.popleft()
                delay = self.backoff.pop(index, 0.0)
                if delay:
                    self.sleep(delay)
                queued = self.enqueued_at.get(index, self.start)
                wait_ms = (time.monotonic() - queued) * 1000.0
                get_registry().hist_observe("sched.queue_wait_ms", wait_ms,
                                            SCHED)
                if events_enabled():
                    emit("cell_dispatch", label=self.labels[index],
                         index=index, attempt=attempt,
                         worker=worker.process.pid,
                         queue_wait_ms=round(wait_ms, 3),
                         **self._trace_fields(index))
                worker.dispatch(index, attempt, self.labels[index],
                                self.items[index], self.timeout,
                                trace=self._trace(index))

    def _wait_timeout(self, busy):
        if not self.timeout:
            return None
        deadlines = [w.deadline for w in busy if w.deadline is not None]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic())

    def _collect(self, worker, workers, ctx):
        """Consume one message (or the EOF of a dead worker)."""
        index, attempt = worker.task
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # The worker died without reporting (hard crash).  Replace it
            # and account the in-flight attempt as lost.
            started = worker.dispatched_ts or time.time()
            self._replace(worker, workers, ctx)
            self._emit_dead_attempt(index, attempt, started, "lost")
            self._attempt_failed(
                index, attempt, "WorkerDied",
                "worker process died while running this cell", "",
                kind="lost")
            return
        worker.task = None
        worker.deadline = None
        if message[0] == "ok":
            self.values[index] = message[2]
            self.metric_payloads[index] = message[3]
            self.done += 1
            get_registry().hist_observe("sched.attempts", attempt, SCHED)
            if events_enabled():
                emit("cell", label=self.labels[index], index=index,
                     attempts=attempt, outcome="ok",
                     worker=worker.process.pid,
                     **self._trace_fields(index))
            self._notify(index, message[2], None)
        else:
            _tag, _index, error, text, trace = message
            self._attempt_failed(index, attempt, error, text, trace)

    def _emit_dead_attempt(self, index, attempt, started, outcome):
        """The worker running this attempt died (timeout kill or hard
        crash), so its ``sched.attempt`` span never closed.  Ids are
        deterministic, so the scheduler re-derives the same span id the
        worker would have emitted and closes the span on its behalf."""
        cell_ctx = self._trace(index)
        if cell_ctx is None:
            return
        span_ctx = cell_ctx.child("sched.attempt", attempt)
        emit_span(span_ctx, "sched.attempt", started,
                  time.time() - started, outcome=outcome,
                  label=self.labels[index], attempt=attempt)

    def _reap_timeouts(self, workers, ctx):
        if not self.timeout:
            return
        now = time.monotonic()
        for worker in workers:
            if worker.task is None or now < worker.deadline:
                continue
            index, attempt = worker.task
            started = worker.dispatched_ts or time.time()
            self._replace(worker, workers, ctx)
            self._emit_dead_attempt(index, attempt, started, "timeout")
            self._attempt_failed(
                index, attempt, "Timeout",
                f"cell exceeded {self.timeout:g}s; worker killed and "
                "replaced", "", kind="timeout")

    def _replace(self, worker, workers, ctx):
        worker.kill()
        workers[workers.index(worker)] = self._spawn(ctx)

    def _attempt_failed(self, index, attempt, error, text, trace,
                        kind="crash"):
        reg = get_registry()
        if kind == "timeout":
            reg.counter_add("sched.timeouts", 1, SCHED)
        elif kind == "lost":
            reg.counter_add("sched.lost", 1, SCHED)
        if attempt <= self.retries:
            reg.counter_add("sched.retries", 1, SCHED)
            self.backoff[index] = backoff_delay(attempt)
            self.enqueued_at[index] = time.monotonic()
            self.queue.append((index, attempt + 1))
            return
        self.failures[index] = CellFailure(
            index=index, label=self.labels[index], error=error,
            message=text, traceback=trace, attempts=attempt, kind=kind)
        self.done += 1
        reg.hist_observe("sched.attempts", attempt, SCHED)
        if events_enabled():
            emit("cell", label=self.labels[index], index=index,
                 attempts=attempt, outcome=kind, error=error,
                 **self._trace_fields(index))
        self._notify(index, None, self.failures[index])

    def _notify(self, index, value, failure):
        """Per-cell completion callback (see :func:`run_sweep`); a broken
        callback must not take the sweep down with it."""
        if self.on_result is None:
            return
        try:
            self.on_result(index, self.labels[index], value, failure)
        except Exception:
            pass


def _serial_sweep(fn, items, labels, retries, fault_plan, sleep,
                  on_result=None, traces=None):
    """In-process reference path (``jobs=1``).  Same retry/injection
    semantics; per-cell timeouts are not enforced (the scheduler cannot
    kill its own process)."""
    values = [None] * len(items)
    failures = []
    reg = get_registry()

    def notify(index, value, failure):
        if on_result is None:
            return
        try:
            on_result(index, labels[index], value, failure)
        except Exception:
            pass

    def trace_fields(index):
        if traces is None or traces[index] is None:
            return {}
        return traces[index].fields()

    for index, item in enumerate(items):
        cell_ctx = traces[index] if traces is not None else None
        for attempt in range(1, retries + 2):
            # Same metric semantics as the worker path: a failed attempt
            # rolls the registry back, so only completed attempts count.
            snap = reg.snapshot()
            try:
                with trace_span("sched.attempt", ctx=cell_ctx,
                                parts=(attempt,), label=labels[index],
                                attempt=attempt):
                    if fault_plan is not None:
                        fault_plan.apply(labels[index], attempt)
                    values[index] = fn(item)
                reg.hist_observe("sched.attempts", attempt, SCHED)
                if events_enabled():
                    emit("cell", label=labels[index], index=index,
                         attempts=attempt, outcome="ok", worker=os.getpid(),
                         **trace_fields(index))
                notify(index, values[index], None)
                break
            except Exception as exc:
                reg.restore(snap)
                if attempt <= retries:
                    reg.counter_add("sched.retries", 1, SCHED)
                    sleep(backoff_delay(attempt))
                    continue
                failures.append(CellFailure(
                    index=index, label=labels[index],
                    error=type(exc).__name__, message=str(exc),
                    traceback=traceback.format_exc(), attempts=attempt))
                reg.hist_observe("sched.attempts", attempt, SCHED)
                if events_enabled():
                    emit("cell", label=labels[index], index=index,
                         attempts=attempt, outcome="crash",
                         error=type(exc).__name__, **trace_fields(index))
                notify(index, None, failures[-1])
    reg.counter_add("sched.cells", len(items), SCHED)
    reg.counter_add("sched.completed", len(items) - len(failures), SCHED)
    reg.counter_add("sched.retries", 0, SCHED)
    if failures:
        reg.counter_add("sched.failures", len(failures), SCHED)
    return SweepResult(values, failures)


def run_sweep(fn, items, jobs=None, retries=None, timeout=None, labels=None,
              fault_plan=None, sleep=None, on_result=None, traces=None):
    """Fault-tolerant order-preserving map over ``items``.

    Returns a :class:`SweepResult`; never raises for cell failures.
    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one) when the parallel path is taken.
    ``labels`` names the cells for failure reports and fault injection
    (default: the item's index as a string).  ``sleep`` is injectable for
    tests; backoff sleeps only ever run in the scheduler process.

    ``on_result(index, label, value, failure)`` — when given — is called
    in the scheduler process the moment a cell finishes (exhausting its
    retries counts as finishing, with ``failure`` set and ``value``
    ``None``).  The sweep service streams per-cell results to clients
    from this hook instead of waiting for the whole sweep; note the
    cell's worker metrics are only merged into the registry when the
    sweep completes, so the hook must not read cell metrics.  A raising
    callback is ignored.

    ``traces`` — when given — aligns one
    :class:`~repro.obs.TraceContext` (or ``None``) with each item: the
    scheduler stamps the context's ids into the cell lifecycle events
    and every attempt (including retries, timeout kills and lost
    workers) runs as a ``sched.attempt`` child span, shipped to workers
    over the task pipe.  Without ``traces`` the sweep is byte-identical
    to the untraced scheduler.
    """
    items = list(items)
    if labels is None:
        labels = [str(index) for index in range(len(items))]
    else:
        labels = [str(label) for label in labels]
        if len(labels) != len(items):
            raise ValueError("labels must align with items")
    if traces is not None:
        traces = list(traces)
        if len(traces) != len(items):
            raise ValueError("traces must align with items")
    if jobs is None:
        jobs = default_jobs()
    if retries is None:
        retries = default_retries()
    if timeout is None:
        timeout = default_cell_timeout()
    if fault_plan is None:
        fault_plan = FaultPlan.from_env()
    if sleep is None:
        sleep = time.sleep
    if not items:
        return SweepResult([], [])
    requested = jobs
    jobs = min(jobs, len(items))
    # Serial (in-process) execution is the reference path, but it cannot
    # enforce timeouts; when the caller asked for workers *and* a timeout
    # is armed, keep even a one-cell sweep on the worker path.
    if jobs <= 1 and not (timeout and requested > 1):
        return _serial_sweep(fn, items, labels, retries, fault_plan, sleep,
                             on_result, traces)
    return _Scheduler(fn, items, labels, max(jobs, 1), retries, timeout,
                      fault_plan, sleep, on_result, traces).run()


def parallel_map(fn, items, jobs=None):
    """Order-preserving ``[fn(item) for item in items]``, fanned out over
    ``jobs`` worker processes when ``jobs > 1``.

    Strict wrapper over :func:`run_sweep`: if any cell ultimately fails
    (after retries), raises :class:`~repro.errors.SweepError` carrying
    the partial results instead of the bare worker exception.
    """
    return run_sweep(fn, items, jobs=jobs).raise_if_failed().values
