"""Minimal HTML pages (§3.3.1) and timer instrumentation (§3.3.2).

The page is deliberately minimal — one ``<script>`` tag — so renderer
overhead stays a small fixed cost (modelled by the profile's
``page_overhead_cycles``)."""

from __future__ import annotations

from dataclasses import dataclass

#: performance.now() instrumentation wrapped around the program entry
#: (§3.3.2): inserted before the target program starts and after it ends.
_TIMER_SUFFIX = """
var __t0 = performance.now();
{entry}();
var __t1 = performance.now();
__report_time(__t1 - __t0);
"""

#: JS loader that instantiates a Wasm module (§2.2.2: at minimum, Wasm
#: requires JavaScript to instantiate the module).  The runner charges its
#: parse cost and models the instantiate/tier pipeline.
WASM_LOADER_JS = """
var __t0 = performance.now();
WebAssembly.instantiate(__module_bytes, { env: __env }).then(
  function (result) {
    var instance = result.instance;
    instance.exports.{entry}();
    var __t1 = performance.now();
    __report_time(__t1 - __t0);
  });
"""


@dataclass
class HtmlPage:
    """A benchmark page: minimal HTML + one inline script."""

    title: str
    script: str
    kind: str                 # "js" | "wasm-loader"

    @classmethod
    def for_js(cls, compiled_js, entry="main"):
        script = compiled_js.source + _TIMER_SUFFIX.replace(
            "{entry}", entry)
        return cls(title=compiled_js.name, script=script, kind="js")

    @classmethod
    def for_wasm(cls, compiled_wasm, entry="main"):
        script = WASM_LOADER_JS.replace("{entry}", entry)
        return cls(title=compiled_wasm.name, script=script,
                   kind="wasm-loader")

    @property
    def html(self):
        return (
            "<!DOCTYPE html>\n"
            f"<html><head><title>{self.title}</title></head>\n"
            "<body>\n"
            f"<script>\n{self.script}\n</script>\n"
            "</body></html>\n"
        )

    @property
    def byte_size(self):
        return len(self.html.encode("utf-8"))
