"""The page runner: executes compiled Wasm/JS artifacts under a browser
profile on a platform, reproducing the paper's measurement protocol:

* one page per benchmark, fresh browser state per run (``--incognito``);
* five repetitions, averaged (§3.3.2);
* DevTools metrics (execution time, memory) — via adb on mobile (§4).

Both targets run through one ``_run_artifact`` path over an
:class:`~repro.engine.adapter.EngineAdapter`: the runner owns the protocol
(memoization, repetitions, output-equality checks, aggregation) and the
adapters own everything target-specific.  Wasm execution-time composition
models the two-tier pipeline through the shared
:class:`~repro.engine.tiering.TierController`: decode + basic-tier compile
up front, optimizing-tier compile charged when the dynamic instruction
count crosses the tier-up threshold, and per-tier code quality factors
applied to the executed cycles (§4.4).

With ``trace=True`` each measurement also carries a structured
:class:`~repro.engine.trace.ExecutionTrace` (phase timeline with cycle
spans) in ``Measurement.detail["trace"]``; trace runs bypass result
memoization so the timeline always reflects a live execution.
"""

from __future__ import annotations

from repro.cache import cached_result, results_enabled
from repro.engine.adapter import EngineAdapter
from repro.engine.hostlib import install_js_host, wasm_host_imports
from repro.engine.tiering import TierController
from repro.engine.trace import ExecutionTrace
from repro.env.adb import AdbCollector
from repro.errors import MeasurementError, ReproError
from repro.env.devtools import DevTools
from repro.harness.measurement import Measurement
from repro.harness.page import HtmlPage
from repro.jsengine import JsEngine
from repro.wasm import WasmVM

#: Back-compat alias: the host wiring lives in repro.engine.hostlib now.
install_c_host = install_js_host


class _JsPageAdapter(EngineAdapter):
    """Runs Cheerp-generated (or handwritten) JS through the JS engine."""

    target = "js"
    memo_kind = "measure-js"

    def __init__(self, runner):
        self.runner = runner

    def page(self, artifact, entry):
        return HtmlPage.for_js(artifact, entry)

    def run_rep(self, artifact, page, entry, output, trace):
        runner = self.runner
        engine = JsEngine(runner.profile.js,
                          cycles_per_ms=runner.platform.cycles_per_ms)
        if trace is not None:
            engine.trace = trace
        # Resolved through the module global so tests can monkeypatch the
        # shim wiring.
        timings = install_c_host(engine, output)
        engine.load_script(page.script)
        metrics = runner.collector.js_metrics(engine)
        metrics.detail["timer_ms"] = timings[0] if timings else None
        metrics.detail["startup"] = self._startup_detail(engine, runner)
        if engine._profile is not None:
            metrics.detail["profile"] = engine._profile.to_dict()
        if trace is not None:
            self._assemble_trace(trace, engine, runner.profile)
        return metrics

    def finalize(self, result):
        result.detail["timer_ms_per_rep"] = [
            detail["timer_ms"] for detail in result.rep_details]

    @staticmethod
    def _startup_detail(engine, runner):
        """Startup vs steady-state split for one JS run: parse + bytecode
        compile happen before the first result; JIT promotions overlap
        execution."""
        stats = engine.stats
        policy = engine.tiering.policy
        startup_compile = (stats.compile_cycles
                           - stats.tier_up_compile_cycles)
        return {
            "parse_cycles": stats.parse_cycles,
            "startup_compile_cycles": startup_compile,
            "tier_up_compile_cycles": stats.tier_up_compile_cycles,
            "tier_cycles": {policy.basic_name: startup_compile,
                            policy.optimizing_name:
                                stats.tier_up_compile_cycles},
            "ttfr_cycles": (runner.profile.js.startup_cycles
                            + stats.parse_cycles + startup_compile),
            "exec_cycles": stats.cycles,
            "tier_ups": stats.tier_ups,
        }

    @staticmethod
    def _assemble_trace(trace, engine, profile):
        """Decompose the engine accounting into the phase timeline.  The
        tier-up and GC events were emitted live; parse/compile/execute are
        reconstructed from the stats (execute excludes GC pauses, which
        have their own spans)."""
        stats = engine.stats
        tier_up_cycles = sum(e.cycles for e in trace.events
                             if e.phase == "tier-up")
        trace.emit("parse", 0.0, stats.parse_cycles,
                   tokens=stats.tokens_parsed)
        trace.emit("compile", stats.parse_cycles,
                   stats.compile_cycles - tier_up_cycles,
                   tier=engine.tiering.policy.basic_name)
        trace.emit("execute", stats.parse_cycles + stats.compile_cycles,
                   stats.cycles - stats.gc_pause_cycles,
                   ops=stats.instructions)
        trace.emit("page-overhead", engine.total_cycles(),
                   profile.page_overhead_cycles)


class _WasmPageAdapter(EngineAdapter):
    """Runs a compiled Wasm module under the profile's tiering pipeline."""

    target = "wasm"
    memo_kind = "measure-wasm"

    def __init__(self, runner):
        self.runner = runner
        self.module = None
        self.unit = None

    def page(self, artifact, entry):
        return HtmlPage.for_wasm(artifact, entry)

    def setup(self, artifact, page):
        self.module = artifact.module
        # The module's static shape — size, opclass census, recorded pass
        # telemetry — is what the profile's compiler models price.
        telemetry = artifact.meta.get("pass_telemetry") or \
            self.module.meta.get("pass_telemetry", ())
        self.unit = self.module.code_unit(
            binary_size=len(artifact.binary), pass_telemetry=telemetry)

    def run_rep(self, artifact, page, entry, output, trace):
        runner = self.runner
        vm = WasmVM(boundary_cost=runner.profile.wasm.boundary_cost)
        # Resolved through the module global so tests can monkeypatch the
        # shim wiring.
        instance = vm.instantiate(self.module,
                                  wasm_host_imports(output, None))
        instance.invoke(entry)
        cycles, startup = runner._wasm_total_cycles(instance, page,
                                                    self.unit, trace)
        metrics = runner.collector.wasm_metrics(cycles, instance)
        metrics.detail["startup"] = startup
        if instance._profile is not None:
            metrics.detail["profile"] = instance._profile.to_dict()
        return metrics


class PageRunner:
    """Runs compiled artifacts the way the paper runs benchmark pages."""

    def __init__(self, profile, platform, flags=None, repetitions=5,
                 trace=False):
        if flags is not None:
            profile = flags.apply(profile)
        self.profile = profile
        self.platform = platform
        self.repetitions = repetitions
        self.trace = trace
        if platform.kind == "mobile":
            self.collector = AdbCollector(platform, profile)
        else:
            self.collector = DevTools(platform, profile)

    def _measurement_parts(self, artifact, entry, name):
        """Everything a measurement depends on besides the artifact bits:
        the (flag-adjusted) profile, the platform, and the protocol.
        Profiling changes the measurement payload (opclass tables ride
        ``detail``), so it participates in the memo key."""
        from repro.obs import profile_enabled
        return (artifact.cache_key, repr(self.profile), repr(self.platform),
                self.repetitions, entry, name, profile_enabled())

    # -- the unified measurement path ---------------------------------------

    def run_js(self, compiled_js, entry="main", name=None):
        return self._run_artifact(_JsPageAdapter(self), compiled_js, entry,
                                  name)

    def run_wasm(self, compiled_wasm, entry="main", name=None):
        return self._run_artifact(_WasmPageAdapter(self), compiled_wasm,
                                  entry, name)

    def _run_artifact(self, adapter, artifact, entry, name):
        name = name or artifact.name
        if not self.trace and results_enabled() \
                and getattr(artifact, "cache_key", None):
            result = cached_result(
                adapter.memo_kind,
                self._measurement_parts(artifact, entry, name),
                lambda: self._measure(adapter, artifact, entry, name))
        else:
            result = self._measure(adapter, artifact, entry, name)
        self._apply_obs(adapter, result)
        return result

    def _apply_obs(self, adapter, result):
        """Publish the deterministic measurement metrics.  Runs after the
        memo lookup so a warm (memoized) run produces the same DET
        counters as the cold run that populated it."""
        from repro.engine.profdecode import opclass_fractions
        from repro.obs import DET, get_registry
        reg = get_registry()
        reg.counter_add(f"measure.{adapter.target}.runs", 1, DET)
        reg.counter_add(f"measure.{adapter.target}.reps",
                        len(result.times_ms), DET)
        reg.counter_add("measure.time_ms_total", result.time_ms, DET)
        profile = result.detail.get("profile")
        if profile:
            engine = profile["engine"]
            for cls, (count, cycles) in opclass_fractions(profile).items():
                reg.counter_add(f"opclass.{engine}.{cls}.count", count, DET)
                reg.counter_add(f"opclass.{engine}.{cls}.cycles", cycles,
                                DET)
        startup = result.detail.get("startup")
        if startup:
            # Startup metrics replay on warm (memoized) runs exactly like
            # the opclass counters above: the detail dict rides the
            # memoized measurement, and this publish runs post-lookup.
            prefix = f"startup.{adapter.target}"
            for key, value in startup.items():
                if isinstance(value, dict):
                    for tier, cycles in value.items():
                        reg.counter_add(f"{prefix}.tier.{tier}.cycles",
                                        cycles, DET)
                elif isinstance(value, bool):
                    reg.counter_add(f"{prefix}.{key}", int(value), DET)
                else:
                    reg.counter_add(f"{prefix}.{key}", value, DET)

    def _measure(self, adapter, artifact, entry, name):
        try:
            return self._measure_inner(adapter, artifact, entry, name)
        except ReproError as exc:
            # Name the cell so a CellFailure captured by the sweep
            # scheduler pinpoints the benchmark/config without the caller
            # having to thread that context through.
            exc.add_note(
                f"cell: {name}/{adapter.target} under {self.profile.name} "
                f"v{self.profile.version} on {self.platform.name}")
            raise

    def _measure_inner(self, adapter, artifact, entry, name):
        page = adapter.page(artifact, entry)
        result = Measurement(name=name, target=adapter.target,
                             browser=f"{self.profile.name} "
                                     f"v{self.profile.version}",
                             platform=self.platform.name,
                             code_size=artifact.code_size)
        adapter.setup(artifact, page)
        trace = None
        for rep in range(self.repetitions):
            output = []
            rep_trace = (ExecutionTrace(adapter.target) if self.trace
                         else None)
            metrics = adapter.run_rep(artifact, page, entry, output,
                                      rep_trace)
            self._record_repetition(result, rep, metrics, output)
            if rep_trace is not None:
                trace = rep_trace
        adapter.finalize(result)
        if trace is not None:
            result.detail["trace"] = trace.finalize().to_dict()
        return result

    # -- repetition aggregation (§3.3.2) --------------------------------------

    @staticmethod
    def _record_repetition(result, rep, metrics, output):
        """Fold one repetition into the measurement: times are kept per-rep
        (and averaged by ``Measurement.time_ms``), memory is the high-water
        mark over repetitions, per-rep details are preserved, and every
        repetition must reproduce the first one's output."""
        result.times_ms.append(metrics.execution_time_ms)
        result.memory_kb = max(result.memory_kb, metrics.memory_kb)
        if rep == 0:
            result.output = output
        elif output != result.output:
            raise MeasurementError(
                f"{result.name}/{result.target}: repetition {rep + 1} "
                f"produced different output than repetition 1 "
                f"({output!r} vs {result.output!r}); averaging repetitions "
                "requires identical results")
        rep_detail = dict(metrics.detail)
        # The profile is identical across repetitions (deterministic
        # engines); keep one copy in ``detail``, not five in rep_details.
        rep_detail.pop("profile", None)
        result.rep_details.append(rep_detail)
        result.detail = dict(metrics.detail)

    def _wasm_total_cycles(self, instance, page, unit, trace=None):
        """Compose the Wasm pipeline cost (§2.2.2 / §4.4) from the shared
        tiering model.  Returns ``(total_cycles, startup_detail)`` where
        the detail splits time-to-first-result from steady-state
        execution."""
        cfg = self.profile.wasm
        stats = instance.stats
        raw_exec = stats.cycles
        instret = stats.instructions

        # JS glue: the loader script is real JS that must be parsed.
        glue = len(page.script) // 4 * self.profile.js.parse_cycles_per_token
        decode = unit.code_bytes * cfg.decode_cycles_per_byte
        plan = TierController(cfg.tier_policy()).plan(unit, instret)

        total = glue + cfg.instantiate_cycles
        total += decode
        for _phase, _tier, compile_cycles in plan.compiles:
            total += compile_cycles
        exec_cycles = raw_exec * plan.exec_factor
        total += exec_cycles
        total += stats.boundary_cycles

        startup = {
            "glue_cycles": glue,
            "decode_cycles": decode,
            "instantiate_cycles": cfg.instantiate_cycles,
            "startup_compile_cycles": plan.startup_compile_cycles,
            "tier_up_compile_cycles": plan.tier_up_cycles,
            "tier_cycles": plan.cycles_by_tier(),
            # Time to first result: everything charged before execution
            # can begin (lazy tier-up compiles overlap execution).
            "ttfr_cycles": (glue + decode + cfg.instantiate_cycles
                            + plan.startup_compile_cycles),
            "exec_cycles": exec_cycles,
            "exec_factor": plan.exec_factor,
            "tiered_up": plan.tiered_up,
        }

        if trace is not None:
            clock = trace.emit("decode", 0.0, decode,
                               bytes=unit.code_bytes).end_cycles
            clock = trace.emit("parse", clock, glue,
                               part="js-glue").end_cycles
            clock = trace.emit("instantiate", clock,
                               cfg.instantiate_cycles).end_cycles
            for phase, tier, compile_cycles in plan.compiles:
                clock = trace.emit(phase, clock, compile_cycles,
                                   tier=tier).end_cycles
            clock = trace.emit("execute", clock, exec_cycles,
                               instructions=instret,
                               factor=plan.exec_factor).end_cycles
            clock = trace.emit("host-call", clock, stats.boundary_cycles,
                               host_calls=stats.host_calls).end_cycles
            trace.emit("page-overhead", clock,
                       self.profile.page_overhead_cycles)
        return total, startup
