"""The page runner: executes compiled Wasm/JS artifacts under a browser
profile on a platform, reproducing the paper's measurement protocol:

* one page per benchmark, fresh browser state per run (``--incognito``);
* five repetitions, averaged (§3.3.2);
* DevTools metrics (execution time, memory) — via adb on mobile (§4).

Wasm execution-time composition models the two-tier pipeline: decode +
basic-tier compile up front, optimizing-tier compile charged when the
dynamic instruction count crosses the tier-up threshold, and per-tier code
quality factors applied to the executed cycles (§4.4).
"""

from __future__ import annotations

import math

from repro.cache import cached_result, results_enabled
from repro.clibm import c_exp, c_fmod, c_log, c_pow
from repro.env.adb import AdbCollector
from repro.errors import MeasurementError
from repro.env.devtools import DevTools
from repro.harness.measurement import Measurement
from repro.harness.page import HtmlPage
from repro.jsengine import JsEngine
from repro.jsengine.values import (
    JSArray, NativeFunction, UNDEFINED, to_int32,
)
from repro.wasm import WasmVM


def install_c_host(engine, output):
    """Install the host shims Cheerp-generated JS expects: ``__print_*``,
    ``Math.imul``, and the timer report hook."""

    def print_num(e, this, args):
        output.append(args[0])
        return UNDEFINED

    def print_i64(e, this, args):
        pair = args[0]
        lo = int(pair.items[0]) & 0xFFFFFFFF
        hi = int(pair.items[1]) & 0xFFFFFFFF
        value = (hi << 32) | lo
        if value >= 1 << 63:
            value -= 1 << 64
        output.append(value)
        return UNDEFINED

    engine.globals["__print_i32"] = NativeFunction(
        "__print_i32", lambda e, t, a: print_num(e, t, [float(to_int32(a[0]))]),
        150.0)
    engine.globals["__print_f64"] = NativeFunction(
        "__print_f64", print_num, 150.0)
    engine.globals["__print_i64"] = NativeFunction(
        "__print_i64", print_i64, 150.0)
    engine.globals["Math"].props["imul"] = NativeFunction(
        "imul", lambda e, t, a: float(to_int32(to_int32(a[0]) *
                                               to_int32(a[1]))), 4.0)
    timings = []
    engine.globals["__report_time"] = NativeFunction(
        "__report_time", lambda e, t, a: timings.append(a[0]) or UNDEFINED,
        30.0)
    return timings


def wasm_host_imports(output, instance_box):
    """Host imports for Cheerp-generated Wasm: prints and the libm
    functions Cheerp routes through JS ``Math`` (§3.2)."""

    def mk_print(name):
        def shim(inst, value):
            output.append(value)
        return shim

    imports = {("env", name): mk_print(name)
               for name in ("__print_i32", "__print_i64", "__print_f64")}

    def math1(fn):
        def shim(inst, x):
            inst.stats.cycles += 25.0     # native Math.* body
            return fn(x)
        return shim

    def math2(fn):
        def shim(inst, x, y):
            inst.stats.cycles += 30.0
            return fn(x, y)
        return shim

    imports[("env", "exp")] = math1(c_exp)
    imports[("env", "log")] = math1(c_log)
    imports[("env", "sin")] = math1(math.sin)
    imports[("env", "cos")] = math1(math.cos)
    imports[("env", "pow")] = math2(c_pow)
    imports[("env", "fmod")] = math2(c_fmod)
    return imports


class PageRunner:
    """Runs compiled artifacts the way the paper runs benchmark pages."""

    def __init__(self, profile, platform, flags=None, repetitions=5):
        if flags is not None:
            profile = flags.apply(profile)
        self.profile = profile
        self.platform = platform
        self.repetitions = repetitions
        if platform.kind == "mobile":
            self.collector = AdbCollector(platform, profile)
        else:
            self.collector = DevTools(platform, profile)

    def _measurement_parts(self, artifact, entry, name):
        """Everything a measurement depends on besides the artifact bits:
        the (flag-adjusted) profile, the platform, and the protocol."""
        return (artifact.cache_key, repr(self.profile), repr(self.platform),
                self.repetitions, entry, name)

    # -- JavaScript ---------------------------------------------------------

    def run_js(self, compiled_js, entry="main", name=None):
        name = name or compiled_js.name
        if results_enabled() and getattr(compiled_js, "cache_key", None):
            return cached_result(
                "measure-js", self._measurement_parts(compiled_js, entry,
                                                      name),
                lambda: self._measure_js(compiled_js, entry, name))
        return self._measure_js(compiled_js, entry, name)

    def _measure_js(self, compiled_js, entry, name):
        page = HtmlPage.for_js(compiled_js, entry)
        result = Measurement(name=name, target="js",
                             browser=f"{self.profile.name} "
                                     f"v{self.profile.version}",
                             platform=self.platform.name,
                             code_size=compiled_js.code_size)
        for rep in range(self.repetitions):
            output = []
            engine = JsEngine(self.profile.js,
                              cycles_per_ms=self.platform.cycles_per_ms)
            timings = install_c_host(engine, output)
            engine.load_script(page.script)
            metrics = self.collector.js_metrics(engine)
            metrics.detail["timer_ms"] = timings[0] if timings else None
            self._record_repetition(result, rep, metrics, output)
        result.detail["timer_ms_per_rep"] = [
            detail["timer_ms"] for detail in result.rep_details]
        return result

    # -- WebAssembly ----------------------------------------------------------

    def run_wasm(self, compiled_wasm, entry="main", name=None):
        name = name or compiled_wasm.name
        if results_enabled() and getattr(compiled_wasm, "cache_key", None):
            return cached_result(
                "measure-wasm", self._measurement_parts(compiled_wasm,
                                                        entry, name),
                lambda: self._measure_wasm(compiled_wasm, entry, name))
        return self._measure_wasm(compiled_wasm, entry, name)

    def _measure_wasm(self, compiled_wasm, entry, name):
        wasm_cfg = self.profile.wasm
        page = HtmlPage.for_wasm(compiled_wasm, entry)
        result = Measurement(name=name, target="wasm",
                             browser=f"{self.profile.name} "
                                     f"v{self.profile.version}",
                             platform=self.platform.name,
                             code_size=compiled_wasm.code_size)
        module = compiled_wasm.module
        static_instrs = module.static_instruction_count
        for rep in range(self.repetitions):
            output = []
            vm = WasmVM(boundary_cost=wasm_cfg.boundary_cost)
            instance = vm.instantiate(module,
                                      wasm_host_imports(output, None))
            instance.invoke(entry)
            cycles = self._wasm_total_cycles(instance, page, static_instrs,
                                             len(compiled_wasm.binary))
            metrics = self.collector.wasm_metrics(cycles, instance)
            self._record_repetition(result, rep, metrics, output)
        return result

    # -- repetition aggregation (§3.3.2) --------------------------------------

    @staticmethod
    def _record_repetition(result, rep, metrics, output):
        """Fold one repetition into the measurement: times are kept per-rep
        (and averaged by ``Measurement.time_ms``), memory is the high-water
        mark over repetitions, per-rep details are preserved, and every
        repetition must reproduce the first one's output."""
        result.times_ms.append(metrics.execution_time_ms)
        result.memory_kb = max(result.memory_kb, metrics.memory_kb)
        if rep == 0:
            result.output = output
        elif output != result.output:
            raise MeasurementError(
                f"{result.name}/{result.target}: repetition {rep + 1} "
                f"produced different output than repetition 1 "
                f"({output!r} vs {result.output!r}); averaging repetitions "
                "requires identical results")
        result.rep_details.append(dict(metrics.detail))
        result.detail = dict(metrics.detail)

    def _wasm_total_cycles(self, instance, page, static_instrs,
                           binary_size):
        """Compose the Wasm pipeline cost (§2.2.2 / §4.4)."""
        cfg = self.profile.wasm
        stats = instance.stats
        raw_exec = stats.cycles
        instret = stats.instructions

        # JS glue: the loader script is real JS that must be parsed.
        glue = len(page.script) // 4 * self.profile.js.parse_cycles_per_token
        total = glue + cfg.instantiate_cycles
        total += binary_size * cfg.decode_cycles_per_byte

        if cfg.basic_enabled and cfg.optimizing_enabled \
                and cfg.eager_opt_compile:
            # SpiderMonkey-style: baseline compile for fast startup plus a
            # full Ion compile at instantiate; execution runs on Ion code.
            total += static_instrs * (cfg.basic_compile_cycles_per_instr
                                      + cfg.opt_compile_cycles_per_instr)
            factor = cfg.opt_exec_factor
        elif cfg.basic_enabled and cfg.optimizing_enabled:
            total += static_instrs * cfg.basic_compile_cycles_per_instr
            if instret > cfg.tier_up_instructions:
                # Hot module: optimizing compile happened concurrently;
                # early instructions ran on the basic tier.
                total += static_instrs * cfg.opt_compile_cycles_per_instr
                frac_basic = cfg.tier_up_instructions / max(instret, 1)
            else:
                frac_basic = 1.0
            factor = (cfg.basic_exec_factor * frac_basic +
                      cfg.opt_exec_factor * (1.0 - frac_basic))
        elif cfg.basic_enabled:
            total += static_instrs * cfg.basic_compile_cycles_per_instr
            factor = cfg.basic_exec_factor
        else:
            total += static_instrs * cfg.opt_compile_cycles_per_instr
            factor = cfg.opt_exec_factor

        total += raw_exec * factor
        total += stats.boundary_cycles
        return total
