"""Measurement records produced by the runner."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Measurement:
    """One benchmark configuration, measured over N repetitions (§3.3.2:
    five runs, averaged)."""

    name: str
    target: str                       # "js" | "wasm" | "x86"
    browser: str = ""
    platform: str = ""
    times_ms: list = field(default_factory=list)
    #: High-water mark over the repetitions (§3.3.2: memory is reported as
    #: the peak the page reaches, not whatever the last run happened to
    #: commit).
    memory_kb: float = 0.0
    code_size: int = 0
    output: list = field(default_factory=list)
    #: Detail dict of the final repetition (all repetitions must agree on
    #: output; engine counters are deterministic, so this is representative).
    detail: dict = field(default_factory=dict)
    #: One detail dict per repetition, in run order.
    rep_details: list = field(default_factory=list)

    @property
    def time_ms(self):
        """Mean execution time over the repetitions."""
        return sum(self.times_ms) / len(self.times_ms)

    def __repr__(self):
        return (f"Measurement({self.name}/{self.target}"
                f" {self.time_ms:.3f}ms {self.memory_kb:.0f}KB)")
