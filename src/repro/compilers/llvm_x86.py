"""LLVM-x86 facade — the control toolchain of §4.2.1 (Fig. 6).

Modern LLVM behaviour: -globalopt is not defeated by fast-math, the
inliner works at every level, -Ofast unrolls.  On this target the pass
pipelines produce exactly the textbook ordering: Ofast fastest, O1 slowest,
Oz smallest."""

from __future__ import annotations

from repro.backends import generate_x86
from repro.compilers.base import CompiledNative, ToolchainBase


class LlvmX86Compiler(ToolchainBase):
    name = "llvm-x86"

    def pipelines(self):
        o2 = ["constfold", "inline", "licm", "gvn", "vectorize-loops",
              "remat-consts", "libcalls-shrinkwrap", "globalopt", "dce"]
        return {
            "O0": [],
            "O1": ["constfold", "globalopt", "dce"],
            "O2": list(o2),
            "O3": list(o2) + ["unroll"],
            "O4": list(o2) + ["unroll"],
            # Modern pipeline re-runs globalopt/dce after fast-math, so no
            # dead stores survive (unlike Cheerp's -Ofast).
            "Ofast": (["constfold", "fast-math"] + list(o2)[1:] +
                      ["unroll", "globalopt", "dce"]),
            "Os": ["constfold", "inline", "licm", "gvn", "remat-consts",
                   "globalopt", "dce"],
            "Oz": ["constfold", "inline", "licm", "gvn", "globalopt",
                   "dce"],
        }

    def compile(self, source, defines=None, opt_level="O2", name="module"):
        return self._cached_compile("x86", self._build_native, source,
                                    defines, opt_level, name)

    def _build_native(self, source, defines, opt_level, name):
        ir = self.frontend(source, defines, name)
        self.optimize(ir, opt_level)
        program = generate_x86(ir)
        program.meta.update({"toolchain": self.name,
                             "opt_level": opt_level})
        return CompiledNative(program, self.name, opt_level, name)
