"""Toolchain facades: Cheerp, Emscripten, and LLVM-x86.

Each facade runs the same frontend and the same pass library, but with the
pipeline composition, runtime conventions, and memory sizing of the real
toolchain it models — the axes §4.2 of the paper varies.
"""

from repro.compilers.base import CompiledJs, CompiledNative, CompiledWasm
from repro.compilers.cheerp import CheerpCompiler
from repro.compilers.emscripten import EmscriptenCompiler
from repro.compilers.llvm_x86 import LlvmX86Compiler

__all__ = [
    "CheerpCompiler",
    "CompiledJs",
    "CompiledNative",
    "CompiledWasm",
    "EmscriptenCompiler",
    "LlvmX86Compiler",
]
