"""Shared toolchain plumbing: frontend invocation, artifacts, pipelines."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cfront import parse_c, preprocess, transform_source
from repro.cfront.parser import BUILTINS
from repro.errors import LinkError
from repro.ir.passes import run_pipeline

#: Optimization levels every toolchain accepts.
OPT_LEVELS = ("O0", "O1", "O2", "O3", "O4", "Os", "Oz", "Ofast")


@dataclass
class CompiledWasm:
    """A compiled WebAssembly artifact."""

    module: object            # repro.wasm.WasmModule
    binary: bytes
    toolchain: str
    opt_level: str
    name: str = "module"
    meta: dict = field(default_factory=dict)

    @property
    def code_size(self):
        return len(self.binary)


@dataclass
class CompiledJs:
    """A compiled (genericjs) JavaScript artifact."""

    source: str
    toolchain: str
    opt_level: str
    name: str = "module"
    meta: dict = field(default_factory=dict)

    @property
    def code_size(self):
        return len(self.source.encode("utf-8"))


@dataclass
class CompiledNative:
    """A compiled x86-model artifact."""

    program: object           # repro.native.NativeProgram
    toolchain: str
    opt_level: str
    name: str = "module"
    meta: dict = field(default_factory=dict)

    @property
    def code_size(self):
        from repro.native import program_byte_size
        return program_byte_size(self.program)


class ToolchainBase:
    """Common frontend behaviour (preprocess → §3.1 transforms → parse →
    pass pipeline) and the content-addressed compile cache every facade's
    ``compile_*`` entry point routes through."""

    name = "toolchain"

    def __init__(self, use_precompiled_libs=False):
        #: §3.2: Cheerp implicitly links pre-compiled libc/libc++; when a
        #: program also defines those symbols the link fails.  The paper's
        #: workaround (and our default) is to disable the implicit libs.
        self.use_precompiled_libs = use_precompiled_libs
        self._last_pass_telemetry = None

    # -- content-addressed caching --------------------------------------------

    def config_fingerprint(self):
        """Stable fingerprint of the toolchain configuration: every piece
        of instance state (heap/stack sizes, linkage mode, granules)
        participates in the cache key.  Private attributes (scratch state
        like the telemetry stash) are not configuration."""
        return tuple(sorted(
            (key, repr(value)) for key, value in vars(self).items()
            if not key.startswith("_")))

    def pipeline_fingerprint(self, opt_level):
        """Pass-pipeline fingerprint for one level: pass names, with
        callable passes identified by their qualified name."""
        names = []
        for entry in self.pipelines().get(opt_level, ()):
            if isinstance(entry, str):
                names.append(entry)
            else:
                names.append(f"{entry.__module__}.{entry.__qualname__}")
        return tuple(names)

    def _cached_compile(self, kind, build, source, defines, opt_level,
                        name):
        """Serve ``build(...)``'s artifact from the content-addressed
        cache, keyed on the preprocessed source + configuration."""
        from repro.cache import cache_key, get_cache
        from repro.obs import span
        cache = get_cache()
        key = cache_key(
            kind=kind,
            preprocessed=preprocess(source, defines),
            defines=defines,
            opt_level=opt_level,
            toolchain=self.name,
            config_fingerprint=self.config_fingerprint(),
            pipeline_fingerprint=self.pipeline_fingerprint(opt_level),
            name=name,
        )
        with span("compile", kind=kind, toolchain=self.name,
                  opt_level=opt_level, name=name) as fields:
            artifact = cache.get(key)
            fields["cached"] = artifact is not None
            if artifact is None:
                self._last_pass_telemetry = None
                artifact = build(source, defines, opt_level, name)
                # JS/native artifacts drop the IR module (only codegen
                # output is kept), so the pipeline telemetry travels via
                # the stash ``optimize()`` records.
                if "pass_telemetry" not in artifact.meta and \
                        self._last_pass_telemetry is not None:
                    artifact.meta["pass_telemetry"] = \
                        self._last_pass_telemetry
                cache.put(key, artifact)
        self._replay_pass_metrics(artifact)
        # Tag the artifact with its own address so downstream layers (the
        # measurement memoizer) can key results on it without re-hashing.
        artifact.cache_key = key
        return artifact

    @staticmethod
    def _replay_pass_metrics(artifact):
        """Publish the deterministic pass counters recorded in the
        artifact's telemetry.  Run on every serve — hit or miss — so a
        warm cache produces the same DET metrics as a cold build."""
        from repro.obs import DET, get_registry
        reg = get_registry()
        reg.counter_add("compile.serves", 1, DET)
        for entry in artifact.meta.get("pass_telemetry", ()):
            prefix = f"pass.{entry['pass']}"
            reg.counter_add(f"{prefix}.applied", 1, DET)
            reg.counter_add(f"{prefix}.rewrites", entry["rewrites"], DET)
            reg.counter_add(f"{prefix}.nodes_in", entry["nodes_in"], DET)
            reg.counter_add(f"{prefix}.nodes_out", entry["nodes_out"], DET)

    def frontend(self, source, defines=None, name="module",
                 apply_transforms=True):
        text = preprocess(source, defines)
        if apply_transforms:
            text = transform_source(text)
        module = parse_c(text, name)
        self._check_link(module)
        # Frontend normalisation (mem2reg-style): the parser's hoisted
        # temporaries (post-increment snapshots, logic temps) are cleaned
        # up at every optimization level, as real frontends do.
        from repro.ir.passes import dead_code_elimination
        dead_code_elimination(module)
        return module

    def _check_link(self, module):
        if not self.use_precompiled_libs:
            return
        conflicts = [fname for fname in module.functions
                     if fname in BUILTINS and module.functions[fname].body]
        if conflicts:
            raise LinkError(
                "conflicting symbol definitions between the pre-compiled "
                f"libraries and the program: {', '.join(sorted(conflicts))} "
                "(disable pre-compiled libs, §3.2)")

    def optimize(self, module, opt_level):
        pipeline = self.pipelines()[opt_level]
        run_pipeline(module, pipeline)
        module.meta["opt_level"] = opt_level
        # Stash for artifacts that do not retain the module's meta
        # (CompiledJs/CompiledNative); _cached_compile picks it up.
        self._last_pass_telemetry = module.meta.get("pass_telemetry")
        return module

    def pipelines(self):
        raise NotImplementedError
