"""Cheerp facade (the paper's primary C → Wasm/JS compiler).

Models Cheerp around LLVM 3.7:

* ``-globalopt`` runs in its conservative variant, which is defeated by
  fast-math function attributes — so ``-Ofast`` misses dead-store
  elimination (§4.2.1, ADPCM/Fig. 7; LLVM bug 37449 is the analogue the
  paper cites for -O3).
* ``-O3``/``-O4`` lose the inliner (the "less inlining at O3" bug).
* Linear memory grows in 64 KiB granules with an 8 MiB default heap and
  1 MiB default stack (raise with ``linear_heap_size``/
  ``linear_stack_size``, the paper's §3.2 flags).
* The Wasm backend is the 2019-era one: no address strength reduction and
  no Binaryen-style peephole — part of why Emscripten output runs faster
  (§4.2.2).
"""

from __future__ import annotations

from functools import partial

from repro.backends import (
    JsCodegenOptions, WasmCodegenOptions, generate_js, generate_wasm,
)
from repro.compilers.base import CompiledJs, CompiledWasm, ToolchainBase
from repro.ir.passes import PASSES
from repro.ir.passes.globalopt import global_opt_conservative
from repro.wasm import encode_module, validate_module

_GLOBALOPT_C = global_opt_conservative


class CheerpCompiler(ToolchainBase):
    name = "cheerp"

    def __init__(self, linear_heap_size=8 * 1024 * 1024,
                 linear_stack_size=1024 * 1024,
                 use_precompiled_libs=False):
        super().__init__(use_precompiled_libs)
        self.linear_heap_size = linear_heap_size
        self.linear_stack_size = linear_stack_size

    def pipelines(self):
        o2 = ["constfold", "inline", "licm", "gvn", "vectorize-loops",
              "remat-consts", "libcalls-shrinkwrap", _GLOBALOPT_C, "dce"]
        return {
            "O0": [],
            "O1": ["constfold", _GLOBALOPT_C, "dce"],
            "O2": list(o2),
            # The paper's O3/O4 behave like Ofast: the old inliner bails
            # out at those levels (LLVM bug 37449 analogue).
            "O3": [p for p in o2 if p != "inline"],
            "O4": [p for p in o2 if p != "inline"],
            "Ofast": ["constfold", "fast-math", "inline", "licm", "gvn",
                      "vectorize-loops", "remat-consts",
                      "libcalls-shrinkwrap", _GLOBALOPT_C, "dce"],
            # Size levels drop the passes that grow code (§2.1.2):
            # -Os keeps rematerialisation, -Oz drops it too.
            "Os": ["constfold", "inline", "licm", "gvn", "remat-consts",
                   _GLOBALOPT_C, "dce"],
            "Oz": ["constfold", "inline", "licm", "gvn",
                   _GLOBALOPT_C, "dce"],
            # Extension (the paper's §5 future-work call: "tailor the
            # optimization techniques to WebAssembly"): keep the passes
            # that help a stack machine, drop the x86-oriented ones
            # (vectorize/remat), and clean the emitted code up with a
            # Binaryen-style peephole + address strength reduction.
            "Owasm": ["constfold", "inline", "licm", "gvn", "globalopt",
                      "dce"],
        }

    def _wasm_options(self, opt_level):
        tailored = opt_level == "Owasm"
        return WasmCodegenOptions(
            heap_bytes=self.linear_heap_size,
            stack_bytes=self.linear_stack_size,
            growth_granule_pages=1,          # 64 KiB Cheerp granule
            strength_reduce=tailored,
            peephole=tailored,
            vector_overhead_ops=6,
            meta={"toolchain": self.name, "opt_level": opt_level},
        )

    def compile_wasm(self, source, defines=None, opt_level="O2",
                     name="module"):
        """C source → validated Wasm artifact (content-addressed cached)."""
        return self._cached_compile("wasm", self._build_wasm, source,
                                    defines, opt_level, name)

    def compile_js(self, source, defines=None, opt_level="O2",
                   name="module"):
        """C source → genericjs artifact (content-addressed cached)."""
        return self._cached_compile("js", self._build_js, source,
                                    defines, opt_level, name)

    def _build_wasm(self, source, defines, opt_level, name):
        ir = self.frontend(source, defines, name)
        self.optimize(ir, opt_level)
        module = generate_wasm(ir, self._wasm_options(opt_level))
        validate_module(module)
        binary = encode_module(module)
        return CompiledWasm(module, binary, self.name, opt_level, name,
                            meta=dict(module.meta))

    def _build_js(self, source, defines, opt_level, name):
        ir = self.frontend(source, defines, name)
        self.optimize(ir, opt_level)
        js = generate_js(ir, JsCodegenOptions(
            vector_overhead_stmts=3,
            meta={"toolchain": self.name, "opt_level": opt_level}))
        return CompiledJs(js, self.name, opt_level, name)
