"""Emscripten facade.

Differences from Cheerp that §4.2.2 measures:

* **16 MiB memory granule** (the paper's "page size"): linear memory is
  grown 256 Wasm pages at a time, so modules commit far more memory
  (6.02× in the paper) but execute far fewer ``memory.grow`` requests.
* **Better backend**: address strength reduction plus a Binaryen-style
  peephole pass over the emitted Wasm (Emscripten's `wasm-opt`), part of
  why its output runs faster (2.70× in the paper).
* Its JS target is asm.js, not standard JavaScript (§2.1.1), so this
  facade intentionally has no ``compile_js``.
"""

from __future__ import annotations

from repro.backends import WasmCodegenOptions, generate_wasm
from repro.compilers.base import CompiledWasm, ToolchainBase
from repro.ir.passes.globalopt import global_opt_conservative
from repro.wasm import encode_module, validate_module

_GLOBALOPT_C = global_opt_conservative

#: Emscripten's ALLOW_MEMORY_GROWTH granule: 16 MiB = 256 Wasm pages.
EMSCRIPTEN_GRANULE_PAGES = 256


class EmscriptenCompiler(ToolchainBase):
    name = "emscripten"

    def __init__(self, initial_memory=16 * 1024 * 1024,
                 stack_size=5 * 1024 * 1024, use_precompiled_libs=False):
        super().__init__(use_precompiled_libs)
        self.initial_memory = initial_memory
        self.stack_size = stack_size

    def pipelines(self):
        # Same LLVM-era pipeline family as Cheerp (both sit on LLVM's
        # optimizer); the §4.2.2 gap comes from the backend + runtime.
        o2 = ["constfold", "inline", "licm", "gvn", "vectorize-loops",
              "remat-consts", "libcalls-shrinkwrap", _GLOBALOPT_C, "dce"]
        return {
            "O0": [],
            "O1": ["constfold", _GLOBALOPT_C, "dce"],
            "O2": list(o2),
            "O3": list(o2),
            "O4": list(o2) + ["unroll"],
            "Ofast": ["constfold", "fast-math"] + list(o2)[1:],
            "Os": ["constfold", "inline", "licm", "gvn", "remat-consts",
                   _GLOBALOPT_C, "dce"],
            "Oz": ["constfold", "inline", "licm", "gvn",
                   _GLOBALOPT_C, "dce"],
        }

    def compile_wasm(self, source, defines=None, opt_level="O2",
                     name="module"):
        return self._cached_compile("wasm", self._build_wasm, source,
                                    defines, opt_level, name)

    def _build_wasm(self, source, defines, opt_level, name):
        ir = self.frontend(source, defines, name)
        self.optimize(ir, opt_level)
        options = WasmCodegenOptions(
            heap_bytes=self.initial_memory,
            stack_bytes=self.stack_size,
            growth_granule_pages=EMSCRIPTEN_GRANULE_PAGES,
            strength_reduce=True,
            peephole=True,
            vector_overhead_ops=4,
            meta={"toolchain": self.name, "opt_level": opt_level},
        )
        module = generate_wasm(ir, options)
        validate_module(module)
        binary = encode_module(module)
        return CompiledWasm(module, binary, self.name, opt_level, name,
                            meta=dict(module.meta))
