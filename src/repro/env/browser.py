"""Browser engine profiles.

Each profile bundles a JS engine configuration (tiering, parse rate, GC
baseline) and a Wasm engine configuration (the tier pair's compiler
models and promotion policy, boundary-call cost).  The constants are
engine *mechanism parameters*; they were calibrated once against Table 8's
orderings and are documented inline with the engine facts that motivate
them (LiftOff/TurboFan, Baseline/Ion, Cranelift-on-ARM64, GeckoView,
Firefox's fast JS↔Wasm calls).

Since the compile-model refactor the tier parameters live in exactly one
place: :class:`WasmEngineConfig.tiers` is a shared-engine-core
:class:`~repro.engine.tiering.TierPolicy` whose two
:class:`~repro.engine.compilemodel.PerInstrCompiler` models carry the
calibrated per-instruction compile rates and code-quality factors.  The
legacy scalar names (``basic_exec_factor``, ``opt_compile_cycles_per_instr``,
...) remain readable as delegating properties so older call sites and the
parity oracles keep working, but there is no second copy to drift.

Everything else in the reproduction — input-size scaling, JIT speedups,
memory growth, compiler effects — is *emergent* from executing programs
under these profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.engine.compilemodel import PerInstrCompiler
from repro.engine.tiering import TierPolicy
from repro.jsengine.config import JsEngineConfig

#: Policy fields routable through ``WasmEngineConfig.evolved`` /
#: ``BrowserProfile.with_wasm`` straight into the nested ``TierPolicy``
#: (legacy scalar spellings are handled by ``TierPolicy.tweak``).
_TIER_FIELDS = frozenset(f.name for f in fields(TierPolicy))


def _default_tiers():
    return TierPolicy(
        basic=PerInstrCompiler(name="baseline", exec_factor=1.18,
                               cycles_per_instr=2.0),
        optimizing=PerInstrCompiler(name="opt", exec_factor=1.0,
                                    cycles_per_instr=20.0))


@dataclass
class WasmEngineConfig:
    """Parameters of a browser's Wasm execution tier pair."""

    #: The two-tier compile pipeline: compiler models + promotion policy.
    #: This IS the engine-core policy object — ``tier_policy()`` returns
    #: it unchanged, so profile and controller can never disagree.
    tiers: TierPolicy = field(default_factory=_default_tiers)
    # Startup pipeline: decode/validate ∝ binary size; compile costs come
    # from the tier models.
    decode_cycles_per_byte: float = 0.2
    instantiate_cycles: float = 12000.0
    # Wasm↔JS boundary call cost (measured in §4.5's micro-benchmark).
    boundary_cost: float = 180.0
    # Engine-side overhead of a live Wasm instance (module env, tables,
    # wrappers) added to linear memory for the DevTools metric.
    instance_overhead_bytes: int = 600 * 1024

    def tier_policy(self):
        """This config's :class:`TierPolicy` (the same object the JS JIT
        model uses for function tiering)."""
        return self.tiers

    def evolved(self, **kwargs):
        """A copy with config fields, policy fields, or legacy scalar
        tier parameters changed — the one update path for profiles."""
        config_kwargs = {}
        tier_kwargs = {}
        for key, value in kwargs.items():
            if key in _CONFIG_FIELDS:
                config_kwargs[key] = value
            elif key in _TIER_FIELDS:
                tier_kwargs[key] = value
            else:
                # Legacy scalar spellings (basic_exec_factor, ...) are
                # rewritten into the compiler models by tweak().
                tier_kwargs[key] = value
        tiers = config_kwargs.pop("tiers", self.tiers)
        if tier_kwargs:
            tiers = tiers.tweak(**tier_kwargs)
        return replace(self, tiers=tiers, **config_kwargs)

    # -- legacy scalar views (delegate to the tier policy) ----------------

    @property
    def basic_name(self):
        return self.tiers.basic_name

    @property
    def optimizing_name(self):
        return self.tiers.optimizing_name

    @property
    def basic_enabled(self):
        return self.tiers.basic_enabled

    @property
    def optimizing_enabled(self):
        return self.tiers.optimizing_enabled

    @property
    def eager_opt_compile(self):
        return self.tiers.eager_opt_compile

    @property
    def tier_up_instructions(self):
        return self.tiers.tier_up_instructions

    @property
    def basic_compile_cycles_per_instr(self):
        return self.tiers.basic_compile_cost

    @property
    def opt_compile_cycles_per_instr(self):
        return self.tiers.opt_compile_cost

    @property
    def basic_exec_factor(self):
        return self.tiers.basic_exec_factor

    @property
    def opt_exec_factor(self):
        return self.tiers.opt_exec_factor


_CONFIG_FIELDS = frozenset(f.name for f in fields(WasmEngineConfig))


@dataclass
class BrowserProfile:
    name: str
    version: str
    platform_kind: str            # "desktop" | "mobile"
    js: JsEngineConfig = field(default_factory=JsEngineConfig)
    wasm: WasmEngineConfig = field(default_factory=WasmEngineConfig)
    # Renderer/devtools fixed page overhead included in measurements (§3.4).
    page_overhead_cycles: float = 6000.0
    notes: str = ""

    def with_wasm(self, **kwargs):
        clone = replace(self)
        clone.wasm = self.wasm.evolved(**kwargs)
        return clone

    def with_js(self, **kwargs):
        clone = replace(self)
        clone.js = replace(self.js, **kwargs)
        return clone


def chrome_desktop():
    """Chrome v79, desktop. V8: Ignition interpreter + TurboFan JIT for
    JS; LiftOff + TurboFan for Wasm."""
    return BrowserProfile(
        name="chrome", version="79", platform_kind="desktop",
        js=JsEngineConfig(
            name="v8",
            parse_cycles_per_token=18.0,
            tier0_factor=20.0,          # Ignition bytecode interpreter
            tier1_factor=1.0,           # TurboFan peak (bounds-check
                                        # elimination, specialisation)
            call_threshold=4,
            backedge_threshold=60,
            startup_cycles=60000.0,
            gc_baseline_bytes=838 * 1024,
        ),
        wasm=WasmEngineConfig(
            tiers=TierPolicy(
                # LiftOff: one fast pass, ~modest code quality.
                basic=PerInstrCompiler(name="LiftOff", exec_factor=1.18,
                                       cycles_per_instr=2.0),
                # TurboFan: slow compiles, peak code.
                optimizing=PerInstrCompiler(name="TurboFan",
                                            exec_factor=1.0,
                                            cycles_per_instr=22.0),
            ),
            boundary_cost=180.0,
            instantiate_cycles=8000.0,
            instance_overhead_bytes=520 * 1024,
        ),
        notes="V8; same codebase on desktop and mobile.",
    )


def firefox_desktop():
    """Firefox v71, desktop. SpiderMonkey: fast Baseline JIT for JS
    startup; Baseline + Ion for Wasm.  Firefox's Wasm code quality and its
    2018 fast JS↔Wasm calls make it the fastest desktop Wasm browser
    (§4.5); its JS is slightly slower than Chrome's at peak."""
    return BrowserProfile(
        name="firefox", version="71", platform_kind="desktop",
        js=JsEngineConfig(
            name="spidermonkey",
            parse_cycles_per_token=16.0,
            tier0_factor=4.5,           # Baseline JIT enters fast
            tier1_factor=1.12,          # Ion peak slightly below TurboFan
            call_threshold=6,
            backedge_threshold=250,     # Ion waits longer to kick in
            startup_cycles=35000.0,
            gc_baseline_bytes=470 * 1024,
        ),
        wasm=WasmEngineConfig(
            tiers=TierPolicy(
                basic=PerInstrCompiler(name="Baseline", exec_factor=1.25,
                                       cycles_per_instr=2.4),
                # Ion compiles are slow but its Wasm codegen leads (0.61×).
                optimizing=PerInstrCompiler(name="Ion", exec_factor=0.55,
                                            cycles_per_instr=150.0),
                eager_opt_compile=True,  # desktop SpiderMonkey compiled
                                         # Wasm with Ion eagerly
            ),
            boundary_cost=24.0,          # the "finally fast" calls (0.13×)
            instantiate_cycles=50000.0,  # heavier module setup than V8
            instance_overhead_bytes=380 * 1024,
        ),
        notes="Gecko; Ion Wasm tier; fast JS↔Wasm calls since 2018-10.",
    )


def edge_desktop():
    """Edge v79, desktop — a Chromium/Blink fork; V8 engine family with
    extra browser-layer overhead in this release."""
    profile = chrome_desktop()
    profile.name = "edge"
    profile.version = "79"
    # Same engines, slower effective rates in the measured release.
    profile.js = replace(profile.js, name="v8-edge",
                         tier0_factor=25.0, tier1_factor=1.40,
                         startup_cycles=80000.0,
                         gc_baseline_bytes=828 * 1024)
    profile.wasm = profile.wasm.evolved(basic_exec_factor=1.5,
                                        opt_exec_factor=1.28,
                                        boundary_cost=210.0,
                                        instance_overhead_bytes=520 * 1024)
    profile.notes = "Chromium fork; Blink + V8."
    return profile


def chrome_mobile():
    """Chrome v79 on Android — same V8 codebase, mobile-tuned heap."""
    profile = chrome_desktop()
    profile.platform_kind = "mobile"
    profile.js = replace(profile.js, gc_baseline_bytes=365 * 1024)
    profile.wasm = profile.wasm.evolved(instance_overhead_bytes=430 * 1024)
    profile.notes = "Same codebase as desktop Chrome (§4.5)."
    return profile


def firefox_mobile():
    """Firefox v68 on Android: GeckoView engine; on ARM64 the Ion Wasm
    tier is unavailable and Cranelift generates slower code (§4.5) —
    mobile Firefox loses its desktop Wasm advantage.  Its mobile JS
    (Baseline-heavy) is the fastest of the three."""
    profile = firefox_desktop()
    profile.name = "firefox"
    profile.version = "68"
    profile.platform_kind = "mobile"
    profile.js = replace(profile.js, tier0_factor=3.2, tier1_factor=0.60,
                         startup_cycles=25000.0,
                         gc_baseline_bytes=650 * 1024)
    profile.wasm = profile.wasm.evolved(
        optimizing_name="Cranelift",
        opt_exec_factor=1.35,          # Cranelift replaces Ion on ARM64
        opt_compile_cycles_per_instr=18.0,   # ...but compiles quickly
        basic_exec_factor=1.7,
        eager_opt_compile=False,
        instantiate_cycles=12000.0,
        boundary_cost=60.0,
        instance_overhead_bytes=560 * 1024)
    profile.notes = "GeckoView; Cranelift Wasm tier-2 on ARM64."
    return profile


def edge_mobile():
    """Edge v44 on Android — Blink fork; in the paper's measurements the
    mobile build outperforms mobile Chrome on both JS and Wasm."""
    profile = chrome_desktop()
    profile.name = "edge"
    profile.version = "44"
    profile.platform_kind = "mobile"
    profile.js = replace(profile.js, tier0_factor=9.0, tier1_factor=0.73,
                         gc_baseline_bytes=900 * 1024)
    profile.wasm = profile.wasm.evolved(opt_exec_factor=0.82,
                                        basic_exec_factor=1.0,
                                        instance_overhead_bytes=610 * 1024)
    profile.notes = "Chromium Blink fork (§4.5: similar to mobile Chrome)."
    return profile


def ALL_DESKTOP():
    return [chrome_desktop(), firefox_desktop(), edge_desktop()]


def ALL_MOBILE():
    return [chrome_mobile(), firefox_mobile(), edge_mobile()]
