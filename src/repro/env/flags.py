"""Chrome command-line flags (the paper's Appendix A / Table 11).

:class:`ChromeFlags` parses the exact flag strings the paper used and
produces the corresponding profile modifications:

* ``--incognito`` — fresh profile per run, nothing cached (the harness
  already creates a fresh engine per repetition; the flag documents it).
* ``--js-flags="--no-opt"`` — JS optimizing tier disabled.
* ``--js-flags="--liftoff --no-wasm-tier-up"`` — Wasm basic tier only.
* ``--js-flags="--no-liftoff --no-wasm-tier-up"`` — Wasm optimizing tier
  only.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


@dataclass
class ChromeFlags:
    incognito: bool = False
    js_flags: list = field(default_factory=list)

    @classmethod
    def parse(cls, command_line):
        """Parse ``chrome.exe --incognito --js-flags="--no-opt"`` style
        command lines."""
        flags = cls()
        if "--incognito" in command_line or "-incognito" in command_line:
            flags.incognito = True
        match = re.search(r'--?js-flags="([^"]*)"', command_line)
        if match:
            flags.js_flags = match.group(1).split()
        return flags

    @property
    def jit_disabled(self):
        return "--no-opt" in self.js_flags

    @property
    def wasm_tier_up_disabled(self):
        return "--no-wasm-tier-up" in self.js_flags

    @property
    def wasm_basic_only(self):
        return ("--liftoff" in self.js_flags and
                self.wasm_tier_up_disabled)

    @property
    def wasm_optimizing_only(self):
        return ("--no-liftoff" in self.js_flags and
                self.wasm_tier_up_disabled)

    def apply(self, profile):
        """Return a new :class:`BrowserProfile` with the flags applied."""
        out = profile
        if self.jit_disabled:
            out = out.with_js(jit_enabled=False)
        if self.wasm_basic_only:
            out = out.with_wasm(optimizing_enabled=False)
        elif self.wasm_optimizing_only:
            out = out.with_wasm(basic_enabled=False)
        return out

    def command_line(self, page="bench.html"):
        """Reconstruct the equivalent Chrome invocation (for reports)."""
        parts = ["chrome.exe"]
        if self.js_flags:
            parts.append(f'--js-flags="{" ".join(self.js_flags)}"')
        if self.incognito:
            parts.append("--incognito")
        parts.append(page)
        return " ".join(parts)
