"""Standalone (non-browser) WebAssembly host runtime profiles.

The paper measures browsers; the runtimes survey (PAPERS.md) motivates
extending the scenario grid to standalone hosts — wasmtime/WAMR-style
embeddings with no JS engine, no page, and very different startup
economics.  A :class:`RuntimeProfile` is the standalone analogue of
:class:`~repro.env.browser.BrowserProfile`: it owns a
:class:`~repro.env.browser.WasmEngineConfig` (and therefore a
:class:`~repro.engine.tiering.TierPolicy`) plus host startup constants,
but no ``js`` config — launching a module costs process/runtime init
instead of script parsing and glue.

Unlike the browser profiles, whose per-instruction compile rates are
calibrated legacy constants, the standalone profiles express their
compilers with the *modeled* cost classes from
:mod:`repro.engine.compilemodel`: single-pass baselines priced by the
module's opclass mix, optimizing tiers priced by recorded pass telemetry.
That makes them the natural subjects of the startup-frontier experiment
(:mod:`repro.experiments.startup_frontier`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.compilemodel import (
    PassPipelineCompiler,
    SinglePassCompiler,
)
from repro.engine.opclass import OpClass
from repro.engine.tiering import TierPolicy
from repro.env.browser import WasmEngineConfig

#: Single-pass emit weights: what each op class costs to *compile*,
#: relative to a plain ALU op.  Memory accesses emit bounds checks, calls
#: emit trampolines/frame setup, control flow resolves labels, division
#: selects guarded sequences.  Shared by every single-pass baseline below
#: so their frontier positions differ by rate and overhead, not shape.
SINGLE_PASS_WEIGHTS = (
    (int(OpClass.LOAD), 2.5),
    (int(OpClass.STORE), 2.5),
    (int(OpClass.CALL), 4.0),
    (int(OpClass.CONTROL), 1.8),
    (int(OpClass.DIV), 1.6),
    (int(OpClass.REM), 1.6),
    (int(OpClass.GLOBAL), 1.4),
    (int(OpClass.MEMORY), 3.0),
)


@dataclass
class RuntimeProfile:
    """One standalone Wasm host: engine config + host startup constants."""

    name: str
    version: str
    wasm: WasmEngineConfig
    #: Process + runtime initialisation (no renderer, no JS realm): the
    #: standalone analogue of ``JsEngineConfig.startup_cycles`` + page
    #: overhead, typically far below a browser's.
    startup_cycles: float = 9000.0
    #: Virtual-time conversion, as on :class:`~repro.env.platformspec.
    #: PlatformSpec`.
    cycles_per_ms: float = 400000.0
    kind: str = "standalone"
    notes: str = ""

    def with_wasm(self, **kwargs):
        clone = replace(self)
        clone.wasm = self.wasm.evolved(**kwargs)
        return clone

    def vm(self, max_instructions=None):
        """A :class:`~repro.wasm.vm.WasmVM` wired for this host: the
        profile's boundary cost, with the tier policy attached so the
        instance charges its modeled startup compiles into
        ``stats.compile_cycles``."""
        from repro.wasm import WasmVM
        return WasmVM(boundary_cost=self.wasm.boundary_cost,
                      max_instructions=max_instructions,
                      tier_policy=self.wasm.tier_policy())


def wasmtime_style():
    """A wasmtime-style host: Cranelift ahead-of-time, no baseline tier.

    Startup pays the full optimizing compile (priced from the module's
    recorded pass telemetry plus backend lowering) but execution runs on
    peak code from the first instruction; boundary calls are cheap
    native trampolines."""
    return RuntimeProfile(
        name="wasmtime", version="14-style",
        wasm=WasmEngineConfig(
            tiers=TierPolicy(
                basic=SinglePassCompiler(
                    name="winch", exec_factor=1.32,
                    cycles_per_instr=1.6,
                    opclass_weights=SINGLE_PASS_WEIGHTS,
                    function_overhead_cycles=40.0),
                optimizing=PassPipelineCompiler(
                    name="cranelift", exec_factor=0.92,
                    cycles_per_node=9.0,
                    cycles_per_rewrite=14.0,
                    backend_cycles_per_instr=26.0),
                basic_enabled=False,     # AOT: Cranelift only
                eager_opt_compile=False,
            ),
            decode_cycles_per_byte=0.15,
            instantiate_cycles=3000.0,
            boundary_cost=8.0,
            instance_overhead_bytes=96 * 1024,
        ),
        startup_cycles=6000.0,
        notes="Cranelift AOT; Winch available via tiers.basic_enabled.",
    )


def wasmtime_winch():
    """wasmtime with its Winch baseline in front of Cranelift: fast
    first result, lazy tier-up once the module runs hot."""
    profile = wasmtime_style()
    profile.name = "wasmtime-winch"
    profile.wasm = profile.wasm.evolved(basic_enabled=True,
                                        tier_up_instructions=150000)
    profile.notes = "Winch single-pass baseline + lazy Cranelift tier-up."
    return profile


def wamr_interp():
    """A WAMR-style interpreter host: no JIT at all.

    'Compilation' is the fast-interpreter loader pre-decode — a cheap
    single pass that rewrites bytecode into the internal form — so
    startup is nearly free and steady-state execution is slow."""
    return RuntimeProfile(
        name="wamr", version="interp-style",
        wasm=WasmEngineConfig(
            tiers=TierPolicy(
                basic=SinglePassCompiler(
                    name="fast-interp-loader", exec_factor=11.0,
                    cycles_per_instr=0.35,
                    opclass_weights=((int(OpClass.CONTROL), 2.0),
                                     (int(OpClass.CALL), 2.0)),
                    function_overhead_cycles=12.0),
                optimizing=PassPipelineCompiler(
                    name="wamr-aot", exec_factor=1.1,
                    cycles_per_node=7.0,
                    cycles_per_rewrite=10.0,
                    backend_cycles_per_instr=20.0),
                optimizing_enabled=False,  # interpreter-only embedding
            ),
            decode_cycles_per_byte=0.1,
            instantiate_cycles=1500.0,
            boundary_cost=5.0,
            instance_overhead_bytes=24 * 1024,
        ),
        startup_cycles=2500.0,
        notes="Interpreter-only; embedded-class footprint.",
    )


def wasmer_singlepass():
    """A wasmer-style Singlepass host: baseline compiler only.

    One linear pass priced by the module's opclass mix — the classic
    baseline-compiler frontier point: modest code quality, compile time
    ∝ code, first result almost immediately."""
    return RuntimeProfile(
        name="wasmer", version="singlepass-style",
        wasm=WasmEngineConfig(
            tiers=TierPolicy(
                basic=SinglePassCompiler(
                    name="singlepass", exec_factor=1.55,
                    cycles_per_instr=1.2,
                    opclass_weights=SINGLE_PASS_WEIGHTS,
                    function_overhead_cycles=30.0),
                optimizing=PassPipelineCompiler(
                    name="llvm", exec_factor=0.88,
                    cycles_per_node=14.0,
                    cycles_per_rewrite=22.0,
                    backend_cycles_per_instr=60.0),
                optimizing_enabled=False,  # baseline-only tiering
            ),
            decode_cycles_per_byte=0.15,
            instantiate_cycles=2500.0,
            boundary_cost=9.0,
            instance_overhead_bytes=64 * 1024,
        ),
        startup_cycles=5000.0,
        notes="Singlepass baseline only; LLVM tier available but off.",
    )


def ALL_RUNTIMES():
    return [wasmtime_style(), wasmtime_winch(), wamr_interp(),
            wasmer_singlepass()]
