"""Hardware platforms (§4: Intel i7 desktop vs Xiaomi Mi 6 phone)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PlatformSpec:
    """A device: converts abstract engine cycles into wall-clock ms."""

    name: str
    kind: str                 # "desktop" | "mobile"
    cycles_per_ms: float      # effective abstract-cycle rate

    def ms(self, cycles):
        return cycles / self.cycles_per_ms


#: Intel Core i7 / 16 GB, Ubuntu 18.04 (the paper's desktop testbed).
DESKTOP = PlatformSpec("i7-desktop", "desktop", 400000.0)

#: Xiaomi Mi 6, 8-core Snapdragon / 6 GB, Android (the paper's phone).
#: Roughly 4× slower per abstract cycle than the desktop testbed.
MOBILE = PlatformSpec("xiaomi-mi6", "mobile", 100000.0)
