"""DevTools-style metric collection (§3.4).

The paper reads execution time and memory from the browsers' developer
tools; :class:`DevTools` formalises which engine quantities those metrics
correspond to in the reproduction."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class Metrics:
    """One measured page run."""

    execution_time_ms: float
    memory_kb: float
    detail: dict


class DevTools:
    """Turns raw engine accounting into the two metrics the paper reports.

    * Execution time: full script evaluation (parse + compile + execute +
      GC pauses for JS; decode + tier compile + execute + boundary for
      Wasm) plus the fixed page/renderer overhead the paper notes is
      included.
    * Memory: JS heap snapshot (live objects; typed-array backing stores
      are external) or the Wasm linear-memory commitment plus instance
      overhead.
    """

    def __init__(self, platform, profile):
        self.platform = platform
        self.profile = profile

    def js_metrics(self, engine):
        cycles = engine.total_cycles() + self.profile.page_overhead_cycles
        return Metrics(
            execution_time_ms=self.platform.ms(cycles),
            memory_kb=engine.heap.devtools_bytes() / 1024.0,
            detail={
                "parse_cycles": engine.stats.parse_cycles,
                "compile_cycles": engine.stats.compile_cycles,
                "exec_cycles": engine.stats.cycles,
                "gc_runs": engine.heap.gc_runs,
                "tier_ups": engine.stats.tier_ups,
            })

    def wasm_metrics(self, cycles, instance):
        cycles += self.profile.page_overhead_cycles
        memory = (instance.memory.byte_size +
                  self.profile.wasm.instance_overhead_bytes)
        return Metrics(
            execution_time_ms=self.platform.ms(cycles),
            memory_kb=memory / 1024.0,
            detail={
                "instructions": instance.stats.instructions,
                "host_calls": instance.stats.host_calls,
                "memory_grows": instance.stats.memory_grows,
                "linear_pages": instance.memory.pages,
            })
