"""Execution environments: browser engine profiles, platforms, Chrome
flags, and DevTools/adb metric collection."""

from repro.env.platformspec import DESKTOP, MOBILE, PlatformSpec
from repro.env.browser import (
    BrowserProfile,
    WasmEngineConfig,
    chrome_desktop,
    chrome_mobile,
    edge_desktop,
    edge_mobile,
    firefox_desktop,
    firefox_mobile,
    ALL_DESKTOP,
    ALL_MOBILE,
)
from repro.env.runtimes import (
    ALL_RUNTIMES,
    RuntimeProfile,
    wamr_interp,
    wasmer_singlepass,
    wasmtime_style,
    wasmtime_winch,
)
from repro.env.flags import ChromeFlags
from repro.env.devtools import DevTools
from repro.env.adb import AdbCollector

__all__ = [
    "ALL_DESKTOP",
    "ALL_MOBILE",
    "ALL_RUNTIMES",
    "AdbCollector",
    "BrowserProfile",
    "ChromeFlags",
    "DESKTOP",
    "DevTools",
    "MOBILE",
    "PlatformSpec",
    "RuntimeProfile",
    "WasmEngineConfig",
    "chrome_desktop",
    "chrome_mobile",
    "edge_desktop",
    "edge_mobile",
    "firefox_desktop",
    "firefox_mobile",
    "wamr_interp",
    "wasmer_singlepass",
    "wasmtime_style",
    "wasmtime_winch",
]
