"""Android Debug Bridge facade (§4: mobile metrics were collected with
adb).

On the real testbed the paper drives mobile browsers over ``adb`` and
scrapes the same DevTools numbers remotely; here the facade reproduces the
interface (shell transcript included for fidelity of the methodology) and
defers to :class:`repro.env.devtools.DevTools` for the metric definitions.
"""

from __future__ import annotations

from repro.env.devtools import DevTools


class AdbCollector:
    """Collects metrics from a "device" (a mobile PlatformSpec + profile)."""

    def __init__(self, platform, profile, serial="mi6-0001"):
        if platform.kind != "mobile":
            raise ValueError("adb collects from mobile platforms only")
        self.serial = serial
        self.devtools = DevTools(platform, profile)
        self.transcript = []

    def _log(self, command):
        self.transcript.append(f"adb -s {self.serial} {command}")

    def js_metrics(self, engine):
        self._log("shell dumpsys meminfo <browser>")
        self._log("forward tcp:9222 localabstract:chrome_devtools_remote")
        return self.devtools.js_metrics(engine)

    def wasm_metrics(self, cycles, instance):
        self._log("shell dumpsys meminfo <browser>")
        self._log("forward tcp:9222 localabstract:chrome_devtools_remote")
        return self.devtools.wasm_metrics(cycles, instance)
