"""Structured intermediate representation shared by all backends.

The IR deliberately keeps *structured* control flow (for/while/if trees, not
a basic-block CFG): WebAssembly is itself structured, Cheerp's genericjs
output is structured JavaScript, and the optimization passes the paper
discusses (``-globalopt``, ``-vectorize-loops``, ``-argpromotion``,
``-libcalls-shrinkwrap``, fast-math) all act at this level.

Target-dependent *lowering* of the same optimized IR is what produces the
paper's counter-intuitive results: a transformation profitable on x86 can be
a pessimisation on a stack VM.
"""

from repro.ir.nodes import (
    EBin,
    ECall,
    ECast,
    EConst,
    EGlobal,
    ELoad,
    ELocal,
    ESelect,
    EUn,
    Function,
    GArray,
    GScalar,
    Module,
    SAssign,
    SBreak,
    SContinue,
    SDoWhile,
    SExpr,
    SFor,
    SGlobalSet,
    SIf,
    SReturn,
    SStore,
    SWhile,
    elem_size,
    is_float,
    is_signed,
)

__all__ = [
    "EBin", "ECall", "ECast", "EConst", "EGlobal", "ELoad", "ELocal",
    "ESelect", "EUn", "Function", "GArray", "GScalar", "Module",
    "SAssign", "SBreak", "SContinue", "SDoWhile", "SExpr", "SFor",
    "SGlobalSet", "SIf", "SReturn", "SStore", "SWhile",
    "elem_size", "is_float", "is_signed",
]
