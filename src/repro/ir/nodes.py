"""IR node definitions.

Value types: ``i32``, ``u32``, ``i64``, ``u64``, ``f64``.
Array element (storage) types additionally include ``i8``/``u8``/``i16``/
``u16`` — loads widen to ``i32``/``u32``.

All nodes are small mutable classes; passes rewrite trees in place or
rebuild statement lists.
"""

from __future__ import annotations

VALUE_TYPES = ("i32", "u32", "i64", "u64", "f64")
ELEM_TYPES = VALUE_TYPES + ("i8", "u8", "i16", "u16")

_SIZES = {"i8": 1, "u8": 1, "i16": 2, "u16": 2, "i32": 4, "u32": 4,
          "i64": 8, "u64": 8, "f64": 8}


def elem_size(elem_type):
    """Storage size in bytes of an element type."""
    return _SIZES[elem_type]


def is_float(t):
    return t == "f64"


def is_signed(t):
    return t in ("i8", "i16", "i32", "i64")


def value_type_of(elem_type):
    """The value type a load of this element type produces."""
    if elem_type in ("i8", "i16"):
        return "i32"
    if elem_type in ("u8", "u16"):
        return "u32"
    return elem_type


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class Expr:
    __slots__ = ("type",)


class EConst(Expr):
    """A literal. ``no_fold`` marks rematerialised constants that later
    fold passes must leave alone (the -O2 covariance mechanism, §4.2.1)."""

    __slots__ = ("value", "no_fold")

    def __init__(self, value, type_, no_fold=False):
        self.value = value
        self.type = type_
        self.no_fold = no_fold

    def __repr__(self):
        return f"EConst({self.value}:{self.type})"


class ELocal(Expr):
    __slots__ = ("name",)

    def __init__(self, name, type_):
        self.name = name
        self.type = type_

    def __repr__(self):
        return f"ELocal({self.name})"


class EGlobal(Expr):
    """Read of a scalar global."""

    __slots__ = ("name",)

    def __init__(self, name, type_):
        self.name = name
        self.type = type_

    def __repr__(self):
        return f"EGlobal({self.name})"


class ELoad(Expr):
    """Load from a global array: ``array[indices...]`` (row-major)."""

    __slots__ = ("array", "indices")

    def __init__(self, array, indices, type_):
        self.array = array
        self.indices = indices
        self.type = type_

    def __repr__(self):
        return f"ELoad({self.array}[{len(self.indices)}d])"


class EBin(Expr):
    """Binary op. ``op`` is the C operator; signedness and int/float
    behaviour derive from operand types. ``relaxed`` marks fast-math ops."""

    __slots__ = ("op", "left", "right", "relaxed")

    def __init__(self, op, left, right, type_, relaxed=False):
        self.op = op
        self.left = left
        self.right = right
        self.type = type_
        self.relaxed = relaxed

    def __repr__(self):
        return f"EBin({self.op})"


class EUn(Expr):
    """Unary op: ``neg``, ``~``, ``!``."""

    __slots__ = ("op", "expr")

    def __init__(self, op, expr, type_):
        self.op = op
        self.expr = expr
        self.type = type_


class ECast(Expr):
    """Value conversion from ``expr.type`` to ``type``. ``no_fold`` marks
    rematerialised conversions (see :class:`EConst`)."""

    __slots__ = ("expr", "no_fold")

    def __init__(self, expr, type_, no_fold=False):
        self.expr = expr
        self.type = type_
        self.no_fold = no_fold


class ECall(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name, args, type_):
        self.name = name
        self.args = args
        self.type = type_

    def __repr__(self):
        return f"ECall({self.name})"


class ESelect(Expr):
    """Branchless conditional: both arms are evaluated (arms must be pure)."""

    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els, type_):
        self.cond = cond
        self.then = then
        self.els = els
        self.type = type_


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    __slots__ = ()


class SAssign(Stmt):
    __slots__ = ("name", "expr")

    def __init__(self, name, expr):
        self.name = name
        self.expr = expr

    def __repr__(self):
        return f"SAssign({self.name})"


class SGlobalSet(Stmt):
    __slots__ = ("name", "expr")

    def __init__(self, name, expr):
        self.name = name
        self.expr = expr

    def __repr__(self):
        return f"SGlobalSet({self.name})"


class SStore(Stmt):
    __slots__ = ("array", "indices", "expr")

    def __init__(self, array, indices, expr):
        self.array = array
        self.indices = indices
        self.expr = expr

    def __repr__(self):
        return f"SStore({self.array})"


class SIf(Stmt):
    __slots__ = ("cond", "then", "els")

    def __init__(self, cond, then, els=None):
        self.cond = cond
        self.then = then
        self.els = els or []


class SWhile(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        self.cond = cond
        self.body = body


class SDoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body, cond):
        self.body = body
        self.cond = cond


class SFor(Stmt):
    """C-style for. ``init`` and ``step`` are statement lists.

    ``vector_width`` > 0 marks the loop as vectorized by
    ``-vectorize-loops``; backends lower the annotation differently (SIMD on
    x86; scalarisation overhead on Wasm/JS — §4.2.1).
    """

    __slots__ = ("init", "cond", "step", "body", "vector_width")

    def __init__(self, init, cond, step, body, vector_width=0):
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body
        self.vector_width = vector_width


class SBreak(Stmt):
    __slots__ = ()


class SContinue(Stmt):
    __slots__ = ()


class SReturn(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr=None):
        self.expr = expr


class SExpr(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr):
        self.expr = expr


# ---------------------------------------------------------------------------
# Module structure
# ---------------------------------------------------------------------------

class GScalar:
    __slots__ = ("name", "type", "init")

    def __init__(self, name, type_, init=0):
        self.name = name
        self.type = type_
        self.init = init


class GArray:
    """A global array with constant dimensions, row-major."""

    __slots__ = ("name", "elem_type", "dims", "init")

    def __init__(self, name, elem_type, dims, init=None):
        self.name = name
        self.elem_type = elem_type
        self.dims = list(dims)
        self.init = init  # optional flat list of initial values

    @property
    def count(self):
        n = 1
        for d in self.dims:
            n *= d
        return n

    @property
    def byte_size(self):
        return self.count * elem_size(self.elem_type)


class Function:
    __slots__ = ("name", "params", "ret", "locals", "body", "exported")

    def __init__(self, name, params, ret, locals_=None, body=None,
                 exported=False):
        self.name = name
        self.params = params          # list of (name, type)
        self.ret = ret                # value type or None
        self.locals = locals_ or {}   # name -> type (params excluded)
        self.body = body or []
        self.exported = exported

    def local_type(self, name):
        for pname, ptype in self.params:
            if pname == name:
                return ptype
        return self.locals[name]

    def new_temp(self, type_, hint="t"):
        index = len(self.locals)
        while f"__{hint}{index}" in self.locals:
            index += 1
        name = f"__{hint}{index}"
        self.locals[name] = type_
        return name


class Module:
    __slots__ = ("name", "globals", "arrays", "functions", "meta")

    def __init__(self, name="module"):
        self.name = name
        self.globals = {}    # name -> GScalar
        self.arrays = {}     # name -> GArray
        self.functions = {}  # name -> Function
        self.meta = {}

    def function(self, name):
        return self.functions[name]


# ---------------------------------------------------------------------------
# Traversal helpers used by the passes
# ---------------------------------------------------------------------------

def child_exprs(expr):
    """Direct sub-expressions of an expression."""
    if isinstance(expr, EBin):
        return [expr.left, expr.right]
    if isinstance(expr, EUn):
        return [expr.expr]
    if isinstance(expr, ECast):
        return [expr.expr]
    if isinstance(expr, ECall):
        return list(expr.args)
    if isinstance(expr, ELoad):
        return list(expr.indices)
    if isinstance(expr, ESelect):
        return [expr.cond, expr.then, expr.els]
    return []


def walk_exprs(expr):
    """Yield expr and all sub-expressions, pre-order."""
    yield expr
    for child in child_exprs(expr):
        yield from walk_exprs(child)


def stmt_exprs(stmt):
    """Direct expressions of a statement (not descending into bodies)."""
    if isinstance(stmt, (SAssign, SGlobalSet, SExpr)):
        return [stmt.expr]
    if isinstance(stmt, SStore):
        return list(stmt.indices) + [stmt.expr]
    if isinstance(stmt, SIf):
        return [stmt.cond]
    if isinstance(stmt, (SWhile, SDoWhile)):
        return [stmt.cond]
    if isinstance(stmt, SFor):
        return [stmt.cond] if stmt.cond is not None else []
    if isinstance(stmt, SReturn):
        return [stmt.expr] if stmt.expr is not None else []
    return []


def child_bodies(stmt):
    """Nested statement lists of a statement."""
    if isinstance(stmt, SIf):
        return [stmt.then, stmt.els]
    if isinstance(stmt, SWhile):
        return [stmt.body]
    if isinstance(stmt, SDoWhile):
        return [stmt.body]
    if isinstance(stmt, SFor):
        return [stmt.init, stmt.step, stmt.body]
    return []


def walk_stmts(body):
    """Yield every statement in a body, recursively."""
    for stmt in body:
        yield stmt
        for sub in child_bodies(stmt):
            yield from walk_stmts(sub)


def walk_all_exprs(body):
    """Yield every expression under a statement list."""
    for stmt in walk_stmts(body):
        for expr in stmt_exprs(stmt):
            yield from walk_exprs(expr)
