"""-libcalls-shrinkwrap (present at -O2, removed at -Os/-Oz).

Wraps library calls whose result is unused in a domain guard so the call is
skipped when the argument is already in the fast-path domain.  The guard is
extra code (hence its removal at size-optimising levels, §2.1.2)."""

from __future__ import annotations

from repro.ir.nodes import (
    EBin, ECall, EConst, SExpr, SIf, child_bodies,
)

#: Library calls with a cheap domain guard: name -> guard bound.
_GUARDED = {"exp": 700.0, "log": 0.0, "sin": 1e308, "cos": 1e308}


def _wrap_body(body, wrapped):
    out = []
    for stmt in body:
        for sub in child_bodies(stmt):
            sub[:] = _wrap_body(sub, wrapped)
        if isinstance(stmt, SExpr) and isinstance(stmt.expr, ECall) \
                and stmt.expr.name in _GUARDED \
                and len(stmt.expr.args) == 1:
            bound = _GUARDED[stmt.expr.name]
            guard = EBin("<", stmt.expr.args[0], EConst(bound, "f64"),
                         "i32")
            wrapped[0] += 1
            out.append(SIf(guard, [stmt], []))
        else:
            out.append(stmt)
    return out


def libcalls_shrinkwrap(module):
    wrapped = [0]
    for func in module.functions.values():
        func.body[:] = _wrap_body(func.body, wrapped)
    return wrapped[0]
