"""Dead code elimination: unread local assignments, unreachable statements
after return/break/continue, and empty ifs."""

from __future__ import annotations

from repro.ir.nodes import (
    SAssign, SBreak, SContinue, SIf, SReturn, child_bodies,
)
from repro.ir.passes.common import collect_reads, expr_is_pure


def _strip_unreachable(body):
    out = []
    for stmt in body:
        for sub in child_bodies(stmt):
            sub[:] = _strip_unreachable(sub)
        out.append(stmt)
        if isinstance(stmt, (SReturn, SBreak, SContinue)):
            break
    return out


def _remove_dead_assigns(body, live):
    out = []
    for stmt in body:
        for sub in child_bodies(stmt):
            sub[:] = _remove_dead_assigns(sub, live)
        if isinstance(stmt, SAssign) and stmt.name not in live \
                and expr_is_pure(stmt.expr):
            continue
        if isinstance(stmt, SIf) and not stmt.then and not stmt.els \
                and expr_is_pure(stmt.cond):
            continue
        out.append(stmt)
    return out


def dead_code_elimination(module):
    removed = 0
    for func in module.functions.values():
        initial = _count(func.body)
        func.body[:] = _strip_unreachable(func.body)
        # Iterate: removing one dead assignment can kill another's only use.
        for _ in range(8):
            live = collect_reads(func.body)
            before = _count(func.body)
            func.body[:] = _remove_dead_assigns(func.body, live)
            if _count(func.body) == before:
                break
        removed += initial - _count(func.body)
        live = collect_reads(func.body)
        for name in [n for n in func.locals if n not in live]:
            # Keep the declaration only if something still assigns it.
            if not _still_assigned(func.body, name):
                del func.locals[name]
                removed += 1
    return removed


def _count(body):
    total = len(body)
    for stmt in body:
        for sub in child_bodies(stmt):
            total += _count(sub)
    return total


def _still_assigned(body, name):
    for stmt in body:
        if isinstance(stmt, SAssign) and stmt.name == name:
            return True
        for sub in child_bodies(stmt):
            if _still_assigned(sub, name):
                return True
    return False
