"""-licm: hoist loop-invariant pure subexpressions to temporaries computed
before the loop."""

from __future__ import annotations

from repro.ir.nodes import (
    EBin, ECast, EConst, ELoad, ELocal, EGlobal, ESelect, EUn, SAssign,
    SDoWhile, SFor, SWhile, child_exprs, walk_exprs,
)
from repro.ir.passes.common import (
    collect_writes, expr_key, expr_size, map_stmt_exprs,
)

_MIN_HOIST_SIZE = 2


def _invariant(expr, locals_w, arrays_w, globals_w):
    for e in walk_exprs(expr):
        if isinstance(e, ELocal) and e.name in locals_w:
            return False
        if isinstance(e, EGlobal) and e.name in globals_w:
            return False
        if isinstance(e, ELoad) and (e.array in arrays_w or arrays_w):
            # Conservative: any store in the loop kills load hoisting
            # (no alias analysis across arrays was needed for the suites).
            return False
        from repro.ir.nodes import ECall
        if isinstance(e, ECall):
            return False
    return True


def _hoist_in_loop(func, loop, body, cond_exprs):
    locals_w, arrays_w, globals_w = collect_writes(body)
    # For-loops also write their step variables.
    if isinstance(loop, SFor):
        extra_w = collect_writes(loop.step)
        locals_w |= extra_w[0]
        arrays_w |= extra_w[1]
        globals_w |= extra_w[2]
    hoisted = {}
    prelude = []

    def visit(e):
        if isinstance(e, (EConst, ELocal, EGlobal)):
            return e
        if isinstance(e, (EBin, EUn, ECast, ESelect)) and \
                expr_size(e) >= _MIN_HOIST_SIZE and \
                _invariant(e, locals_w, arrays_w, globals_w):
            key = expr_key(e)
            if key not in hoisted:
                temp = func.new_temp(e.type, "licm")
                hoisted[key] = (temp, e.type)
                prelude.append(SAssign(temp, e))
            name, t = hoisted[key]
            return ELocal(name, t)
        return e

    from repro.ir.passes.common import map_expr

    def rewrite_stmt(stmt):
        map_stmt_exprs(stmt, visit)

    from repro.ir.nodes import child_bodies, walk_stmts
    for stmt in body:
        rewrite_stmt(stmt)
        for sub in child_bodies(stmt):
            for inner in walk_stmts(sub):
                rewrite_stmt(inner)
    # The loop condition is evaluated every iteration too.
    if isinstance(loop, (SWhile, SDoWhile, SFor)) and loop.cond is not None:
        loop.cond = map_expr(loop.cond, visit)
    return prelude


def _process(func, body, hoists):
    out = []
    for stmt in body:
        if isinstance(stmt, (SWhile, SDoWhile, SFor)):
            # Innermost-first: process nested loops before this one.
            stmt.body[:] = _process(func, stmt.body, hoists)
            prelude = _hoist_in_loop(func, stmt, stmt.body,
                                     [stmt.cond] if stmt.cond else [])
            hoists[0] += len(prelude)
            out.extend(prelude)
            out.append(stmt)
        else:
            from repro.ir.nodes import SIf
            if isinstance(stmt, SIf):
                stmt.then[:] = _process(func, stmt.then, hoists)
                stmt.els[:] = _process(func, stmt.els, hoists)
            out.append(stmt)
    return out


def loop_invariant_code_motion(module):
    hoists = [0]
    for func in module.functions.values():
        func.body[:] = _process(func, func.body, hoists)
    return hoists[0]
