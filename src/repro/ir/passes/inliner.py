"""-inline: inline small expression functions at their call sites.

A function is inlinable when its body is exactly ``return <expr>;`` with a
pure expression and no recursion — exactly the helper shape CHStone's
softfloat kernels use heavily.  The arguments are substituted for the
parameters (arguments at call sites are pure after the frontend's
normalisation, so duplication is safe)."""

from __future__ import annotations

from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    SReturn, walk_exprs, walk_stmts,
)
from repro.ir.passes.common import expr_is_pure, expr_size, map_stmt_exprs

#: Cost threshold: expression size an inlined body may have.
_MAX_INLINE_SIZE = 24


def _substitute(expr, env):
    if isinstance(expr, ELocal):
        replacement = env.get(expr.name)
        return _copy(replacement) if replacement is not None else \
            ELocal(expr.name, expr.type)
    if isinstance(expr, EConst):
        return EConst(expr.value, expr.type, expr.no_fold)
    if isinstance(expr, EGlobal):
        return EGlobal(expr.name, expr.type)
    if isinstance(expr, ELoad):
        return ELoad(expr.array, [_substitute(i, env) for i in expr.indices],
                     expr.type)
    if isinstance(expr, EBin):
        return EBin(expr.op, _substitute(expr.left, env),
                    _substitute(expr.right, env), expr.type, expr.relaxed)
    if isinstance(expr, EUn):
        return EUn(expr.op, _substitute(expr.expr, env), expr.type)
    if isinstance(expr, ECast):
        return ECast(_substitute(expr.expr, env), expr.type, expr.no_fold)
    if isinstance(expr, ESelect):
        return ESelect(_substitute(expr.cond, env),
                       _substitute(expr.then, env),
                       _substitute(expr.els, env), expr.type)
    if isinstance(expr, ECall):
        return ECall(expr.name,
                     [_substitute(a, env) for a in expr.args], expr.type)
    raise TypeError(type(expr))


def _copy(expr):
    return _substitute(expr, {})


def _inlinable(func):
    if len(func.body) != 1 or not isinstance(func.body[0], SReturn):
        return False
    expr = func.body[0].expr
    if expr is None or not expr_is_pure(expr):
        return False
    if expr_size(expr) > _MAX_INLINE_SIZE:
        return False
    # No self-reference (pure exprs have no calls at all, but keep the
    # check in case purity is relaxed later).
    return all(not isinstance(e, ECall) for e in walk_exprs(expr))


def inline_functions(module):
    candidates = {}
    for func in module.functions.values():
        if func.body and _inlinable(func) and func.name != "main":
            candidates[func.name] = func

    if not candidates:
        return 0

    inlined = [0]

    def visit(e):
        if isinstance(e, ECall) and e.name in candidates:
            callee = candidates[e.name]
            if all(expr_is_pure(a) for a in e.args):
                env = {pname: arg
                       for (pname, _t), arg in zip(callee.params, e.args)}
                inlined[0] += 1
                return _substitute(callee.body[0].expr, env)
        return e

    for func in module.functions.values():
        for stmt in walk_stmts(func.body):
            map_stmt_exprs(stmt, visit)

    # Remove inlined functions that are now uncalled.
    still_called = set()
    for func in module.functions.values():
        for stmt in walk_stmts(func.body):
            from repro.ir.nodes import stmt_exprs
            for root in stmt_exprs(stmt):
                for e in walk_exprs(root):
                    if isinstance(e, ECall):
                        still_called.add(e.name)
    for name in list(candidates):
        if name not in still_called:
            del module.functions[name]
    return inlined[0]
