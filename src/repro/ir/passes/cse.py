"""-gvn (block-local flavour): common subexpression elimination over
straight-line statement runs.

Repeated pure subexpressions (including array loads) are computed once into
a temporary.  Invalidation is conservative: assigning a local kills every
expression reading it; storing to an array kills that array's loads; any
call kills all loads and global reads.
"""

from __future__ import annotations

from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    SAssign, SExpr, SGlobalSet, SIf, SReturn, SStore, child_bodies,
    walk_exprs,
)
from repro.ir.passes.common import expr_key, expr_size, map_expr

_MIN_SIZE = 2


class _BlockState:
    def __init__(self, func, hits):
        self.func = func
        self.available = {}   # key -> (temp_name, type)
        self.out = []
        self.hits = hits      # shared [count] of reused subexpressions

    def kill_local(self, name):
        self.available = {k: v for k, v in self.available.items()
                          if ("l", name) not in _flatten(k)}

    def kill_array(self, array):
        self.available = {k: v for k, v in self.available.items()
                          if not _mentions_array(k, array)}

    def kill_global(self, name):
        self.available = {k: v for k, v in self.available.items()
                          if ("g", name) not in _flatten(k)}

    def kill_all_memory(self):
        self.available = {k: v for k, v in self.available.items()
                          if not _mentions_any_load(k)}

    def number(self, expr):
        """Rewrite expr bottom-up replacing repeated subtrees."""
        def visit(e):
            if isinstance(e, (EConst, ELocal, EGlobal)):
                return e
            if isinstance(e, ECall):
                return e
            if expr_size(e) < _MIN_SIZE:
                return e
            key = expr_key(e)
            hit = self.available.get(key)
            if hit is not None:
                self.hits[0] += 1
                return ELocal(hit[0], hit[1])
            if _has_call(e):
                return e
            temp = self.func.new_temp(e.type, "cse")
            self.out.append(SAssign(temp, e))
            self.available[key] = (temp, e.type)
            return ELocal(temp, e.type)
        return map_expr(expr, visit)


def _flatten(key, acc=None):
    if acc is None:
        acc = set()
    if isinstance(key, tuple):
        if len(key) == 2 and key[0] in ("l", "g"):
            acc.add(key)
        for part in key:
            _flatten(part, acc)
    return acc


def _mentions_array(key, array):
    if isinstance(key, tuple):
        if key and key[0] == "ld" and len(key) > 1 and key[1] == array:
            return True
        return any(_mentions_array(part, array) for part in key)
    return False


def _mentions_any_load(key):
    if isinstance(key, tuple):
        if key and key[0] in ("ld", "g"):
            return True
        return any(_mentions_any_load(part) for part in key)
    return False


def _has_call(expr):
    return any(isinstance(e, ECall) for e in walk_exprs(expr))


def _process_block(func, body, hits):
    state = _BlockState(func, hits)
    for stmt in body:
        if isinstance(stmt, SAssign):
            stmt.expr = state.number(stmt.expr)
            state.kill_local(stmt.name)
            state.out.append(stmt)
            if _has_call(stmt.expr):
                state.kill_all_memory()
        elif isinstance(stmt, SStore):
            stmt.indices = [state.number(i) for i in stmt.indices]
            stmt.expr = state.number(stmt.expr)
            state.out.append(stmt)
            state.kill_array(stmt.array)
            if _has_call(stmt.expr):
                state.kill_all_memory()
        elif isinstance(stmt, SGlobalSet):
            stmt.expr = state.number(stmt.expr)
            state.out.append(stmt)
            state.kill_global(stmt.name)
            if _has_call(stmt.expr):
                state.kill_all_memory()
        elif isinstance(stmt, SReturn):
            if stmt.expr is not None:
                stmt.expr = state.number(stmt.expr)
            state.out.append(stmt)
        elif isinstance(stmt, SExpr):
            state.out.append(stmt)
            state.kill_all_memory()
        else:
            # Control statement: recurse into its bodies, reset numbering.
            for sub in child_bodies(stmt):
                sub[:] = _process_block(func, sub, hits)
            state.out.append(stmt)
            state.available = {}
    return state.out


def _cleanup_single_use(func):
    """Value numbering is eager (every candidate subtree gets a temp); this
    cleanup inlines temps that were never actually reused, restoring the
    original expression at the single use site (safe: a use site was only
    rewritten while the value was still available)."""
    from repro.ir.nodes import stmt_exprs, walk_stmts
    reads = {}
    for stmt in walk_stmts(func.body):
        for root in stmt_exprs(stmt):
            for e in walk_exprs(root):
                if isinstance(e, ELocal) and e.name.startswith("__cse"):
                    reads[e.name] = reads.get(e.name, 0) + 1
    defs = {}
    for stmt in walk_stmts(func.body):
        if isinstance(stmt, SAssign) and stmt.name.startswith("__cse") \
                and reads.get(stmt.name, 0) <= 1:
            defs[stmt.name] = stmt.expr

    if not defs:
        return

    from repro.ir.passes.common import map_expr

    def visit(e):
        if isinstance(e, ELocal) and e.name in defs:
            # Resolve chains: a temp's definition may reference other
            # single-use temps created for its subtrees.
            return map_expr(defs[e.name], visit)
        return e

    def rewrite(body):
        out = []
        for stmt in body:
            for sub in child_bodies(stmt):
                sub[:] = rewrite(sub)
            if isinstance(stmt, SAssign) and stmt.name in defs:
                del func.locals[stmt.name]
                continue
            from repro.ir.passes.common import map_stmt_exprs
            map_stmt_exprs(stmt, visit)
            out.append(stmt)
        return out

    func.body[:] = rewrite(func.body)


def common_subexpression_elimination(module):
    hits = [0]
    for func in module.functions.values():
        func.body[:] = _process_block(func, func.body, hits)
        _cleanup_single_use(func)
    return hits[0]
