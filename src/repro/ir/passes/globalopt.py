"""-globalopt: remove globals (scalars and arrays) that are never read,
together with every store to them — the pass whose absence from Cheerp's
-Ofast pipeline explains the ADPCM anomaly (§4.2.1, Fig. 7).

When the module has been marked by fast-math (``module.meta['fastmath']``)
and ``conservative_with_fastmath`` is set, the pass refuses to remove array
stores — modelling the LLVM 3.7-era interaction (cf. LLVM bug 37449 cited
by the paper) where relaxed-FP function attributes defeat the dead-global
analysis.  Cheerp's pipelines run the conservative variant; the newer
LLVM-x86 pipeline does not.
"""

from __future__ import annotations

import functools

from repro.ir.nodes import (
    EGlobal, ELoad, SGlobalSet, SStore, child_bodies, stmt_exprs,
    walk_exprs, walk_stmts,
)


def _collect_reads(module):
    scalar_reads = set()
    array_reads = set()
    for func in module.functions.values():
        for stmt in walk_stmts(func.body):
            for root in stmt_exprs(stmt):
                for e in walk_exprs(root):
                    if isinstance(e, EGlobal):
                        scalar_reads.add(e.name)
                    elif isinstance(e, ELoad):
                        array_reads.add(e.array)
            # Store *indices* also read (they are exprs of the stmt —
            # already covered by stmt_exprs).
    return scalar_reads, array_reads


def _remove_stores(body, dead_scalars, dead_arrays):
    out = []
    for stmt in body:
        for sub in child_bodies(stmt):
            sub[:] = _remove_stores(sub, dead_scalars, dead_arrays)
        if isinstance(stmt, SGlobalSet) and stmt.name in dead_scalars:
            from repro.ir.passes.common import expr_is_pure
            if expr_is_pure(stmt.expr):
                continue
        if isinstance(stmt, SStore) and stmt.array in dead_arrays:
            from repro.ir.passes.common import expr_is_pure
            if expr_is_pure(stmt.expr) and \
                    all(expr_is_pure(i) for i in stmt.indices):
                continue
        out.append(stmt)
    return out


def _stmt_count(body):
    total = len(body)
    for stmt in body:
        for sub in child_bodies(stmt):
            total += _stmt_count(sub)
    return total


def global_opt(module, conservative_with_fastmath=False):
    scalar_reads, array_reads = _collect_reads(module)
    dead_scalars = set(module.globals) - scalar_reads
    dead_arrays = set(module.arrays) - array_reads
    if conservative_with_fastmath and module.meta.get("fastmath"):
        # The relaxed-FP attribute poisons the array analysis (old-LLVM
        # behaviour): keep every array and its stores.
        dead_arrays = set()
    if not dead_scalars and not dead_arrays:
        return 0
    removed = len(dead_scalars) + len(dead_arrays)
    for func in module.functions.values():
        before = _stmt_count(func.body)
        func.body[:] = _remove_stores(func.body, dead_scalars, dead_arrays)
        removed += before - _stmt_count(func.body)
    for name in dead_scalars:
        del module.globals[name]
    for name in dead_arrays:
        del module.arrays[name]
    return removed


def global_opt_conservative(module):
    """Cheerp-pipeline variant of -globalopt (see module docstring)."""
    return global_opt(module, conservative_with_fastmath=True)
