"""-unroll: 2× unrolling of innermost counted loops (LLVM-x86 -Ofast/-O3
pipelines only; Cheerp's LLVM 3.7 did not runtime-unroll).

Transformation (semantics-preserving for pure conditions)::

    for (init; c; s) B     →    for (init; c; s) { B; s; if (!c) break; B }

Code size grows with the duplicated body — the Fig. 6 x86 -Ofast code-size
increase."""

from __future__ import annotations

import copy

from repro.ir.nodes import (
    EUn, SAssign, SBreak, SDoWhile, SFor, SIf, SStore, SWhile,
    child_bodies, stmt_exprs, walk_exprs,
)
from repro.ir.passes.common import expr_is_pure
from repro.ir.passes.vectorize import _has_loop, _unit_step


def _clone_body(body):
    return copy.deepcopy(body)


def _qualifies(loop):
    if not isinstance(loop, SFor):
        return False
    if _has_loop(loop.body):
        return False
    if _unit_step(loop) is None:
        return False
    if loop.cond is None or not expr_is_pure(loop.cond):
        return False
    for stmt in loop.body:
        if not isinstance(stmt, (SAssign, SStore)):
            return False
    return True


def _visit(body, unrolled):
    for stmt in body:
        if _qualifies(stmt):
            first = stmt.body
            second = _clone_body(stmt.body)
            cond = copy.deepcopy(stmt.cond)
            stmt.body = (list(first) + list(copy.deepcopy(stmt.step)) +
                         [SIf(EUn("!", cond, "i32"), [SBreak()], [])] +
                         second)
            unrolled[0] += 1
        else:
            for sub in child_bodies(stmt):
                _visit(sub, unrolled)


def unroll_loops(module):
    unrolled = [0]
    for func in module.functions.values():
        _visit(func.body, unrolled)
    return unrolled[0]
