"""Optimization passes.

Each pass is a callable ``pass_fn(module) -> None`` mutating the IR.
The toolchain facades (:mod:`repro.compilers`) assemble them into the
``-O1``/``-O2``/``-Ofast``/``-Os``/``-Oz`` pipelines whose target-dependent
behaviour Section 4.2 of the paper measures.
"""

from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.cse import common_subexpression_elimination
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.fastmath import fast_math
from repro.ir.passes.globalopt import global_opt
from repro.ir.passes.inliner import inline_functions
from repro.ir.passes.licm import loop_invariant_code_motion
from repro.ir.passes.remat import rematerialize_constants
from repro.ir.passes.shrinkwrap import libcalls_shrinkwrap
from repro.ir.passes.unroll import unroll_loops
from repro.ir.passes.vectorize import vectorize_loops

#: Registry by LLVM-style pass name (used in reports and ablations).
PASSES = {
    "constfold": constant_fold,
    "dce": dead_code_elimination,
    "globalopt": global_opt,
    "licm": loop_invariant_code_motion,
    "gvn": common_subexpression_elimination,
    "inline": inline_functions,
    "vectorize-loops": vectorize_loops,
    "remat-consts": rematerialize_constants,
    "fast-math": fast_math,
    "libcalls-shrinkwrap": libcalls_shrinkwrap,
    "unroll": unroll_loops,
}


def run_pipeline(module, passes):
    """Run a pass pipeline over a module; returns the pass names applied."""
    applied = []
    for entry in passes:
        if callable(entry):
            entry(module)
            applied.append(getattr(entry, "__name__", str(entry)))
        else:
            PASSES[entry](module)
            applied.append(entry)
    module.meta.setdefault("passes", []).extend(applied)
    return applied


__all__ = [
    "PASSES",
    "common_subexpression_elimination",
    "constant_fold",
    "dead_code_elimination",
    "fast_math",
    "global_opt",
    "inline_functions",
    "libcalls_shrinkwrap",
    "loop_invariant_code_motion",
    "rematerialize_constants",
    "run_pipeline",
    "unroll_loops",
    "vectorize_loops",
]
