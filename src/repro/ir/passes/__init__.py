"""Optimization passes.

Each pass is a callable ``pass_fn(module) -> int | None`` mutating the
IR; an integer return is the number of rewrites the pass applied (its
``-ftime-report``-style work count).  The toolchain facades
(:mod:`repro.compilers`) assemble them into the
``-O1``/``-O2``/``-Ofast``/``-Os``/``-Oz`` pipelines whose target-dependent
behaviour Section 4.2 of the paper measures.

``run_pipeline`` records per-pass telemetry (IR node counts in/out,
rewrites applied, wall time) into ``module.meta["pass_telemetry"]``.
Only *wallclock* metrics and span events are published live here; the
deterministic counters ride the compile artifact and are replayed on
every cache serve (see ``ToolchainBase._cached_compile``) so cold and
cache-warm runs report identical values.
"""

import time

from repro.ir.nodes import stmt_exprs, walk_exprs, walk_stmts
from repro.ir.passes.constfold import constant_fold
from repro.ir.passes.cse import common_subexpression_elimination
from repro.ir.passes.dce import dead_code_elimination
from repro.ir.passes.fastmath import fast_math
from repro.ir.passes.globalopt import global_opt
from repro.ir.passes.inliner import inline_functions
from repro.ir.passes.licm import loop_invariant_code_motion
from repro.ir.passes.remat import rematerialize_constants
from repro.ir.passes.shrinkwrap import libcalls_shrinkwrap
from repro.ir.passes.unroll import unroll_loops
from repro.ir.passes.vectorize import vectorize_loops

#: Registry by LLVM-style pass name (used in reports and ablations).
PASSES = {
    "constfold": constant_fold,
    "dce": dead_code_elimination,
    "globalopt": global_opt,
    "licm": loop_invariant_code_motion,
    "gvn": common_subexpression_elimination,
    "inline": inline_functions,
    "vectorize-loops": vectorize_loops,
    "remat-consts": rematerialize_constants,
    "fast-math": fast_math,
    "libcalls-shrinkwrap": libcalls_shrinkwrap,
    "unroll": unroll_loops,
}


def count_nodes(module):
    """Deterministic IR size: top-level definitions plus every statement
    and expression — the per-pass in/out size the report shows."""
    total = len(module.functions) + len(module.globals) + len(module.arrays)
    for func in module.functions.values():
        for stmt in walk_stmts(func.body):
            total += 1
            for root in stmt_exprs(stmt):
                for _ in walk_exprs(root):
                    total += 1
    return total


def run_pipeline(module, passes):
    """Run a pass pipeline over a module; returns the pass names applied."""
    from repro.obs import WALL, emit, events_enabled, get_registry
    applied = []
    telemetry = module.meta.setdefault("pass_telemetry", [])
    reg = get_registry()
    nodes = count_nodes(module)
    for entry in passes:
        if callable(entry):
            fn = entry
            name = getattr(entry, "__name__", str(entry))
        else:
            fn = PASSES[entry]
            name = entry
        nodes_in = nodes
        t0 = time.perf_counter()
        ret = fn(module)
        wall_ms = (time.perf_counter() - t0) * 1000.0
        nodes = count_nodes(module)
        rewrites = ret if isinstance(ret, int) else 0
        applied.append(name)
        telemetry.append({"pass": name, "nodes_in": nodes_in,
                          "nodes_out": nodes, "rewrites": rewrites,
                          "wall_ms": wall_ms})
        reg.counter_add(f"pass.{name}.wall_ms", wall_ms, WALL)
        if events_enabled():
            emit("pass", name=name, module=module.name,
                 nodes_in=nodes_in, nodes_out=nodes, rewrites=rewrites,
                 wall_ms=round(wall_ms, 3))
    module.meta.setdefault("passes", []).extend(applied)
    return applied


__all__ = [
    "PASSES",
    "common_subexpression_elimination",
    "constant_fold",
    "count_nodes",
    "dead_code_elimination",
    "fast_math",
    "global_opt",
    "inline_functions",
    "libcalls_shrinkwrap",
    "loop_invariant_code_motion",
    "rematerialize_constants",
    "run_pipeline",
    "unroll_loops",
    "vectorize_loops",
]
