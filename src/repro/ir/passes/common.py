"""Shared helpers for the pass implementations."""

from __future__ import annotations

from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    SAssign, SDoWhile, SFor, SGlobalSet, SIf, SStore, SWhile,
    child_bodies, stmt_exprs, walk_exprs, walk_stmts,
)


def map_expr(expr, fn):
    """Rebuild an expression bottom-up: ``fn`` sees each node after its
    children were rewritten and returns the replacement."""
    if isinstance(expr, EBin):
        expr.left = map_expr(expr.left, fn)
        expr.right = map_expr(expr.right, fn)
    elif isinstance(expr, EUn):
        expr.expr = map_expr(expr.expr, fn)
    elif isinstance(expr, ECast):
        expr.expr = map_expr(expr.expr, fn)
    elif isinstance(expr, ECall):
        expr.args = [map_expr(a, fn) for a in expr.args]
    elif isinstance(expr, ELoad):
        expr.indices = [map_expr(i, fn) for i in expr.indices]
    elif isinstance(expr, ESelect):
        expr.cond = map_expr(expr.cond, fn)
        expr.then = map_expr(expr.then, fn)
        expr.els = map_expr(expr.els, fn)
    return fn(expr)


def map_stmt_exprs(stmt, fn):
    """Apply :func:`map_expr` to every expression of one statement."""
    if isinstance(stmt, (SAssign, SGlobalSet)):
        stmt.expr = map_expr(stmt.expr, fn)
    elif isinstance(stmt, SStore):
        stmt.indices = [map_expr(i, fn) for i in stmt.indices]
        stmt.expr = map_expr(stmt.expr, fn)
    elif isinstance(stmt, SIf):
        stmt.cond = map_expr(stmt.cond, fn)
    elif isinstance(stmt, (SWhile, SDoWhile)):
        stmt.cond = map_expr(stmt.cond, fn)
    elif isinstance(stmt, SFor):
        if stmt.cond is not None:
            stmt.cond = map_expr(stmt.cond, fn)
    else:
        from repro.ir.nodes import SExpr, SReturn
        if isinstance(stmt, SReturn) and stmt.expr is not None:
            stmt.expr = map_expr(stmt.expr, fn)
        elif isinstance(stmt, SExpr):
            stmt.expr = map_expr(stmt.expr, fn)


def map_body_exprs(body, fn):
    for stmt in walk_stmts(body):
        map_stmt_exprs(stmt, fn)


def expr_is_pure(expr):
    """True if the expression has no calls (loads count as pure)."""
    return not any(isinstance(e, ECall) for e in walk_exprs(expr))


def expr_key(expr):
    """Canonical structural key for CSE/LICM value numbering."""
    if isinstance(expr, EConst):
        return ("c", expr.value, expr.type, expr.no_fold)
    if isinstance(expr, ELocal):
        return ("l", expr.name)
    if isinstance(expr, EGlobal):
        return ("g", expr.name)
    if isinstance(expr, ELoad):
        return ("ld", expr.array) + tuple(expr_key(i) for i in expr.indices)
    if isinstance(expr, EBin):
        return ("b", expr.op, expr.type, expr_key(expr.left),
                expr_key(expr.right))
    if isinstance(expr, EUn):
        return ("u", expr.op, expr_key(expr.expr))
    if isinstance(expr, ECast):
        return ("cast", expr.type, expr.no_fold, expr_key(expr.expr))
    if isinstance(expr, ESelect):
        return ("sel", expr_key(expr.cond), expr_key(expr.then),
                expr_key(expr.els))
    if isinstance(expr, ECall):
        return ("call", expr.name) + tuple(expr_key(a) for a in expr.args)
    return ("?", id(expr))


def expr_size(expr):
    return sum(1 for _ in walk_exprs(expr))


def collect_reads(body):
    """Local names read anywhere in a body."""
    names = set()
    for stmt in walk_stmts(body):
        for root in stmt_exprs(stmt):
            for e in walk_exprs(root):
                if isinstance(e, ELocal):
                    names.add(e.name)
    return names


def collect_writes(body):
    """(assigned locals, stored arrays, set globals) of a body."""
    locals_w = set()
    arrays_w = set()
    globals_w = set()
    for stmt in walk_stmts(body):
        if isinstance(stmt, SAssign):
            locals_w.add(stmt.name)
        elif isinstance(stmt, SStore):
            arrays_w.add(stmt.array)
        elif isinstance(stmt, SGlobalSet):
            globals_w.add(stmt.name)
    return locals_w, arrays_w, globals_w


def has_calls(body):
    for stmt in walk_stmts(body):
        for root in stmt_exprs(stmt):
            for e in walk_exprs(root):
                if isinstance(e, ECall):
                    return True
    return False
