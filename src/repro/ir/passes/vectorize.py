"""-vectorize-loops: mark innermost vectorizable loops.

LLVM's loop vectorizer targets SIMD hardware.  The pass itself is target-
independent — it *annotates* qualifying loops with ``vector_width = 4`` —
and the backends lower the annotation:

* x86: body instructions issue at SIMD throughput (a large win — Fig. 6);
* Wasm (pre-SIMD MVP) and JavaScript: the vector IR must be scalarised
  back, paying per-iteration lane bookkeeping (a small loss — Fig. 5 and
  Table 2's counter-intuitive -O2 results).

Qualifying loops: innermost ``for`` with unit-step induction variable, a
``<``/``<=`` bound, straight-line body of assignments/stores, no calls, and
at least one f64 operation (integer-only loops rarely vectorised at -O2 in
LLVM 3.7)."""

from __future__ import annotations

from repro.ir.nodes import (
    EBin, ECall, EConst, ELocal, SAssign, SDoWhile, SFor, SIf, SStore,
    SWhile, child_bodies, is_float, stmt_exprs, walk_exprs,
)


def _has_loop(body):
    for stmt in body:
        if isinstance(stmt, (SFor, SWhile, SDoWhile)):
            return True
        for sub in child_bodies(stmt):
            if _has_loop(sub):
                return True
    return False


def _unit_step(loop):
    if len(loop.step) != 1 or not isinstance(loop.step[0], SAssign):
        return None
    step = loop.step[0]
    e = step.expr
    if isinstance(e, EBin) and e.op == "+" and \
            isinstance(e.left, ELocal) and e.left.name == step.name and \
            isinstance(e.right, EConst) and e.right.value == 1:
        return step.name
    return None


def _qualifies(loop):
    if not isinstance(loop, SFor) or loop.vector_width:
        return False
    if _has_loop(loop.body):
        return False
    var = _unit_step(loop)
    if var is None:
        return False
    cond = loop.cond
    if not (isinstance(cond, EBin) and cond.op in ("<", "<=") and
            isinstance(cond.left, ELocal) and cond.left.name == var):
        return False
    has_f64 = False
    for stmt in loop.body:
        if not isinstance(stmt, (SAssign, SStore)):
            return False
        for root in stmt_exprs(stmt):
            for e in walk_exprs(root):
                if isinstance(e, ECall):
                    return False
                if isinstance(e, EBin) and is_float(e.type):
                    has_f64 = True
    return has_f64


def _visit(body, marked):
    for stmt in body:
        if _qualifies(stmt):
            stmt.vector_width = 4
            marked[0] += 1
        else:
            for sub in child_bodies(stmt):
                _visit(sub, marked)


def vectorize_loops(module):
    marked = [0]
    for func in module.functions.values():
        _visit(func.body, marked)
    return marked[0]
