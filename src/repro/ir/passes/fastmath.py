"""-Ofast's fast-math bundle (-ffast-math, -fno-signed-zeros, ...).

Two effects:

* **Reciprocal strength reduction**: ``x / C`` → ``x * (1/C)`` — the real
  win -Ofast delivers (division is ~7× a multiply on every target).
* The module is marked ``meta['fastmath']`` — relaxed-FP function
  attributes.  Cheerp's old-LLVM -globalopt becomes conservative under this
  flag (see :mod:`repro.ir.passes.globalopt`), which is how -Ofast *misses*
  the dead-store elimination -O2 performs (the paper's ADPCM case, Fig. 7).
"""

from __future__ import annotations

from repro.ir.nodes import EBin, EConst, is_float, walk_stmts
from repro.ir.passes.common import map_stmt_exprs


def _relax(e):
    if isinstance(e, EBin) and is_float(e.type):
        e.relaxed = True
        if e.op == "/" and isinstance(e.right, EConst) \
                and not e.right.no_fold and e.right.value not in (0.0, None):
            recip = 1.0 / float(e.right.value)
            return EBin("*", e.left, EConst(recip, "f64"), "f64",
                        relaxed=True)
    return e


def fast_math(module):
    module.meta["fastmath"] = True
    rewrites = [0]

    def relax(e):
        out = _relax(e)
        if out is not e:
            rewrites[0] += 1
        return out

    for func in module.functions.values():
        for stmt in walk_stmts(func.body):
            map_stmt_exprs(stmt, relax)
    return rewrites[0]
