"""Constant folding and algebraic simplification (LLVM's instcombine-lite).

Respects the ``no_fold`` flag that :mod:`repro.ir.passes.remat` sets — the
paper's -O2 covariance case depends on rematerialised constants surviving
to codegen as const+convert sequences.
"""

from __future__ import annotations

import math

from repro.ir.nodes import (
    EBin, ECast, EConst, EUn, SIf, SWhile, is_float, child_bodies,
    walk_stmts,
)
from repro.ir.passes.common import map_stmt_exprs


def _mask(value, type_):
    if type_ == "f64":
        return float(value)
    bits = 64 if type_ in ("i64", "u64") else 32
    value = int(value) & ((1 << bits) - 1)
    if type_ in ("i32", "i64") and value >> (bits - 1):
        value -= 1 << bits
    return value


def _as_unsigned(value, type_):
    bits = 64 if type_ in ("i64", "u64") else 32
    return int(value) & ((1 << bits) - 1)


def _fold_bin(e):
    a, b = e.left, e.right
    both_const = (isinstance(a, EConst) and not a.no_fold and
                  isinstance(b, EConst) and not b.no_fold)
    if both_const:
        return _eval_bin(e, a.value, b.value)
    # Algebraic identities (integer only — x+0.0 must keep -0.0 semantics
    # unless fast-math marked the op relaxed).
    relaxed_ok = not is_float(e.type) or e.relaxed
    if isinstance(b, EConst) and not b.no_fold and relaxed_ok:
        if e.op == "+" and b.value == 0:
            return a
        if e.op == "-" and b.value == 0:
            return a
        if e.op == "*" and b.value == 1:
            return a
        if e.op == "/" and b.value == 1:
            return a
        if e.op in ("<<", ">>") and b.value == 0:
            return a
    if isinstance(a, EConst) and not a.no_fold and relaxed_ok:
        if e.op == "+" and a.value == 0:
            return b
        if e.op == "*" and a.value == 1:
            return b
    return e


def _f64_div(x, y):
    """Fold ``/`` with the engines' exact semantics (``_f64_div`` in the
    Wasm VM, ``_fdiv`` in the native machine): a zero divisor keeps its
    sign, and a NaN dividend stays NaN instead of becoming ±inf."""
    x, y = float(x), float(y)
    if y == 0.0:
        if x == 0.0 or x != x:
            return math.nan
        return math.copysign(math.inf, x) * math.copysign(1.0, y)
    return x / y


def _eval_bin(e, x, y):
    op = e.op
    t = e.type
    try:
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ot = e.left.type
            if ot in ("u32", "u64"):
                x, y = _as_unsigned(x, ot), _as_unsigned(y, ot)
            result = {"==": x == y, "!=": x != y, "<": x < y,
                      "<=": x <= y, ">": x > y, ">=": x >= y}[op]
            return EConst(1 if result else 0, "i32")
        if t == "f64":
            value = {"+": x + y, "-": x - y, "*": x * y,
                     "/": _f64_div(x, y) if op == "/" else None}[op]
            return EConst(float(value), "f64")
        if op == "/":
            if y == 0:
                return e
            if t in ("u32", "u64"):
                value = _as_unsigned(x, t) // _as_unsigned(y, t)
            else:
                q = abs(x) // abs(y)
                value = q if (x < 0) == (y < 0) else -q
        elif op == "%":
            if y == 0:
                return e
            if t in ("u32", "u64"):
                value = _as_unsigned(x, t) % _as_unsigned(y, t)
            else:
                r = abs(x) % abs(y)
                value = -r if x < 0 else r
        elif op == ">>":
            if t in ("u32", "u64"):
                value = _as_unsigned(x, t) >> (y & (63 if "64" in t
                                                    else 31))
            else:
                value = x >> (y & (63 if "64" in t else 31))
        elif op == "<<":
            value = x << (y & (63 if "64" in t else 31))
        else:
            value = {"+": x + y, "-": x - y, "*": x * y, "&": x & y,
                     "|": x | y, "^": x ^ y}[op]
        return EConst(_mask(value, t), t)
    except (OverflowError, ValueError, ZeroDivisionError):
        return e


def _fold(e):
    if isinstance(e, EBin):
        return _fold_bin(e)
    if isinstance(e, EUn) and isinstance(e.expr, EConst) \
            and not e.expr.no_fold:
        v = e.expr.value
        if e.op == "neg":
            return EConst(_mask(-v, e.type), e.type)
        if e.op == "!":
            return EConst(0 if v else 1, "i32")
        if e.op == "~":
            return EConst(_mask(~int(v), e.type), e.type)
    if isinstance(e, ECast) and isinstance(e.expr, EConst) \
            and not e.no_fold and not e.expr.no_fold:
        return EConst(_mask(e.expr.value, e.type), e.type)
    return e


def _prune_body(body, pruned):
    """Remove if-branches with constant conditions."""
    out = []
    for stmt in body:
        for sub in child_bodies(stmt):
            sub[:] = _prune_body(sub, pruned)
        if isinstance(stmt, SIf) and isinstance(stmt.cond, EConst):
            pruned[0] += 1
            out.extend(stmt.then if stmt.cond.value else stmt.els)
        elif isinstance(stmt, SWhile) and isinstance(stmt.cond, EConst) \
                and not stmt.cond.value:
            pruned[0] += 1
            continue
        else:
            out.append(stmt)
    return out


def constant_fold(module):
    rewrites = [0]

    def fold(e):
        out = _fold(e)
        if out is not e:
            rewrites[0] += 1
        return out

    for func in module.functions.values():
        for stmt in walk_stmts(func.body):
            map_stmt_exprs(stmt, fold)
        func.body[:] = _prune_body(func.body, rewrites)
    return rewrites[0]
