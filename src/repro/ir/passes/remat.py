"""Constant rematerialisation (-O2 and above).

Locals that are assigned exactly once, to a constant (possibly via an
int→float conversion), are removed: every use is replaced by the constant
materialisation itself, marked ``no_fold`` so later folding keeps the
conversion visible to codegen.

This reproduces the paper's covariance case (Fig. 8): -O2 output computes
``i32.const`` + ``f64.convert_i32_s`` at each use inside the hot loop,
where -O1 kept the value in a local (one ``local.get``).  On x86 the same
decision is free (immediates fold into instructions, and a register is
saved); on the Wasm virtual stack it costs an extra push per use."""

from __future__ import annotations

from repro.ir.nodes import (
    ECast, EConst, ELocal, SAssign, walk_stmts,
)
from repro.ir.passes.common import map_stmt_exprs


def _remat_candidates(func):
    """name -> defining EConst/ECast(EConst) for single-assignment locals."""
    assigns = {}
    for stmt in walk_stmts(func.body):
        if isinstance(stmt, SAssign):
            assigns.setdefault(stmt.name, []).append(stmt)
    out = {}
    for name, sites in assigns.items():
        if len(sites) != 1:
            continue
        expr = sites[0].expr
        if isinstance(expr, EConst):
            out[name] = expr
        elif isinstance(expr, ECast) and isinstance(expr.expr, EConst):
            out[name] = expr
    return out


def _materialise(expr):
    if isinstance(expr, EConst):
        return EConst(expr.value, expr.type, no_fold=True)
    # int→float conversion kept explicit: const + convert at every use.
    inner = expr.expr
    return ECast(EConst(inner.value, inner.type, no_fold=True),
                 expr.type, no_fold=True)


def rematerialize_constants(module):
    rewrites = [0]
    for func in module.functions.values():
        candidates = _remat_candidates(func)
        if not candidates:
            continue

        def visit(e, candidates=candidates):
            if isinstance(e, ELocal) and e.name in candidates:
                rewrites[0] += 1
                return _materialise(candidates[e.name])
            return e

        for stmt in walk_stmts(func.body):
            map_stmt_exprs(stmt, visit)
        # The defining assignments are now dead; leave them for -dce.
    return rewrites[0]
