"""WebAssembly substrate: module format, binary encoder, validator, linear
memory, and a stack-machine virtual machine with instruction accounting.

The VM is the measurement workhorse of the reproduction: every executed
instruction is attributed to an operation class (ADD/MUL/DIV/...), which is
how the paper's Table 12 operation counts and all execution-time cycle
budgets are produced.
"""

from repro.wasm.instructions import Op, OpClass, instr, op_name
from repro.wasm.memory import LinearMemory, WASM_PAGE_SIZE
from repro.wasm.module import (
    DataSegment,
    FuncType,
    Function,
    GlobalVar,
    HostImport,
    MemorySpec,
    WasmModule,
)
from repro.wasm.encoder import encode_module, encode_sleb128, encode_uleb128
from repro.wasm.validator import validate_module
from repro.wasm.vm import ExecutionStats, WasmInstance, WasmVM
from repro.wasm.wat import module_to_wat

__all__ = [
    "DataSegment",
    "ExecutionStats",
    "FuncType",
    "Function",
    "GlobalVar",
    "HostImport",
    "LinearMemory",
    "MemorySpec",
    "Op",
    "OpClass",
    "WASM_PAGE_SIZE",
    "WasmInstance",
    "WasmModule",
    "WasmVM",
    "encode_module",
    "encode_sleb128",
    "encode_uleb128",
    "instr",
    "module_to_wat",
    "op_name",
    "validate_module",
]
