"""Type-checking validator for the Wasm substrate.

Implements the standard structured-control validation algorithm (control
frames with polymorphic unreachable handling), restricted to the subset this
reproduction emits: blocks, loops and ifs always have empty result types,
and branches only occur where the operand stack matches the frame base (our
code generators branch at statement boundaries only).
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.wasm.instructions import Op

I32, I64, F64 = "i32", "i64", "f64"

# Static operand signatures: op -> (pops, pushes). Ops with context-dependent
# signatures (locals, globals, calls, control) are handled explicitly.
_SIGS = {}


def _sig(ops, pops, pushes):
    for op in ops:
        _SIGS[int(op)] = (pops, pushes)


_sig([Op.I32_CONST], (), (I32,))
_sig([Op.I64_CONST], (), (I64,))
_sig([Op.F64_CONST], (), (F64,))
_sig([Op.I32_ADD, Op.I32_SUB, Op.I32_MUL, Op.I32_DIV_S, Op.I32_DIV_U,
      Op.I32_REM_S, Op.I32_REM_U, Op.I32_AND, Op.I32_OR, Op.I32_XOR,
      Op.I32_SHL, Op.I32_SHR_S, Op.I32_SHR_U, Op.I32_ROTL],
     (I32, I32), (I32,))
_sig([Op.I32_CLZ, Op.I32_CTZ, Op.I32_POPCNT, Op.I32_EQZ], (I32,), (I32,))
_sig([Op.I32_EQ, Op.I32_NE, Op.I32_LT_S, Op.I32_LT_U, Op.I32_GT_S,
      Op.I32_GT_U, Op.I32_LE_S, Op.I32_LE_U, Op.I32_GE_S, Op.I32_GE_U],
     (I32, I32), (I32,))
_sig([Op.I64_ADD, Op.I64_SUB, Op.I64_MUL, Op.I64_DIV_S, Op.I64_DIV_U,
      Op.I64_REM_S, Op.I64_REM_U, Op.I64_AND, Op.I64_OR, Op.I64_XOR,
      Op.I64_SHL, Op.I64_SHR_S, Op.I64_SHR_U], (I64, I64), (I64,))
_sig([Op.I64_EQZ], (I64,), (I32,))
_sig([Op.I64_EQ, Op.I64_NE, Op.I64_LT_S, Op.I64_LT_U, Op.I64_GT_S,
      Op.I64_GT_U, Op.I64_LE_S, Op.I64_GE_S], (I64, I64), (I32,))
_sig([Op.F64_ADD, Op.F64_SUB, Op.F64_MUL, Op.F64_DIV, Op.F64_MIN,
      Op.F64_MAX], (F64, F64), (F64,))
_sig([Op.F64_SQRT, Op.F64_ABS, Op.F64_NEG, Op.F64_FLOOR, Op.F64_CEIL],
     (F64,), (F64,))
_sig([Op.F64_EQ, Op.F64_NE, Op.F64_LT, Op.F64_GT, Op.F64_LE, Op.F64_GE],
     (F64, F64), (I32,))
_sig([Op.I32_LOAD, Op.I32_LOAD8_U, Op.I32_LOAD8_S, Op.I32_LOAD16_U],
     (I32,), (I32,))
_sig([Op.I64_LOAD], (I32,), (I64,))
_sig([Op.F64_LOAD], (I32,), (F64,))
_sig([Op.I32_STORE, Op.I32_STORE8, Op.I32_STORE16], (I32, I32), ())
_sig([Op.I64_STORE], (I32, I64), ())
_sig([Op.F64_STORE], (I32, F64), ())
_sig([Op.MEMORY_SIZE], (), (I32,))
_sig([Op.MEMORY_GROW], (I32,), (I32,))
_sig([Op.I32_WRAP_I64], (I64,), (I32,))
_sig([Op.I64_EXTEND_I32_S, Op.I64_EXTEND_I32_U], (I32,), (I64,))
_sig([Op.F64_CONVERT_I32_S, Op.F64_CONVERT_I32_U], (I32,), (F64,))
_sig([Op.F64_CONVERT_I64_S], (I64,), (F64,))
_sig([Op.I32_TRUNC_F64_S], (F64,), (I32,))
_sig([Op.I64_TRUNC_F64_S], (F64,), (I64,))
_sig([Op.I64_REINTERPRET_F64], (F64,), (I64,))
_sig([Op.F64_REINTERPRET_I64], (I64,), (F64,))
_sig([Op.NOP, Op.UNREACHABLE], (), ())


class _Frame:
    __slots__ = ("opcode", "base", "unreachable")

    def __init__(self, opcode, base):
        self.opcode = opcode
        self.base = base
        self.unreachable = False


def _validate_function(module, func, func_sigs):
    local_types = list(func.type.params) + list(func.locals)
    globals_ = module.globals
    stack = []
    frames = [_Frame("func", 0)]

    def fail(pc, message):
        raise ValidationError(f"{func.name}@{pc}: {message}")

    def pop_expect(pc, expected):
        frame = frames[-1]
        if len(stack) == frame.base:
            if frame.unreachable:
                return expected
            fail(pc, f"stack underflow, expected {expected}")
        got = stack.pop()
        if got != expected:
            fail(pc, f"type mismatch: expected {expected}, got {got}")
        return got

    for pc, (op, arg) in enumerate(func.body):
        frame = frames[-1]
        if op in _SIGS:
            pops, pushes = _SIGS[int(op)]
            for expected in reversed(pops):
                pop_expect(pc, expected)
            stack.extend(pushes)
        elif op == Op.LOCAL_GET:
            if arg >= len(local_types):
                fail(pc, f"unknown local {arg}")
            stack.append(local_types[arg])
        elif op in (Op.LOCAL_SET, Op.LOCAL_TEE):
            if arg >= len(local_types):
                fail(pc, f"unknown local {arg}")
            pop_expect(pc, local_types[arg])
            if op == Op.LOCAL_TEE:
                stack.append(local_types[arg])
        elif op == Op.GLOBAL_GET:
            stack.append(globals_[arg].valtype)
        elif op == Op.GLOBAL_SET:
            if not globals_[arg].mutable:
                fail(pc, f"global {arg} is immutable")
            pop_expect(pc, globals_[arg].valtype)
        elif op == Op.CALL:
            ftype = func_sigs[arg]
            for expected in reversed(ftype.params):
                pop_expect(pc, expected)
            stack.extend(ftype.results)
        elif op in (Op.BLOCK, Op.LOOP):
            frames.append(_Frame(op, len(stack)))
        elif op == Op.IF:
            pop_expect(pc, I32)
            frames.append(_Frame(op, len(stack)))
        elif op == Op.ELSE:
            if frame.opcode != Op.IF:
                fail(pc, "else outside if")
            if len(stack) != frame.base and not frame.unreachable:
                fail(pc, "if arm leaves values on the stack")
            del stack[frame.base:]
            frame.unreachable = False
        elif op == Op.END:
            if len(frames) == 1:
                fail(pc, "end without block")
            if len(stack) != frame.base and not frame.unreachable:
                fail(pc, "block leaves values on the stack "
                         "(void result types required)")
            del stack[frame.base:]
            frames.pop()
        elif op in (Op.BR, Op.BR_IF):
            if op == Op.BR_IF:
                pop_expect(pc, I32)
            if arg >= len(frames) - 1:
                fail(pc, f"branch depth {arg} exceeds nesting")
            if len(stack) != frames[-1].base and not frame.unreachable:
                fail(pc, "branch with non-empty operand stack")
            if op == Op.BR:
                frame.unreachable = True
        elif op == Op.RETURN:
            for expected in reversed(func.type.results):
                pop_expect(pc, expected)
            frame.unreachable = True
        elif op == Op.DROP:
            if stack and len(stack) > frame.base:
                stack.pop()
            elif not frame.unreachable:
                fail(pc, "drop on empty stack")
        elif op == Op.SELECT:
            pop_expect(pc, I32)
            if len(stack) - frame.base >= 2:
                t = stack.pop()
                pop_expect(pc, t)
                stack.append(t)
            elif not frame.unreachable:
                fail(pc, "select needs two operands")
        else:
            fail(pc, f"unknown opcode {op}")

    if len(frames) != 1:
        raise ValidationError(f"{func.name}: unterminated block at end")
    if not frames[0].unreachable:
        expected = list(func.type.results)
        if [t for t in stack] != expected:
            raise ValidationError(
                f"{func.name}: body leaves {stack}, expected {expected}")


def validate_module(module):
    """Validate every function; raises :class:`ValidationError` on the first
    problem, returns the module for chaining."""
    func_sigs = [imp.type for imp in module.imports]
    func_sigs += [fn.type for fn in module.functions]
    for seg in module.data:
        end = seg.offset + len(seg.data)
        if end > module.memory.min_pages * module.memory.page_size:
            raise ValidationError(
                f"data segment [{seg.offset}, {end}) exceeds initial memory")
    for fn in module.functions:
        _validate_function(module, fn, func_sigs)
    return module
