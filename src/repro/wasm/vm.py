"""Stack-machine interpreter for the Wasm substrate.

Design notes
------------

* Function bodies are *prepared* once per instance: structured control
  (``block``/``loop``/``if``/``else``/``end``) is resolved to direct jump
  targets with recorded operand-stack heights, so the runtime needs no label
  stack.  This mirrors what baseline compilers (LiftOff/Baseline) do.
* Every executed instruction is charged its abstract cycle cost and counted
  by operation class; :class:`ExecutionStats` is the raw material for all of
  the paper's execution-time and operation-count results.
* Calls to host imports (the JavaScript glue) charge an extra context-switch
  cost, the quantity compared across browsers in §4.5.

The reproduction restricts blocks and ifs to empty result types (Cheerp's
output in the paper's figures uses the same MVP-style shape); the validator
enforces this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.engine.stats import EngineStats
from repro.errors import TrapError, ValidationError
from repro.obs import new_profile
from repro.wasm.instructions import OP_CLASS, OP_COST, Op, OpClass
from repro.wasm.memory import LinearMemory

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN32 = 0x80000000
_SIGN64 = 0x8000000000000000


def _wrap32(v):
    v &= _MASK32
    return v - 0x100000000 if v & _SIGN32 else v


def _wrap64(v):
    v &= _MASK64
    return v - 0x10000000000000000 if v & _SIGN64 else v


@dataclass
class ExecutionStats(EngineStats):
    """Aggregated dynamic execution counters for one instance.

    Extends the shared :class:`~repro.engine.stats.EngineStats` protocol
    with the Wasm-only counters (direct calls, ``memory.grow``)."""

    calls: int = 0
    memory_grows: int = 0


class _PreparedFunction:
    """A function body with branches resolved to absolute targets."""

    __slots__ = ("name", "num_params", "num_locals", "local_types", "code",
                 "results", "threaded", "codegen")

    def __init__(self, name, num_params, local_types, code, results):
        self.name = name
        self.num_params = num_params
        self.local_types = local_types
        self.num_locals = num_params + len(local_types)
        self.code = code
        self.results = results
        #: Lazily translated threaded-code body (prepared functions are
        #: per-instance, so the translation's pre-bound instance state
        #: can be cached right here).  ``codegen`` caches the generated
        #: runner the same way (``_codegen.DECLINED`` when the codegen
        #: translator declined the function).
        self.threaded = None
        self.codegen = None


def _prepare_body(func, num_imports):
    """Resolve structured control flow to jump targets.

    Returns a list of tuples ``(op, arg, extra)`` where for branch ops
    ``arg`` is the absolute target pc and ``extra`` the stack height to
    truncate to; for other ops ``extra`` is unused.
    """
    body = func.body
    n = len(body)
    # First pass: match each block construct with its else/end.
    matches = {}      # start pc -> (else_pc or None, end_pc)
    else_to_end = {}  # else pc -> end pc
    stack = []
    for pc, (op, arg) in enumerate(body):
        if op in (Op.BLOCK, Op.LOOP, Op.IF):
            stack.append([pc, None])
        elif op == Op.ELSE:
            if not stack or body[stack[-1][0]][0] != Op.IF:
                raise ValidationError(f"{func.name}: else without if at {pc}")
            stack[-1][1] = pc
        elif op == Op.END:
            if not stack:
                raise ValidationError(f"{func.name}: unmatched end at {pc}")
            start, else_pc = stack.pop()
            matches[start] = (else_pc, pc)
            if else_pc is not None:
                else_to_end[else_pc] = pc
    if stack:
        raise ValidationError(f"{func.name}: unterminated block")

    # Second pass: track the control stack so branches know where to jump.
    # Our code generators only branch at statement boundaries, where the
    # operand stack is empty (the validator enforces this), so every branch
    # unwinds to height zero.
    code = [None] * n
    ctrl = []  # entries: (opcode, start_pc, entry_height)
    for pc, (op, arg) in enumerate(body):
        if op in (Op.BLOCK, Op.LOOP, Op.IF):
            ctrl.append((op, pc, 0))
        elif op == Op.END and ctrl:
            ctrl.pop()
        if op in (Op.BR, Op.BR_IF):
            depth = arg
            if depth >= len(ctrl):
                raise ValidationError(
                    f"{func.name}: branch depth {depth} too deep at {pc}")
            t_op, t_pc, t_height = ctrl[-1 - depth]
            if t_op == Op.LOOP:
                target = t_pc + 1      # back-edge: first instr in the loop
            else:
                target = matches[t_pc][1] + 1  # forward: after the end
            code[pc] = (int(op), target, t_height)
        elif op == Op.IF:
            else_pc, end_pc = matches[pc]
            # False path enters the else arm (or skips to after end).
            false_target = else_pc + 1 if else_pc is not None else end_pc + 1
            code[pc] = (int(op), false_target, None)
        elif op == Op.ELSE:
            # Reached only by falling out of the then-arm: skip to the end.
            code[pc] = (int(Op.BR), else_to_end[pc] + 1, None)
        else:
            code[pc] = (int(op), arg, None)
    return code


class WasmInstance:
    """An instantiated module: memory + globals + prepared code."""

    def __init__(self, module, imports=None, boundary_cost=40.0,
                 max_instructions=None, tier_policy=None):
        self.module = module
        #: Optional :class:`~repro.engine.tiering.TierPolicy`.  Browser
        #: runs leave it ``None`` (the page runner composes the pipeline
        #: from the profile); standalone hosts attach a policy so the
        #: instance itself charges its modeled startup compiles.
        self.tier_policy = tier_policy
        spec = module.memory
        self.memory = LinearMemory(spec.min_pages, spec.max_pages,
                                   spec.page_size)
        for seg in module.data:
            self.memory.write_bytes(seg.offset, seg.data)
        self.globals = {}
        self._global_values = []
        self._global_index = {}
        for i, g in enumerate(module.globals):
            self._global_index[g.name] = i
            self._global_values.append(g.init)
        self.stats = ExecutionStats()
        self.boundary_cost = boundary_cost
        self.max_instructions = max_instructions
        self._instr_budget = max_instructions
        self._fast = _threaded.fast_interp_enabled()
        self._codegen = _codegen.codegen_enabled()
        self._profile = new_profile("wasm")

        imports = imports or {}
        num_imports = len(module.imports)
        self._funcs = []
        for imp in module.imports:
            key = (imp.module, imp.name)
            fn = imports.get(key, imp.func)
            if fn is None:
                raise ValidationError(f"unresolved import {key}")
            self._funcs.append(("host", fn, imp.type))
        self._prepared = {}
        for fn in module.functions:
            prepared = _PreparedFunction(
                fn.name, fn.num_params, fn.locals,
                _prepare_body(fn, num_imports), fn.type.results)
            self._prepared[fn.name] = prepared
            self._funcs.append(("wasm", prepared, fn.type))

        if tier_policy is not None:
            # Standalone-host mode: charge the startup compiles the
            # policy's models price for this module (the tier-up compile,
            # if any, is dynamic and stays with the plan layer).
            from repro.engine.tiering import TierController
            startup_plan = TierController(tier_policy).plan(
                module.code_unit(), 0)
            self.stats.compile_cycles += startup_plan.startup_compile_cycles

        if module.start:
            self.invoke(module.start)

    def global_value(self, name):
        return self._global_values[self._global_index[name]]

    def set_global(self, name, value):
        self._global_values[self._global_index[name]] = value

    def invoke(self, name, *args):
        """Call an exported function from the host side.

        Charges the host→wasm context-switch cost, mirroring the JS loader's
        entry into the module.
        """
        prepared = self._prepared[name]
        self.stats.boundary_cycles += self.boundary_cost
        return self._run(prepared, list(args))

    def _call_index(self, index, args):
        kind, target, ftype = self._funcs[index]
        if kind == "host":
            self.stats.host_calls += 1
            self.stats.boundary_cycles += self.boundary_cost
            return target(self, *args)
        return self._run(target, args)

    def _run(self, fn, args):
        # Frame entry (the deopt resume below goes through _run_from
        # directly, so a deopted frame is not double-counted).
        if self._profile is not None:
            self._profile.call(fn.name)
        if self._fast:
            if self._codegen:
                cg = fn.codegen
                if cg is None:
                    cg = _codegen.translate(fn, self) or _codegen.DECLINED
                    fn.codegen = cg
                if cg is not _codegen.DECLINED:
                    return cg(args)
            tf = fn.threaded
            if tf is None:
                tf = _threaded.translate(fn, self)
                fn.threaded = tf
            return _threaded.run(self, tf, args)
        locals_ = args + [0.0 if t == "f64" else 0 for t in fn.local_types]
        return self._run_from(fn, locals_, [], 0)

    def _run_from(self, fn, locals_, stack, pc):
        # Reference interpreter loop — the differential oracle for the
        # threaded tier, which also deopts here (resuming mid-function at
        # a block leader) when a block cannot be entered under batched
        # budget accounting.  Locals are a flat list: params then locals
        # (zero-initialised, typed by fn.local_types).
        push = stack.append
        pop = stack.pop
        code = fn.code
        n = len(code)
        stats = self.stats
        mem = self.memory
        gvals = self._global_values
        cost = OP_COST
        klass = OP_CLASS
        counts = stats.op_counts
        prof = self._profile
        fprof = prof.frame(fn.name) if prof is not None else None
        cycles = 0.0
        instret = 0
        budget = self._instr_budget

        try:
            while pc < n:
                op, arg, extra = code[pc]
                cycles += cost[op]
                counts[klass[op]] += 1
                instret += 1
                if fprof is not None:
                    fprof[op] = fprof.get(op, 0) + 1
                if budget is not None:
                    budget -= 1
                    if budget < 0:
                        raise TrapError("instruction budget exhausted")
                pc += 1

                if op == 13:      # local.get
                    push(locals_[arg])
                elif op == 14:    # local.set
                    locals_[arg] = pop()
                elif op == 31 or op == 32 or op == 33:  # consts
                    push(arg)
                elif op == 34:    # i32.add
                    b = pop(); a = pop()
                    v = (a + b) & _MASK32
                    push(v - 0x100000000 if v & _SIGN32 else v)
                elif op == 35:    # i32.sub
                    b = pop(); a = pop()
                    v = (a - b) & _MASK32
                    push(v - 0x100000000 if v & _SIGN32 else v)
                elif op == 36:    # i32.mul
                    b = pop(); a = pop()
                    v = (a * b) & _MASK32
                    push(v - 0x100000000 if v & _SIGN32 else v)
                elif op == 84:    # f64.add
                    b = pop(); push(pop() + b)
                elif op == 85:    # f64.sub
                    b = pop(); push(pop() - b)
                elif op == 86:    # f64.mul
                    b = pop(); push(pop() * b)
                elif op == 87:    # f64.div
                    b = pop(); a = pop()
                    if b == 0.0:
                        if a == 0.0 or a != a:
                            push(math.nan)
                        else:
                            push(math.copysign(math.inf, a) *
                                 math.copysign(1.0, b))
                    else:
                        push(a / b)
                elif op == 8:     # br_if (resolved)
                    if pop():
                        del stack[extra:]
                        pc = arg
                elif op == 7:     # br (resolved; also synthesised for else)
                    if extra is not None:
                        del stack[extra:]
                    pc = arg
                elif op == 4:     # if (resolved false-target)
                    if not pop():
                        pc = arg
                elif op in (2, 3, 6, 1):  # block/loop/end/nop markers
                    pass
                elif op == 15:    # local.tee
                    locals_[arg] = stack[-1]
                elif op == 18:    # i32.load
                    push(mem.load_i32(pop() + arg))
                elif op == 24:    # i32.store
                    v = pop(); mem.store_i32(pop() + arg, v)
                elif op == 20:    # f64.load
                    push(mem.load_f64(pop() + arg))
                elif op == 26:    # f64.store
                    v = pop(); mem.store_f64(pop() + arg, v)
                elif op == 19:    # i64.load
                    push(mem.load_i64(pop() + arg))
                elif op == 25:    # i64.store
                    v = pop(); mem.store_i64(pop() + arg, v)
                elif op == 21:    # i32.load8_u
                    push(mem.load_u8(pop() + arg))
                elif op == 22:    # i32.load8_s
                    push(mem.load_s8(pop() + arg))
                elif op == 23:    # i32.load16_u
                    push(mem.load_u16(pop() + arg))
                elif op == 27:    # i32.store8
                    v = pop(); mem.store_u8(pop() + arg, v)
                elif op == 28:    # i32.store16
                    v = pop(); mem.store_u16(pop() + arg, v)
                elif op == 16:    # global.get
                    push(gvals[arg])
                elif op == 17:    # global.set
                    gvals[arg] = pop()
                elif op == 10:    # call
                    kind, target, ftype = self._funcs[arg]
                    nargs = len(ftype.params)
                    call_args = stack[len(stack) - nargs:] if nargs else []
                    if nargs:
                        del stack[len(stack) - nargs:]
                    stats.calls += 1
                    if kind == "host":
                        stats.host_calls += 1
                        stats.boundary_cycles += self.boundary_cost
                        result = target(self, *call_args)
                    else:
                        # Flush counters so callee accumulates correctly.
                        stats.cycles += cycles
                        stats.instructions += instret
                        cycles = 0.0
                        instret = 0
                        self._instr_budget = budget
                        result = self._run(target, call_args)
                        budget = self._instr_budget
                    if ftype.results:
                        push(result)
                elif op == 9:     # return
                    break
                # Comparisons (i32).
                elif op == 51:    # i32.eqz
                    push(1 if pop() == 0 else 0)
                elif op == 52:
                    b = pop(); push(1 if pop() == b else 0)
                elif op == 53:
                    b = pop(); push(1 if pop() != b else 0)
                elif op == 54:
                    b = pop(); push(1 if pop() < b else 0)
                elif op == 55:
                    b = pop(); push(1 if (pop() & _MASK32) < (b & _MASK32) else 0)
                elif op == 56:
                    b = pop(); push(1 if pop() > b else 0)
                elif op == 57:
                    b = pop(); push(1 if (pop() & _MASK32) > (b & _MASK32) else 0)
                elif op == 58:
                    b = pop(); push(1 if pop() <= b else 0)
                elif op == 59:
                    b = pop(); push(1 if (pop() & _MASK32) <= (b & _MASK32) else 0)
                elif op == 60:
                    b = pop(); push(1 if pop() >= b else 0)
                elif op == 61:
                    b = pop(); push(1 if (pop() & _MASK32) >= (b & _MASK32) else 0)
                # f64 comparisons.
                elif op == 95:
                    b = pop(); push(1 if pop() == b else 0)
                elif op == 96:
                    b = pop(); push(1 if pop() != b else 0)
                elif op == 97:
                    b = pop(); push(1 if pop() < b else 0)
                elif op == 98:
                    b = pop(); push(1 if pop() > b else 0)
                elif op == 99:
                    b = pop(); push(1 if pop() <= b else 0)
                elif op == 100:
                    b = pop(); push(1 if pop() >= b else 0)
                # i32 bitwise / shifts / division.
                elif op == 41:    # i32.and
                    b = pop(); push(_wrap32(pop() & b))
                elif op == 42:    # i32.or
                    b = pop(); push(_wrap32(pop() | b))
                elif op == 43:    # i32.xor
                    b = pop(); push(_wrap32(pop() ^ b))
                elif op == 44:    # i32.shl
                    b = pop() & 31
                    v = (pop() << b) & _MASK32
                    push(v - 0x100000000 if v & _SIGN32 else v)
                elif op == 45:    # i32.shr_s
                    b = pop() & 31; push(pop() >> b)
                elif op == 46:    # i32.shr_u
                    b = pop() & 31
                    v = (pop() & _MASK32) >> b
                    push(v - 0x100000000 if v & _SIGN32 else v)
                elif op == 47:    # i32.rotl
                    b = pop() & 31; u = pop() & _MASK32
                    v = ((u << b) | (u >> (32 - b))) & _MASK32 if b else u
                    push(v - 0x100000000 if v & _SIGN32 else v)
                elif op == 37:    # i32.div_s
                    b = pop(); a = pop()
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    q = abs(a) // abs(b)
                    push(_wrap32(q if (a < 0) == (b < 0) else -q))
                elif op == 38:    # i32.div_u
                    b = pop() & _MASK32; a = pop() & _MASK32
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    push(_wrap32(a // b))
                elif op == 39:    # i32.rem_s
                    b = pop(); a = pop()
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    r = abs(a) % abs(b)
                    push(-r if a < 0 else r)
                elif op == 40:    # i32.rem_u
                    b = pop() & _MASK32; a = pop() & _MASK32
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    push(_wrap32(a % b))
                # i64.
                elif op == 62:
                    b = pop(); push(_wrap64(pop() + b))
                elif op == 63:
                    b = pop(); push(_wrap64(pop() - b))
                elif op == 64:
                    b = pop(); push(_wrap64(pop() * b))
                elif op == 65:    # i64.div_s
                    b = pop(); a = pop()
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    q = abs(a) // abs(b)
                    push(_wrap64(q if (a < 0) == (b < 0) else -q))
                elif op == 66:    # i64.div_u
                    b = pop() & _MASK64; a = pop() & _MASK64
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    push(_wrap64(a // b))
                elif op == 67:    # i64.rem_s
                    b = pop(); a = pop()
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    r = abs(a) % abs(b)
                    push(-r if a < 0 else r)
                elif op == 68:    # i64.rem_u
                    b = pop() & _MASK64; a = pop() & _MASK64
                    if b == 0:
                        raise TrapError("integer divide by zero")
                    push(_wrap64(a % b))
                elif op == 69:
                    b = pop(); push(_wrap64(pop() & b))
                elif op == 70:
                    b = pop(); push(_wrap64(pop() | b))
                elif op == 71:
                    b = pop(); push(_wrap64(pop() ^ b))
                elif op == 72:    # i64.shl
                    b = pop() & 63; push(_wrap64(pop() << b))
                elif op == 73:    # i64.shr_s
                    b = pop() & 63; push(pop() >> b)
                elif op == 74:    # i64.shr_u
                    b = pop() & 63; push(_wrap64((pop() & _MASK64) >> b))
                elif op == 75:
                    push(1 if pop() == 0 else 0)
                elif op == 76:
                    b = pop(); push(1 if pop() == b else 0)
                elif op == 77:
                    b = pop(); push(1 if pop() != b else 0)
                elif op == 78:
                    b = pop(); push(1 if pop() < b else 0)
                elif op == 79:
                    b = pop(); push(1 if (pop() & _MASK64) < (b & _MASK64) else 0)
                elif op == 80:
                    b = pop(); push(1 if pop() > b else 0)
                elif op == 81:
                    b = pop(); push(1 if (pop() & _MASK64) > (b & _MASK64) else 0)
                elif op == 82:
                    b = pop(); push(1 if pop() <= b else 0)
                elif op == 83:
                    b = pop(); push(1 if pop() >= b else 0)
                # Unary f64 / misc.
                elif op == 88:    # f64.sqrt (NaN for negative input, per spec)
                    v = pop()
                    push(math.nan if v < 0 else math.sqrt(v))
                elif op == 89:
                    push(abs(pop()))
                elif op == 90:
                    push(-pop())
                elif op == 91:
                    b = pop(); a = pop(); push(min(a, b))
                elif op == 92:
                    b = pop(); a = pop(); push(max(a, b))
                elif op == 93:
                    push(float(math.floor(pop())))
                elif op == 94:
                    push(float(math.ceil(pop())))
                # Conversions.
                elif op == 101:   # i32.wrap_i64
                    push(_wrap32(pop()))
                elif op == 102 or op == 103:  # i64.extend_i32_s/u
                    v = pop()
                    push(v if op == 102 else v & _MASK32)
                elif op == 104:   # f64.convert_i32_s
                    push(float(pop()))
                elif op == 105:   # f64.convert_i32_u
                    push(float(pop() & _MASK32))
                elif op == 106:   # f64.convert_i64_s
                    push(float(pop()))
                elif op == 107:   # i32.trunc_f64_s
                    v = pop()
                    # Valid iff trunc(v) fits i32, i.e. v strictly inside
                    # (-2^31 - 1, 2^31): both boundary doubles trap.
                    if v != v or v >= 2147483648.0 or v <= -2147483649.0:
                        raise TrapError("invalid conversion to integer")
                    push(int(v))
                elif op == 108:   # i64.trunc_f64_s
                    v = pop()
                    # Only the upper bound is exclusive: -2^63 is exactly
                    # representable as f64 and is a valid i64, while no
                    # double lies strictly between -2^63 - 1 and -2^63.
                    if v != v or v >= 9223372036854775808.0 \
                            or v < -9223372036854775808.0:
                        raise TrapError("invalid conversion to integer")
                    push(int(v))
                elif op == 109:   # i64.reinterpret_f64
                    import struct as _s
                    push(_wrap64(_s.unpack("<q", _s.pack("<d", pop()))[0]))
                elif op == 110:   # f64.reinterpret_i64
                    import struct as _s
                    push(_s.unpack("<d", _s.pack("<q", pop()))[0])
                elif op == 48:    # i32.clz
                    v = pop() & _MASK32
                    push(32 - v.bit_length())
                elif op == 49:    # i32.ctz
                    v = pop() & _MASK32
                    push(32 if v == 0 else (v & -v).bit_length() - 1)
                elif op == 50:    # i32.popcnt
                    push(bin(pop() & _MASK32).count("1"))
                elif op == 11:    # drop
                    pop()
                elif op == 12:    # select
                    c = pop(); b = pop(); a = pop()
                    push(a if c else b)
                elif op == 30:    # memory.grow
                    old = mem.grow(pop())
                    if old >= 0:
                        mem.grow_count += 1
                        stats.memory_grows += 1
                    push(old)
                elif op == 29:    # memory.size
                    push(mem.pages)
                elif op == 0:     # unreachable
                    raise TrapError("unreachable executed")
                else:
                    raise TrapError(f"unimplemented opcode {op}")
        finally:
            stats.cycles += cycles
            stats.instructions += instret
            self._instr_budget = budget

        if fn.results:
            return stack[-1] if stack else 0
        return None


class WasmVM:
    """Factory tying modules to execution parameters.

    The engine profile layer (``repro.env``) supplies ``boundary_cost`` and
    converts the instance's cycle counts into milliseconds.
    """

    def __init__(self, boundary_cost=40.0, max_instructions=None,
                 tier_policy=None):
        self.boundary_cost = boundary_cost
        self.max_instructions = max_instructions
        self.tier_policy = tier_policy

    def instantiate(self, module, imports=None):
        return WasmInstance(module, imports=imports,
                            boundary_cost=self.boundary_cost,
                            max_instructions=self.max_instructions,
                            tier_policy=self.tier_policy)


# Bound at the bottom so the threaded tier can import names from this
# module at its top (the circular import resolves in either load order).
from repro.wasm import threaded as _threaded  # noqa: E402
from repro.wasm import codegen as _codegen    # noqa: E402
