"""WAT (WebAssembly text) printer, for debugging and examples.

Prints the folded-less, linear WAT style used by the paper's Figures 4/7/8.
"""

from __future__ import annotations

from repro.wasm.instructions import Op, op_name


def _fmt_instr(op, arg, indent):
    pad = "  " * indent
    name = op_name(op)
    if arg is None:
        return f"{pad}{name}"
    if op == Op.F64_CONST:
        return f"{pad}{name} {arg!r}"
    if Op.I32_LOAD <= op <= Op.I32_STORE16 and arg:
        return f"{pad}{name} offset={arg}"
    return f"{pad}{name} {arg}"


def function_to_wat(module, func, indent=1):
    """Render one function as WAT lines."""
    pad = "  " * indent
    header = f"{pad}(func ${func.name}"
    for i, t in enumerate(func.type.params):
        header += f" (param $p{i} {t})"
    for t in func.type.results:
        header += f" (result {t})"
    lines = [header]
    if func.locals:
        decls = " ".join(
            f"(local $l{i + func.num_params} {t})"
            for i, t in enumerate(func.locals))
        lines.append(f"{pad}  {decls}")
    depth = indent + 1
    for op, arg in func.body:
        if op in (Op.END, Op.ELSE):
            depth = max(indent + 1, depth - 1)
        lines.append(_fmt_instr(op, arg, depth))
        if op in (Op.BLOCK, Op.LOOP, Op.IF, Op.ELSE):
            depth += 1
    lines.append(f"{pad})")
    return lines


def module_to_wat(module):
    """Render a whole module as WAT text."""
    lines = ["(module"]
    for imp in module.imports:
        sig = " ".join(f"(param {t})" for t in imp.type.params)
        res = " ".join(f"(result {t})" for t in imp.type.results)
        lines.append(
            f'  (import "{imp.module}" "{imp.name}" '
            f"(func ${imp.name} {sig} {res}))".replace("  )", ")"))
    lines.append(
        f"  (memory {module.memory.min_pages} {module.memory.max_pages})")
    for g in module.globals:
        mut = f"(mut {g.valtype})" if g.mutable else g.valtype
        lines.append(f"  (global ${g.name} {mut} ({g.valtype}.const {g.init}))")
    for func in module.functions:
        lines.extend(function_to_wat(module, func))
        if func.exported:
            lines.append(f'  (export "{func.name}" (func ${func.name}))')
    for seg in module.data:
        lines.append(f'  (data (i32.const {seg.offset}) "<{len(seg.data)} bytes>")')
    lines.append(")")
    return "\n".join(lines)
