"""Linear memory: a contiguous, growable, byte-addressed buffer.

WebAssembly's linear memory never shrinks — the mechanism behind the paper's
memory findings (Tables 4, 6, 8): once ``memory.grow`` has been called the
pages stay committed, whereas the JS engine's GC keeps the JS heap flat.

Backing storage is a sparse page table (64 KiB frames materialised on first
touch), so experiments can commit paper-scale memories — PolyBench
EXTRALARGE arrays reach ~100 MB — while the scaled kernels only touch a
small corner.  All C-level accesses are naturally aligned (the code
generators 8-align every array base), so no access spans a frame boundary.
"""

from __future__ import annotations

import struct

from repro.errors import TrapError

#: The real WebAssembly page size (64 KiB); Cheerp's growth granularity.
WASM_PAGE_SIZE = 65536

_FRAME_BITS = 16
_FRAME_SIZE = 1 << _FRAME_BITS
_FRAME_MASK = _FRAME_SIZE - 1

_PACK_I32 = struct.Struct("<i")
_PACK_U32 = struct.Struct("<I")
_PACK_I64 = struct.Struct("<q")
_PACK_U64 = struct.Struct("<Q")
_PACK_F64 = struct.Struct("<d")

# Pre-bound codec methods: one attribute lookup at import time instead of
# two (`Struct.pack_into` / `Struct.unpack_from`) per memory access.  The
# threaded tier's fused load/store handlers bind these directly.
UNPACK_I32 = _PACK_I32.unpack_from
UNPACK_I64 = _PACK_I64.unpack_from
UNPACK_F64 = _PACK_F64.unpack_from
PACK_U32 = _PACK_U32.pack_into
PACK_U64 = _PACK_U64.pack_into
PACK_F64 = _PACK_F64.pack_into


class LinearMemory:
    """A growable linear memory with sparse, lazily materialised frames."""

    def __init__(self, min_pages=1, max_pages=32768, page_size=WASM_PAGE_SIZE):
        if min_pages < 0 or max_pages < min_pages:
            raise ValueError("invalid memory limits")
        self.page_size = page_size
        self.max_pages = max_pages
        self._pages = min_pages
        self._limit = min_pages * page_size
        self._frames = {}
        #: Number of successful ``grow`` operations (a §4.2.2 metric).
        self.grow_count = 0
        #: High-water mark of committed pages.
        self.peak_pages = min_pages

    @property
    def pages(self):
        return self._pages

    @property
    def byte_size(self):
        """Committed size in bytes — what DevTools reports for the
        ``WebAssembly.Memory`` ArrayBuffer."""
        return self._limit

    @property
    def resident_bytes(self):
        """Bytes actually materialised by the simulator (diagnostics)."""
        return len(self._frames) * _FRAME_SIZE

    def grow(self, delta_pages):
        """Grow by ``delta_pages``; returns the old page count, or -1 on
        failure (mirroring ``memory.grow`` semantics)."""
        if delta_pages < 0:
            return -1
        new_pages = self._pages + delta_pages
        if new_pages > self.max_pages:
            return -1
        old = self._pages
        self._pages = new_pages
        self._limit = new_pages * self.page_size
        if new_pages > self.peak_pages:
            self.peak_pages = new_pages
        return old

    def _frame(self, addr, size):
        end = addr + size
        if addr < 0 or end > self._limit:
            raise TrapError(
                f"out-of-bounds memory access at {addr} "
                f"(committed {self._limit} bytes)")
        index = addr >> _FRAME_BITS
        frame = self._frames.get(index)
        if frame is None:
            frame = bytearray(_FRAME_SIZE)
            self._frames[index] = frame
        return frame, addr & _FRAME_MASK

    # Typed accessors. Loads return canonical Python values: i32 as a signed
    # int in [-2^31, 2^31), i64 as signed 64-bit, f64 as float.

    def load_i32(self, addr):
        frame, off = self._frame(addr, 4)
        return UNPACK_I32(frame, off)[0]

    def load_u8(self, addr):
        frame, off = self._frame(addr, 1)
        return frame[off]

    def load_s8(self, addr):
        frame, off = self._frame(addr, 1)
        value = frame[off]
        return value - 256 if value >= 128 else value

    def load_u16(self, addr):
        frame, off = self._frame(addr, 2)
        return frame[off] | (frame[off + 1] << 8)

    def load_i64(self, addr):
        frame, off = self._frame(addr, 8)
        return UNPACK_I64(frame, off)[0]

    def load_f64(self, addr):
        frame, off = self._frame(addr, 8)
        return UNPACK_F64(frame, off)[0]

    def store_i32(self, addr, value):
        frame, off = self._frame(addr, 4)
        PACK_U32(frame, off, value & 0xFFFFFFFF)

    def store_u8(self, addr, value):
        frame, off = self._frame(addr, 1)
        frame[off] = value & 0xFF

    def store_u16(self, addr, value):
        frame, off = self._frame(addr, 2)
        value &= 0xFFFF
        frame[off] = value & 0xFF
        frame[off + 1] = value >> 8

    def store_i64(self, addr, value):
        frame, off = self._frame(addr, 8)
        PACK_U64(frame, off, value & 0xFFFFFFFFFFFFFFFF)

    def store_f64(self, addr, value):
        frame, off = self._frame(addr, 8)
        PACK_F64(frame, off, value)

    def write_bytes(self, addr, data):
        for i in range(0, len(data), _FRAME_SIZE):
            chunk = data[i:i + _FRAME_SIZE]
            pos = addr + i
            # A chunk may straddle two frames.
            frame, off = self._frame(pos, 1)
            room = _FRAME_SIZE - off
            frame[off:off + min(room, len(chunk))] = chunk[:room]
            if len(chunk) > room:
                frame2, off2 = self._frame(pos + room, 1)
                frame2[off2:off2 + len(chunk) - room] = chunk[room:]

    def read_bytes(self, addr, size):
        out = bytearray()
        pos = addr
        remaining = size
        while remaining > 0:
            frame, off = self._frame(pos, 1)
            take = min(_FRAME_SIZE - off, remaining)
            out += frame[off:off + take]
            pos += take
            remaining -= take
        return bytes(out)
