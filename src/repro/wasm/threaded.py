"""Threaded-code execution tier for the Wasm VM.

Translates a :class:`~repro.wasm.vm._PreparedFunction` into basic blocks
of pre-bound handler closures (see :mod:`repro.engine.threaded` for the
exactness rules).  Wasm is the one engine whose whole charge stream lives
on an exact 0.25-cycle grid (``tests/test_dispatch_complete.py`` asserts
this), so cycles, instruction counts, op-class counts *and* the
instruction budget are all batched per block:

* block entry charges the block's totals against ``ExecutionStats`` and
  decrements the instance budget by the block length;
* handlers that can trap (loads/stores, div/rem, trunc, floor/ceil,
  ``unreachable``) carry a pre-bound rewind closure subtracting the
  suffix after the trapping instruction, restoring the reference
  ladder's charge-then-execute prefix bit for bit;
* a block entered with fewer budget units than instructions *deopts*:
  the frame resumes in the reference ladder at the block's start pc,
  which then charges op-by-op and traps at the exact instruction index
  with the exact partial stats.

Marker ops (``block``/``loop``/``end``/``nop``) are charged in the block
totals but emit no handler at all.  Fused superinstructions collapse the
hot idioms (``local.get local.get <binop> [local.set]``,
``local.get <load> [local.set]``, ``<const|local.get> <store>``,
compare-and-branch block tails) into single closures; fusion never
changes accounting, which is derived from the source instructions alone.
"""

from __future__ import annotations

import math
import struct as _struct

from repro.engine.threaded import (
    class_deltas, fast_interp_enabled, fuse_straight_line, match_tail,
    split_blocks,
)
from repro.errors import TrapError, ValidationError
from repro.obs import SCHED, get_registry
from repro.wasm.instructions import OP_CLASS, OP_COST
from repro.wasm.memory import (
    PACK_F64, PACK_U32, PACK_U64, UNPACK_F64, UNPACK_I32, UNPACK_I64,
)

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN32 = 0x80000000

_PACK_Q = _struct.Struct("<q")
_PACK_D = _struct.Struct("<d")


def _wrap32(v):
    v &= _MASK32
    return v - 0x100000000 if v & _SIGN32 else v


def _wrap64(v):
    v &= _MASK64
    return v - 0x10000000000000000 if v & 0x8000000000000000 else v


# ---------------------------------------------------------------------------
# Value functions: the pure result of one operator, matching the reference
# ladder's arithmetic expression for expression.

def _i32_add(a, b):
    v = (a + b) & _MASK32
    return v - 0x100000000 if v & _SIGN32 else v


def _i32_sub(a, b):
    v = (a - b) & _MASK32
    return v - 0x100000000 if v & _SIGN32 else v


def _i32_mul(a, b):
    v = (a * b) & _MASK32
    return v - 0x100000000 if v & _SIGN32 else v


def _i32_shl(a, b):
    v = (a << (b & 31)) & _MASK32
    return v - 0x100000000 if v & _SIGN32 else v


def _i32_shr_s(a, b):
    return a >> (b & 31)


def _i32_shr_u(a, b):
    v = (a & _MASK32) >> (b & 31)
    return v - 0x100000000 if v & _SIGN32 else v


def _i32_rotl(a, b):
    b &= 31
    u = a & _MASK32
    v = ((u << b) | (u >> (32 - b))) & _MASK32 if b else u
    return v - 0x100000000 if v & _SIGN32 else v


def _f64_div(a, b):
    if b == 0.0:
        if a == 0.0 or a != a:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return a / b


def _i32_div_s(a, b):
    if b == 0:
        raise TrapError("integer divide by zero")
    q = abs(a) // abs(b)
    return _wrap32(q if (a < 0) == (b < 0) else -q)


def _i32_div_u(a, b):
    b &= _MASK32
    if b == 0:
        raise TrapError("integer divide by zero")
    return _wrap32((a & _MASK32) // b)


def _i32_rem_s(a, b):
    if b == 0:
        raise TrapError("integer divide by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def _i32_rem_u(a, b):
    b &= _MASK32
    if b == 0:
        raise TrapError("integer divide by zero")
    return _wrap32((a & _MASK32) % b)


def _i64_div_s(a, b):
    if b == 0:
        raise TrapError("integer divide by zero")
    q = abs(a) // abs(b)
    return _wrap64(q if (a < 0) == (b < 0) else -q)


def _i64_div_u(a, b):
    b &= _MASK64
    if b == 0:
        raise TrapError("integer divide by zero")
    return _wrap64((a & _MASK64) // b)


def _i64_rem_s(a, b):
    if b == 0:
        raise TrapError("integer divide by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def _i64_rem_u(a, b):
    b &= _MASK64
    if b == 0:
        raise TrapError("integer divide by zero")
    return _wrap64((a & _MASK64) % b)


def _trunc_f64_i32(v):
    if v != v or v >= 2147483648.0 or v <= -2147483649.0:
        raise TrapError("invalid conversion to integer")
    return int(v)


def _trunc_f64_i64(v):
    if v != v or v >= 9223372036854775808.0 or v < -9223372036854775808.0:
        raise TrapError("invalid conversion to integer")
    return int(v)


#: Pure binary operators usable by superinstruction fusion (trap-free);
#: comparisons return 1/0 exactly as the reference pushes them.
_BINOPS = {
    34: _i32_add, 35: _i32_sub, 36: _i32_mul,
    41: lambda a, b: _wrap32(a & b),
    42: lambda a, b: _wrap32(a | b),
    43: lambda a, b: _wrap32(a ^ b),
    44: _i32_shl, 45: _i32_shr_s, 46: _i32_shr_u, 47: _i32_rotl,
    52: lambda a, b: 1 if a == b else 0,
    53: lambda a, b: 1 if a != b else 0,
    54: lambda a, b: 1 if a < b else 0,
    55: lambda a, b: 1 if (a & _MASK32) < (b & _MASK32) else 0,
    56: lambda a, b: 1 if a > b else 0,
    57: lambda a, b: 1 if (a & _MASK32) > (b & _MASK32) else 0,
    58: lambda a, b: 1 if a <= b else 0,
    59: lambda a, b: 1 if (a & _MASK32) <= (b & _MASK32) else 0,
    60: lambda a, b: 1 if a >= b else 0,
    61: lambda a, b: 1 if (a & _MASK32) >= (b & _MASK32) else 0,
    62: lambda a, b: _wrap64(a + b),
    63: lambda a, b: _wrap64(a - b),
    64: lambda a, b: _wrap64(a * b),
    69: lambda a, b: _wrap64(a & b),
    70: lambda a, b: _wrap64(a | b),
    71: lambda a, b: _wrap64(a ^ b),
    72: lambda a, b: _wrap64(a << (b & 63)),
    73: lambda a, b: a >> (b & 63),
    74: lambda a, b: _wrap64((a & _MASK64) >> (b & 63)),
    76: lambda a, b: 1 if a == b else 0,
    77: lambda a, b: 1 if a != b else 0,
    78: lambda a, b: 1 if a < b else 0,
    79: lambda a, b: 1 if (a & _MASK64) < (b & _MASK64) else 0,
    80: lambda a, b: 1 if a > b else 0,
    81: lambda a, b: 1 if (a & _MASK64) > (b & _MASK64) else 0,
    82: lambda a, b: 1 if a <= b else 0,
    83: lambda a, b: 1 if a >= b else 0,
    84: lambda a, b: a + b,
    85: lambda a, b: a - b,
    86: lambda a, b: a * b,
    87: _f64_div,
    91: lambda a, b: min(a, b),
    92: lambda a, b: max(a, b),
    95: lambda a, b: 1 if a == b else 0,
    96: lambda a, b: 1 if a != b else 0,
    97: lambda a, b: 1 if a < b else 0,
    98: lambda a, b: 1 if a > b else 0,
    99: lambda a, b: 1 if a <= b else 0,
    100: lambda a, b: 1 if a >= b else 0,
}

#: Trap-capable binary operators (handlers wrap them with a rewind).
_TRAP_BINOPS = {
    37: _i32_div_s, 38: _i32_div_u, 39: _i32_rem_s, 40: _i32_rem_u,
    65: _i64_div_s, 66: _i64_div_u, 67: _i64_rem_s, 68: _i64_rem_u,
}

#: Pure unary operators.
_UNOPS = {
    48: lambda v: 32 - (v & _MASK32).bit_length(),
    49: lambda v: 32 if v & _MASK32 == 0
    else ((v & _MASK32) & -(v & _MASK32)).bit_length() - 1,
    50: lambda v: bin(v & _MASK32).count("1"),
    51: lambda v: 1 if v == 0 else 0,
    75: lambda v: 1 if v == 0 else 0,
    88: lambda v: math.nan if v < 0 else math.sqrt(v),
    89: abs,
    90: lambda v: -v,
    101: _wrap32,
    102: lambda v: v,
    103: lambda v: v & _MASK32,
    104: float,
    105: lambda v: float(v & _MASK32),
    106: float,
    109: lambda v: _wrap64(_PACK_Q.unpack(_PACK_D.pack(v))[0]),
    110: lambda v: _PACK_D.unpack(_PACK_Q.pack(v))[0],
}

#: Trap-capable unary operators (f64→int truncations trap on range, and
#: floor/ceil raise through ``math`` on inf/NaN exactly as the ladder).
_TRAP_UNOPS = {
    93: lambda v: float(math.floor(v)),
    94: lambda v: float(math.ceil(v)),
    107: _trunc_f64_i32,
    108: _trunc_f64_i64,
}

_LOADS = {18: 4, 19: 8, 20: 8, 21: 1, 22: 1, 23: 2}
_STORES = {24: 4, 25: 8, 26: 8, 27: 1, 28: 2}
_CONSTS = (31, 32, 33)
_MARKERS = frozenset((1, 2, 3, 6))        # nop / block / loop / end
_TERM_OPS = frozenset((4, 7, 8, 9, 10))   # if / br / br_if / return / call

#: Every opcode the threaded tier can translate.  ``ELSE`` (5) is absent
#: by design: ``_prepare_body`` rewrites it to a resolved ``BR`` before
#: translation, and the reference ladder does not dispatch it either.
SUPPORTED_OPS = (set(_BINOPS) | set(_TRAP_BINOPS) | set(_UNOPS)
                 | set(_TRAP_UNOPS) | set(_LOADS) | set(_STORES)
                 | set(_CONSTS) | set(_MARKERS) | set(_TERM_OPS)
                 | {0, 11, 12, 13, 14, 15, 16, 17, 29, 30})


def _build_patterns():
    """Straight-line superinstruction patterns, keyed by first opcode and
    sorted longest-first."""
    patterns = {}

    def add(pat, key):
        patterns.setdefault(pat[0], []).append((pat, key))

    for bop in _BINOPS:
        add((13, 13, bop, 14), ("ggbs", bop))
        add((13, 13, bop), ("ggb", bop))
        for c in _CONSTS:
            add((13, c, bop, 14), ("gcbs", bop))
            add((13, c, bop), ("gcb", bop))
    for ld in _LOADS:
        add((13, ld, 14), ("gls", ld))
        add((13, ld), ("gl", ld))
    for sto in _STORES:
        add((13, 13, sto), ("ggs", sto))
        for c in _CONSTS:
            add((13, c, sto), ("gcs", sto))
            add((c, sto), ("cs", sto))
        add((13, sto), ("gs", sto))
    add((13, 14), ("gset", None))
    for c in _CONSTS:
        add((c, 14), ("cset", None))
    for entries in patterns.values():
        entries.sort(key=lambda e: len(e[0]), reverse=True)
    return patterns


def _build_tail_patterns():
    """Compare-and-branch tails fused into the block terminator."""
    tails = []
    for br in (8, 4):                     # br_if / if
        for cmp_op in _BINOPS:
            if not (52 <= cmp_op <= 61 or 76 <= cmp_op <= 83
                    or 95 <= cmp_op <= 100):
                continue
            tails.append(((13, 13, cmp_op, br), ("ggc", cmp_op, br)))
            for c in _CONSTS:
                tails.append(((13, c, cmp_op, br), ("gcc", cmp_op, br)))
            tails.append(((cmp_op, br), ("cb", cmp_op, br)))
        for ez in (51, 75):
            tails.append(((ez, br), ("ez", ez, br)))
    tails.sort(key=lambda e: len(e[0]), reverse=True)
    return tails


_PATTERNS = _build_patterns()
_TAIL_PATTERNS = _build_tail_patterns()


class _Block:
    __slots__ = ("start", "n", "cycles", "deltas", "op_deltas", "seq",
                 "term")

    def __init__(self, start, n, cycles, deltas, op_deltas, seq, term):
        self.start = start
        self.n = n
        self.cycles = cycles
        self.deltas = deltas
        self.op_deltas = op_deltas    # sparse (opcode, count) — profiler
        self.seq = seq
        self.term = term


class ThreadedFunction:
    __slots__ = ("fn", "blocks", "init_tail", "results", "budget_mode")

    def __init__(self, fn, blocks, init_tail, results, budget_mode):
        self.fn = fn
        self.blocks = blocks
        self.init_tail = init_tail
        self.results = results
        self.budget_mode = budget_mode


def translate(fn, inst):
    """Translate a prepared function for one instance.  Handlers pre-bind
    the instance's memory, globals, stats and function table."""
    code = fn.code
    n = len(code)

    for pc, (op, _arg, _extra) in enumerate(code):
        if op not in SUPPORTED_OPS:
            raise ValidationError(
                f"{fn.name}: unknown opcode {op} at pc {pc} "
                f"(threaded tier has no handler)")

    leaders = {0}
    for pc, (op, arg, _extra) in enumerate(code):
        if op in _TERM_OPS:
            leaders.add(pc + 1)
            if op in (4, 7, 8):
                leaders.add(arg)
    ranges = split_blocks(n, leaders)
    block_index = {start: bi for bi, (start, _end) in enumerate(ranges)}

    def bi_of(pc):
        return -1 if pc >= n else block_index[pc]

    stats = inst.stats
    counts = stats.op_counts
    mem = inst.memory
    frame = mem._frame
    gvals = inst._global_values
    funcs = inst._funcs
    boundary = inst.boundary_cost
    budget_mode = inst.max_instructions is not None

    blocks = []
    handler_total = 0
    fusion_wins = 0
    for start, end in ranges:
        ops = code[start:end]
        costs = [OP_COST[op] for op, _a, _e in ops]
        classes = [int(OP_CLASS[op]) for op, _a, _e in ops]
        blk_cycles = math.fsum(costs)   # exact: quarter-grid values
        blk_n = len(ops)
        deltas = class_deltas(classes)

        def make_rewind(idx):
            """Rewind the batched charges down to instructions 0..idx of
            this block (the reference's charge prefix at a trap)."""
            cyc_sfx = math.fsum(costs[idx + 1:])
            n_sfx = blk_n - (idx + 1)
            delta_sfx = class_deltas(classes[idx + 1:])
            if budget_mode:
                def rewind():
                    stats.cycles -= cyc_sfx
                    stats.instructions -= n_sfx
                    for ci, d in delta_sfx:
                        counts[ci] -= d
                    inst._instr_budget += n_sfx
            else:
                def rewind():
                    stats.cycles -= cyc_sfx
                    stats.instructions -= n_sfx
                    for ci, d in delta_sfx:
                        counts[ci] -= d
            return rewind

        def make_load(width, op, off, result):
            """result(st, lo, value) applies the loaded value."""
            if op == 18:
                def fetch(addr):
                    f, o = frame(addr, 4)
                    return UNPACK_I32(f, o)[0]
            elif op == 19:
                def fetch(addr):
                    f, o = frame(addr, 8)
                    return UNPACK_I64(f, o)[0]
            elif op == 20:
                def fetch(addr):
                    f, o = frame(addr, 8)
                    return UNPACK_F64(f, o)[0]
            elif op == 21:
                def fetch(addr):
                    f, o = frame(addr, 1)
                    return f[o]
            elif op == 22:
                def fetch(addr):
                    f, o = frame(addr, 1)
                    v = f[o]
                    return v - 256 if v >= 128 else v
            else:                         # 23: i32.load16_u
                def fetch(addr):
                    f, o = frame(addr, 2)
                    return f[o] | (f[o + 1] << 8)
            return fetch

        def make_store(op):
            """store(addr, value) with the reference's masking."""
            if op == 24:
                def put(addr, v):
                    f, o = frame(addr, 4)
                    PACK_U32(f, o, v & _MASK32)
            elif op == 25:
                def put(addr, v):
                    f, o = frame(addr, 8)
                    PACK_U64(f, o, v & _MASK64)
            elif op == 26:
                def put(addr, v):
                    f, o = frame(addr, 8)
                    PACK_F64(f, o, v)
            elif op == 27:
                def put(addr, v):
                    f, o = frame(addr, 1)
                    f[o] = v & 0xFF
            else:                         # 28: i32.store16
                def put(addr, v):
                    f, o = frame(addr, 2)
                    v &= 0xFFFF
                    f[o] = v & 0xFF
                    f[o + 1] = v >> 8
            return put

        def single(instr, idx):
            op, arg, _extra = instr
            if op in _MARKERS:
                return None
            if op == 13:
                def h(st, lo, i=arg):
                    st.append(lo[i])
                return h
            if op == 14:
                def h(st, lo, i=arg):
                    lo[i] = st.pop()
                return h
            if op == 15:
                def h(st, lo, i=arg):
                    lo[i] = st[-1]
                return h
            if op in _CONSTS:
                def h(st, lo, k=arg):
                    st.append(k)
                return h
            if op == 34:
                def h(st, lo):
                    b = st.pop()
                    v = (st[-1] + b) & _MASK32
                    st[-1] = v - 0x100000000 if v & _SIGN32 else v
                return h
            if op == 84:
                def h(st, lo):
                    b = st.pop()
                    st[-1] = st[-1] + b
                return h
            if op == 86:
                def h(st, lo):
                    b = st.pop()
                    st[-1] = st[-1] * b
                return h
            if op in _BINOPS:
                def h(st, lo, f=_BINOPS[op]):
                    b = st.pop()
                    st[-1] = f(st[-1], b)
                return h
            if op in _TRAP_BINOPS:
                rw = make_rewind(idx)

                def h(st, lo, f=_TRAP_BINOPS[op], rw=rw):
                    b = st.pop()
                    try:
                        st[-1] = f(st[-1], b)
                    except BaseException:
                        rw()
                        raise
                return h
            if op in _UNOPS:
                def h(st, lo, f=_UNOPS[op]):
                    st[-1] = f(st[-1])
                return h
            if op in _TRAP_UNOPS:
                rw = make_rewind(idx)

                def h(st, lo, f=_TRAP_UNOPS[op], rw=rw):
                    try:
                        st[-1] = f(st[-1])
                    except BaseException:
                        rw()
                        raise
                return h
            if op in _LOADS:
                fetch = make_load(_LOADS[op], op, arg, None)
                rw = make_rewind(idx)

                def h(st, lo, fetch=fetch, off=arg, rw=rw):
                    try:
                        st[-1] = fetch(st[-1] + off)
                    except BaseException:
                        rw()
                        raise
                return h
            if op in _STORES:
                put = make_store(op)
                rw = make_rewind(idx)

                def h(st, lo, put=put, off=arg, rw=rw):
                    v = st.pop()
                    try:
                        put(st.pop() + off, v)
                    except BaseException:
                        rw()
                        raise
                return h
            if op == 16:
                def h(st, lo, i=arg):
                    st.append(gvals[i])
                return h
            if op == 17:
                def h(st, lo, i=arg):
                    gvals[i] = st.pop()
                return h
            if op == 11:
                def h(st, lo):
                    st.pop()
                return h
            if op == 12:
                def h(st, lo):
                    c = st.pop()
                    b = st.pop()
                    a = st.pop()
                    st.append(a if c else b)
                return h
            if op == 29:
                def h(st, lo):
                    st.append(mem.pages)
                return h
            if op == 30:
                def h(st, lo):
                    old = mem.grow(st.pop())
                    if old >= 0:
                        mem.grow_count += 1
                        stats.memory_grows += 1
                    st.append(old)
                return h
            if op == 0:
                rw = make_rewind(idx)

                def h(st, lo, rw=rw):
                    rw()
                    raise TrapError("unreachable executed")
                return h
            raise ValidationError(
                f"{fn.name}: unknown opcode {op} (threaded tier)")

        def fused(key, fops, idx):
            kind = key[0]
            if kind == "ggbs":
                f = _BINOPS[key[1]]
                i, j, k = fops[0][1], fops[1][1], fops[3][1]

                def h(st, lo, f=f, i=i, j=j, k=k):
                    lo[k] = f(lo[i], lo[j])
                return h
            if kind == "ggb":
                f = _BINOPS[key[1]]
                i, j = fops[0][1], fops[1][1]

                def h(st, lo, f=f, i=i, j=j):
                    st.append(f(lo[i], lo[j]))
                return h
            if kind == "gcbs":
                f = _BINOPS[key[1]]
                i, c, k = fops[0][1], fops[1][1], fops[3][1]

                def h(st, lo, f=f, i=i, c=c, k=k):
                    lo[k] = f(lo[i], c)
                return h
            if kind == "gcb":
                f = _BINOPS[key[1]]
                i, c = fops[0][1], fops[1][1]

                def h(st, lo, f=f, i=i, c=c):
                    st.append(f(lo[i], c))
                return h
            if kind in ("gl", "gls"):
                fetch = make_load(_LOADS[key[1]], key[1], None, None)
                rw = make_rewind(idx + 1)
                i, off = fops[0][1], fops[1][1]
                if kind == "gl":
                    def h(st, lo, fetch=fetch, i=i, off=off, rw=rw):
                        try:
                            st.append(fetch(lo[i] + off))
                        except BaseException:
                            rw()
                            raise
                else:
                    k = fops[2][1]

                    def h(st, lo, fetch=fetch, i=i, off=off, k=k, rw=rw):
                        try:
                            lo[k] = fetch(lo[i] + off)
                        except BaseException:
                            rw()
                            raise
                return h
            if kind == "ggs":
                put = make_store(key[1])
                rw = make_rewind(idx + 2)
                i, j, off = fops[0][1], fops[1][1], fops[2][1]

                def h(st, lo, put=put, i=i, j=j, off=off, rw=rw):
                    try:
                        put(lo[i] + off, lo[j])
                    except BaseException:
                        rw()
                        raise
                return h
            if kind == "gcs":
                put = make_store(key[1])
                rw = make_rewind(idx + 2)
                i, c, off = fops[0][1], fops[1][1], fops[2][1]

                def h(st, lo, put=put, i=i, c=c, off=off, rw=rw):
                    try:
                        put(lo[i] + off, c)
                    except BaseException:
                        rw()
                        raise
                return h
            if kind == "cs":
                put = make_store(key[1])
                rw = make_rewind(idx + 1)
                c, off = fops[0][1], fops[1][1]

                def h(st, lo, put=put, c=c, off=off, rw=rw):
                    try:
                        put(st.pop() + off, c)
                    except BaseException:
                        rw()
                        raise
                return h
            if kind == "gs":
                put = make_store(key[1])
                rw = make_rewind(idx + 1)
                i, off = fops[0][1], fops[1][1]

                def h(st, lo, put=put, i=i, off=off, rw=rw):
                    v = lo[i]
                    try:
                        put(st.pop() + off, v)
                    except BaseException:
                        rw()
                        raise
                return h
            if kind == "gset":
                i, k = fops[0][1], fops[1][1]

                def h(st, lo, i=i, k=k):
                    lo[k] = lo[i]
                return h
            if kind == "cset":
                c, k = fops[0][1], fops[1][1]

                def h(st, lo, c=c, k=k):
                    lo[k] = c
                return h
            return None

        def branch_term(br_op, target, extra, nbi, cond):
            """Terminator for br_if (8) / if (4) given a condition
            extractor ``cond(st, lo) -> truthy``."""
            tbi = bi_of(target)
            if br_op == 8:
                def term(st, lo, cond=cond, h=extra, tbi=tbi, nbi=nbi):
                    if cond(st, lo):
                        del st[h:]
                        return tbi
                    return nbi
            else:                         # if: jump on false
                def term(st, lo, cond=cond, tbi=tbi, nbi=nbi):
                    if not cond(st, lo):
                        return tbi
                    return nbi
            return term

        def make_term(instr, nbi, cond=None):
            op, arg, extra = instr
            if op in (8, 4):
                if cond is None:
                    def cond(st, lo):
                        return st.pop()
                if op == 8 and extra is None:
                    # br_if always records an unwind height; guard anyway.
                    extra = 0
                return branch_term(op, arg, extra, nbi, cond)
            if op == 7:                   # br (possibly synthesised else)
                tbi = bi_of(arg)
                if extra is None:
                    def term(st, lo, tbi=tbi):
                        return tbi
                else:
                    def term(st, lo, h=extra, tbi=tbi):
                        del st[h:]
                        return tbi
                return term
            if op == 9:                   # return
                def term(st, lo):
                    return -1
                return term
            # call
            kind, target, ftype = funcs[arg]
            nargs = len(ftype.params)
            has_res = bool(ftype.results)
            if kind == "host":
                def term(st, lo, target=target, nargs=nargs,
                         has_res=has_res, nbi=nbi):
                    if nargs:
                        call_args = st[-nargs:]
                        del st[-nargs:]
                    else:
                        call_args = []
                    stats.calls += 1
                    stats.host_calls += 1
                    stats.boundary_cycles += boundary
                    result = target(inst, *call_args)
                    if has_res:
                        st.append(result)
                    return nbi
            else:
                def term(st, lo, target=target, nargs=nargs,
                         has_res=has_res, nbi=nbi):
                    if nargs:
                        call_args = st[-nargs:]
                        del st[-nargs:]
                    else:
                        call_args = []
                    stats.calls += 1
                    result = inst._run(target, call_args)
                    if has_res:
                        st.append(result)
                    return nbi
            return term

        # -- assemble the block ------------------------------------------
        nbi = bi_of(end)
        has_term = bool(ops) and ops[-1][0] in _TERM_OPS
        body = ops[:-1] if has_term else ops
        term = None
        if has_term and ops[-1][0] in (8, 4):
            hit = match_tail(ops, lambda o: o[0], _TAIL_PATTERNS)
            if hit is not None:
                key, ln = hit
                kind, cmp_op, _br = key
                if kind == "ggc":
                    f = _BINOPS[cmp_op]
                    i, j = ops[-4][1], ops[-3][1]

                    def cond(st, lo, f=f, i=i, j=j):
                        return f(lo[i], lo[j])
                elif kind == "gcc":
                    f = _BINOPS[cmp_op]
                    i, c = ops[-4][1], ops[-3][1]

                    def cond(st, lo, f=f, i=i, c=c):
                        return f(lo[i], c)
                elif kind == "cb":
                    f = _BINOPS[cmp_op]

                    def cond(st, lo, f=f):
                        b = st.pop()
                        return f(st.pop(), b)
                else:                     # "ez": eqz + branch
                    def cond(st, lo):
                        return 1 if st.pop() == 0 else 0
                term = make_term(ops[-1], nbi, cond)
                body = ops[:-ln]
        if term is None:
            if has_term:
                term = make_term(ops[-1], nbi)
            else:
                def term(st, lo, nbi=nbi):
                    return nbi

        seq = fuse_straight_line(body, lambda o: o[0], _PATTERNS,
                                 single, fused)
        op_deltas = class_deltas([op for op, _a, _e in ops])
        handler_total += len(seq)
        fusion_wins += sum(1 for o in body if o[0] not in _MARKERS) - len(seq)
        blocks.append(_Block(start, blk_n, blk_cycles, deltas, op_deltas,
                             seq, term))

    init_tail = [0.0 if t == "f64" else 0 for t in fn.local_types]
    reg = get_registry()
    reg.counter_add("interp.wasm.translated_functions", 1, SCHED)
    reg.counter_add("interp.wasm.translated_blocks", len(blocks), SCHED)
    reg.counter_add("interp.wasm.handlers", handler_total, SCHED)
    reg.counter_add("interp.wasm.fused_superinstructions", fusion_wins,
                    SCHED)
    return ThreadedFunction(fn, blocks, init_tail, bool(fn.results),
                            budget_mode)


def run(inst, tf, args):
    """Execute a translated function frame.  Mirrors ``WasmInstance``'s
    reference ``_run_from`` observable behaviour bit for bit."""
    locals_ = args + tf.init_tail
    stack = []
    stats = inst.stats
    counts = stats.op_counts
    blocks = tf.blocks
    budget_mode = tf.budget_mode
    prof = inst._profile
    fprof = prof.frame(tf.fn.name) if prof is not None else None
    bi = 0 if blocks else -1
    while bi >= 0:
        blk = blocks[bi]
        if budget_mode:
            r = inst._instr_budget
            if r < blk.n:
                # Deopt: fewer budget units than block instructions — the
                # reference ladder charges op-by-op from the block start
                # and traps at the exact instruction with exact partials.
                get_registry().counter_add("interp.wasm.deopts", 1, SCHED)
                return inst._run_from(tf.fn, locals_, stack, blk.start)
            inst._instr_budget = r - blk.n
        stats.cycles += blk.cycles
        stats.instructions += blk.n
        for ci, d in blk.deltas:
            counts[ci] += d
        if fprof is not None:
            for op, d in blk.op_deltas:
                fprof[op] = fprof.get(op, 0) + d
        for h in blk.seq:
            h(stack, locals_)
        bi = blk.term(stack, locals_)
    if tf.results:
        return stack[-1] if stack else 0
    return None
