"""Codegen execution tier for the Wasm VM: threaded blocks → Python.

Walks the same basic blocks the threaded tier builds
(:mod:`repro.wasm.threaded`) and emits them as one generated Python
function per prepared function: the operand stack is lowered to local
variables ``s0..sK`` (depths are static — the validator only branches at
empty-stack statement boundaries, so every join has one depth), locals
to ``l0..lN``, and dispatch to a resumable ``bi`` block index looping
over ``if bi == k`` arms with straight-line bodies.

Exactness (rules of ``engine/threaded.py``, same as the threaded tier):

* block entry charges the batched cycle/instruction/op-class totals as
  folded literals (Wasm costs live on the exact 0.25 grid, so the
  ``math.fsum`` block total is exact at any association) and decrements
  the budget by the block length;
* every trap point (loads/stores, div/rem, trunc, floor/ceil,
  ``unreachable``) is wrapped in an explicit guard whose rewind
  statements subtract the charge suffix — the same constants the
  threaded tier's rewind closures pre-bind — before re-raising;
* a block entered with fewer budget units than instructions deopts to
  the reference ladder (``_run_from``) at the block start, materialising
  the slot values back into real locals/stack lists;
* unknown opcodes fail loudly at translation with the same structured
  error the threaded translator raises.

The generated source depends only on the prepared code and translation
flags — instance state (memory, globals, stats, call targets) is bound
by ``make(ns)`` at instantiation — so translation units are served from
the persistent compile cache (see :mod:`repro.engine.codegen`).

``translate`` returns ``None`` (*declines*) when the static stack-depth
analysis finds an inconsistent join; the VM then falls back to the
threaded tier for that function.
"""

from __future__ import annotations

import math

from repro.engine.codegen import (
    DECLINED, Emitter, codegen_enabled, literal, load_factory, unit_key,
)
from repro.engine.threaded import class_deltas, split_blocks
from repro.errors import TrapError, ValidationError
from repro.obs import SCHED, get_registry
from repro.wasm import threaded as _thr
from repro.wasm.instructions import OP_CLASS, OP_COST
from repro.wasm.memory import (
    PACK_F64, PACK_U32, PACK_U64, UNPACK_F64, UNPACK_I32, UNPACK_I64,
    _FRAME_BITS, _FRAME_MASK,
)

__all__ = ["codegen_enabled", "translate", "DECLINED"]

_M32 = "4294967295"
_S32 = "2147483648"
_W32 = "4294967296"
_M64 = "18446744073709551615"
_S64 = "9223372036854775808"
_W64 = "18446744073709551616"

#: Signed comparison templates (a = top-1, b = top).
_CMP_SIGNED = {52: "==", 53: "!=", 54: "<", 56: ">", 58: "<=", 60: ">=",
               76: "==", 77: "!=", 78: "<", 80: ">", 82: "<=", 83: ">=",
               95: "==", 96: "!=", 97: "<", 98: ">", 99: "<=", 100: ">="}
_CMP_U32 = {55: "<", 57: ">", 59: "<=", 61: ">="}
_CMP_U64 = {79: "<", 81: ">"}
_F64_ARITH = {84: "+", 85: "-", 86: "*"}
_I32_WRAP_ARITH = {34: "+", 35: "-", 36: "*", 41: "&", 42: "|", 43: "^"}
_I64_WRAP_ARITH = {62: "+", 63: "-", 64: "*", 69: "&", 70: "|", 71: "^"}

_LOAD_WIDTH = _thr._LOADS
_STORE_WIDTH = _thr._STORES


def _flow(op, arg, call_sigs):
    """(pops, pushes) for one non-terminator opcode."""
    if op in (13, 16, 29) or op in _thr._CONSTS:
        return 0, 1
    if op in (14, 17, 11):
        return 1, 0
    if op == 15 or op == 30 or op in _thr._UNOPS or op in _thr._TRAP_UNOPS \
            or op in _LOAD_WIDTH:
        return 1, 1
    if op in _thr._BINOPS or op in _thr._TRAP_BINOPS:
        return 2, 1
    if op in _STORE_WIDTH:
        return 2, 0
    if op == 12:
        return 3, 1
    return 0, 0      # markers, unreachable


def _analyse(code, ranges, block_index, call_sigs):
    """Static operand-stack depths: per-block entry depth and the max.

    Returns ``(entry_depth, max_depth)`` or ``None`` when a join is
    entered at two different depths or a depth would go negative (the
    validator prevents both for generated code; hand-built modules fall
    back to the threaded tier).
    """
    if not ranges:
        return {}, 0
    entry = {0: 0}
    work = [0]
    max_d = 0
    n = len(code)

    def join(pc, depth):
        if pc >= n:
            return True
        tbi = block_index[pc]
        if tbi in entry:
            return entry[tbi] == depth
        entry[tbi] = depth
        work.append(tbi)
        return True

    while work:
        bi = work.pop()
        start, end = ranges[bi]
        d = entry[bi]
        ops = code[start:end]
        has_term = bool(ops) and ops[-1][0] in _thr._TERM_OPS
        body = ops[:-1] if has_term else ops
        for op, arg, _extra in body:
            pops, pushes = _flow(op, arg, call_sigs)
            if d < pops:
                return None
            d += pushes - pops
            if d > max_d:
                max_d = d
        if not has_term:
            if not join(end, d):
                return None
            continue
        op, arg, extra = ops[-1]
        if op == 8:                       # br_if
            if d < 1:
                return None
            d -= 1
            h = 0 if extra is None else extra
            if not (join(arg, min(d, h)) and join(end, d)):
                return None
        elif op == 4:                     # if (jump on false)
            if d < 1:
                return None
            d -= 1
            if not (join(arg, d) and join(end, d)):
                return None
        elif op == 7:                     # br
            target_d = d if extra is None else min(d, extra)
            if not join(arg, target_d):
                return None
        elif op == 9:                     # return
            pass
        else:                             # call
            _kind, nargs, has_res = call_sigs[arg]
            if d < nargs:
                return None
            d += (1 if has_res else 0) - nargs
            if d > max_d:
                max_d = d
            if not join(end, d):
                return None
    return entry, max_d


def _emit_i32_wrap(out, target, expr):
    out.emit(f"t_ = ({expr}) & {_M32}")
    out.emit(f"{target} = t_ - {_W32} if t_ & {_S32} else t_")


def _emit_i64_wrap(out, target, expr):
    out.emit(f"t_ = ({expr}) & {_M64}")
    out.emit(f"{target} = t_ - {_W64} if t_ & {_S64} else t_")


class _FnEmitter:
    """Emits the ``run`` body for one prepared function."""

    def __init__(self, fn, code, ranges, block_index, entry_depth,
                 max_depth, budget_mode, profiling, call_sigs):
        self.fn = fn
        self.code = code
        self.ranges = ranges
        self.block_index = block_index
        self.entry_depth = entry_depth
        self.max_depth = max_depth
        self.budget_mode = budget_mode
        self.profiling = profiling
        self.call_sigs = call_sigs
        self.results = bool(fn.results)
        self.names = set()                # ns names the source references
        #: Per-block charge batch, flushed lazily (see ``emit_flush``):
        #: ``{bi: (cycles, n_ops, [(class, d)], [(op, d)])}``.
        self.block_counts = {}
        self.out = Emitter()

    def use(self, name):
        self.names.add(name)
        return name

    def bi_of(self, pc):
        return -1 if pc >= len(self.code) else self.block_index[pc]

    # -- fragments ------------------------------------------------------

    def emit_return(self, depth):
        if not self.results:
            self.out.emit("return None")
        elif depth > 0:
            self.out.emit(f"return s{depth - 1}")
        else:
            self.out.emit("return 0")

    def emit_jump(self, tbi, depth, fall_bi=None):
        """Transfer to block ``tbi`` arriving at ``depth`` slots."""
        if tbi == -1:
            self.emit_return(depth)
        elif tbi == fall_bi:
            self.out.emit(f"bi = {tbi}")
        else:
            self.out.emit(f"bi = {tbi}")
            self.out.emit("continue")

    def emit_rewind(self, costs, classes, idx):
        """The charge-suffix rewind the threaded tier pre-binds: restore
        the reference's charge prefix 0..idx before the trap escapes."""
        cyc_sfx = math.fsum(costs[idx + 1:])
        n_sfx = len(costs) - (idx + 1)
        if cyc_sfx:
            self.out.emit(f"{self.use('stats')}.cycles -= "
                          f"{literal(cyc_sfx)}")
        if n_sfx:
            self.out.emit(f"{self.use('stats')}.instructions -= {n_sfx}")
        for ci, d in class_deltas(classes[idx + 1:]):
            self.out.emit(f"{self.use('counts')}[{ci}] -= {d}")
        if self.budget_mode and n_sfx:
            self.out.emit(f"{self.use('inst')}._instr_budget += {n_sfx}")

    def _frame_lookup(self, base, offset, width):
        """Inline of ``LinearMemory._frame``: resolve ``base + offset``
        to ``(f_, o_)`` with the materialised-frame fast path as straight
        statements.  A missing frame, a negative address (whose shifted
        index can never be materialised) or an access past the committed
        limit all fall back to the bound ``frame`` call, which either
        materialises the frame or raises the exact reference trap."""
        return [
            f"a_ = {base} + {offset}",
            f"f_ = {self.use('frames_')}.get(a_ >> {_FRAME_BITS})",
            f"if f_ is None or a_ + {width} > {self.use('mem')}._limit:",
            f"    f_, o_ = {self.use('frame')}(a_, {width})",
            "else:",
            f"    o_ = a_ & {_FRAME_MASK}",
        ]

    def emit_flush(self):
        """Apply the per-block charges accumulated by the dispatch loop.
        Runs once, in the ``finally``, covering returns, deopt handoffs
        and escaping traps alike."""
        out = self.out
        if not self.block_counts:
            out.emit("pass")
        for bi in sorted(self.block_counts):
            blk_cycles, n_ops, deltas, prof = self.block_counts[bi]
            out.emit(f"if nb{bi}:")
            with out.block():
                if blk_cycles:
                    out.emit(f"{self.use('stats')}.cycles += "
                             f"{literal(blk_cycles)} * nb{bi}")
                mul = f"nb{bi}" if n_ops == 1 else f"{n_ops} * nb{bi}"
                out.emit(f"{self.use('stats')}.instructions += {mul}")
                for ci, dc in deltas:
                    mul = f"nb{bi}" if dc == 1 else f"{dc} * nb{bi}"
                    out.emit(f"{self.use('counts')}[{ci}] += {mul}")
                for op, dc in prof:
                    mul = f"nb{bi}" if dc == 1 else f"{dc} * nb{bi}"
                    out.emit(f"fprof[{op}] = fprof.get({op}, 0) + {mul}")

    def guarded(self, body_lines, costs, classes, idx):
        self.out.emit("try:")
        with self.out.block():
            for line in body_lines:
                self.out.emit(line)
        self.out.emit("except BaseException:")
        with self.out.block():
            self.emit_rewind(costs, classes, idx)
            self.out.emit("raise")

    # -- one straight-line op at static depth d; returns the new depth --

    def emit_op(self, instr, d, costs, classes, idx):
        op, arg, _extra = instr
        out = self.out
        if op in _thr._MARKERS:
            return d
        if op == 13:
            out.emit(f"s{d} = l{arg}")
            return d + 1
        if op == 14:
            out.emit(f"l{arg} = s{d - 1}")
            return d - 1
        if op == 15:
            out.emit(f"l{arg} = s{d - 1}")
            return d
        if op in _thr._CONSTS:
            out.emit(f"s{d} = {literal(arg)}")
            return d + 1
        if op == 16:
            out.emit(f"s{d} = {self.use('gvals')}[{arg}]")
            return d + 1
        if op == 17:
            out.emit(f"{self.use('gvals')}[{arg}] = s{d - 1}")
            return d - 1
        if op == 11:
            return d - 1
        if op == 12:
            out.emit(f"s{d - 3} = s{d - 3} if s{d - 1} else s{d - 2}")
            return d - 2
        if op == 29:
            out.emit(f"s{d} = {self.use('mem')}.pages")
            return d + 1
        if op == 30:
            out.emit(f"t_ = {self.use('mem')}.grow(s{d - 1})")
            out.emit("if t_ >= 0:")
            with out.block():
                out.emit("mem.grow_count += 1")
                out.emit(f"{self.use('stats')}.memory_grows += 1")
            out.emit(f"s{d - 1} = t_")
            return d
        if op == 0:
            self.emit_rewind(costs, classes, idx)
            out.emit(f"raise {self.use('TrapError')}"
                     f"('unreachable executed')")
            return d
        a, b = f"s{d - 2}", f"s{d - 1}"
        if op in _I32_WRAP_ARITH:
            _emit_i32_wrap(out, a, f"{a} {_I32_WRAP_ARITH[op]} {b}")
            return d - 1
        if op in _I64_WRAP_ARITH:
            _emit_i64_wrap(out, a, f"{a} {_I64_WRAP_ARITH[op]} {b}")
            return d - 1
        if op in _F64_ARITH:
            out.emit(f"{a} = {a} {_F64_ARITH[op]} {b}")
            return d - 1
        if op == 44:
            _emit_i32_wrap(out, a, f"{a} << ({b} & 31)")
            return d - 1
        if op == 45:
            out.emit(f"{a} = {a} >> ({b} & 31)")
            return d - 1
        if op == 46:
            _emit_i32_wrap(out, a, f"({a} & {_M32}) >> ({b} & 31)")
            return d - 1
        if op == 72:
            _emit_i64_wrap(out, a, f"{a} << ({b} & 63)")
            return d - 1
        if op == 73:
            out.emit(f"{a} = {a} >> ({b} & 63)")
            return d - 1
        if op == 74:
            _emit_i64_wrap(out, a, f"({a} & {_M64}) >> ({b} & 63)")
            return d - 1
        if op in _CMP_SIGNED:
            out.emit(f"{a} = 1 if {a} {_CMP_SIGNED[op]} {b} else 0")
            return d - 1
        if op in _CMP_U32:
            out.emit(f"{a} = 1 if ({a} & {_M32}) {_CMP_U32[op]} "
                     f"({b} & {_M32}) else 0")
            return d - 1
        if op in _CMP_U64:
            out.emit(f"{a} = 1 if ({a} & {_M64}) {_CMP_U64[op]} "
                     f"({b} & {_M64}) else 0")
            return d - 1
        if op == 91:
            out.emit(f"{a} = min({a}, {b})")
            return d - 1
        if op == 92:
            out.emit(f"{a} = max({a}, {b})")
            return d - 1
        if op in (47, 87):                # rotl / f64.div via value fn
            out.emit(f"{a} = {self.use(f'vf{op}')}({a}, {b})")
            return d - 1
        if op in _thr._TRAP_BINOPS:
            self.guarded([f"{a} = {self.use(f'vf{op}')}({a}, {b})"],
                         costs, classes, idx)
            return d - 1
        t = f"s{d - 1}"
        if op in (51, 75):
            out.emit(f"{t} = 1 if {t} == 0 else 0")
            return d
        if op == 88:
            out.emit(f"{t} = {self.use('nan')} if {t} < 0 "
                     f"else {self.use('sqrt')}({t})")
            return d
        if op == 89:
            out.emit(f"{t} = abs({t})")
            return d
        if op == 90:
            out.emit(f"{t} = -{t}")
            return d
        if op == 101:
            _emit_i32_wrap(out, t, t)
            return d
        if op == 102:
            return d                      # i64.extend_i32_s: identity
        if op == 103:
            out.emit(f"{t} = {t} & {_M32}")
            return d
        if op in (104, 106):
            out.emit(f"{t} = float({t})")
            return d
        if op == 105:
            out.emit(f"{t} = float({t} & {_M32})")
            return d
        if op in (109, 110):
            out.emit(f"{t} = {self.use(f'vf{op}')}({t})")
            return d
        if op in _thr._TRAP_UNOPS:
            self.guarded([f"{t} = {self.use(f'vf{op}')}({t})"],
                         costs, classes, idx)
            return d
        if op in _thr._UNOPS:             # clz/ctz/popcnt and friends
            out.emit(f"{t} = {self.use(f'vf{op}')}({t})")
            return d
        if op in _LOAD_WIDTH:
            width = _LOAD_WIDTH[op]
            body = self._frame_lookup(f"s{d - 1}", arg, width)
            if op == 18:
                body.append(f"s{d - 1} = {self.use('u_i32')}(f_, o_)[0]")
            elif op == 19:
                body.append(f"s{d - 1} = {self.use('u_i64')}(f_, o_)[0]")
            elif op == 20:
                body.append(f"s{d - 1} = {self.use('u_f64')}(f_, o_)[0]")
            elif op == 21:
                body.append(f"s{d - 1} = f_[o_]")
            elif op == 22:
                body.append("t_ = f_[o_]")
                body.append(f"s{d - 1} = t_ - 256 if t_ >= 128 else t_")
            else:                         # 23: i32.load16_u
                body.append(f"s{d - 1} = f_[o_] | (f_[o_ + 1] << 8)")
            self.guarded(body, costs, classes, idx)
            return d
        if op in _STORE_WIDTH:
            width = _STORE_WIDTH[op]
            v, addr = f"s{d - 1}", f"s{d - 2}"
            body = self._frame_lookup(addr, arg, width)
            if op == 24:
                body.append(f"{self.use('p_u32')}(f_, o_, {v} & {_M32})")
            elif op == 25:
                body.append(f"{self.use('p_u64')}(f_, o_, {v} & {_M64})")
            elif op == 26:
                body.append(f"{self.use('p_f64')}(f_, o_, {v})")
            elif op == 27:
                body.append(f"f_[o_] = {v} & 255")
            else:                         # 28: i32.store16
                body.append(f"t_ = {v} & 65535")
                body.append("f_[o_] = t_ & 255")
                body.append("f_[o_ + 1] = t_ >> 8")
            self.guarded(body, costs, classes, idx)
            return d - 2
        raise ValidationError(
            f"{self.fn.name}: unknown opcode {op} (codegen tier)")

    # -- terminators ----------------------------------------------------

    def emit_term(self, instr, d, bi, fall_bi):
        op, arg, extra = instr
        out = self.out
        if op == 8:                       # br_if
            h = 0 if extra is None else extra
            tbi = self.bi_of(arg)
            out.emit(f"if s{d - 1}:")
            with out.block():
                self.emit_jump(tbi, min(d - 1, h))
            self.emit_jump(fall_bi, d - 1, fall_bi=bi + 1)
        elif op == 4:                     # if: jump on false
            tbi = self.bi_of(arg)
            out.emit(f"if not s{d - 1}:")
            with out.block():
                self.emit_jump(tbi, d - 1)
            self.emit_jump(fall_bi, d - 1, fall_bi=bi + 1)
        elif op == 7:                     # br
            target_d = d if extra is None else min(d, extra)
            self.emit_jump(self.bi_of(arg), target_d)
        elif op == 9:                     # return
            self.emit_return(d)
        else:                             # call
            kind, nargs, has_res = self.call_sigs[arg]
            base = d - nargs
            arg_list = ", ".join(f"s{base + i}" for i in range(nargs))
            out.emit(f"{self.use('stats')}.calls += 1")
            dst = f"s{base} = " if has_res else ""
            if kind == "host":
                out.emit("stats.host_calls += 1")
                out.emit(f"stats.boundary_cycles += "
                         f"{self.use('boundary')}")
                target = self.use(f"host_{arg}")
                call_args = f", {arg_list}" if nargs else ""
                out.emit(f"{dst}{target}({self.use('inst')}{call_args})")
            else:
                target = self.use(f"fn_{arg}")
                out.emit(f"{dst}{self.use('call')}({target}, "
                         f"[{arg_list}])")
            self.emit_jump(fall_bi, base + (1 if has_res else 0),
                           fall_bi=bi + 1)

    # -- whole blocks ---------------------------------------------------

    def emit_block(self, bi):
        out = self.out
        start, end = self.ranges[bi]
        out.emit(f"if bi == {bi}:")
        with out.block():
            if bi not in self.entry_depth:
                # CFG-unreachable: never entered at runtime.
                out.emit(f"raise {self.use('TrapError')}"
                         f"('codegen: entered unreachable block {bi}')")
                return
            ops = self.code[start:end]
            costs = [OP_COST[op] for op, _a, _e in ops]
            classes = [int(OP_CLASS[op]) for op, _a, _e in ops]
            d = self.entry_depth[bi]
            if self.budget_mode:
                out.emit(f"r_ = {self.use('inst')}._instr_budget")
                out.emit(f"if r_ < {len(ops)}:")
                with out.block():
                    out.emit(f"{self.use('deopt')}()")
                    lo = ", ".join(
                        f"l{i}" for i in range(self.fn.num_locals))
                    st = ", ".join(f"s{i}" for i in range(d))
                    out.emit(f"return {self.use('run_from')}"
                             f"({self.use('fn')}, [{lo}], [{st}], "
                             f"{start})")
                out.emit(f"inst._instr_budget = r_ - {len(ops)}")
            if ops:
                # Charges accumulate in a per-block execution counter and
                # flush in the ``finally``.  Every wasm op cost is a
                # dyadic rational and totals stay far below 2**50, so
                # ``blk_cycles * nb`` is the exact float the eager
                # per-block adds would have produced; the integer
                # counters commute outright (guards rewind the engine
                # counters directly, which deferral does not disturb).
                out.emit(f"nb{bi} += 1")
                self.block_counts[bi] = (
                    math.fsum(costs), len(ops),
                    list(class_deltas(classes)),
                    list(class_deltas([o for o, _a, _e in ops]))
                    if self.profiling else [])
            has_term = bool(ops) and ops[-1][0] in _thr._TERM_OPS
            body = ops[:-1] if has_term else ops
            for idx, instr in enumerate(body):
                d = self.emit_op(instr, d, costs, classes, idx)
            if has_term:
                self.emit_term(ops[-1], d, bi, self.bi_of(end))
            else:
                self.emit_jump(self.bi_of(end), d, fall_bi=bi + 1)

    def build(self):
        out = self.out
        body = Emitter()
        self.out = body
        with body.block():                # inside `def run(args):`
            with body.block():
                for i in range(self.fn.num_params):
                    body.emit(f"l{i} = args[{i}]")
                for j, t in enumerate(self.fn.local_types):
                    init = "0.0" if t == "f64" else "0"
                    body.emit(f"l{self.fn.num_params + j} = {init}")
                if self.max_depth:
                    chain = " = ".join(
                        f"s{i}" for i in range(self.max_depth))
                    body.emit(f"{chain} = 0")
                if self.profiling:
                    body.emit(f"fprof = {self.use('prof_frame')}"
                              f"({self.use('fn_name')})")
                if not self.ranges:
                    self.emit_return(0)
                else:
                    live = [bi for bi, (start, end)
                            in enumerate(self.ranges)
                            if bi in self.entry_depth and end > start]
                    if live:
                        body.emit(" = ".join(
                            f"nb{bi}" for bi in live) + " = 0")
                    body.emit("try:")
                    with body.block():
                        body.emit("bi = 0")
                        body.emit("while True:")
                        with body.block():
                            for bi in range(len(self.ranges)):
                                self.emit_block(bi)
                    body.emit("finally:")
                    with body.block():
                        self.emit_flush()
        self.out = out
        out.emit("def make(ns):")
        with out.block():
            for name in sorted(self.names):
                out.emit(f"{name} = ns[{name!r}]")
            out.emit("def run(args):")
            out.lines.extend(body.lines)
            out.emit("return run")
        return out.source()


def translate(fn, inst):
    """Build (or load warm) the generated runner for one prepared
    function on one instance; ``None`` means the translator declined and
    the caller should use the threaded tier."""
    code = fn.code
    for pc, (op, _arg, _extra) in enumerate(code):
        if op not in _thr.SUPPORTED_OPS:
            raise ValidationError(
                f"{fn.name}: unknown opcode {op} at pc {pc} "
                f"(codegen tier has no handler)")

    leaders = {0}
    for pc, (op, arg, _extra) in enumerate(code):
        if op in _thr._TERM_OPS:
            leaders.add(pc + 1)
            if op in (4, 7, 8):
                leaders.add(arg)
    ranges = split_blocks(len(code), leaders)
    block_index = {start: bi for bi, (start, _end) in enumerate(ranges)}

    call_sigs = {}
    for pc, (op, arg, _extra) in enumerate(code):
        if op == 10:
            kind, _target, ftype = inst._funcs[arg]
            call_sigs[arg] = (kind, len(ftype.params), bool(ftype.results))

    flow = _analyse(code, ranges, block_index, call_sigs)
    reg = get_registry()
    if flow is None:
        reg.counter_add("interp.wasm.codegen_declined", 1, SCHED)
        return None
    entry_depth, max_depth = flow

    budget_mode = inst.max_instructions is not None
    profiling = inst._profile is not None
    key = unit_key("wasm", (
        repr(code), repr(tuple(fn.local_types)), fn.num_params,
        bool(fn.results), budget_mode, profiling,
        repr(sorted(call_sigs.items()))))

    def build_source():
        emitter = _FnEmitter(fn, code, ranges, block_index, entry_depth,
                             max_depth, budget_mode, profiling, call_sigs)
        return emitter.build()

    factory = load_factory("wasm", key, build_source)

    ns = {
        "inst": inst, "stats": inst.stats, "counts": inst.stats.op_counts,
        "mem": inst.memory, "frame": inst.memory._frame,
        "frames_": inst.memory._frames,
        "gvals": inst._global_values, "fn": fn, "fn_name": fn.name,
        "run_from": inst._run_from, "call": inst._run,
        "boundary": inst.boundary_cost, "TrapError": TrapError,
        "nan": math.nan, "sqrt": math.sqrt,
        "u_i32": UNPACK_I32, "u_i64": UNPACK_I64, "u_f64": UNPACK_F64,
        "p_u32": PACK_U32, "p_u64": PACK_U64, "p_f64": PACK_F64,
        "deopt": lambda: get_registry().counter_add(
            "interp.wasm.codegen_deopts", 1, SCHED),
    }
    if inst._profile is not None:
        ns["prof_frame"] = inst._profile.frame
    for op, f in _thr._BINOPS.items():
        ns[f"vf{op}"] = f
    for op, f in _thr._TRAP_BINOPS.items():
        ns[f"vf{op}"] = f
    for op, f in _thr._UNOPS.items():
        ns[f"vf{op}"] = f
    for op, f in _thr._TRAP_UNOPS.items():
        ns[f"vf{op}"] = f
    for arg, (kind, _nargs, _res) in call_sigs.items():
        target = inst._funcs[arg][1]
        ns[f"host_{arg}" if kind == "host" else f"fn_{arg}"] = target

    reg.counter_add("interp.wasm.codegen_functions", 1, SCHED)
    reg.counter_add("interp.wasm.codegen_blocks", len(ranges), SCHED)
    return factory(ns)
