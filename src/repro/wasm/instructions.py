"""WebAssembly instruction set used by the reproduction.

Instructions are represented as plain tuples ``(opcode, operand)`` for
interpreter speed; this module defines the opcode constants, their names,
binary encodings, abstract cycle costs, and operation-class attribution
(the classes the paper's Table 12 counts: ADD/MUL/DIV/REM/SHIFT/AND/OR).
"""

from __future__ import annotations

import enum

# OpClass moved to the engine core (repro.engine.opclass) so every engine
# can attribute instructions without importing the wasm layer; re-exported
# here for backward compatibility.
from repro.engine.opclass import OpClass


class Op(enum.IntEnum):
    """Opcodes. Values are dense so the VM can index dispatch tables."""

    # Control.
    UNREACHABLE = 0
    NOP = 1
    BLOCK = 2
    LOOP = 3
    IF = 4
    ELSE = 5
    END = 6
    BR = 7
    BR_IF = 8
    RETURN = 9
    CALL = 10
    DROP = 11
    SELECT = 12
    # Variable access.
    LOCAL_GET = 13
    LOCAL_SET = 14
    LOCAL_TEE = 15
    GLOBAL_GET = 16
    GLOBAL_SET = 17
    # Memory.
    I32_LOAD = 18
    I64_LOAD = 19
    F64_LOAD = 20
    I32_LOAD8_U = 21
    I32_LOAD8_S = 22
    I32_LOAD16_U = 23
    I32_STORE = 24
    I64_STORE = 25
    F64_STORE = 26
    I32_STORE8 = 27
    I32_STORE16 = 28
    MEMORY_SIZE = 29
    MEMORY_GROW = 30
    # Constants.
    I32_CONST = 31
    I64_CONST = 32
    F64_CONST = 33
    # i32 arithmetic.
    I32_ADD = 34
    I32_SUB = 35
    I32_MUL = 36
    I32_DIV_S = 37
    I32_DIV_U = 38
    I32_REM_S = 39
    I32_REM_U = 40
    I32_AND = 41
    I32_OR = 42
    I32_XOR = 43
    I32_SHL = 44
    I32_SHR_S = 45
    I32_SHR_U = 46
    I32_ROTL = 47
    I32_CLZ = 48
    I32_CTZ = 49
    I32_POPCNT = 50
    # i32 comparisons.
    I32_EQZ = 51
    I32_EQ = 52
    I32_NE = 53
    I32_LT_S = 54
    I32_LT_U = 55
    I32_GT_S = 56
    I32_GT_U = 57
    I32_LE_S = 58
    I32_LE_U = 59
    I32_GE_S = 60
    I32_GE_U = 61
    # i64 arithmetic.
    I64_ADD = 62
    I64_SUB = 63
    I64_MUL = 64
    I64_DIV_S = 65
    I64_DIV_U = 66
    I64_REM_S = 67
    I64_REM_U = 68
    I64_AND = 69
    I64_OR = 70
    I64_XOR = 71
    I64_SHL = 72
    I64_SHR_S = 73
    I64_SHR_U = 74
    # i64 comparisons.
    I64_EQZ = 75
    I64_EQ = 76
    I64_NE = 77
    I64_LT_S = 78
    I64_LT_U = 79
    I64_GT_S = 80
    I64_GT_U = 81
    I64_LE_S = 82
    I64_GE_S = 83
    # f64 arithmetic.
    F64_ADD = 84
    F64_SUB = 85
    F64_MUL = 86
    F64_DIV = 87
    F64_SQRT = 88
    F64_ABS = 89
    F64_NEG = 90
    F64_MIN = 91
    F64_MAX = 92
    F64_FLOOR = 93
    F64_CEIL = 94
    # f64 comparisons.
    F64_EQ = 95
    F64_NE = 96
    F64_LT = 97
    F64_GT = 98
    F64_LE = 99
    F64_GE = 100
    # Conversions.
    I32_WRAP_I64 = 101
    I64_EXTEND_I32_S = 102
    I64_EXTEND_I32_U = 103
    F64_CONVERT_I32_S = 104
    F64_CONVERT_I32_U = 105
    F64_CONVERT_I64_S = 106
    I32_TRUNC_F64_S = 107
    I64_TRUNC_F64_S = 108
    I64_REINTERPRET_F64 = 109
    F64_REINTERPRET_I64 = 110


def instr(op, arg=None):
    """Build an instruction tuple. Kept trivial on purpose: codegen emits
    many millions of these during large experiment sweeps."""
    return (int(op), arg)


_NAMES = {
    Op.UNREACHABLE: "unreachable",
    Op.NOP: "nop",
    Op.BLOCK: "block",
    Op.LOOP: "loop",
    Op.IF: "if",
    Op.ELSE: "else",
    Op.END: "end",
    Op.BR: "br",
    Op.BR_IF: "br_if",
    Op.RETURN: "return",
    Op.CALL: "call",
    Op.DROP: "drop",
    Op.SELECT: "select",
    Op.LOCAL_GET: "local.get",
    Op.LOCAL_SET: "local.set",
    Op.LOCAL_TEE: "local.tee",
    Op.GLOBAL_GET: "global.get",
    Op.GLOBAL_SET: "global.set",
    Op.I32_LOAD: "i32.load",
    Op.I64_LOAD: "i64.load",
    Op.F64_LOAD: "f64.load",
    Op.I32_LOAD8_U: "i32.load8_u",
    Op.I32_LOAD8_S: "i32.load8_s",
    Op.I32_LOAD16_U: "i32.load16_u",
    Op.I32_STORE: "i32.store",
    Op.I64_STORE: "i64.store",
    Op.F64_STORE: "f64.store",
    Op.I32_STORE8: "i32.store8",
    Op.I32_STORE16: "i32.store16",
    Op.MEMORY_SIZE: "memory.size",
    Op.MEMORY_GROW: "memory.grow",
    Op.I32_CONST: "i32.const",
    Op.I64_CONST: "i64.const",
    Op.F64_CONST: "f64.const",
}


def op_name(op):
    """Human-readable mnemonic for an opcode (used by the WAT printer)."""
    op = Op(op)
    if op in _NAMES:
        return _NAMES[op]
    text = op.name.lower()
    for prefix in ("i32_", "i64_", "f64_"):
        if text.startswith(prefix):
            return prefix[:-1] + "." + text[len(prefix):]
    return text


def _classify():
    table = [OpClass.OTHER] * (max(Op) + 1)

    def put(cls, *ops):
        for op in ops:
            table[op] = cls

    put(OpClass.CONTROL, Op.UNREACHABLE, Op.NOP, Op.BLOCK, Op.LOOP, Op.IF,
        Op.ELSE, Op.END, Op.BR, Op.BR_IF, Op.RETURN, Op.DROP, Op.SELECT)
    put(OpClass.CALL, Op.CALL)
    put(OpClass.LOCAL, Op.LOCAL_GET, Op.LOCAL_SET, Op.LOCAL_TEE)
    put(OpClass.GLOBAL, Op.GLOBAL_GET, Op.GLOBAL_SET)
    put(OpClass.LOAD, Op.I32_LOAD, Op.I64_LOAD, Op.F64_LOAD, Op.I32_LOAD8_U,
        Op.I32_LOAD8_S, Op.I32_LOAD16_U)
    put(OpClass.STORE, Op.I32_STORE, Op.I64_STORE, Op.F64_STORE,
        Op.I32_STORE8, Op.I32_STORE16)
    put(OpClass.MEMORY, Op.MEMORY_SIZE, Op.MEMORY_GROW)
    put(OpClass.CONST, Op.I32_CONST, Op.I64_CONST, Op.F64_CONST)
    put(OpClass.ADD, Op.I32_ADD, Op.I32_SUB, Op.I64_ADD, Op.I64_SUB,
        Op.F64_ADD, Op.F64_SUB, Op.F64_NEG, Op.F64_ABS)
    put(OpClass.MUL, Op.I32_MUL, Op.I64_MUL, Op.F64_MUL)
    put(OpClass.DIV, Op.I32_DIV_S, Op.I32_DIV_U, Op.I64_DIV_S, Op.I64_DIV_U,
        Op.F64_DIV, Op.F64_SQRT)
    put(OpClass.REM, Op.I32_REM_S, Op.I32_REM_U, Op.I64_REM_S, Op.I64_REM_U)
    put(OpClass.SHIFT, Op.I32_SHL, Op.I32_SHR_S, Op.I32_SHR_U, Op.I32_ROTL,
        Op.I64_SHL, Op.I64_SHR_S, Op.I64_SHR_U)
    put(OpClass.AND, Op.I32_AND, Op.I64_AND)
    put(OpClass.OR, Op.I32_OR, Op.I64_OR)
    put(OpClass.XOR, Op.I32_XOR, Op.I64_XOR)
    put(OpClass.CMP, Op.I32_EQZ, Op.I32_EQ, Op.I32_NE, Op.I32_LT_S,
        Op.I32_LT_U, Op.I32_GT_S, Op.I32_GT_U, Op.I32_LE_S, Op.I32_LE_U,
        Op.I32_GE_S, Op.I32_GE_U, Op.I64_EQZ, Op.I64_EQ, Op.I64_NE,
        Op.I64_LT_S, Op.I64_LT_U, Op.I64_GT_S, Op.I64_GT_U, Op.I64_LE_S,
        Op.I64_GE_S, Op.F64_EQ, Op.F64_NE, Op.F64_LT, Op.F64_GT, Op.F64_LE,
        Op.F64_GE)
    put(OpClass.CONVERT, Op.I32_WRAP_I64, Op.I64_EXTEND_I32_S,
        Op.I64_EXTEND_I32_U, Op.F64_CONVERT_I32_S, Op.F64_CONVERT_I32_U,
        Op.F64_CONVERT_I64_S, Op.I32_TRUNC_F64_S, Op.I64_TRUNC_F64_S,
        Op.I64_REINTERPRET_F64, Op.F64_REINTERPRET_I64)
    put(OpClass.OTHER, Op.I32_CLZ, Op.I32_CTZ, Op.I32_POPCNT, Op.F64_MIN,
        Op.F64_MAX, Op.F64_FLOOR, Op.F64_CEIL)
    return table


#: ``OP_CLASS[opcode]`` — operation class of each opcode.
OP_CLASS = _classify()


def _costs():
    """Abstract cycle cost per opcode.

    Calibrated to rough x86-class latencies: cheap ALU ops cost 1, multiplies
    3, divides ~20, memory 2–3, calls 8, ``memory.grow`` is very expensive
    (it re-commits the linear memory — this is the mechanism behind
    §4.2.2's Cheerp-vs-Emscripten result).
    """
    cost = [1.0] * (max(Op) + 1)
    for op in Op:
        cls = OP_CLASS[op]
        if cls in (OpClass.LOAD, OpClass.STORE):
            cost[op] = 2.5
        elif cls is OpClass.MUL:
            cost[op] = 3.0
        elif cls is OpClass.DIV:
            cost[op] = 20.0
        elif cls is OpClass.REM:
            cost[op] = 22.0
        elif cls is OpClass.CALL:
            cost[op] = 8.0
        elif cls is OpClass.GLOBAL:
            cost[op] = 2.0
        elif cls is OpClass.CONVERT:
            cost[op] = 2.0
    cost[Op.F64_SQRT] = 15.0
    # One grow = one ArrayBuffer re-commit round-trip through the embedder.
    # Cheerp pays this per 64 KiB granule, Emscripten per 16 MiB (§4.2.2).
    cost[Op.MEMORY_GROW] = 600.0
    cost[Op.MEMORY_SIZE] = 2.0
    cost[Op.UNREACHABLE] = 0.0
    cost[Op.NOP] = 0.25
    # Structured-control markers are nearly free once compiled.
    for op in (Op.BLOCK, Op.LOOP, Op.END, Op.ELSE):
        cost[op] = 0.25
    for op in (Op.BR, Op.BR_IF, Op.IF):
        cost[op] = 1.5
    return cost


#: ``OP_COST[opcode]`` — abstract cycles charged per executed instruction.
OP_COST = _costs()

#: Binary encoding of each opcode (real wasm opcode bytes where they exist).
BINARY_OPCODE = {
    Op.UNREACHABLE: 0x00, Op.NOP: 0x01, Op.BLOCK: 0x02, Op.LOOP: 0x03,
    Op.IF: 0x04, Op.ELSE: 0x05, Op.END: 0x0B, Op.BR: 0x0C, Op.BR_IF: 0x0D,
    Op.RETURN: 0x0F, Op.CALL: 0x10, Op.DROP: 0x1A, Op.SELECT: 0x1B,
    Op.LOCAL_GET: 0x20, Op.LOCAL_SET: 0x21, Op.LOCAL_TEE: 0x22,
    Op.GLOBAL_GET: 0x23, Op.GLOBAL_SET: 0x24,
    Op.I32_LOAD: 0x28, Op.I64_LOAD: 0x29, Op.F64_LOAD: 0x2B,
    Op.I32_LOAD8_S: 0x2C, Op.I32_LOAD8_U: 0x2D, Op.I32_LOAD16_U: 0x2F,
    Op.I32_STORE: 0x36, Op.I64_STORE: 0x37, Op.F64_STORE: 0x39,
    Op.I32_STORE8: 0x3A, Op.I32_STORE16: 0x3B,
    Op.MEMORY_SIZE: 0x3F, Op.MEMORY_GROW: 0x40,
    Op.I32_CONST: 0x41, Op.I64_CONST: 0x42, Op.F64_CONST: 0x44,
    Op.I32_EQZ: 0x45, Op.I32_EQ: 0x46, Op.I32_NE: 0x47, Op.I32_LT_S: 0x48,
    Op.I32_LT_U: 0x49, Op.I32_GT_S: 0x4A, Op.I32_GT_U: 0x4B,
    Op.I32_LE_S: 0x4C, Op.I32_LE_U: 0x4D, Op.I32_GE_S: 0x4E,
    Op.I32_GE_U: 0x4F,
    Op.I64_EQZ: 0x50, Op.I64_EQ: 0x51, Op.I64_NE: 0x52, Op.I64_LT_S: 0x53,
    Op.I64_LT_U: 0x54, Op.I64_GT_S: 0x55, Op.I64_GT_U: 0x56,
    Op.I64_LE_S: 0x57, Op.I64_GE_S: 0x59,
    Op.F64_EQ: 0x61, Op.F64_NE: 0x62, Op.F64_LT: 0x63, Op.F64_GT: 0x64,
    Op.F64_LE: 0x65, Op.F64_GE: 0x66,
    Op.I32_CLZ: 0x67, Op.I32_CTZ: 0x68, Op.I32_POPCNT: 0x69,
    Op.I32_ADD: 0x6A, Op.I32_SUB: 0x6B, Op.I32_MUL: 0x6C,
    Op.I32_DIV_S: 0x6D, Op.I32_DIV_U: 0x6E, Op.I32_REM_S: 0x6F,
    Op.I32_REM_U: 0x70, Op.I32_AND: 0x71, Op.I32_OR: 0x72, Op.I32_XOR: 0x73,
    Op.I32_SHL: 0x74, Op.I32_SHR_S: 0x75, Op.I32_SHR_U: 0x76,
    Op.I32_ROTL: 0x77,
    Op.I64_ADD: 0x7C, Op.I64_SUB: 0x7D, Op.I64_MUL: 0x7E,
    Op.I64_DIV_S: 0x7F, Op.I64_DIV_U: 0x80, Op.I64_REM_S: 0x81,
    Op.I64_REM_U: 0x82, Op.I64_AND: 0x83, Op.I64_OR: 0x84, Op.I64_XOR: 0x85,
    Op.I64_SHL: 0x86, Op.I64_SHR_S: 0x87, Op.I64_SHR_U: 0x88,
    Op.F64_ABS: 0x99, Op.F64_NEG: 0x9A, Op.F64_CEIL: 0x9B,
    Op.F64_FLOOR: 0x9C, Op.F64_SQRT: 0x9F,
    Op.F64_ADD: 0xA0, Op.F64_SUB: 0xA1, Op.F64_MUL: 0xA2, Op.F64_DIV: 0xA3,
    Op.F64_MIN: 0xA4, Op.F64_MAX: 0xA5,
    Op.I32_WRAP_I64: 0xA7, Op.I32_TRUNC_F64_S: 0xAA,
    Op.I64_EXTEND_I32_S: 0xAC, Op.I64_EXTEND_I32_U: 0xAD,
    Op.I64_TRUNC_F64_S: 0xB0, Op.F64_CONVERT_I32_S: 0xB7,
    Op.F64_CONVERT_I32_U: 0xB8, Op.F64_CONVERT_I64_S: 0xB9,
    Op.I64_REINTERPRET_F64: 0xBD, Op.F64_REINTERPRET_I64: 0xBF,
}
