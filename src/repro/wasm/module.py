"""WebAssembly module model.

Value types are the strings ``"i32"``, ``"i64"``, ``"f64"`` (the reproduction
treats ``f32`` as ``f64``, like Cheerp's genericjs output does for numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

VALTYPES = ("i32", "i64", "f64")


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter types and result types."""

    params: tuple
    results: tuple

    def __post_init__(self):
        for t in self.params + self.results:
            if t not in VALTYPES:
                raise ValueError(f"bad value type {t!r}")


@dataclass
class Function:
    """A defined function: explicit locals follow the parameters."""

    name: str
    type: FuncType
    locals: list = field(default_factory=list)
    body: list = field(default_factory=list)
    exported: bool = False

    @property
    def num_params(self):
        return len(self.type.params)


@dataclass
class HostImport:
    """A host (JavaScript glue) function import.

    Calls into host imports model the Wasm↔JS boundary: the VM charges the
    engine profile's context-switch cost for each of them (§4.5).
    """

    module: str
    name: str
    type: FuncType
    func: object = None  # Python callable bound at instantiation.


@dataclass
class GlobalVar:
    name: str
    valtype: str
    mutable: bool = True
    init: float = 0


@dataclass
class MemorySpec:
    """Linear memory limits, in pages of ``page_size`` bytes.

    ``page_size`` is the growth granularity: 64 KiB for Cheerp output and
    16 MiB for Emscripten output (§4.2.2).
    """

    min_pages: int = 1
    max_pages: int = 32768
    page_size: int = 65536


@dataclass
class DataSegment:
    """An active data segment copied into linear memory at instantiation."""

    offset: int
    data: bytes


@dataclass
class WasmModule:
    """A complete module ready for validation, encoding, or instantiation."""

    name: str = "module"
    imports: list = field(default_factory=list)
    functions: list = field(default_factory=list)
    globals: list = field(default_factory=list)
    memory: MemorySpec = field(default_factory=MemorySpec)
    data: list = field(default_factory=list)
    start: str = None
    #: Optional metadata attached by toolchains (e.g. source optimization
    #: level) so the harness can report provenance.
    meta: dict = field(default_factory=dict)

    def func_index(self, name):
        """Function-space index of ``name`` (imports come first, as in the
        real wasm binary format)."""
        for i, imp in enumerate(self.imports):
            if imp.name == name:
                return i
        for i, fn in enumerate(self.functions):
            if fn.name == name:
                return len(self.imports) + i
        raise KeyError(name)

    def function(self, name):
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)

    def add_function(self, func):
        self.functions.append(func)
        return len(self.imports) + len(self.functions) - 1

    @property
    def static_instruction_count(self):
        return sum(len(f.body) for f in self.functions)

    def opclass_census(self):
        """Static per-:class:`~repro.engine.opclass.OpClass` instruction
        counts over every function body (what a baseline compiler's emit
        loop walks)."""
        from repro.engine.compilemodel import empty_census
        from repro.wasm.instructions import OP_CLASS
        counts = empty_census()
        for fn in self.functions:
            for op, _arg in fn.body:
                counts[OP_CLASS[op]] += 1
        return counts

    def code_unit(self, binary_size=0, pass_telemetry=None):
        """This module as a :class:`~repro.engine.compilemodel.CodeUnit`
        for the modeled compile pipeline.  ``pass_telemetry`` defaults to
        the telemetry the optimizer recorded into ``meta``."""
        from repro.engine.compilemodel import CodeUnit, normalize_telemetry
        if pass_telemetry is None:
            pass_telemetry = self.meta.get("pass_telemetry", ())
        return CodeUnit(
            name=self.name,
            static_instrs=self.static_instruction_count,
            code_bytes=binary_size,
            functions=len(self.functions),
            opclass_counts=tuple(self.opclass_census()),
            pass_telemetry=normalize_telemetry(pass_telemetry))
