"""Binary encoder for the Wasm substrate.

Produces a binary in the layout of the real WebAssembly format (magic,
version, LEB128-encoded sections).  The byte length of the encoding is the
"resulting code size" metric of the paper's Table 2 and Figures 5/6.
"""

from __future__ import annotations

import struct

from repro.wasm.instructions import BINARY_OPCODE, Op
from repro.wasm.module import VALTYPES

_VALTYPE_BYTE = {"i32": 0x7F, "i64": 0x7E, "f32": 0x7D, "f64": 0x7C}


def encode_uleb128(value):
    """Unsigned LEB128."""
    if value < 0:
        raise ValueError("uleb128 requires a non-negative value")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_uleb128(data, offset=0):
    """Decode unsigned LEB128; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7


def encode_sleb128(value):
    """Signed LEB128."""
    out = bytearray()
    more = True
    while more:
        byte = value & 0x7F
        value >>= 7
        sign = byte & 0x40
        if (value == 0 and not sign) or (value == -1 and sign):
            more = False
        else:
            byte |= 0x80
        out.append(byte)
    return bytes(out)


def decode_sleb128(data, offset=0):
    """Decode signed LEB128; returns (value, next_offset)."""
    result = 0
    shift = 0
    while True:
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        shift += 7
        if not byte & 0x80:
            if byte & 0x40:
                result -= 1 << shift
            return result, offset


def _encode_instr(op, arg, out):
    out.append(BINARY_OPCODE[Op(op)])
    if op in (Op.BLOCK, Op.LOOP, Op.IF):
        out.append(0x40)  # void block type
    elif op in (Op.BR, Op.BR_IF, Op.CALL, Op.LOCAL_GET, Op.LOCAL_SET,
                Op.LOCAL_TEE, Op.GLOBAL_GET, Op.GLOBAL_SET):
        out.extend(encode_uleb128(arg))
    elif op == Op.I32_CONST:
        out.extend(encode_sleb128(int(arg)))
    elif op == Op.I64_CONST:
        out.extend(encode_sleb128(int(arg)))
    elif op == Op.F64_CONST:
        out.extend(struct.pack("<d", float(arg)))
    elif Op.I32_LOAD <= op <= Op.I32_STORE16:
        # memarg: alignment hint + offset immediate.
        out.extend(encode_uleb128(2))
        out.extend(encode_uleb128(arg or 0))
    elif op in (Op.MEMORY_SIZE, Op.MEMORY_GROW):
        out.append(0x00)


def _section(section_id, payload):
    return bytes([section_id]) + encode_uleb128(len(payload)) + payload


def _name(text):
    data = text.encode("utf-8")
    return encode_uleb128(len(data)) + data


def encode_module(module):
    """Encode a :class:`WasmModule` to bytes.

    Branch/call immediates must be index-based (the raw body emitted by the
    code generators, not the VM-prepared form).
    """
    # Collect distinct function types.
    types = []
    type_index = {}

    def intern(ftype):
        if ftype not in type_index:
            type_index[ftype] = len(types)
            types.append(ftype)
        return type_index[ftype]

    import_types = [intern(imp.type) for imp in module.imports]
    func_types = [intern(fn.type) for fn in module.functions]

    out = bytearray(b"\x00asm")
    out += struct.pack("<I", 1)

    # Type section (1).
    payload = bytearray(encode_uleb128(len(types)))
    for ftype in types:
        payload.append(0x60)
        payload += encode_uleb128(len(ftype.params))
        payload.extend(_VALTYPE_BYTE[t] for t in ftype.params)
        payload += encode_uleb128(len(ftype.results))
        payload.extend(_VALTYPE_BYTE[t] for t in ftype.results)
    out += _section(1, bytes(payload))

    # Import section (2).
    if module.imports:
        payload = bytearray(encode_uleb128(len(module.imports)))
        for imp, tidx in zip(module.imports, import_types):
            payload += _name(imp.module) + _name(imp.name)
            payload.append(0x00)
            payload += encode_uleb128(tidx)
        out += _section(2, bytes(payload))

    # Function section (3).
    payload = bytearray(encode_uleb128(len(module.functions)))
    for tidx in func_types:
        payload += encode_uleb128(tidx)
    out += _section(3, bytes(payload))

    # Memory section (5).
    payload = bytearray(encode_uleb128(1))
    payload.append(0x01)
    payload += encode_uleb128(module.memory.min_pages)
    payload += encode_uleb128(module.memory.max_pages)
    out += _section(5, bytes(payload))

    # Global section (6).
    if module.globals:
        payload = bytearray(encode_uleb128(len(module.globals)))
        for g in module.globals:
            payload.append(_VALTYPE_BYTE[g.valtype])
            payload.append(0x01 if g.mutable else 0x00)
            if g.valtype == "f64":
                payload.append(BINARY_OPCODE[Op.F64_CONST])
                payload += struct.pack("<d", float(g.init))
            elif g.valtype == "i64":
                payload.append(BINARY_OPCODE[Op.I64_CONST])
                payload += encode_sleb128(int(g.init))
            else:
                payload.append(BINARY_OPCODE[Op.I32_CONST])
                payload += encode_sleb128(int(g.init))
            payload.append(BINARY_OPCODE[Op.END])
        out += _section(6, bytes(payload))

    # Export section (7).
    exported = [fn for fn in module.functions if fn.exported]
    payload = bytearray(encode_uleb128(len(exported) + 1))
    for fn in exported:
        payload += _name(fn.name)
        payload.append(0x00)
        payload += encode_uleb128(module.func_index(fn.name))
    payload += _name("memory")
    payload.append(0x02)
    payload += encode_uleb128(0)
    out += _section(7, bytes(payload))

    # Code section (10).
    payload = bytearray(encode_uleb128(len(module.functions)))
    for fn in module.functions:
        body = bytearray()
        # Compress runs of identical local types, as the format requires.
        runs = []
        for t in fn.locals:
            if runs and runs[-1][1] == t:
                runs[-1][0] += 1
            else:
                runs.append([1, t])
        body += encode_uleb128(len(runs))
        for count, t in runs:
            body += encode_uleb128(count)
            body.append(_VALTYPE_BYTE[t])
        for op, arg in fn.body:
            _encode_instr(op, arg, body)
        body.append(BINARY_OPCODE[Op.END])
        payload += encode_uleb128(len(body))
        payload += body
    out += _section(10, bytes(payload))

    # Data section (11).
    if module.data:
        payload = bytearray(encode_uleb128(len(module.data)))
        for seg in module.data:
            payload.append(0x00)
            payload.append(BINARY_OPCODE[Op.I32_CONST])
            payload += encode_sleb128(seg.offset)
            payload.append(BINARY_OPCODE[Op.END])
            payload += encode_uleb128(len(seg.data))
            payload += seg.data
        out += _section(11, bytes(payload))

    return bytes(out)
