"""Decode raw engine profiles into per-opclass count/cycle tables.

``repro.obs.profile`` collects *op-execution counts* keyed by raw opcode
(plus an engine variant bit); this module joins them against the static
cost/class tables to produce the attribution the report shows: which
operation classes a function (and a whole run) spent its cycles in.

Cycle attribution is modeled, per engine:

* **wasm** — ``count × OP_COST[op]``.  Every wasm cost is a multiple of
  0.25 and run totals stay far below 2**50, so float addition never
  rounds: the decoded cycles decompose ``stats.cycles`` exactly (the
  boundary/tiering glue charged outside the interpreter loop is not part
  of the profile).
* **js** — ``count × (JS_OP_COST_OPT if tier else JS_OP_COST)[op]``.
  The browser profile's tier execution factors and the dynamic typed
  extras (JSArray index paths, GC pauses) are deliberately excluded:
  the profile attributes *static bytecode cost* so the split between
  entry-tier and optimized-tier execution is visible per opclass.
* **native** — ``count × N_COST[op]``, times the 0.29 vector factor when
  the vector bit (bit 8) is set on the key.

Engine tables are imported lazily (engine core must not import engine
packages at module level).
"""

from __future__ import annotations

from fractions import Fraction

from repro.engine.opclass import OpClass

#: JS profile keys pack the executing tier into bits 8+ of the opcode.
JS_TIER_SHIFT = 8

#: Native profile keys set bit 8 when the instruction issued as vector.
NATIVE_VECTOR_BIT = 0x100


def _wasm_decoder():
    from repro.wasm.instructions import OP_CLASS, OP_COST

    def decode(key):
        return OpClass(OP_CLASS[key]).name.lower(), Fraction(OP_COST[key])
    return decode


def _js_decoder():
    from repro.jsengine.bytecode import (
        JS_OP_CLASS, JS_OP_COST, JS_OP_COST_OPT,
    )

    def decode(key):
        tier, op = key >> JS_TIER_SHIFT, key & 0xFF
        cost = JS_OP_COST_OPT[op] if tier else JS_OP_COST[op]
        return OpClass(JS_OP_CLASS[op]).name.lower(), Fraction(cost)
    return decode


def _native_decoder():
    from repro.native.machine import N_COST, N_OP_CLASS, VECTOR_COST_FACTOR
    vector = Fraction(VECTOR_COST_FACTOR)

    def decode(key):
        op = key & (NATIVE_VECTOR_BIT - 1)
        cost = Fraction(N_COST[op])
        if key & NATIVE_VECTOR_BIT:
            cost *= vector
        return OpClass(N_OP_CLASS[op]).name.lower(), cost
    return decode


_DECODERS = {"wasm": _wasm_decoder, "js": _js_decoder,
             "native": _native_decoder}


def decode_profile(profile):
    """``EngineProfile.to_dict()`` payload -> opclass attribution.

    Returns ``{"engine", "functions": {fn: {"calls", "opclasses"}},
    "opclasses", "total_count", "total_cycles"}`` where each opclass
    entry is ``{"count": int, "cycles": float}`` (cycles summed exactly
    before the single float conversion).
    """
    decode = _DECODERS[profile["engine"]]()
    functions = {}
    totals = {}
    total_count = 0
    total_cycles = Fraction(0)
    for fname, cells in profile["ops"].items():
        table = {}
        for key, count in cells.items():
            cls, cost = decode(int(key))
            slot = table.get(cls)
            if slot is None:
                slot = table[cls] = [0, Fraction(0)]
            slot[0] += count
            slot[1] += cost * count
        for cls, (count, cycles) in table.items():
            agg = totals.get(cls)
            if agg is None:
                agg = totals[cls] = [0, Fraction(0)]
            agg[0] += count
            agg[1] += cycles
            total_count += count
            total_cycles += cycles
        functions[fname] = {
            "calls": profile["calls"].get(fname, 0),
            "opclasses": {cls: {"count": c, "cycles": float(cy)}
                          for cls, (c, cy) in sorted(table.items())},
        }
    return {
        "engine": profile["engine"],
        "functions": functions,
        "opclasses": {cls: {"count": c, "cycles": float(cy)}
                      for cls, (c, cy) in sorted(totals.items())},
        "total_count": total_count,
        "total_cycles": float(total_cycles),
    }


def opclass_fractions(profile):
    """Exact per-opclass ``{cls: (count, Fraction cycles)}`` totals —
    the registry feed (Fractions keep counter accumulation exact)."""
    decode = _DECODERS[profile["engine"]]()
    totals = {}
    for cells in profile["ops"].values():
        for key, count in cells.items():
            cls, cost = decode(int(key))
            slot = totals.get(cls)
            if slot is None:
                slot = totals[cls] = [0, Fraction(0)]
            slot[0] += count
            slot[1] += cost * count
    return {cls: (c, cy) for cls, (c, cy) in sorted(totals.items())}
