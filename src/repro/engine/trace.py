"""Structured execution trace: the ordered phase timeline of one run.

Every engine emits the same event vocabulary — ``decode``, ``parse``,
``compile``, ``tier-up``, ``execute``, ``gc``, ``host-call`` — as
:class:`TraceEvent` records carrying a cycle span (``start_cycles`` +
``cycles``) on the engine's abstract clock.  The harness attaches the
finished trace to ``Measurement.detail["trace"]`` and
``results/run_all.py --trace`` exports it as JSON, so the per-phase cost
structure the paper discusses (decode vs. compile vs. tier-up vs. raw
execution, §4.4) is inspectable per run instead of only in aggregate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: Canonical phase names, in the order a well-formed run visits them.
PHASES = ("decode", "parse", "compile", "tier-up", "execute", "gc",
          "host-call")


@dataclass
class TraceEvent:
    """One phase span on an engine's abstract cycle clock."""

    phase: str
    #: Cycle at which the span starts (engine clock, 0 = run start).
    start_cycles: float
    #: Width of the span in cycles.
    cycles: float
    #: Free-form extras (tier names, byte counts, instruction counts...).
    detail: dict = field(default_factory=dict)

    @property
    def end_cycles(self):
        return self.start_cycles + self.cycles

    def to_dict(self):
        d = {"phase": self.phase, "start_cycles": self.start_cycles,
             "cycles": self.cycles}
        if self.detail:
            d["detail"] = dict(self.detail)
        return d

    @classmethod
    def from_dict(cls, d):
        return cls(phase=d["phase"], start_cycles=d["start_cycles"],
                   cycles=d["cycles"], detail=dict(d.get("detail", {})))


@dataclass
class ExecutionTrace:
    """The ordered event timeline of one artifact execution."""

    #: Which engine produced the trace ("wasm", "js", or "native").
    engine: str
    events: list = field(default_factory=list)

    def emit(self, phase, start_cycles, cycles, **detail):
        """Append a span and return it."""
        event = TraceEvent(phase, float(start_cycles), float(cycles), detail)
        self.events.append(event)
        return event

    def finalize(self):
        """Sort events into timeline order (stable, so simultaneous
        events keep emission order).  When the JSONL event sink is armed
        (``REPRO_EVENTS``), the finished timeline is forwarded there as
        one ``trace`` event per phase span.

        When a distributed trace context is active (the sweep worker
        activates the cell attempt's context around the measurement),
        each phase event is additionally stamped as a *leaf span* of
        that attempt: deterministic span ids derived from the attempt's
        context plus the phase name and timeline index, so the
        request → cell → attempt → engine-phase chain links up in the
        exported Chrome trace."""
        self.events.sort(key=lambda e: e.start_cycles)
        from repro.obs import current, emit, events_enabled
        if events_enabled():
            ctx = current()
            for index, event in enumerate(self.events):
                trace_fields = {}
                if ctx is not None:
                    leaf = ctx.child("phase", index, event.phase)
                    trace_fields = leaf.fields()
                emit("trace", engine=self.engine, phase=event.phase,
                     start_cycles=event.start_cycles, cycles=event.cycles,
                     **trace_fields, **event.detail)
        return self

    def total_cycles(self):
        """Sum of all span widths."""
        return sum(e.cycles for e in self.events)

    def phase_cycles(self):
        """Cycles per phase name, in timeline order of first appearance."""
        totals = {}
        for e in self.events:
            totals[e.phase] = totals.get(e.phase, 0.0) + e.cycles
        return totals

    def to_dict(self):
        return {"engine": self.engine,
                "events": [e.to_dict() for e in self.events]}

    def to_json(self, indent=None):
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d):
        return cls(engine=d["engine"],
                   events=[TraceEvent.from_dict(e) for e in d["events"]])

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))
