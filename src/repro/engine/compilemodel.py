"""Modeled startup compilation: cost models per compiler tier.

Before this module existed, startup latency was an *input*: every profile
carried fixed per-instruction compile constants
(``basic_compile_cost``/``opt_compile_cost``) and the tier controller
multiplied them by a size.  Titzer's baseline-compiler study frames the
real tradeoff — compile speed vs code quality — as a frontier, and walking
that frontier needs compile cost to be *computed* from what the compiler
actually does.  This module supplies the three cost models the rest of the
stack shares:

* :class:`PerInstrCompiler` — the calibrated legacy model: cost strictly
  proportional to static size.  Default browser profiles use it, which is
  what keeps the golden outputs byte-identical across the refactor.
* :class:`SinglePassCompiler` — a baseline (single-pass) compiler: one
  linear scan over the code, with per-op-class emit weights (memory ops
  carry bounds-check emission, calls carry trampoline setup) and a
  per-function prologue overhead.  Cost depends on the *opclass mix* of
  the unit, not just its size.
* :class:`PassPipelineCompiler` — an optimizing compiler whose cost is
  derived from recorded per-pass telemetry (``pass_telemetry`` entries:
  IR nodes visited and rewrites applied per pass) plus a backend lowering
  term ∝ static size.

A :class:`CodeUnit` is the static description a model prices: instruction
count, byte size, function count, opclass census, pass telemetry.  The
tier controller (:mod:`repro.engine.tiering`) combines two models with a
promotion policy and emits a structured :class:`CompilePlan`.

Layering: this module is a leaf below the engines — it may import only the
neutral opclass taxonomy (enforced by ``tools/check_layering.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.opclass import NUM_OP_CLASSES


def normalize_telemetry(entries):
    """Canonical tuple form of ``artifact.meta["pass_telemetry"]``.

    Accepts the recorder's dict entries or already-normalized tuples;
    returns ``((pass_name, nodes_in, nodes_out, rewrites), ...)``.  Wall
    times are dropped on purpose: they are WALL-stability data and must
    not leak into deterministic compile-cost arithmetic.
    """
    out = []
    for entry in entries or ():
        if isinstance(entry, dict):
            out.append((entry["pass"], int(entry["nodes_in"]),
                        int(entry["nodes_out"]), int(entry["rewrites"])))
        else:
            name, nodes_in, nodes_out, rewrites = entry[:4]
            out.append((name, int(nodes_in), int(nodes_out), int(rewrites)))
    return tuple(out)


@dataclass(frozen=True)
class CodeUnit:
    """Static description of one compilation unit (module or program)."""

    name: str = "unit"
    #: Static instruction / bytecode-op count (the legacy size axis).
    static_instrs: int = 0
    #: Encoded size in bytes (drives decode/validate costs).
    code_bytes: int = 0
    #: Number of functions (per-function prologue overhead).
    functions: int = 1
    #: Static count per :class:`~repro.engine.opclass.OpClass` index;
    #: empty when the producer only knows the total size.
    opclass_counts: tuple = ()
    #: Normalized per-pass telemetry ``(pass, nodes_in, nodes_out,
    #: rewrites)`` recorded while the unit was optimized.
    pass_telemetry: tuple = ()

    @classmethod
    def from_counts(cls, name, opclass_counts, *, code_bytes=0,
                    functions=1, pass_telemetry=()):
        """Unit whose size is implied by its opclass census."""
        counts = tuple(int(c) for c in opclass_counts)
        return cls(name=name, static_instrs=sum(counts),
                   code_bytes=code_bytes, functions=functions,
                   opclass_counts=counts,
                   pass_telemetry=normalize_telemetry(pass_telemetry))


@dataclass(frozen=True)
class CompilerModel:
    """One tier's compiler: a name, the code quality it produces
    (execution-cycle multiplier), and a cost model."""

    name: str = "tier"
    #: Execution-cycle multiplier of the code this tier generates.
    exec_factor: float = 1.0

    def compile_cycles(self, unit):
        """Modeled cycles to compile ``unit`` with this tier."""
        raise NotImplementedError

    def function_compile_cycles(self, num_ops):
        """Cycles to promote one function of ``num_ops`` bytecode ops
        (JS-style function tiering, where only the size is known)."""
        raise NotImplementedError


@dataclass(frozen=True)
class PerInstrCompiler(CompilerModel):
    """The calibrated legacy model: cost strictly ∝ static size."""

    cycles_per_instr: float = 1.0

    def compile_cycles(self, unit):
        return unit.static_instrs * self.cycles_per_instr

    def function_compile_cycles(self, num_ops):
        return num_ops * self.cycles_per_instr


@dataclass(frozen=True)
class SinglePassCompiler(CompilerModel):
    """A baseline compiler: one linear pass over the code.

    Cost is the scan itself (∝ instruction count) scaled per op class by
    ``opclass_weights`` — emitting a memory access costs more than an
    ALU op (bounds checks), a call more still (trampolines) — plus a
    fixed prologue/epilogue overhead per function.  Opclasses without an
    explicit weight (and any instructions not covered by the census) emit
    at weight 1.0.
    """

    cycles_per_instr: float = 1.0
    #: ``(opclass_index, weight)`` pairs; kept sparse so the model's repr
    #: stays readable in profile dumps.
    opclass_weights: tuple = ()
    function_overhead_cycles: float = 0.0

    def compile_cycles(self, unit):
        total = self.function_overhead_cycles * unit.functions
        total += unit.static_instrs * self.cycles_per_instr
        counts = unit.opclass_counts
        for idx, weight in self.opclass_weights:
            if idx < len(counts):
                total += counts[idx] * (weight - 1.0) * self.cycles_per_instr
        return total

    def function_compile_cycles(self, num_ops):
        return (num_ops * self.cycles_per_instr
                + self.function_overhead_cycles)


@dataclass(frozen=True)
class PassPipelineCompiler(CompilerModel):
    """An optimizing compiler priced from its own pass telemetry.

    Each recorded pass visits ``nodes_in`` IR nodes and applies
    ``rewrites`` rewrites; the backend then lowers the final code
    (∝ static instruction count).  A unit with no recorded telemetry
    (e.g. ``O0``) pays only the backend term.
    """

    cycles_per_node: float = 1.0
    cycles_per_rewrite: float = 0.0
    backend_cycles_per_instr: float = 1.0

    def compile_cycles(self, unit):
        total = unit.static_instrs * self.backend_cycles_per_instr
        for _name, nodes_in, _nodes_out, rewrites in unit.pass_telemetry:
            total += nodes_in * self.cycles_per_node
            total += rewrites * self.cycles_per_rewrite
        return total

    def function_compile_cycles(self, num_ops):
        # Function promotion re-runs the pipeline over one function's
        # body: ops stand in for IR nodes, plus the backend lowering.
        return num_ops * (self.cycles_per_node
                          + self.backend_cycles_per_instr)


@dataclass(frozen=True)
class CompileCharge:
    """One compile event in a plan."""

    #: ``"compile"`` (at startup) or ``"tier-up"`` (hotness-triggered).
    phase: str
    #: Display name — eager plans use ``"basic+opt"`` for the combined
    #: instantiate-time charge, mirroring the engines' behavior.
    tier: str
    cycles: float
    #: Charged before the first result (startup latency) rather than
    #: concurrently with execution.
    at_startup: bool = True
    #: Per-tier breakdown ``((tier_name, cycles), ...)`` — splits the
    #: combined eager charge for reporting.
    parts: tuple = ()

    def tier_parts(self):
        return self.parts or ((self.tier, self.cycles),)


@dataclass
class CompilePlan:
    """Structured outcome of module tiering: every compile charge, the
    tier-switch point, and the blended execution factor."""

    #: Ordered :class:`CompileCharge` events.
    charges: list
    #: Execution-cycle multiplier (blended across tiers for a lazy
    #: promotion that happened mid-run).
    exec_factor: float
    #: True when the optimizing tier was entered via the hotness threshold.
    tiered_up: bool
    #: Dynamic instruction count at which the tier switch completed
    #: (``None`` when no lazy switch happened).
    switch_instructions: int = None
    #: The unit the plan was computed for (``None`` for size-only plans).
    unit: CodeUnit = None

    @property
    def compiles(self):
        """Legacy view: ordered ``(phase, tier, cycles)`` tuples."""
        return [(c.phase, c.tier, c.cycles) for c in self.charges]

    @property
    def compile_cycles(self):
        return sum(c.cycles for c in self.charges)

    @property
    def startup_compile_cycles(self):
        """Compile cycles paid before the first result."""
        return sum(c.cycles for c in self.charges if c.at_startup)

    @property
    def tier_up_cycles(self):
        """Compile cycles charged concurrently with execution."""
        return sum(c.cycles for c in self.charges if not c.at_startup)

    def cycles_by_tier(self):
        """Compile cycles attributed per tier name (eager combined
        charges are split via their recorded parts)."""
        out = {}
        for charge in self.charges:
            for tier, cycles in charge.tier_parts():
                out[tier] = out.get(tier, 0.0) + cycles
        return out


def empty_census():
    """A fresh per-op-class static counter vector."""
    return [0] * NUM_OP_CLASSES
