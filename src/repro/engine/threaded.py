"""Shared core of the prepare-once, threaded-code execution tier.

The three engines (``wasm/vm.py``, ``jsengine/interpreter.py``,
``native/machine.py``) each ship a reference interpreter: a ``while`` loop
that fetches one instruction, charges its cycle cost and operation class,
and dispatches through a ~100-arm ``if/elif`` ladder.  That loop is the
differential oracle — simple, obviously faithful, and slow.

The threaded tier translates each prepared function body *once* into a
list of basic blocks.  A block carries

* a flat sequence of pre-bound handler closures (token threading: the
  opcode is resolved at translation time, so the runtime never touches
  the ladder), with hot straight-line idioms fused into single
  superinstruction closures, and
* batched accounting totals, so per-block work replaces per-instruction
  work for every counter whose arithmetic is order-independent.

Exactness rules (each engine's translator documents how it applies them):

1. **Integer counters batch freely.**  ``op_counts``, ``instructions``
   and the instruction budget are integers; charging a block's total at
   block entry is exact.  A handler that can raise carries a pre-bound
   *rewind* closure subtracting the suffix (the instructions after the
   trapping one), restoring the reference ladder's charge-then-execute
   prefix: at a trap on instruction *k* the reference has charged
   instructions ``0..k`` inclusive.
2. **Float cycle batching needs an exact grid.**  Summing per-op costs in
   a different order than the reference is only bit-identical when every
   addend is dyadic and the partial sums stay exactly representable.
   Wasm's ``OP_COST`` table is entirely quarter-multiples (asserted by
   tests), so its per-block sums are exact at any association.  The JS
   and native charge streams include non-dyadic products
   (``cost × tier_factor``, ``cost × VECTOR_COST_FACTOR``), so their
   handlers self-charge one pre-bound constant per source instruction —
   the same left-fold the reference performs, hence the same bits.
3. **Mid-run observers see flushed state only at the reference's flush
   points.**  Frame-local accumulators are flushed exactly where the
   ladder flushes (JS function-call boundaries, native CALL/RETV), so
   ``performance.now()`` and friends read identical values mid-run.
4. **Rare paths deopt to the oracle.**  When a block cannot be entered
   under batched accounting (instruction budget smaller than the block,
   a JS frame entered with the GC already over-trigger), the frame falls
   back to the reference loop, which is exact by construction.
5. **Unknown opcodes fail loudly.**  The reference ladders fall through
   to a structured error at execution time; the translators refuse the
   whole function at translation time instead of silently mis-threading.
"""

from __future__ import annotations

import os


def fast_interp_enabled():
    """The ``REPRO_FAST_INTERP`` knob: default on, ``0`` selects the
    reference ladders (the differential oracle)."""
    return os.environ.get("REPRO_FAST_INTERP", "1") != "0"


def split_blocks(n, leaders):
    """Partition ``range(n)`` into half-open basic-block ranges.

    ``leaders`` is the set of pcs that must start a block (function entry,
    every jump target, every instruction after a block terminator).
    Out-of-range leaders (e.g. a branch target equal to ``n``) are
    ignored — they denote function exit, not a block.
    """
    starts = sorted(pc for pc in set(leaders) | {0} if 0 <= pc < n)
    return [(start, starts[i + 1] if i + 1 < len(starts) else n)
            for i, start in enumerate(starts)]


def class_deltas(classes):
    """Collapse a per-instruction op-class list into sparse, sorted
    ``(class_index, count)`` pairs — one block's batched ``op_counts``
    charge (or a rewind suffix)."""
    by_class = {}
    for cls in classes:
        by_class[cls] = by_class.get(cls, 0) + 1
    return tuple(sorted(by_class.items()))


def fuse_straight_line(ops, get_op, patterns, make_single, make_fused):
    """Greedy longest-match superinstruction fusion over a block's
    straight-line instructions.

    ``patterns`` maps a first opcode to ``(opcode_tuple, key)`` candidates
    sorted longest-first.  ``make_fused(key, ops_slice, index)`` may
    return ``None`` to decline (e.g. a register-linkage guard fails), in
    which case the instructions fall back to ``make_single(instr, index)``
    handlers.  ``make_single`` may also return ``None`` for marker ops
    that need no runtime work (their accounting is already batched).
    Returns the handler sequence.
    """
    seq = []
    i = 0
    n = len(ops)
    while i < n:
        handler = None
        span = 1
        for pat, key in patterns.get(get_op(ops[i]), ()):
            ln = len(pat)
            if i + ln <= n and all(get_op(ops[i + j]) == pat[j]
                                   for j in range(1, ln)):
                handler = make_fused(key, ops[i:i + ln], i)
                if handler is not None:
                    span = ln
                    break
        if handler is None:
            handler = make_single(ops[i], i)
        if handler is not None:
            seq.append(handler)
        i += span
    return seq


def match_tail(ops, get_op, tail_patterns):
    """Match a block's trailing instructions (terminator included) against
    compare-and-branch style patterns.  ``tail_patterns`` is an iterable
    of ``(opcode_tuple, key)`` sorted longest-first; returns ``(key,
    length)`` for the longest suffix match, else ``None``."""
    n = len(ops)
    for pat, key in tail_patterns:
        ln = len(pat)
        if ln <= n and all(get_op(ops[n - ln + j]) == pat[j]
                           for j in range(ln)):
            return key, ln
    return None


def on_grid(values, grid=0.25):
    """True when every value is an exact multiple of ``grid`` — the
    precondition for order-independent float summation (rule 2)."""
    return all(v % grid == 0.0 for v in values)
