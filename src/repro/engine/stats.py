"""Unified execution-statistics protocol for all engines.

:class:`EngineStats` carries the accounting every engine shares — abstract
cycles, retired instructions, per-op-class counters, host-boundary
crossings, and GC pauses — and each engine subclasses it with its private
extras (``memory_grows`` for Wasm, ``parse_cycles`` for JS, ``prints`` for
the native machine).  The harness and the analysis layer only rely on the
shared fields and the two shared views (:meth:`EngineStats.count`,
:meth:`EngineStats.arithmetic_profile`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.opclass import NUM_OP_CLASSES, OpClass


def new_op_counts():
    """A fresh per-op-class counter vector (indexed by :class:`OpClass`)."""
    return [0] * NUM_OP_CLASSES


@dataclass
class EngineStats:
    """Dynamic execution counters common to Wasm, JS, and native runs."""

    #: Abstract execution cycles charged by the interpreter loop.
    cycles: float = 0.0
    #: Retired instructions / bytecode ops.
    instructions: int = 0
    #: Dynamic count per :class:`OpClass`.
    op_counts: list = field(default_factory=new_op_counts)
    #: Calls that crossed the host boundary (JS glue, libm, prints).
    host_calls: int = 0
    #: Cycles charged for host-boundary context switches (§4.5).
    boundary_cycles: float = 0.0
    #: Modeled compile cycles charged by the engine's startup path
    #: (bytecode compile + JIT promotions for JS; tier compiles when a
    #: standalone host instantiates a module with a tier policy attached).
    compile_cycles: float = 0.0
    #: GC accounting (JS engines; zero for engines without a managed heap).
    gc_runs: int = 0
    gc_pause_cycles: float = 0.0

    def count(self, op_class):
        """Dynamic count of one :class:`OpClass`."""
        return self.op_counts[int(op_class)]

    def arithmetic_profile(self):
        """Table 12-style dict of arithmetic operation counts."""
        return {
            "ADD": self.count(OpClass.ADD),
            "MUL": self.count(OpClass.MUL),
            "DIV": self.count(OpClass.DIV),
            "REM": self.count(OpClass.REM),
            "SHIFT": self.count(OpClass.SHIFT),
            "AND": self.count(OpClass.AND),
            "OR": self.count(OpClass.OR),
        }
