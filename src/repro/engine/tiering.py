"""Parameterized tiered-compilation model shared by the Wasm and JS engines.

One :class:`TierPolicy` describes a two-tier pipeline — a fast baseline
compiler (LiftOff / SpiderMonkey Baseline / Ignition) paired with a slow
optimizing compiler (TurboFan / Ion) — as a speed/quality tradeoff:
per-tier compile cost, per-tier code-quality factor, and the hotness
thresholds that trigger promotion.  :class:`TierController` answers the two
questions both engines used to answer privately:

* **Module tiering** (Wasm, §4.4): given a module's static size and its
  dynamic instruction count, which compiles ran and what blended
  execution factor applies (:meth:`TierController.compile_plan`)?
* **Function tiering** (JS): is this function hot by call count or loop
  back-edges, what does its promotion compile cost, and what per-op
  factor does each tier run at?

Policies are derived from the browser profiles in :mod:`repro.env.browser`
(``WasmEngineConfig.tier_policy()`` / ``JsEngineConfig``-driven
:meth:`TierPolicy.from_js_config`), so one table of engine parameters
drives both engines.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TierPolicy:
    """Parameters of one basic→optimizing tier pair."""

    basic_name: str = "baseline"
    optimizing_name: str = "opt"
    #: Which tiers are enabled (Table 7 settings).
    basic_enabled: bool = True
    optimizing_enabled: bool = True
    #: Compile the optimizing tier eagerly at startup (2019 desktop
    #: SpiderMonkey) instead of lazily on hotness (V8).
    eager_opt_compile: bool = False
    #: Compile cost per static instruction (Wasm) or bytecode op (JS).
    basic_compile_cost: float = 2.0
    opt_compile_cost: float = 20.0
    #: Code quality: execution-cycle multiplier per tier.
    basic_exec_factor: float = 1.18
    opt_exec_factor: float = 1.0
    #: Module tiering: dynamic instruction count after which tier-up
    #: completes (Wasm-style).
    tier_up_instructions: int = 200000
    #: Function tiering: hotness thresholds (JS-style).
    call_threshold: int = 8
    backedge_threshold: int = 500

    @classmethod
    def from_js_config(cls, cfg):
        """Policy for a JS pipeline (:class:`repro.jsengine.JsEngineConfig`):
        tier 0 is the entry tier (Ignition / Baseline), tier 1 the
        optimizing JIT."""
        return cls(
            basic_name="tier0", optimizing_name="tier1",
            basic_enabled=True, optimizing_enabled=cfg.jit_enabled,
            basic_compile_cost=cfg.compile_cycles_per_op,
            opt_compile_cost=cfg.tier1_compile_cycles_per_op,
            basic_exec_factor=cfg.tier0_factor,
            opt_exec_factor=cfg.tier1_factor,
            call_threshold=cfg.call_threshold,
            backedge_threshold=cfg.backedge_threshold,
        )


@dataclass
class TierPlan:
    """Outcome of module tiering: which compiles ran, at what cost, and
    the blended execution-cycle factor."""

    #: Ordered ``(phase, tier_name, cycles)`` compile charges, where
    #: ``phase`` is ``"compile"`` or ``"tier-up"``.
    compiles: list
    #: Execution-cycle multiplier (blended across tiers for a lazy
    #: promotion that happened mid-run).
    exec_factor: float
    #: True when the optimizing tier was entered via the hotness threshold.
    tiered_up: bool

    @property
    def compile_cycles(self):
        return sum(c for _phase, _tier, c in self.compiles)


class TierController:
    """Applies a :class:`TierPolicy` to both tiering styles."""

    def __init__(self, policy):
        self.policy = policy

    # -- module tiering (Wasm pipeline, §4.4) -----------------------------

    def compile_plan(self, static_instrs, dynamic_instrs):
        """Model the two-tier module pipeline.

        Mirrors the browsers' behavior: eager mode compiles both tiers at
        instantiate and runs everything on optimized code; lazy mode
        starts on the basic tier and, once the dynamic instruction count
        crosses the threshold, charges the optimizing compile and blends
        the per-tier quality factors by the fraction of instructions each
        tier executed.
        """
        p = self.policy
        compiles = []
        tiered_up = False
        if p.basic_enabled and p.optimizing_enabled and p.eager_opt_compile:
            # SpiderMonkey-style: baseline compile for fast startup plus a
            # full optimizing compile at instantiate; execution runs on
            # optimized code.
            compiles.append((
                "compile", f"{p.basic_name}+{p.optimizing_name}",
                static_instrs * (p.basic_compile_cost + p.opt_compile_cost)))
            factor = p.opt_exec_factor
        elif p.basic_enabled and p.optimizing_enabled:
            compiles.append(("compile", p.basic_name,
                             static_instrs * p.basic_compile_cost))
            if dynamic_instrs > p.tier_up_instructions:
                # Hot module: optimizing compile happened concurrently;
                # early instructions ran on the basic tier.
                compiles.append(("tier-up", p.optimizing_name,
                                 static_instrs * p.opt_compile_cost))
                frac_basic = p.tier_up_instructions / max(dynamic_instrs, 1)
                tiered_up = True
            else:
                frac_basic = 1.0
            factor = (p.basic_exec_factor * frac_basic +
                      p.opt_exec_factor * (1.0 - frac_basic))
        elif p.basic_enabled:
            compiles.append(("compile", p.basic_name,
                             static_instrs * p.basic_compile_cost))
            factor = p.basic_exec_factor
        else:
            compiles.append(("compile", p.optimizing_name,
                             static_instrs * p.opt_compile_cost))
            factor = p.opt_exec_factor
        return TierPlan(compiles, factor, tiered_up)

    # -- function tiering (JS JIT) ----------------------------------------

    def call_hot(self, call_count):
        """Has this function crossed the call-count threshold?"""
        return call_count >= self.policy.call_threshold

    def backedge_hot(self, backedge_count):
        """Has this loop crossed the back-edge threshold (OSR)?"""
        return backedge_count >= self.policy.backedge_threshold

    def tier_up_compile_cycles(self, num_ops):
        """Compile cost of promoting a function to the optimizing tier."""
        return num_ops * self.policy.opt_compile_cost

    def exec_factor(self, tier):
        """Per-op cost multiplier for a function running in ``tier``."""
        return (self.policy.opt_exec_factor if tier
                else self.policy.basic_exec_factor)
