"""Parameterized tiered-compilation model shared by the Wasm and JS engines.

One :class:`TierPolicy` pairs two :class:`~repro.engine.compilemodel.
CompilerModel`\\ s — a fast baseline compiler (LiftOff / SpiderMonkey
Baseline / Ignition) and a slow optimizing compiler (TurboFan / Ion) —
with the promotion policy between them: which tiers are enabled, eager vs
lazy optimizing compile, and the hotness thresholds.  Compile *cost* and
code *quality* live on the models; the policy decides when each model
runs.  :class:`TierController` answers the two questions both engines used
to answer privately:

* **Module tiering** (Wasm, §4.4): given a module's static shape (a
  :class:`~repro.engine.compilemodel.CodeUnit`) and its dynamic
  instruction count, which compiles ran, where the tier switch landed,
  and what blended execution factor applies (:meth:`TierController.plan`
  → structured :class:`~repro.engine.compilemodel.CompilePlan`)?
* **Function tiering** (JS): is this function hot by call count or loop
  back-edges, what does its promotion compile cost, and what per-op
  factor does each tier run at?

Policies are derived from the browser profiles in :mod:`repro.env.browser`
(``WasmEngineConfig.tiers`` / ``JsEngineConfig``-driven
:meth:`TierPolicy.from_js_config`) and the standalone host profiles in
:mod:`repro.env.runtimes`, so one table of engine parameters drives every
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.engine.compilemodel import (
    CodeUnit,
    CompileCharge,
    CompilePlan,
    CompilerModel,
    PerInstrCompiler,
)


def _default_basic():
    return PerInstrCompiler(name="baseline", exec_factor=1.18,
                            cycles_per_instr=2.0)


def _default_optimizing():
    return PerInstrCompiler(name="opt", exec_factor=1.0,
                            cycles_per_instr=20.0)


#: ``tweak()`` spellings for the model parameters, kept for the profile
#: layer and older call sites: legacy name → (policy model field, model
#: attribute).
_MODEL_ALIASES = {
    "basic_name": ("basic", "name"),
    "optimizing_name": ("optimizing", "name"),
    "basic_exec_factor": ("basic", "exec_factor"),
    "opt_exec_factor": ("optimizing", "exec_factor"),
    "basic_compile_cost": ("basic", "cycles_per_instr"),
    "opt_compile_cost": ("optimizing", "cycles_per_instr"),
    "basic_compile_cycles_per_instr": ("basic", "cycles_per_instr"),
    "opt_compile_cycles_per_instr": ("optimizing", "cycles_per_instr"),
}


@dataclass(frozen=True)
class TierPolicy:
    """One basic→optimizing tier pair: two compiler models plus the
    promotion policy between them."""

    #: The fast entry tier (LiftOff / Baseline / Ignition).
    basic: CompilerModel = field(default_factory=_default_basic)
    #: The optimizing tier (TurboFan / Ion).
    optimizing: CompilerModel = field(default_factory=_default_optimizing)
    #: Which tiers are enabled (Table 7 settings).
    basic_enabled: bool = True
    optimizing_enabled: bool = True
    #: Compile the optimizing tier eagerly at startup (2019 desktop
    #: SpiderMonkey) instead of lazily on hotness (V8).
    eager_opt_compile: bool = False
    #: Module tiering: dynamic instruction count after which tier-up
    #: completes (Wasm-style).
    tier_up_instructions: int = 200000
    #: Function tiering: hotness thresholds (JS-style).
    call_threshold: int = 8
    backedge_threshold: int = 500

    # -- legacy views (the scalar constants the models replaced) ----------

    @property
    def basic_name(self):
        return self.basic.name

    @property
    def optimizing_name(self):
        return self.optimizing.name

    @property
    def basic_exec_factor(self):
        return self.basic.exec_factor

    @property
    def opt_exec_factor(self):
        return self.optimizing.exec_factor

    @property
    def basic_compile_cost(self):
        """Per-instruction basic-tier cost (``None`` for models whose
        cost is not a single rate)."""
        return getattr(self.basic, "cycles_per_instr", None)

    @property
    def opt_compile_cost(self):
        return getattr(self.optimizing, "cycles_per_instr", None)

    def tweak(self, **kwargs):
        """``replace()`` that also accepts the legacy scalar spellings
        (``basic_exec_factor=...``), rewriting them into the underlying
        compiler models."""
        basic, optimizing = self.basic, self.optimizing
        policy_kwargs = {}
        for key, value in kwargs.items():
            alias = _MODEL_ALIASES.get(key)
            if alias is None:
                policy_kwargs[key] = value
            elif alias[0] == "basic":
                basic = replace(basic, **{alias[1]: value})
            else:
                optimizing = replace(optimizing, **{alias[1]: value})
        return replace(self, basic=basic, optimizing=optimizing,
                       **policy_kwargs)

    @classmethod
    def from_js_config(cls, cfg):
        """Policy for a JS pipeline (:class:`repro.jsengine.JsEngineConfig`):
        tier 0 is the entry tier (Ignition / Baseline), tier 1 the
        optimizing JIT."""
        return cls(
            basic=PerInstrCompiler(
                name="tier0", exec_factor=cfg.tier0_factor,
                cycles_per_instr=cfg.compile_cycles_per_op),
            optimizing=PerInstrCompiler(
                name="tier1", exec_factor=cfg.tier1_factor,
                cycles_per_instr=cfg.tier1_compile_cycles_per_op),
            basic_enabled=True, optimizing_enabled=cfg.jit_enabled,
            call_threshold=cfg.call_threshold,
            backedge_threshold=cfg.backedge_threshold,
        )


#: Back-compat alias: plans are built by the shared compile-model layer
#: now; ``TierPlan`` remains importable for older call sites.
TierPlan = CompilePlan


class TierController:
    """Applies a :class:`TierPolicy` to both tiering styles."""

    def __init__(self, policy):
        self.policy = policy

    # -- module tiering (Wasm pipeline, §4.4) -----------------------------

    def plan(self, unit, dynamic_instrs):
        """Model the two-tier module pipeline for one
        :class:`~repro.engine.compilemodel.CodeUnit`.

        Mirrors the browsers' behavior: eager mode compiles both tiers at
        instantiate and runs everything on optimized code; lazy mode
        starts on the basic tier and, once the dynamic instruction count
        crosses the threshold, charges the optimizing compile and blends
        the per-tier quality factors by the fraction of instructions each
        tier executed.
        """
        p = self.policy
        charges = []
        tiered_up = False
        switch = None
        if p.basic_enabled and p.optimizing_enabled and p.eager_opt_compile:
            # SpiderMonkey-style: baseline compile for fast startup plus a
            # full optimizing compile at instantiate; execution runs on
            # optimized code.
            basic_cycles = p.basic.compile_cycles(unit)
            opt_cycles = p.optimizing.compile_cycles(unit)
            charges.append(CompileCharge(
                "compile", f"{p.basic_name}+{p.optimizing_name}",
                self._eager_cycles(p, unit, basic_cycles, opt_cycles),
                at_startup=True,
                parts=((p.basic_name, basic_cycles),
                       (p.optimizing_name, opt_cycles))))
            factor = p.opt_exec_factor
        elif p.basic_enabled and p.optimizing_enabled:
            charges.append(CompileCharge(
                "compile", p.basic_name, p.basic.compile_cycles(unit)))
            if dynamic_instrs > p.tier_up_instructions:
                # Hot module: optimizing compile happened concurrently;
                # early instructions ran on the basic tier.
                charges.append(CompileCharge(
                    "tier-up", p.optimizing_name,
                    p.optimizing.compile_cycles(unit), at_startup=False))
                frac_basic = p.tier_up_instructions / max(dynamic_instrs, 1)
                tiered_up = True
                switch = p.tier_up_instructions
            else:
                frac_basic = 1.0
            factor = (p.basic_exec_factor * frac_basic +
                      p.opt_exec_factor * (1.0 - frac_basic))
        elif p.basic_enabled:
            charges.append(CompileCharge(
                "compile", p.basic_name, p.basic.compile_cycles(unit)))
            factor = p.basic_exec_factor
        else:
            charges.append(CompileCharge(
                "compile", p.optimizing_name,
                p.optimizing.compile_cycles(unit)))
            factor = p.opt_exec_factor
        return CompilePlan(charges, factor, tiered_up,
                           switch_instructions=switch, unit=unit)

    def compile_plan(self, static_instrs, dynamic_instrs):
        """Size-only plan (legacy entry point): prices a unit known only
        by its static instruction count."""
        return self.plan(CodeUnit(static_instrs=static_instrs),
                         dynamic_instrs)

    @staticmethod
    def _eager_cycles(policy, unit, basic_cycles, opt_cycles):
        """Cycles of the combined eager charge.  For two per-instruction
        models this intentionally reproduces the legacy arithmetic
        ``size * (rate_b + rate_o)`` bit-for-bit (the refactor's golden
        guarantee) — ``size*rate_b + size*rate_o`` can differ in the last
        ulp.  Modeled compilers simply sum their per-tier costs."""
        if isinstance(policy.basic, PerInstrCompiler) and \
                isinstance(policy.optimizing, PerInstrCompiler):
            return unit.static_instrs * (policy.basic.cycles_per_instr
                                         + policy.optimizing.cycles_per_instr)
        return basic_cycles + opt_cycles

    # -- function tiering (JS JIT) ----------------------------------------

    def call_hot(self, call_count):
        """Has this function crossed the call-count threshold?"""
        return call_count >= self.policy.call_threshold

    def backedge_hot(self, backedge_count):
        """Has this loop crossed the back-edge threshold (OSR)?"""
        return backedge_count >= self.policy.backedge_threshold

    def tier_up_compile_cycles(self, num_ops):
        """Compile cost of promoting a function to the optimizing tier."""
        return self.policy.optimizing.function_compile_cycles(num_ops)

    def exec_factor(self, tier):
        """Per-op cost multiplier for a function running in ``tier``."""
        return (self.policy.opt_exec_factor if tier
                else self.policy.basic_exec_factor)
