"""Neutral operation-class taxonomy shared by all execution engines.

The classes are the attribution buckets the paper's Table 12 counts
(ADD/MUL/DIV/REM/SHIFT/AND/OR) plus enough extra buckets that every
executed instruction — Wasm opcode, JS bytecode op, or native x86-model
op — lands somewhere.  This module is engine-neutral on purpose: it used
to live in ``repro.wasm.instructions``, which forced the JS engine to
import the wasm layer just to count its own bytecodes.
"""

from __future__ import annotations

import enum


class OpClass(enum.IntEnum):
    """Operation classes used for instruction accounting.

    The first seven entries match the arithmetic classes the paper counts in
    Table 12 (Long.js operation counts); the remainder cover the rest of the
    instruction set so every executed instruction is attributed somewhere.
    """

    ADD = 0
    MUL = 1
    DIV = 2
    REM = 3
    SHIFT = 4
    AND = 5
    OR = 6
    XOR = 7
    CMP = 8
    CONST = 9
    LOCAL = 10
    GLOBAL = 11
    LOAD = 12
    STORE = 13
    CONTROL = 14
    CALL = 15
    CONVERT = 16
    MEMORY = 17
    OTHER = 18


#: Size of a per-op-class counter vector.
NUM_OP_CLASSES = max(OpClass) + 1
