"""Unified host-shim registry: one wiring of ``clibm`` and the print/timer
hooks for all three engines.

The C benchmarks reach the host through three doors — Wasm ``env``
imports, the JS realm's ``Math``/``__print_*`` globals, and the native
machine's ``HOSTCALL`` — and each used to wire ``clibm`` separately
(``harness/runner.py``, ``jsengine/host.py``, ``native/machine.py``).
This module is now the single source of truth:

* :data:`LIBM` — the C-semantics libm table (function, arity, and the
  native-execution cycle cost charged when a Wasm module calls out to the
  embedder's ``Math.*``, §3.2);
* :data:`JS_MATH` — the ECMAScript-flavoured variants the JS ``Math``
  object exposes (``Math.pow`` NaN rules, ``Math.exp`` clamping);
* :func:`wasm_host_imports` / :func:`install_js_host` /
  :func:`native_libm` — the per-engine adapters.

Cost note: Wasm libm imports charge the callee-side native cycles here
*plus* the boundary cost charged by the VM per host call; the native
machine runs libm "at home" so only its ``HOSTCALL`` op cost applies; JS
``Math.*`` costs are carried on the :class:`NativeFunction` wrappers.
"""

from __future__ import annotations

import math

from repro.clibm import c_copysign, c_exp, c_fmod, c_log, c_pow, js_pow


def js_exp(x):
    """ECMAScript ``Math.exp`` as the engines implement it: the argument
    range is clamped so the result saturates near 1e304 instead of
    overflowing (NaN propagates through the clamp)."""
    return math.exp(min(x, 700.0))


#: C-semantics libm registry: name -> (function, arity, native cycles
#: charged when a Wasm guest calls the embedder's implementation).
LIBM = {
    "exp": (c_exp, 1, 25.0),
    "log": (c_log, 1, 25.0),
    "sin": (math.sin, 1, 25.0),
    "cos": (math.cos, 1, 25.0),
    "pow": (c_pow, 2, 30.0),
    "fmod": (c_fmod, 2, 30.0),
    # A sign-bit transfer, far cheaper than the transcendentals.
    "copysign": (c_copysign, 2, 12.0),
}

#: ECMAScript-flavoured variants for the JS ``Math`` object: name ->
#: (function, arity, NativeFunction cycle cost).
JS_MATH = {
    "pow": (js_pow, 2, 30.0),
    "exp": (js_exp, 1, 25.0),
    "log": (c_log, 1, 25.0),
    "sin": (math.sin, 1, 25.0),
    "cos": (math.cos, 1, 25.0),
    "atan": (math.atan, 1, 25.0),
    # Not in ECMAScript's Math — exposed as the host polyfill Cheerp's
    # genericjs output expects for C's copysign.
    "copysign": (c_copysign, 2, 12.0),
}

#: Print hooks the Cheerp-generated code expects, one per value shape.
PRINT_NAMES = ("__print_i32", "__print_i64", "__print_f64")


# -- Wasm: env imports ----------------------------------------------------

def wasm_host_imports(output, instance_box=None):
    """Host imports for Cheerp-generated Wasm: prints and the libm
    functions Cheerp routes through JS ``Math`` (§3.2)."""

    def mk_print(name):
        def shim(inst, value):
            output.append(value)
        return shim

    imports = {("env", name): mk_print(name) for name in PRINT_NAMES}

    def libm_shim(fn, arity, native_cycles):
        if arity == 1:
            def shim(inst, x):
                inst.stats.cycles += native_cycles   # native Math.* body
                return fn(x)
        else:
            def shim(inst, x, y):
                inst.stats.cycles += native_cycles
                return fn(x, y)
        return shim

    for name, (fn, arity, native_cycles) in LIBM.items():
        imports[("env", name)] = libm_shim(fn, arity, native_cycles)
    return imports


# -- JS: Cheerp genericjs globals ----------------------------------------

def install_js_host(engine, output):
    """Install the host shims Cheerp-generated JS expects: ``__print_*``,
    ``Math.imul``, and the timer report hook.  Returns the list the timer
    hook appends to."""
    # Engine-value wrappers are imported lazily: the engine core sits
    # below the jsengine layer and must not depend on it at import time.
    from repro.jsengine.values import NativeFunction, UNDEFINED, to_int32

    def print_num(e, this, args):
        output.append(args[0])
        return UNDEFINED

    def print_i64(e, this, args):
        pair = args[0]
        lo = int(pair.items[0]) & 0xFFFFFFFF
        hi = int(pair.items[1]) & 0xFFFFFFFF
        value = (hi << 32) | lo
        if value >= 1 << 63:
            value -= 1 << 64
        output.append(value)
        return UNDEFINED

    engine.globals["__print_i32"] = NativeFunction(
        "__print_i32", lambda e, t, a: print_num(e, t, [float(to_int32(a[0]))]),
        150.0)
    engine.globals["__print_f64"] = NativeFunction(
        "__print_f64", print_num, 150.0)
    engine.globals["__print_i64"] = NativeFunction(
        "__print_i64", print_i64, 150.0)
    engine.globals["Math"].props["imul"] = NativeFunction(
        "imul", lambda e, t, a: float(to_int32(to_int32(a[0]) *
                                               to_int32(a[1]))), 4.0)
    timings = []
    engine.globals["__report_time"] = NativeFunction(
        "__report_time", lambda e, t, a: timings.append(a[0]) or UNDEFINED,
        30.0)
    return timings


# -- native: HOSTCALL dispatch -------------------------------------------

def native_libm(name):
    """The libm body a native ``HOSTCALL`` runs (at full native speed: the
    ``HOSTCALL`` op cost already covers the call, so no extra cycles are
    charged here)."""
    return LIBM[name][0]
