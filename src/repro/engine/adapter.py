"""The engine-adapter interface the harness runs artifacts through.

``PageRunner`` used to carry one bespoke measurement loop per target
(``run_js`` / ``run_wasm``); both now collapse onto a single
``_run_artifact`` path that only talks to this interface.  An adapter
owns everything target-specific about executing one compiled artifact —
building the page, running one repetition, and (optionally) assembling
the :class:`~repro.engine.trace.ExecutionTrace` — while the runner owns
the protocol: memoization, the repetition loop, output-equality checks,
and aggregation (§3.3.2).

Concrete adapters live with the harness (they need the collector and the
browser profile); this module only pins down the contract so new targets
plug in without touching the measurement protocol.
"""

from __future__ import annotations


class EngineAdapter:
    """Contract between ``PageRunner._run_artifact`` and one engine."""

    #: Measurement target label ("js", "wasm", "native").
    target = "?"
    #: Result-memoization namespace for this target's measurements.
    memo_kind = "?"

    def page(self, artifact, entry):
        """Build the :class:`~repro.harness.page.HtmlPage` hosting the
        artifact."""
        raise NotImplementedError

    def setup(self, artifact, page):
        """Per-measurement preparation (e.g. decode the module once);
        called before the repetition loop."""

    def run_rep(self, artifact, page, entry, output, trace):
        """Execute one repetition.

        Appends printed values to ``output``, fills ``trace`` (an
        :class:`~repro.engine.trace.ExecutionTrace`, or ``None`` when
        tracing is off) with this repetition's phase events, and returns
        the :class:`~repro.env.devtools.Metrics` for the run.
        """
        raise NotImplementedError

    def finalize(self, result):
        """Post-process the aggregated measurement (extra detail
        fields); called once after the repetition loop."""
