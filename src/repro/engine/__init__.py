"""The shared engine core.

All three execution engines — the Wasm VM (:mod:`repro.wasm.vm`), the JS
engine (:mod:`repro.jsengine`), and the native x86 machine
(:mod:`repro.native.machine`) — plug into this package instead of
duplicating the mechanisms the paper's comparisons hinge on:

* :mod:`repro.engine.opclass` — the neutral operation-class taxonomy
  (Table 12's ADD/MUL/DIV/... attribution) shared by every instruction
  set, plus the unified :class:`~repro.engine.stats.EngineStats`
  accounting protocol;
* :mod:`repro.engine.tiering` — one parameterized
  :class:`~repro.engine.tiering.TierPolicy` /
  :class:`~repro.engine.tiering.TierController` modeling
  LiftOff→TurboFan and Baseline→Ion (thresholds, per-tier compile cost,
  per-tier code quality), consumed by both the Wasm pipeline and the JS
  JIT;
* :mod:`repro.engine.hostlib` — the single host-shim registry wiring
  ``clibm`` and the ``__print_*``/timer hooks for all engines;
* :mod:`repro.engine.trace` — the structured execution trace (ordered
  phase events with cycle spans, JSON-exportable);
* :mod:`repro.engine.adapter` — the :class:`EngineAdapter` interface the
  harness runs artifacts through.

Layering rule (enforced by ``tests/test_layering.py``): ``wasm``,
``jsengine``, and ``native`` may import from this package but never from
each other.
"""

from repro.engine.adapter import EngineAdapter
from repro.engine.compilemodel import (
    CodeUnit,
    CompileCharge,
    CompilePlan,
    CompilerModel,
    PassPipelineCompiler,
    PerInstrCompiler,
    SinglePassCompiler,
)
from repro.engine.opclass import NUM_OP_CLASSES, OpClass
from repro.engine.stats import EngineStats, new_op_counts
from repro.engine.tiering import TierController, TierPlan, TierPolicy
from repro.engine.trace import ExecutionTrace, TraceEvent

__all__ = [
    "CodeUnit",
    "CompileCharge",
    "CompilePlan",
    "CompilerModel",
    "EngineAdapter",
    "EngineStats",
    "ExecutionTrace",
    "NUM_OP_CLASSES",
    "OpClass",
    "PassPipelineCompiler",
    "PerInstrCompiler",
    "SinglePassCompiler",
    "TierController",
    "TierPlan",
    "TierPolicy",
    "TraceEvent",
    "new_op_counts",
]
