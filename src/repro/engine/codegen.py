"""Shared substrate of the compiled-Python (codegen) execution tier.

The threaded tier (:mod:`repro.engine.threaded`) replaced the reference
ladders' per-instruction dispatch with per-block handler closures, but it
still pays one Python call per source instruction.  The codegen tier is
the rung above it on the same ladder: each engine's translator walks the
*threaded-code basic blocks* it already knows how to build and emits them
as straight-line Python source — operand stack lowered to local
variables, batched accounting constants folded into literal statements,
trap points compiled to explicit guards that rewind exactly like the
threaded tier's pre-bound rewind closures.  The source is ``compile()``d
once per translation unit and the resulting ``make(ns)`` factory is
called per engine instance to pre-bind that instance's state.

Tier ladder (each knob gates everything above it)::

    REPRO_FAST_INTERP=0   reference ladders (differential oracle)
    REPRO_CODEGEN=0       threaded closures (prepare-once handlers)
    default               generated Python (this tier)

Exactness contract: the generated code must be observably bit-identical
to the threaded tier (and hence to the reference ladders) — same stats,
same traces, same GC pauses, same per-opclass×per-function profiles.
The per-engine translators document how each of the substrate's
exactness rules (see ``engine/threaded.py``) maps onto emitted source.
A translator may also *decline* a function (returning ``None``) when a
static property it relies on does not hold — e.g. an inconsistent
operand-stack depth at a join point — in which case the engine falls
back to the threaded tier for that function, which is exact by
construction.

Persistent compile cache: generated source depends only on the prepared
code and a handful of translation flags, never on instance state (state
is handed to ``make`` through ``ns``), so translation units are
content-addressed exactly like compiled artifacts.  Warm runs are served
from the same disk store the compile cache uses (``src/repro/cache/``):
the artifact key pins the source text and a ``marshal`` of the compiled
code object, so a warm process skips both source generation and
``compile()``.
"""

from __future__ import annotations

import hashlib
import importlib.util
import marshal
import os

from repro.engine.threaded import fast_interp_enabled

#: Bump when the shape of cached translation units changes.
SCHEMA_VERSION = 1

_TAG = "codegen"

#: Sentinel an engine caches on a prepared function when its translator
#: declined it (so the decline is not retried on every call).
DECLINED = object()


def codegen_enabled():
    """The ``REPRO_CODEGEN`` knob: default on, ``0`` drops back to the
    threaded tier.  The codegen tier sits above the threaded tier on the
    same ladder, so ``REPRO_FAST_INTERP=0`` disables both."""
    return os.environ.get("REPRO_CODEGEN", "1") != "0" \
        and fast_interp_enabled()


# ---------------------------------------------------------------------------
# Source emission helpers shared by the three translators.

def literal(value):
    """Python source for one embedded constant.

    ``repr`` round-trips ints (arbitrary precision) and finite floats
    exactly; the non-literal floats are spelled out so the generated
    module needs no imports.  Strings/bools/None appear in JS bytecode
    arguments and repr cleanly.
    """
    if isinstance(value, float):
        if value != value:
            return "float('nan')"
        if value == float("inf"):
            return "float('inf')"
        if value == float("-inf"):
            return "float('-inf')"
        return repr(value)
    if isinstance(value, (int, str, bytes, bool)) or value is None:
        return repr(value)
    raise ValueError(f"unsupported literal {value!r}")


class Emitter:
    """An indentation-tracking line buffer for generated source."""

    def __init__(self):
        self.lines = []
        self.indent = 0

    def emit(self, text):
        if text:
            self.lines.append("    " * self.indent + text)
        else:
            self.lines.append("")

    def block(self):
        """Context manager raising the indent by one level."""
        emitter = self

        class _Block:
            def __enter__(self):
                emitter.indent += 1

            def __exit__(self, *exc):
                emitter.indent -= 1
                return False
        return _Block()

    def source(self):
        return "\n".join(self.lines) + "\n"


# ---------------------------------------------------------------------------
# The translation-unit cache: memory (compiled ``make`` factories) over
# the persistent artifact store (source + marshalled code object).

_FACTORIES = {}          # key -> make() factory (compiled once per process)
_STORE = None            # lazily built ArtifactCache (own stats, shared root)


def _store():
    global _STORE
    if _STORE is None:
        from repro.cache.store import ArtifactCache
        _STORE = ArtifactCache()
    return _STORE


def reset_cache():
    """Drop the in-process layers (tests: cold/warm differentials)."""
    global _STORE
    _FACTORIES.clear()
    _STORE = None


def unit_key(engine, parts):
    """Content-address one translation unit.

    ``parts`` must pin everything the emitted source depends on: the
    prepared code (its repr), and every translation flag folded into the
    source (budget mode, profiling, cost/factor constants).  The package
    code fingerprint invalidates on any translator edit; the interpreter
    ``cache_tag`` scopes the marshalled code object to the bytecode
    format that produced it.
    """
    from repro.cache.keys import code_fingerprint
    digest = hashlib.sha256()
    for part in ("repro-codegen", SCHEMA_VERSION, code_fingerprint(),
                 importlib.util.MAGIC_NUMBER.hex(), engine, *parts):
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


def load_factory(engine, key, build_source):
    """Return the compiled ``make`` factory for one translation unit.

    Layered lookup: in-process factory cache, then the persistent store
    (source + marshalled code object — skips ``build_source`` *and*
    ``compile``), then a cold build that populates both.  The factory is
    the module-level ``make`` function of the generated source; callers
    invoke it once per engine instance with the pre-bound namespace.
    """
    from repro.obs import SCHED, get_registry
    reg = get_registry()
    factory = _FACTORIES.get(key)
    if factory is not None:
        return factory
    filename = f"<repro-codegen:{engine}:{key[:12]}>"
    store = _store()
    entry = store.get(key)
    code = None
    source = None
    if isinstance(entry, tuple) and len(entry) == 4 \
            and entry[0] == _TAG and entry[1] == SCHEMA_VERSION:
        source = entry[2]
        try:
            code = marshal.loads(entry[3])
        except (ValueError, EOFError, TypeError):
            code = None                   # foreign bytecode: recompile
        reg.counter_add(f"interp.{engine}.codegen_cache_hits", 1, SCHED)
    if source is None:
        source = build_source()
        reg.counter_add(f"interp.{engine}.codegen_cache_misses", 1, SCHED)
    if code is None:
        code = compile(source, filename, "exec")
        store.put(key, (_TAG, SCHEMA_VERSION, source, marshal.dumps(code)))
    namespace = {}
    exec(code, namespace)
    factory = namespace["make"]
    factory.__repro_source__ = source     # tests / debugging
    _FACTORIES[key] = factory
    return factory
