"""Disk-backed, content-addressed artifact store.

Layout (versioned, safe to delete at any time)::

    <root>/                 REPRO_CACHE_DIR or ~/.cache/repro
      v1/                   bumped when the on-disk schema changes
        ab/abcdef....pkl    pickled artifact, sharded by key prefix

Writes are atomic (temp file + ``os.replace``), so concurrent workers of
the parallel scheduler can share one cache directory without locking: the
worst case is two workers compiling the same artifact and one replace
winning — both writes carry identical bytes.

A process-local memory layer sits in front of the disk so repeated lookups
inside one run never re-unpickle (this replaces the ad-hoc per-context
dict caches the experiments used to carry).
"""

from __future__ import annotations

import os
import pickle
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.obs import env_flag, env_int

#: Environment variable naming the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the disk layer (``0``/``off``/``false``);
#: the memory layer stays on — compiles are deterministic, so an in-process
#: cache is always sound.
CACHE_ENV = "REPRO_CACHE"

#: Environment variable capping the in-process memory layer at N entries
#: (LRU eviction).  Unset or ``0``: unbounded — right for one-shot sweeps,
#: where the working set is the run itself.  Long-lived processes (the
#: sweep service) set a cap so resident memory stays flat; an evicted
#: entry is still served from disk, so only the ``memory_hits`` /
#: ``disk_hits`` split shifts, never correctness.
CACHE_MEM_ENV = "REPRO_CACHE_MEM"

#: On-disk schema version; bump when the artifact dataclasses change shape.
CACHE_VERSION = "v1"


def default_cache_root():
    return os.environ.get(CACHE_DIR_ENV) or os.path.join(
        os.path.expanduser("~"), ".cache", "repro")


def disk_enabled_from_env():
    return env_flag(CACHE_ENV, default=True)


def memory_cap_from_env():
    """Entry cap for the memory layer from ``REPRO_CACHE_MEM`` (0 =
    unbounded)."""
    return env_int(CACHE_MEM_ENV, default=0, minimum=0)


@dataclass
class CacheStats:
    """Observability counters: every ``get`` is a hit or a miss; ``stale``
    counts the misses caused by an unusable on-disk entry (truncated file,
    schema drift) that was evicted and recompiled."""

    hits: int = 0
    misses: int = 0
    stale: int = 0
    puts: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    evictions: int = 0

    def as_dict(self):
        return {"hits": self.hits, "misses": self.misses,
                "stale": self.stale, "puts": self.puts,
                "memory_hits": self.memory_hits,
                "disk_hits": self.disk_hits,
                "evictions": self.evictions}

    def __str__(self):
        return (f"{self.hits} hits ({self.memory_hits} memory / "
                f"{self.disk_hits} disk), {self.misses} misses "
                f"({self.stale} stale), {self.puts} writes")


class ArtifactCache:
    """Two-layer (memory over disk) store for compiled artifacts.

    The memory layer is an LRU bounded by ``memory_cap`` entries
    (``REPRO_CACHE_MEM``; 0 = unbounded).  Eviction only drops the
    in-process copy — the disk layer still serves the entry, so the
    hit/miss counters stay exact: an access after eviction is an honest
    ``disk_hit`` (or an honest miss with the disk layer off), never a
    phantom."""

    def __init__(self, root=None, disk=None, memory_cap=None):
        if disk is None:
            disk = disk_enabled_from_env()
        if memory_cap is None:
            memory_cap = memory_cap_from_env()
        self.disk = disk
        self.memory_cap = max(0, int(memory_cap))
        self.root = os.path.join(root or default_cache_root(),
                                 CACHE_VERSION)
        self.stats = CacheStats()
        self._memory = OrderedDict()

    # -- lookup ---------------------------------------------------------------

    def shard_of(self, key):
        """The shard (two-hex-digit prefix directory) a key lives in."""
        return key[:2]

    def _path(self, key):
        return os.path.join(self.root, self.shard_of(key), key + ".pkl")

    def _remember(self, key, artifact):
        """Insert into the memory LRU (most-recently-used position),
        evicting from the cold end past the cap."""
        self._memory[key] = artifact
        self._memory.move_to_end(key)
        if self.memory_cap:
            while len(self._memory) > self.memory_cap:
                self._memory.popitem(last=False)
                self.stats.evictions += 1

    def get(self, key):
        """Return the cached artifact or ``None`` (a miss)."""
        from repro.obs import SCHED, emit, events_enabled, get_registry
        reg = get_registry()
        artifact = self._memory.get(key)
        if artifact is not None:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            reg.counter_add("cache.hits", 1, SCHED)
            reg.counter_add("cache.memory_hits", 1, SCHED)
            if events_enabled():
                emit("cache", key=key, outcome="memory_hit")
            return artifact
        if self.disk:
            stale_before = self.stats.stale
            artifact = self._disk_get(key)
            if self.stats.stale > stale_before:
                reg.counter_add("cache.stale", 1, SCHED)
            if artifact is not None:
                self._remember(key, artifact)
                self.stats.hits += 1
                self.stats.disk_hits += 1
                reg.counter_add("cache.hits", 1, SCHED)
                reg.counter_add("cache.disk_hits", 1, SCHED)
                if events_enabled():
                    emit("cache", key=key, outcome="disk_hit")
                return artifact
        self.stats.misses += 1
        reg.counter_add("cache.misses", 1, SCHED)
        if events_enabled():
            emit("cache", key=key, outcome="miss")
        return None

    def _disk_get(self, key):
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            # Truncated write, schema drift, unreadable pickle: the entry
            # is stale — evict it and let the caller recompile.
            self.stats.stale += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    # -- store ----------------------------------------------------------------

    def put(self, key, artifact):
        from repro.obs import SCHED, get_registry
        self._remember(key, artifact)
        self.stats.puts += 1
        get_registry().counter_add("cache.puts", 1, SCHED)
        if not self.disk:
            return
        path = self._path(key)
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path),
                                       suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    pickle.dump(artifact, handle,
                                protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.remove(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            # The cache is best-effort: a full or read-only disk must not
            # fail the compile that produced the artifact.
            pass

    # -- maintenance ----------------------------------------------------------

    def shards(self):
        """Sorted list of shard names (two-hex-digit key-prefix
        directories) that exist on disk."""
        try:
            entries = os.listdir(self.root)
        except OSError:
            return []
        return sorted(name for name in entries
                      if len(name) == 2
                      and os.path.isdir(os.path.join(self.root, name)))

    def sweep_tmp(self, max_age_s=3600.0, shard=None):
        """Remove orphaned ``*.tmp`` spill files.

        A worker killed mid-``put`` (the scheduler's cell-timeout path)
        can leak the temp file it was writing; the entry itself is never
        corrupted (``os.replace`` is atomic) but the orphan wastes disk.
        Only files older than ``max_age_s`` are removed so a concurrent
        writer's in-flight temp file is left alone.

        ``shard`` restricts the sweep to one key-prefix directory —
        long-lived servers walk the shards round-robin (one per
        maintenance tick) so no single sweep has to scan, or hold up
        writers on, the whole store.  Returns the number of files
        removed."""
        root = self.root if shard is None else os.path.join(self.root,
                                                            shard)
        if not os.path.isdir(root):
            return 0
        import time
        cutoff = time.time() - max_age_s
        removed = 0
        for dirpath, _subdirs, files in os.walk(root):
            for name in files:
                if not name.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, name)
                try:
                    if os.path.getmtime(path) <= cutoff:
                        os.remove(path)
                        removed += 1
                except OSError:
                    pass
        return removed

    def clear(self):
        """Drop both layers; the versioned directory is removed wholesale
        (it only ever holds cache entries, so this is always safe)."""
        self._memory.clear()
        shutil.rmtree(self.root, ignore_errors=True)

    def entry_count(self):
        if not os.path.isdir(self.root):
            return 0
        return sum(len([f for f in files if f.endswith(".pkl")])
                   for _dir, _sub, files in os.walk(self.root))


_GLOBAL = None


def get_cache():
    """The process-global cache used by the toolchain facades."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = ArtifactCache()
    return _GLOBAL


def configure(root=None, disk=None, memory_cap=None):
    """Replace the process-global cache (tests, or picking up changed
    ``REPRO_CACHE_DIR``/``REPRO_CACHE``/``REPRO_CACHE_MEM`` environment
    variables)."""
    global _GLOBAL
    _GLOBAL = ArtifactCache(root=root, disk=disk, memory_cap=memory_cap)
    return _GLOBAL
