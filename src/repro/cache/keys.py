"""Content-addressed cache keys for compiled artifacts.

A key is derived from everything that can change the bits of an artifact:

* the **preprocessed source** (what the frontend actually parses, so
  edits the preprocessor strips away — e.g. an inline comment — share
  the cached artifact),
* the ``-D`` **defines** (input-size selection, §3.2),
* the **opt level**,
* the **toolchain** name and its configuration fingerprint (heap/stack
  sizes, precompiled-lib linkage, memory-growth granule — anything held in
  instance state),
* the **pass-pipeline fingerprint** for that level (pass names, including
  the module path of callable passes such as the conservative globalopt),
* the artifact **name** (it is baked into the artifact), and
* a **code fingerprint** over the ``repro`` package sources, so editing
  the compiler itself invalidates every artifact it ever produced.
"""

from __future__ import annotations

import hashlib
import os

_CODE_FINGERPRINT = None


def code_fingerprint():
    """Hash of every ``.py`` file in the ``repro`` package (content, not
    mtime, so it is stable across checkouts), computed once per process."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        package_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(package_root):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, package_root).encode())
                digest.update(b"\0")
                with open(path, "rb") as handle:
                    digest.update(handle.read())
                digest.update(b"\0")
        _CODE_FINGERPRINT = digest.hexdigest()[:16]
    return _CODE_FINGERPRINT


def _stable_defines(defines):
    if not defines:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in dict(defines).items()))


def cache_key(kind, preprocessed, defines, opt_level, toolchain,
              config_fingerprint, pipeline_fingerprint, name):
    """Derive the content-addressed key (a hex digest) for one artifact."""
    digest = hashlib.sha256()
    for part in (
        "repro-artifact", code_fingerprint(), kind, name, opt_level,
        toolchain, repr(_stable_defines(defines)),
        repr(tuple(config_fingerprint)), repr(tuple(pipeline_fingerprint)),
    ):
        digest.update(part.encode("utf-8"))
        digest.update(b"\0")
    digest.update(preprocessed.encode("utf-8"))
    return digest.hexdigest()
