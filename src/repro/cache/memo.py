"""Deterministic-result memoization on top of the artifact store.

Every engine in this reproduction is deterministic: running the same
compiled artifact under the same browser profile on the same platform
produces bit-identical :class:`~repro.harness.measurement.Measurement`
objects.  That makes measurements content-addressable exactly like the
artifacts themselves, so a warm cache can skip not just the compiles but
the measurement runs — which is what makes a repeat
``results/run_all.py`` near-instant.

The layer is **opt-in** (``REPRO_RESULT_CACHE=1``): unit tests routinely
monkeypatch collectors and host imports, and a memoized measurement would
silently bypass those seams.  ``results/run_all.py`` turns it on for
itself; everything else defaults to live execution.
"""

from __future__ import annotations

import hashlib
import os

from repro.cache.keys import code_fingerprint
from repro.cache.store import get_cache

#: Environment variable enabling measurement/result memoization.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"


def results_enabled():
    return os.environ.get(RESULT_CACHE_ENV, "").strip().lower() in (
        "1", "on", "true", "yes")


def result_key(kind, parts):
    """Key for one deterministic result: the ``kind`` tag, the caller's
    ``parts`` (stringified), and the package code fingerprint — so editing
    any ``repro`` source invalidates every memoized result."""
    digest = hashlib.sha256()
    for part in ("repro-result", code_fingerprint(), kind, *parts):
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


def cached_result(kind, parts, compute):
    """Serve ``compute()`` from the cache, keyed on ``(kind, parts)``.

    Only use this for computations that are pure functions of the key;
    ``parts`` must pin down *everything* the result depends on (artifact
    key, profile repr, repetitions, ...).  With ``REPRO_RESULT_CACHE``
    unset this is a transparent pass-through.

    Failure safety: a ``compute`` that raises memoizes *nothing* — the
    exception propagates and the next attempt (e.g. a scheduler retry of
    the failed cell) recomputes from scratch.  An entry that does not
    look like a memoized result (corruption, or a key collision with a
    foreign artifact) is treated as stale and recomputed over.
    """
    if not results_enabled():
        return compute()
    cache = get_cache()
    key = result_key(kind, parts)
    entry = cache.get(key)
    if not (isinstance(entry, tuple) and len(entry) == 2
            and entry[0] == "result"):
        entry = ("result", compute())
        cache.put(key, entry)
    return entry[1]
