"""Deterministic-result memoization on top of the artifact store.

Every engine in this reproduction is deterministic: running the same
compiled artifact under the same browser profile on the same platform
produces bit-identical :class:`~repro.harness.measurement.Measurement`
objects.  That makes measurements content-addressable exactly like the
artifacts themselves, so a warm cache can skip not just the compiles but
the measurement runs — which is what makes a repeat
``results/run_all.py`` near-instant.

The layer is **opt-in** (``REPRO_RESULT_CACHE=1``): unit tests routinely
monkeypatch collectors and host imports, and a memoized measurement would
silently bypass those seams.  ``results/run_all.py`` turns it on for
itself; everything else defaults to live execution.
"""

from __future__ import annotations

import hashlib
import os

from repro.cache.keys import code_fingerprint
from repro.cache.store import get_cache

#: Environment variable enabling measurement/result memoization.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"


def results_enabled():
    return os.environ.get(RESULT_CACHE_ENV, "").strip().lower() in (
        "1", "on", "true", "yes")


def result_key(kind, parts):
    """Key for one deterministic result: the ``kind`` tag, the caller's
    ``parts`` (stringified), and the package code fingerprint — so editing
    any ``repro`` source invalidates every memoized result."""
    digest = hashlib.sha256()
    for part in ("repro-result", code_fingerprint(), kind, *parts):
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


def _det_diff(reg, snap):
    """DET-only slice of a registry diff: what ``compute`` deterministically
    recorded, with the schedule/wallclock entries stripped."""
    from repro.obs import DET
    return {section: {name: entry for name, entry in values.items()
                      if entry[0] == DET}
            for section, values in reg.diff(snap).items()}


def cached_result(kind, parts, compute, replay_metrics=False):
    """Serve ``compute()`` from the cache, keyed on ``(kind, parts)``.

    Only use this for computations that are pure functions of the key;
    ``parts`` must pin down *everything* the result depends on (artifact
    key, profile repr, repetitions, ...).  With ``REPRO_RESULT_CACHE``
    unset this is a transparent pass-through.

    ``replay_metrics=True`` makes the memoization transparent to the
    deterministic metrics slice: the ``det`` registry counters that
    ``compute`` records are stored with the value and re-applied on a
    hit, so a warm run exports the same DET metrics as the cold run that
    populated the entry.  Use it when ``compute`` hides whole compiles or
    measurements from the registry (the real-world app drivers); callers
    that replay their DET counters from the returned value (the page
    runner) must leave it off or they would double-count.

    Failure safety: a ``compute`` that raises memoizes *nothing* — the
    exception propagates and the next attempt (e.g. a scheduler retry of
    the failed cell) recomputes from scratch.  An entry that does not
    look like a memoized result (corruption, or a key collision with a
    foreign artifact), or whose ``replay_metrics`` blob fails to apply
    (truncated write, registry schema drift), is treated as stale and
    recomputed over rather than failing the sweep.
    """
    if not results_enabled():
        return compute()
    cache = get_cache()
    key = result_key(kind, parts)
    entry = cache.get(key)
    if isinstance(entry, tuple) and len(entry) in (2, 3) \
            and entry[0] == "result":
        if not replay_metrics or len(entry) != 3:
            return entry[1]
        from repro.obs import get_registry
        try:
            get_registry().apply(entry[2])
            return entry[1]
        except Exception:
            pass                          # corrupt replay blob → stale
    if replay_metrics:
        from repro.obs import get_registry
        reg = get_registry()
        snap = reg.snapshot()
        value = compute()
        entry = ("result", value, _det_diff(reg, snap))
    else:
        entry = ("result", compute())
    cache.put(key, entry)
    return entry[1]
