"""Deterministic-result memoization on top of the artifact store.

Every engine in this reproduction is deterministic: running the same
compiled artifact under the same browser profile on the same platform
produces bit-identical :class:`~repro.harness.measurement.Measurement`
objects.  That makes measurements content-addressable exactly like the
artifacts themselves, so a warm cache can skip not just the compiles but
the measurement runs — which is what makes a repeat
``results/run_all.py`` near-instant.

The layer is **opt-in** (``REPRO_RESULT_CACHE=1``): unit tests routinely
monkeypatch collectors and host imports, and a memoized measurement would
silently bypass those seams.  ``results/run_all.py`` and the sweep
service turn it on for themselves; everything else defaults to live
execution.
"""

from __future__ import annotations

import hashlib

from repro.cache.keys import code_fingerprint
from repro.cache.store import get_cache
from repro.obs import env_flag

#: Environment variable enabling measurement/result memoization.
RESULT_CACHE_ENV = "REPRO_RESULT_CACHE"

#: Sentinel distinguishing "no usable entry" from a memoized ``None``.
MISS = object()


def results_enabled():
    return env_flag(RESULT_CACHE_ENV, default=False)


def result_key(kind, parts, replay_metrics=False):
    """Key for one deterministic result: the ``kind`` tag, the caller's
    ``parts`` (stringified), and the package code fingerprint — so editing
    any ``repro`` source invalidates every memoized result.

    ``replay_metrics`` participates in the key: an entry stored by a
    plain caller is a 2-tuple with no metrics blob, so serving it to a
    ``replay_metrics=True`` caller would silently drop the DET counters
    the cold run recorded (and vice versa would replay counters the
    caller replays itself).  Distinct keys keep the two populations
    apart."""
    digest = hashlib.sha256()
    parts = (*parts, "replay-metrics") if replay_metrics else tuple(parts)
    for part in ("repro-result", code_fingerprint(), kind, *parts):
        digest.update(str(part).encode("utf-8"))
        digest.update(b"\0")
    return digest.hexdigest()


def _det_diff(reg, snap):
    """DET-only slice of a registry diff: what ``compute`` deterministically
    recorded, with the schedule/wallclock entries stripped."""
    from repro.obs import DET
    return {section: {name: entry for name, entry in values.items()
                      if entry[0] == DET}
            for section, values in reg.diff(snap).items()}


def _serve(entry, replay_metrics):
    """The memoized value carried by ``entry``, or :data:`MISS` when the
    entry is unusable (corruption, key collision, or a shape that does
    not match the caller's ``replay_metrics`` expectation).

    Replaying the metrics blob is transactional: ``registry.apply`` can
    mutate counters before raising on a truncated or schema-drifted
    payload, so the registry is snapshotted first and rolled back on any
    failure — otherwise the recompute that follows a corrupt blob would
    double-count whatever ``apply`` managed to fold in."""
    if not (isinstance(entry, tuple) and entry and entry[0] == "result"):
        return MISS
    if len(entry) != (3 if replay_metrics else 2):
        return MISS                   # replay-flag/shape mismatch → stale
    if not replay_metrics:
        return entry[1]
    from repro.obs import get_registry
    reg = get_registry()
    snap = reg.snapshot()
    try:
        reg.apply(entry[2])
    except Exception:
        reg.restore(snap)             # corrupt replay blob → stale
        return MISS
    return entry[1]


def lookup(kind, parts, replay_metrics=False):
    """Probe the result cache without computing anything.

    Returns the memoized value, or :data:`MISS` when memoization is
    disabled or no usable entry exists.  A ``replay_metrics=True`` hit
    re-applies the stored DET metrics diff (atomically — see
    :func:`_serve`), exactly as :func:`cached_result` would."""
    if not results_enabled():
        return MISS
    entry = get_cache().get(result_key(kind, parts, replay_metrics))
    return _serve(entry, replay_metrics)


def cached_result(kind, parts, compute, replay_metrics=False):
    """Serve ``compute()`` from the cache, keyed on ``(kind, parts)``.

    Only use this for computations that are pure functions of the key;
    ``parts`` must pin down *everything* the result depends on (artifact
    key, profile repr, repetitions, ...).  With ``REPRO_RESULT_CACHE``
    unset this is a transparent pass-through.

    ``replay_metrics=True`` makes the memoization transparent to the
    deterministic metrics slice: the ``det`` registry counters that
    ``compute`` records are stored with the value and re-applied on a
    hit, so a warm run exports the same DET metrics as the cold run that
    populated the entry.  Use it when ``compute`` hides whole compiles or
    measurements from the registry (the real-world app drivers, the sweep
    service's cells); callers that replay their DET counters from the
    returned value (the page runner) must leave it off or they would
    double-count.  The flag is part of the key, so the two caller
    populations never serve each other's entries.

    Failure safety: a ``compute`` that raises memoizes *nothing* — the
    exception propagates and the next attempt (e.g. a scheduler retry of
    the failed cell) recomputes from scratch.  An entry that does not
    look like a memoized result (corruption, or a key collision with a
    foreign artifact), or whose ``replay_metrics`` blob fails to apply
    (truncated write, registry schema drift — the partial application is
    rolled back first), is treated as stale and recomputed over rather
    than failing the sweep.
    """
    if not results_enabled():
        return compute()
    cache = get_cache()
    key = result_key(kind, parts, replay_metrics)
    value = _serve(cache.get(key), replay_metrics)
    if value is not MISS:
        return value
    if replay_metrics:
        from repro.obs import get_registry
        reg = get_registry()
        snap = reg.snapshot()
        value = compute()
        entry = ("result", value, _det_diff(reg, snap))
    else:
        entry = ("result", compute())
    cache.put(key, entry)
    return entry[1]
