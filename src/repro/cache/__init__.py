"""Persistent content-addressed compile cache (see DESIGN.md).

Every toolchain facade routes its ``compile_*`` entry points through the
process-global :class:`ArtifactCache`: a key derived from the preprocessed
source, defines, opt level, toolchain configuration, and pass pipeline
addresses a pickled artifact under ``~/.cache/repro`` (override with
``REPRO_CACHE_DIR``; disable the disk layer with ``REPRO_CACHE=0``).
Repeat runs of the whole experiment apparatus then skip the frontend →
IR-pass → backend pipeline entirely.
"""

from repro.cache.keys import cache_key, code_fingerprint
from repro.cache.memo import (
    MISS,
    RESULT_CACHE_ENV,
    cached_result,
    lookup,
    result_key,
    results_enabled,
)
from repro.cache.store import (
    ArtifactCache,
    CACHE_DIR_ENV,
    CACHE_ENV,
    CACHE_MEM_ENV,
    CACHE_VERSION,
    CacheStats,
    configure,
    default_cache_root,
    get_cache,
    memory_cap_from_env,
)

__all__ = [
    "ArtifactCache",
    "CACHE_DIR_ENV",
    "CACHE_ENV",
    "CACHE_MEM_ENV",
    "CACHE_VERSION",
    "CacheStats",
    "MISS",
    "RESULT_CACHE_ENV",
    "cache_key",
    "cached_result",
    "code_fingerprint",
    "configure",
    "default_cache_root",
    "get_cache",
    "lookup",
    "memory_cap_from_env",
    "result_key",
    "results_enabled",
]
