"""The nine manually-written JavaScript benchmarks (11 Table 9 rows —
Heat-3d and SHA each have two variants).

Workload sizes match the suite benchmarks' default (M) scaled inputs so
the comparison against Cheerp-generated JS/Wasm is like-for-like.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.manualjs.lib_jssha import JSSHA_LIB
from repro.manualjs.lib_mathjs import MATHJS_LIB


@dataclass(frozen=True)
class ManualProgram:
    name: str                # Table 9 row label
    benchmark: str           # matching suite benchmark name
    suite: str               # PolyBenchC | CHStone
    library: str             # "math.js" | "jsSHA" | "W3C" | "plain"
    source: str
    entry: str = "main"


_FILL = r"""
function fill_matrix(rows, cols, seed) {
  var m = math_zeros(rows, cols);
  var i, j;
  for (i = 0; i < rows; i++) {
    for (j = 0; j < cols; j++) {
      m[i][j] = ((i * j + seed) % rows) / rows;
    }
  }
  return m;
}
"""

_PROGRAMS = []


def _add(name, benchmark, suite, library, source):
    _PROGRAMS.append(ManualProgram(name, benchmark, suite, library, source))


_add("3mm", "3mm", "PolyBenchC", "math.js", MATHJS_LIB + _FILL + r"""
var N = 18;
function main() {
  var A = fill_matrix(N, N, 1);
  var B = fill_matrix(N, N, 2);
  var C = fill_matrix(N, N, 3);
  var D = fill_matrix(N, N, 4);
  var E = math_multiply(A, B);
  var F = math_multiply(C, D);
  var G = math_multiply(E, F);
  return math_sum(G);
}
""")

_add("Covariance", "covariance", "PolyBenchC", "math.js",
     MATHJS_LIB + _FILL + r"""
var N = 18;
function main() {
  var data = fill_matrix(N, N, 3);
  var i, j, k, mean, fn;
  fn = data.length;
  for (j = 0; j < N; j++) {
    mean = math_mean_col(data, j);
    for (i = 0; i < fn; i++) {
      data[i][j] -= mean;
    }
  }
  var centered = math_clone(data);
  var cov = math_multiply(math_transpose(centered), centered);
  cov = math_scale(cov, 1 / (fn - 1));
  return math_sum(cov);
}
""")

_add("Syr2k", "syr2k", "PolyBenchC", "math.js", MATHJS_LIB + _FILL + r"""
var N = 18;
var M = 18;
function main() {
  var A = fill_matrix(N, M, 1);
  var B = fill_matrix(N, M, 2);
  var C = fill_matrix(N, N, 3);
  var alpha = 1.5, beta = 1.2;
  var term1 = math_multiply(A, math_transpose(B));
  var term2 = math_multiply(B, math_transpose(A));
  var update = math_scale(math_add(term1, term2), alpha);
  C = math_add(math_scale(C, beta), update);
  return math_sum(C);
}
""")

_add("Ludcmp", "ludcmp", "PolyBenchC", "math.js", MATHJS_LIB + _FILL + r"""
var N = 18;
function main() {
  var A = math_zeros(N, N);
  var b = [];
  var i, j;
  for (i = 0; i < N; i++) {
    b.push((i + 1) / N / 2.0 + 4);
    for (j = 0; j <= i; j++) {
      A[i][j] = (-(j % N)) / N + 1;
    }
    A[i][i] = 1 + N;
  }
  var lu = math_lup(A);
  var x = math_lusolve(lu, b);
  var s = 0;
  for (i = 0; i < N; i++) {
    s += x[i];
  }
  return s;
}
""")

_add("Floyd-warshall", "floyd-warshall", "PolyBenchC", "plain", r"""
var N = 18;
function main() {
  var path = [];
  var i, j, k, row, alt;
  for (i = 0; i < N; i++) {
    row = [];
    for (j = 0; j < N; j++) {
      if ((i + j) % 13 === 0 || (i + j) % 7 === 0 || (i + j) % 11 === 0) {
        row.push(999);
      } else {
        row.push(i * j % 7 + 1);
      }
    }
    path.push(row);
  }
  for (k = 0; k < N; k++) {
    for (i = 0; i < N; i++) {
      for (j = 0; j < N; j++) {
        alt = path[i][k] + path[k][j];
        path[i][j] = Math.min(path[i][j], alt);
      }
    }
  }
  var s = 0;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      s += path[i][j];
    }
  }
  return s;
}
""")


_HEAT3D_BODY = r"""
var N = 10;
var TSTEPS = 4;

function make_grid() {
  var g = [];
  var i, j, k, plane, row;
  for (i = 0; i < N; i++) {
    plane = [];
    for (j = 0; j < N; j++) {
      row = [];
      for (k = 0; k < N; k++) {
        row.push((i + j + (N - k)) * 10 / N);
      }
      plane.push(row);
    }
    g.push(plane);
  }
  return g;
}

function step(dst, src) {
  var i, j, k;
  for (i = 1; i < N - 1; i++) {
    for (j = 1; j < N - 1; j++) {
      for (k = 1; k < N - 1; k++) {
        dst[i][j][k] = 0.125 * (src[i + 1][j][k] - 2 * src[i][j][k]
                                + src[i - 1][j][k])
                     + 0.125 * (src[i][j + 1][k] - 2 * src[i][j][k]
                                + src[i][j - 1][k])
                     + 0.125 * (src[i][j][k + 1] - 2 * src[i][j][k]
                                + src[i][j][k - 1])
                     + src[i][j][k];
      }
    }
  }
}

function main() {
  var A = make_grid();
  var B = make_grid();
  var t, i, j, k, s;
  for (t = 1; t <= TSTEPS; t++) {
    step(B, A);
    step(A, B);
  }
  s = 0;
  for (i = 0; i < N; i++) {
    for (j = 0; j < N; j++) {
      for (k = 0; k < N; k++) {
        s += A[i][j][k];
      }
    }
  }
  return s;
}
"""

_add("Heat-3d (W3C)", "heat-3d", "PolyBenchC", "W3C", _HEAT3D_BODY)
_add("Heat-3d (math.js)", "heat-3d", "PolyBenchC", "math.js",
     MATHJS_LIB + _HEAT3D_BODY)

_add("AES", "AES", "CHStone", "plain", r"""
var BLOCKS = 5;
var sbox = new Uint8Array(256);
var mul2 = new Uint8Array(256);
var mul3 = new Uint8Array(256);
var rk = new Uint8Array(176);
var state = new Uint8Array(16);

function gmul(a, b) {
  var p = 0, i, hi;
  for (i = 0; i < 8; i++) {
    if (b & 1) {
      p = p ^ a;
    }
    hi = a & 128;
    a = (a << 1) & 255;
    if (hi) {
      a = a ^ 27;
    }
    b = b >> 1;
  }
  return p;
}

function gpow(a, e) {
  var r = 1;
  while (e) {
    if (e & 1) {
      r = gmul(r, a);
    }
    a = gmul(a, a);
    e = e >> 1;
  }
  return r;
}

function build_tables() {
  var x, b, r, i, inv;
  sbox[0] = 99;
  for (x = 1; x < 256; x++) {
    inv = gpow(x, 254);
    b = inv;
    r = inv;
    for (i = 0; i < 4; i++) {
      b = ((b << 1) | (b >> 7)) & 255;
      r = r ^ b;
    }
    sbox[x] = (r ^ 99) & 255;
  }
  for (x = 0; x < 256; x++) {
    mul2[x] = gmul(x, 2);
    mul3[x] = gmul(x, 3);
  }
}

function expand_key(key) {
  var i, k, t0, t1, t2, t3, tmp, rcon;
  for (i = 0; i < 16; i++) {
    rk[i] = key[i];
  }
  rcon = 1;
  for (k = 16; k < 176; k += 4) {
    t0 = rk[k - 4]; t1 = rk[k - 3]; t2 = rk[k - 2]; t3 = rk[k - 1];
    if (k % 16 === 0) {
      tmp = t0;
      t0 = sbox[t1] ^ rcon;
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      rcon = gmul(rcon, 2);
    }
    rk[k] = rk[k - 16] ^ t0;
    rk[k + 1] = rk[k - 15] ^ t1;
    rk[k + 2] = rk[k - 14] ^ t2;
    rk[k + 3] = rk[k - 13] ^ t3;
  }
}

function encrypt_block() {
  var round, i, c, a0, a1, a2, a3, t;
  for (i = 0; i < 16; i++) {
    state[i] = state[i] ^ rk[i];
  }
  for (round = 1; round <= 10; round++) {
    for (i = 0; i < 16; i++) {
      state[i] = sbox[state[i]];
    }
    t = state[1]; state[1] = state[5]; state[5] = state[9];
    state[9] = state[13]; state[13] = t;
    t = state[2]; state[2] = state[10]; state[10] = t;
    t = state[6]; state[6] = state[14]; state[14] = t;
    t = state[3]; state[3] = state[15]; state[15] = state[11];
    state[11] = state[7]; state[7] = t;
    if (round < 10) {
      for (c = 0; c < 4; c++) {
        a0 = state[4 * c]; a1 = state[4 * c + 1];
        a2 = state[4 * c + 2]; a3 = state[4 * c + 3];
        state[4 * c] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3;
        state[4 * c + 1] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3;
        state[4 * c + 2] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3];
        state[4 * c + 3] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3];
      }
    }
    for (i = 0; i < 16; i++) {
      state[i] = state[i] ^ rk[round * 16 + i];
    }
  }
}

function main() {
  var key = new Uint8Array(16);
  var i, b, seed, out;
  build_tables();
  for (i = 0; i < 16; i++) {
    key[i] = (i * 17 + 5) & 255;
  }
  expand_key(key);
  out = 0;
  seed = 7;
  for (b = 0; b < BLOCKS; b++) {
    for (i = 0; i < 16; i++) {
      seed = (Math.imul(seed, 1103515245) + 12345) & 2147483647;
      state[i] = seed & 255;
    }
    encrypt_block();
    for (i = 0; i < 16; i++) {
      out = out ^ (state[i] << (i % 4) * 8);
    }
  }
  return out;
}
""")

_add("BLOWFISH", "BLOWFISH", "CHStone", "plain", r"""
var BLOCKS = 40;
var boxes = {p: [], s: []};

function keystream(st) {
  return (Math.imul(st, 1664525) + 1013904223) >>> 0;
}

function init_boxes() {
  var i, j, st, box;
  st = 305419896;
  boxes.p = [];
  boxes.s = [];
  for (i = 0; i < 18; i++) {
    st = keystream(st);
    boxes.p.push(st);
  }
  for (i = 0; i < 4; i++) {
    box = [];
    for (j = 0; j < 256; j++) {
      st = keystream(st);
      box.push(st);
    }
    boxes.s.push(box);
  }
  return st;
}

function bf_f(x) {
  var a = (x >>> 24) & 255;
  var b = (x >>> 16) & 255;
  var c = (x >>> 8) & 255;
  var d = x & 255;
  return ((((boxes.s[0][a] + boxes.s[1][b]) >>> 0) ^ boxes.s[2][c])
          + boxes.s[3][d]) >>> 0;
}

function encrypt(pair) {
  var i, temp, xl, xr;
  xl = pair[0];
  xr = pair[1];
  for (i = 0; i < 16; i++) {
    xl = (xl ^ boxes.p[i]) >>> 0;
    xr = (bf_f(xl) ^ xr) >>> 0;
    temp = xl;
    xl = xr;
    xr = temp;
  }
  temp = xl;
  xl = xr;
  xr = temp;
  xr = (xr ^ boxes.p[16]) >>> 0;
  xl = (xl ^ boxes.p[17]) >>> 0;
  return [xl, xr];
}

function main() {
  var b, st, out, pair;
  init_boxes();
  st = 2463534242;
  out = 0;
  pair = [0, 0];
  for (b = 0; b < BLOCKS; b++) {
    st = keystream(st);
    pair = [pair[0] ^ st, pair[1]];
    st = keystream(st);
    pair = [pair[0], pair[1] ^ st];
    pair = encrypt(pair);
    out = out ^ (pair[0] ^ pair[1]);
  }
  return out | 0;
}
""")

_SHA_MESSAGE = r"""
var NBYTES = 1280;

function make_message() {
  var bytes = new Uint8Array(NBYTES);
  var i, v;
  v = 19088743;
  for (i = 0; i < NBYTES; i++) {
    v = (Math.imul(v, 69069) + 1234567) >>> 0;
    bytes[i] = (v >>> 16) & 255;
  }
  return bytes;
}
"""

_add("SHA (W3C)", "SHA", "CHStone", "W3C", _SHA_MESSAGE + r"""
function main() {
  var bytes = make_message();
  var digest = crypto.subtle.digest("SHA-1", bytes);
  var i, out;
  out = 0;
  for (i = 0; i < digest.length; i++) {
    out = out ^ (digest[i] << (i % 4) * 8);
  }
  return out;
}
""")

_add("SHA (jsSHA)", "SHA", "CHStone", "jsSHA",
     JSSHA_LIB + _SHA_MESSAGE + r"""
function main() {
  var bytes = make_message();
  return jssha_digest_bytes(bytes);
}
""")


def manual_programs():
    return list(_PROGRAMS)


def get_manual_program(name):
    for program in _PROGRAMS:
        if program.name == name:
            return program
    raise KeyError(name)
