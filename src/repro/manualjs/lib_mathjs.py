"""A miniature math.js: the generic, dynamically-typed matrix library the
manual PolyBench implementations lean on (the paper used math.js, 11.1k
GitHub stars).

Everything is nested plain arrays with per-call type dispatch and fresh
result allocation — exactly the overheads that make library JavaScript
slower and more memory-hungry than compiler-generated typed-array code
(Table 9)."""

MATHJS_LIB = r"""
function math_isMatrix(a) {
  return typeof a === "object" && a !== null;
}

function math_zeros(rows, cols) {
  var m = [];
  var i, j, row;
  for (i = 0; i < rows; i++) {
    row = [];
    for (j = 0; j < cols; j++) {
      row.push(0);
    }
    m.push(row);
  }
  return m;
}

function math_size(a) {
  return [a.length, a[0].length];
}

function math_clone(a) {
  var rows = a.length, cols = a[0].length;
  var out = math_zeros(rows, cols);
  var i, j;
  for (i = 0; i < rows; i++) {
    for (j = 0; j < cols; j++) {
      math_set(out, i, j, math_get(a, i, j));
    }
  }
  return out;
}

function math_get(a, i, j) {
  /* math.js-style generic element access: every read goes through the
     library's accessor (DenseMatrix.get), not a raw index. */
  return a[i][j];
}

function math_set(a, i, j, value) {
  a[i][j] = value;
  return value;
}

function math_multiply(a, b) {
  if (!math_isMatrix(a)) {
    return math_scale(b, a);
  }
  if (!math_isMatrix(b)) {
    return math_scale(a, b);
  }
  var n = a.length, m = b[0].length, k = b.length;
  var out = math_zeros(n, m);
  var i, j, p, sum;
  for (i = 0; i < n; i++) {
    for (j = 0; j < m; j++) {
      sum = 0;
      for (p = 0; p < k; p++) {
        sum += math_get(a, i, p) * math_get(b, p, j);
      }
      math_set(out, i, j, sum);
    }
  }
  return out;
}

function math_scale(a, s) {
  var rows = a.length, cols = a[0].length;
  var out = math_zeros(rows, cols);
  var i, j;
  for (i = 0; i < rows; i++) {
    for (j = 0; j < cols; j++) {
      math_set(out, i, j, math_get(a, i, j) * s);
    }
  }
  return out;
}

function math_add(a, b) {
  var rows = a.length, cols = a[0].length;
  var out = math_zeros(rows, cols);
  var i, j;
  for (i = 0; i < rows; i++) {
    for (j = 0; j < cols; j++) {
      math_set(out, i, j, math_get(a, i, j) + math_get(b, i, j));
    }
  }
  return out;
}

function math_subtract(a, b) {
  var rows = a.length, cols = a[0].length;
  var out = math_zeros(rows, cols);
  var i, j;
  for (i = 0; i < rows; i++) {
    for (j = 0; j < cols; j++) {
      math_set(out, i, j, math_get(a, i, j) - math_get(b, i, j));
    }
  }
  return out;
}

function math_transpose(a) {
  var rows = a.length, cols = a[0].length;
  var out = math_zeros(cols, rows);
  var i, j;
  for (i = 0; i < rows; i++) {
    for (j = 0; j < cols; j++) {
      math_set(out, j, i, math_get(a, i, j));
    }
  }
  return out;
}

function math_mean_col(a, j) {
  var i, sum;
  sum = 0;
  for (i = 0; i < a.length; i++) {
    sum += a[i][j];
  }
  return sum / a.length;
}

function math_sum(a) {
  var i, j, total;
  total = 0;
  for (i = 0; i < a.length; i++) {
    for (j = 0; j < a[0].length; j++) {
      total += a[i][j];
    }
  }
  return total;
}

function math_lup(a) {
  /* In-place LU without pivoting (the benchmarks use diagonally
     dominant matrices), math.js lup-style. */
  var n = a.length;
  var lu = math_clone(a);
  var i, j, k, w;
  for (i = 0; i < n; i++) {
    for (j = 0; j < i; j++) {
      w = lu[i][j];
      for (k = 0; k < j; k++) {
        w -= lu[i][k] * lu[k][j];
      }
      lu[i][j] = w / lu[j][j];
    }
    for (j = i; j < n; j++) {
      w = lu[i][j];
      for (k = 0; k < i; k++) {
        w -= lu[i][k] * lu[k][j];
      }
      lu[i][j] = w;
    }
  }
  return lu;
}

function math_lusolve(lu, b) {
  var n = lu.length;
  var y = [];
  var x = [];
  var i, j, w;
  for (i = 0; i < n; i++) {
    y.push(0);
    x.push(0);
  }
  for (i = 0; i < n; i++) {
    w = b[i];
    for (j = 0; j < i; j++) {
      w -= lu[i][j] * y[j];
    }
    y[i] = w;
  }
  for (i = n - 1; i >= 0; i--) {
    w = y[i];
    for (j = i + 1; j < n; j++) {
      w -= lu[i][j] * x[j];
    }
    x[i] = w / lu[i][i];
  }
  return x;
}
"""
