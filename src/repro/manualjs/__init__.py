"""Manually-written JavaScript benchmark programs (§4.1.2, Table 9).

Nine benchmarks re-implemented by hand in idiomatic JavaScript, leveraging
the library styles the paper used: a math.js-like matrix library, a
jsSHA-like pure-JS hasher, and the W3C Web Cryptography API.  Hand-written
code uses plain (boxed) JS arrays and library calls — the mechanisms behind
Table 9's "manual is usually slower and uses more memory, except AES and
SHA (W3C)" result.
"""

from repro.manualjs.programs import (
    ManualProgram,
    manual_programs,
    get_manual_program,
)

__all__ = ["ManualProgram", "get_manual_program", "manual_programs"]
