"""A miniature jsSHA: pure-JavaScript SHA-1 in library style (the paper
used jsSHA, 2k GitHub stars).  Object-free but allocation-happy — each
update round builds fresh word arrays, the classic pure-JS hashing cost."""

JSSHA_LIB = r"""
function jssha_rotl(x, n) {
  return ((x << n) | (x >>> (32 - n))) | 0;
}

function jssha_process_block(H, words) {
  var W = [];
  var t, a, b, c, d, e, f, k, temp;
  for (t = 0; t < 16; t++) {
    W.push(words[t] | 0);
  }
  for (t = 16; t < 80; t++) {
    W.push(jssha_rotl(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1));
  }
  a = H[0]; b = H[1]; c = H[2]; d = H[3]; e = H[4];
  for (t = 0; t < 80; t++) {
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 1518500249;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 1859775393;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = -1894007588;
    } else {
      f = b ^ c ^ d;
      k = -899497514;
    }
    temp = (jssha_rotl(a, 5) + f + e + k + W[t]) | 0;
    e = d;
    d = c;
    c = jssha_rotl(b, 30);
    b = a;
    a = temp;
  }
  H[0] = (H[0] + a) | 0;
  H[1] = (H[1] + b) | 0;
  H[2] = (H[2] + c) | 0;
  H[3] = (H[3] + d) | 0;
  H[4] = (H[4] + e) | 0;
  return H;
}

function jssha_pad(bytes) {
  var padded = [];
  var i, bitlen;
  for (i = 0; i < bytes.length; i++) {
    padded.push(bytes[i]);
  }
  padded.push(128);
  while (padded.length % 64 !== 56) {
    padded.push(0);
  }
  bitlen = bytes.length * 8;
  var high = Math.floor(bitlen / 4294967296);
  var low = bitlen >>> 0;
  for (i = 3; i >= 0; i--) {
    padded.push((high >>> (i * 8)) & 255);
  }
  for (i = 3; i >= 0; i--) {
    padded.push((low >>> (i * 8)) & 255);
  }
  return padded;
}

function jssha_digest_bytes(bytes) {
  var H = [1732584193, -271733879, -1732584194, 271733878, -1009589776];
  var padded = jssha_pad(bytes);
  var offset, t, words;
  for (offset = 0; offset + 64 <= padded.length; offset += 64) {
    words = [];
    for (t = 0; t < 16; t++) {
      words.push(((padded[offset + 4 * t] << 24)
                  | (padded[offset + 4 * t + 1] << 16)
                  | (padded[offset + 4 * t + 2] << 8)
                  | padded[offset + 4 * t + 3]) | 0);
    }
    H = jssha_process_block(H, words);
  }
  return H[0] ^ H[1] ^ H[2] ^ H[3] ^ H[4];
}
"""
