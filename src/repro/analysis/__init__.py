"""Statistics and rendering for the experiment results."""

from repro.analysis.stats import (
    FiveNumber,
    arithmetic_mean,
    five_number_summary,
    geomean,
    speedup_slowdown_split,
)
from repro.analysis.tables import format_table, ratio

__all__ = [
    "FiveNumber",
    "arithmetic_mean",
    "five_number_summary",
    "format_table",
    "geomean",
    "ratio",
    "speedup_slowdown_split",
]
