"""Statistics used throughout the paper's evaluation section."""

from __future__ import annotations

import math
from dataclasses import dataclass


def geomean(values):
    """Geometric mean (the paper's headline aggregate for ratios)."""
    values = [v for v in values]
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values):
    values = list(values)
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def speedup_slowdown_split(wasm_times, js_times):
    """Table 3/5-style statistics.

    Given paired Wasm and JS execution times, returns a dict with the
    paper's columns: the number of benchmarks where Wasm is slower (SD #)
    with their slowdown geomean, the number where Wasm is faster (SU #)
    with their speedup geomean, and the overall speedup geomean (values
    < 1 mean Wasm is slower overall)."""
    if len(wasm_times) != len(js_times):
        raise ValueError("paired sequences required")
    slowdowns = []
    speedups = []
    overall = []
    for wasm_t, js_t in zip(wasm_times, js_times):
        ratio_ = js_t / wasm_t      # >1: Wasm faster
        overall.append(ratio_)
        if ratio_ >= 1.0:
            speedups.append(ratio_)
        else:
            slowdowns.append(1.0 / ratio_)
    return {
        "sd_count": len(slowdowns),
        "sd_gmean": geomean(slowdowns) if slowdowns else None,
        "su_count": len(speedups),
        "su_gmean": geomean(speedups) if speedups else None,
        "all_gmean": geomean(overall),
    }


@dataclass
class FiveNumber:
    """The box-plot summary of Fig. 11."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float


def _quantile(sorted_values, q):
    if not sorted_values:
        raise ValueError("quantile of empty sequence")
    pos = (len(sorted_values) - 1) * q
    low = int(math.floor(pos))
    high = int(math.ceil(pos))
    low_value = sorted_values[low]
    high_value = sorted_values[high]
    if low == high or low_value == high_value:
        return low_value
    frac = pos - low
    value = low_value * (1 - frac) + high_value * frac
    # Interpolation must stay inside its bracket even when rounding at the
    # subnormal edge would pull it out (e.g. 0.5 * 5e-324 rounds to 0).
    return min(max(value, low_value), high_value)


def five_number_summary(values):
    values = sorted(values)
    return FiveNumber(
        minimum=values[0],
        q1=_quantile(values, 0.25),
        median=_quantile(values, 0.5),
        q3=_quantile(values, 0.75),
        maximum=values[-1],
    )
