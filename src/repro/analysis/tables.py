"""Plain-text table/figure rendering for experiment reports."""

from __future__ import annotations


def ratio(value, reference):
    """The paper's ``x.xx×`` ratio convention."""
    return value / reference


def _fmt(cell):
    if isinstance(cell, float):
        return f"{cell:.2f}"
    if cell is None:
        return "-"
    return str(cell)


def format_table(headers, rows, title=None):
    """Render an aligned plain-text table."""
    table = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in table:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in table:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(title, series):
    """Render a Fig.-5/9-style per-benchmark series as text: ``series`` is
    ``{label: {benchmark: value}}``."""
    benchmarks = []
    for values in series.values():
        for name in values:
            if name not in benchmarks:
                benchmarks.append(name)
    headers = ["benchmark"] + list(series)
    rows = []
    for name in benchmarks:
        rows.append([name] + [series[label].get(name) for label in series])
    return format_table(headers, rows, title=title)
