"""C-subset parser: parses preprocessed source directly into the IR.

Subset (documented in DESIGN.md):

* Types: ``int``, ``unsigned``, ``long`` (64-bit), ``unsigned long``,
  ``char``/``short`` (storage types), ``double``/``float`` (both f64),
  ``void``.
* Global scalars and global fixed-size multi-dimensional arrays (with
  optional initialisers); functions with scalar parameters; struct types
  with scalar members (lowered structure-of-scalars / structure-of-arrays).
* Full statement set: declarations, ``if``/``else``, ``for``, ``while``,
  ``do``-``while``, ``break``/``continue``/``return``, blocks.
* Full expression set including ``&&``/``||`` (short-circuit, lowered to
  control flow), ``?:``, compound assignment, ``++``/``--``, casts.
* Builtins: ``printf`` (lowered to per-value host prints), the libm
  functions Cheerp maps to JS ``Math`` (§3.2 "missing libraries"), and
  integer ``abs``.

No pointers — the paper's benchmark kernels are array computations, and the
two Cheerp-incompatible constructs §3.1 fixes (exceptions, unions) are
handled by :mod:`repro.cfront.transform` before parsing.
"""

from __future__ import annotations

from repro.errors import CompileError, ParseError
from repro.cfront.lexer import tokenize_c
from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    Function, GArray, GScalar, Module,
    SAssign, SBreak, SContinue, SDoWhile, SExpr, SFor, SGlobalSet, SIf,
    SReturn, SStore, SWhile, is_float, value_type_of,
)

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>="}

_PRECEDENCE = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}

#: libm/libc functions supported without linking libc (§3.2): name ->
#: (return type, param types). Backends decide native vs host-import
#: lowering.
BUILTINS = {
    "sqrt": ("f64", ("f64",)),
    "fabs": ("f64", ("f64",)),
    "floor": ("f64", ("f64",)),
    "ceil": ("f64", ("f64",)),
    "exp": ("f64", ("f64",)),
    "log": ("f64", ("f64",)),
    "pow": ("f64", ("f64", "f64")),
    "sin": ("f64", ("f64",)),
    "cos": ("f64", ("f64",)),
    "fmod": ("f64", ("f64", "f64")),
    "copysign": ("f64", ("f64", "f64")),
    "abs": ("i32", ("i32",)),
}

_TYPE_RANK = {"i32": 0, "u32": 1, "i64": 2, "u64": 3, "f64": 4}


def usual_conversions(t1, t2):
    """C usual arithmetic conversions over our value types."""
    return t1 if _TYPE_RANK[t1] >= _TYPE_RANK[t2] else t2


def implicit_cast(expr, target):
    """Insert an ECast if needed (folding const casts immediately)."""
    if expr.type == target:
        return expr
    if isinstance(expr, EConst) and not expr.no_fold:
        value = expr.value
        if is_float(target):
            return EConst(float(value), target)
        return EConst(_trunc_int(value, target), target)
    return ECast(expr, target)


def _trunc_int(value, type_):
    bits = 64 if type_ in ("i64", "u64") else 32
    value = int(value) & ((1 << bits) - 1)
    if type_ in ("i32", "i64") and value >> (bits - 1):
        value -= 1 << bits
    return value


class _Scope:
    """Lexical scope: name -> value type (scalars only)."""

    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def lookup(self, name):
        scope = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


class CParser:
    def __init__(self, source, name="module"):
        self.tokens = tokenize_c(source)
        self.pos = 0
        self.module = Module(name)
        self.structs = {}        # struct name -> list of (member, type)
        self.struct_vars = {}    # var name -> struct name (globals + locals)
        self.func = None         # current Function
        self.scope = None
        self.pending = None      # hoisted statements of current statement

    # -- token helpers ----------------------------------------------------

    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind, value=None):
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def eat(self, kind, value=None):
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind, value=None):
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, got {tok.value!r}",
                             tok.line)
        return tok

    # -- types ------------------------------------------------------------

    def at_type(self):
        tok = self.peek()
        if tok.kind != "kw":
            return False
        return tok.value in ("int", "unsigned", "signed", "long", "short",
                             "char", "double", "float", "void", "struct",
                             "static", "const", "extern", "volatile",
                             "register")

    def parse_type(self):
        """Returns (value_type_or_None_for_void, storage_type, struct_name).

        ``storage_type`` differs from the value type for char/short."""
        while self.peek().kind == "kw" and self.peek().value in (
                "static", "const", "extern", "volatile", "register"):
            self.next()
        if self.eat("kw", "struct"):
            name = self.expect("ident").value
            if name not in self.structs:
                raise ParseError(f"unknown struct {name!r}", self.peek().line)
            return None, None, name
        unsigned = False
        base = None
        longs = 0
        while self.peek().kind == "kw":
            word = self.peek().value
            if word == "unsigned":
                unsigned = True
            elif word == "signed":
                pass
            elif word == "long":
                longs += 1
            elif word in ("int", "short", "char", "double", "float", "void"):
                base = word
            else:
                break
            self.next()
        if base is None:
            base = "long" if longs else ("int" if unsigned else None)
            if base is None:
                raise ParseError("expected type", self.peek().line)
        if base == "void":
            return None, None, None
        if base in ("double", "float"):
            return "f64", "f64", None
        if longs:
            value = "u64" if unsigned else "i64"
            return value, value, None
        if base == "char":
            return ("u32" if unsigned else "i32",
                    "u8" if unsigned else "i8", None)
        if base == "short":
            return ("u32" if unsigned else "i32",
                    "u16" if unsigned else "i16", None)
        value = "u32" if unsigned else "i32"
        return value, value, None

    # -- top level ----------------------------------------------------------

    def parse_module(self):
        while not self.at("eof"):
            if self.at("kw", "typedef"):
                self._skip_to_semicolon()
                continue
            if self.at("kw", "struct") and \
                    self.peek(2).kind == "punct" and \
                    self.peek(2).value == "{":
                self._parse_struct_def()
                continue
            self._parse_toplevel_decl()
        return self.module

    def _skip_to_semicolon(self):
        while not self.at("punct", ";") and not self.at("eof"):
            self.next()
        self.eat("punct", ";")

    def _parse_struct_def(self):
        self.expect("kw", "struct")
        name = self.expect("ident").value
        self.expect("punct", "{")
        members = []
        while not self.at("punct", "}"):
            vtype, _storage, struct_name = self.parse_type()
            if struct_name is not None or vtype is None:
                raise ParseError("struct members must be scalars",
                                 self.peek().line)
            while True:
                member = self.expect("ident").value
                members.append((member, vtype))
                if not self.eat("punct", ","):
                    break
            self.expect("punct", ";")
        self.expect("punct", "}")
        self.eat("punct", ";")
        self.structs[name] = members

    def _parse_toplevel_decl(self):
        vtype, storage, struct_name = self.parse_type()
        if struct_name is not None:
            self._parse_struct_var(struct_name, toplevel=True)
            return
        name = self.expect("ident").value
        if self.at("punct", "("):
            self._parse_function(vtype, name)
            return
        # Global scalar or array (possibly a comma list).
        while True:
            dims = self._parse_dims()
            if dims:
                init = None
                if self.eat("punct", "="):
                    init = self._parse_array_init(storage)
                self.module.arrays[name] = GArray(name, storage, dims, init)
            else:
                init = 0
                if self.eat("punct", "="):
                    expr = self.parse_assignment()
                    expr = implicit_cast(expr, vtype)
                    if not isinstance(expr, EConst):
                        raise ParseError(
                            f"global {name!r} initialiser must be constant",
                            self.peek().line)
                    init = expr.value
                self.module.globals[name] = GScalar(name, vtype, init)
            if not self.eat("punct", ","):
                break
            name = self.expect("ident").value
        self.expect("punct", ";")

    def _parse_struct_var(self, struct_name, toplevel):
        name = self.expect("ident").value
        dims = self._parse_dims()
        self.expect("punct", ";")
        members = self.structs[struct_name]
        self.struct_vars[name] = struct_name
        for member, mtype in members:
            flat = f"{name}__{member}"
            if dims:
                self.module.arrays[flat] = GArray(flat, mtype, dims)
            elif toplevel:
                self.module.globals[flat] = GScalar(flat, mtype, 0)
            else:
                self.func.locals[flat] = mtype
                self.scope.names[flat] = mtype

    def _parse_dims(self):
        dims = []
        while self.eat("punct", "["):
            expr = self.parse_conditional()
            if not isinstance(expr, EConst):
                raise ParseError("array dimensions must be constant",
                                 self.peek().line)
            dims.append(int(expr.value))
            self.expect("punct", "]")
        return dims

    def _parse_array_init(self, storage):
        self.expect("punct", "{")
        values = []
        depth = 1
        # Accept nested braces by flattening (row-major order).
        while depth:
            if self.eat("punct", "{"):
                depth += 1
                continue
            if self.eat("punct", "}"):
                depth -= 1
                continue
            if self.eat("punct", ","):
                continue
            expr = self.parse_conditional()
            if not isinstance(expr, EConst):
                raise ParseError("array initialisers must be constant",
                                 self.peek().line)
            if is_float(storage):
                values.append(float(expr.value))
            else:
                values.append(int(expr.value))
        return values

    # -- functions ----------------------------------------------------------

    def _parse_function(self, ret, name):
        self.expect("punct", "(")
        params = []
        if not self.at("punct", ")"):
            if self.at("kw", "void") and self.peek(1).value == ")":
                self.next()
            else:
                while True:
                    ptype, _storage, struct_name = self.parse_type()
                    if struct_name is not None or ptype is None:
                        raise ParseError("parameters must be scalars",
                                         self.peek().line)
                    pname = self.expect("ident").value
                    params.append((pname, ptype))
                    if not self.eat("punct", ","):
                        break
        self.expect("punct", ")")
        if self.eat("punct", ";"):
            # Prototype: register the signature for forward calls.
            self.module.functions.setdefault(
                name, Function(name, params, ret))
            return
        func = self.module.functions.get(name)
        if func is None or func.body:
            func = Function(name, params, ret)
            self.module.functions[name] = func
        else:
            func.params = params
            func.ret = ret
        self.func = func
        self.scope = _Scope()
        for pname, ptype in params:
            self.scope.names[pname] = ptype
        func.body = self.parse_block()
        func.exported = name == "main"
        self.func = None
        self.scope = None

    # -- statements ----------------------------------------------------------

    def parse_block(self):
        self.expect("punct", "{")
        self.scope = _Scope(self.scope)
        stmts = []
        while not self.at("punct", "}"):
            if self.at("eof"):
                raise ParseError("unterminated block", self.peek().line)
            stmts.extend(self.parse_statement())
        self.next()
        self.scope = self.scope.parent
        return stmts

    def parse_statement(self):
        """Parse one statement; returns a *list* of IR statements (hoisted
        temporaries may precede the main statement)."""
        if self.at("punct", "{"):
            return self.parse_block()
        if self.at("punct", ";"):
            self.next()
            return []
        if self.at_type():
            return self._parse_local_decl()
        tok = self.peek()
        if tok.kind == "kw":
            handler = {
                "if": self._parse_if, "for": self._parse_for,
                "while": self._parse_while, "do": self._parse_dowhile,
                "return": self._parse_return, "break": self._parse_break,
                "continue": self._parse_continue,
            }.get(tok.value)
            if handler:
                return handler()
        return self._with_pending(lambda: self._parse_expr_statement())

    def _with_pending(self, fn):
        """Run ``fn`` with a fresh hoisting buffer; returns buffer + result
        statements."""
        saved = self.pending
        self.pending = []
        stmts = fn()
        out = self.pending + stmts
        self.pending = saved
        return out

    def _parse_expr_statement(self):
        expr = self.parse_expression(statement=True)
        self.expect("punct", ";")
        if expr is None:
            return []
        if isinstance(expr, ECall):
            return [SExpr(expr)]
        # A pure expression statement has no effect; drop it.
        return []

    def _parse_local_decl(self):
        vtype, storage, struct_name = self.parse_type()
        if struct_name is not None:
            self._parse_struct_var(struct_name, toplevel=False)
            return []
        out = []
        while True:
            name = self.expect("ident").value
            dims = self._parse_dims()
            if dims:
                raise ParseError(
                    f"local arrays are not supported (make {name!r} "
                    "global, as PolyBench/CHStone kernels do)",
                    self.peek().line)
            self.func.locals[name] = vtype
            self.scope.names[name] = vtype
            if self.eat("punct", "="):
                stmts = self._with_pending(lambda: [SAssign(
                    name, implicit_cast(self.parse_assignment(), vtype))])
                out.extend(stmts)
            if not self.eat("punct", ","):
                break
        self.expect("punct", ";")
        return out

    def _parse_if(self):
        self.next()
        self.expect("punct", "(")
        pre, cond = self._parse_condition()
        self.expect("punct", ")")
        then = self.parse_statement()
        els = []
        if self.eat("kw", "else"):
            els = self.parse_statement()
        return pre + [SIf(cond, then, els)]

    def _parse_condition(self):
        """Parse a boolean context expression; returns (hoisted, cond)."""
        saved = self.pending
        self.pending = []
        cond = self.parse_expression()
        pre = self.pending
        self.pending = saved
        if is_float(cond.type):
            cond = EBin("!=", cond, EConst(0.0, "f64"), "i32")
        elif cond.type in ("i64", "u64"):
            cond = EBin("!=", cond, EConst(0, cond.type), "i32")
        return pre, cond

    def _parse_while(self):
        self.next()
        self.expect("punct", "(")
        pre, cond = self._parse_condition()
        self.expect("punct", ")")
        body = self.parse_statement()
        if pre:
            # Condition needs statements: rotate into an infinite loop with
            # a conditional break so it is re-evaluated every iteration.
            check = pre + [SIf(EUn("!", cond, "i32"), [SBreak()], [])]
            return [SWhile(EConst(1, "i32"), check + body)]
        return [SWhile(cond, body)]

    def _parse_dowhile(self):
        self.next()
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("punct", "(")
        pre, cond = self._parse_condition()
        self.expect("punct", ")")
        self.expect("punct", ";")
        if pre:
            check = pre + [SIf(EUn("!", cond, "i32"), [SBreak()], [])]
            return [SDoWhile(body + check, EConst(1, "i32"))]
        return [SDoWhile(body, cond)]

    def _parse_for(self):
        self.next()
        self.expect("punct", "(")
        init = []
        if not self.at("punct", ";"):
            if self.at_type():
                init = self._parse_local_decl()
            else:
                init = self._with_pending(
                    lambda: self._parse_for_clause_exprs())
                self.expect("punct", ";")
        else:
            self.next()
        pre, cond = [], None
        if not self.at("punct", ";"):
            pre, cond = self._parse_condition()
        self.expect("punct", ";")
        step = []
        if not self.at("punct", ")"):
            step = self._with_pending(lambda: self._parse_for_clause_exprs())
        self.expect("punct", ")")
        body = self.parse_statement()
        if pre:
            check = pre + [SIf(EUn("!", cond, "i32"), [SBreak()], [])]
            return init + [SFor([], EConst(1, "i32"), step, check + body)]
        return init + [SFor([], cond if cond is not None
                            else EConst(1, "i32"), step, body)]

    def _parse_for_clause_exprs(self):
        """Comma-separated expressions in for-init/for-step position."""
        out = []
        while True:
            expr = self.parse_assignment(statement=True)
            if isinstance(expr, ECall):
                out.append(SExpr(expr))
            if not self.eat("punct", ","):
                break
        return out

    def _parse_return(self):
        self.next()
        if self.eat("punct", ";"):
            return [SReturn(None)]
        stmts = self._with_pending(lambda: [SReturn(implicit_cast(
            self.parse_expression(), self.func.ret))])
        self.expect("punct", ";")
        return stmts

    def _parse_break(self):
        self.next()
        self.expect("punct", ";")
        return [SBreak()]

    def _parse_continue(self):
        self.next()
        self.expect("punct", ";")
        return [SContinue()]

    # -- expressions ---------------------------------------------------------

    def parse_expression(self, statement=False):
        expr = self.parse_assignment(statement)
        while self.at("punct", ","):
            self.next()
            expr = self.parse_assignment(statement)
        return expr

    def parse_assignment(self, statement=False):
        """Assignments are hoisted into ``self.pending``; the expression
        value of an assignment is a re-read of its target."""
        start = self.pos
        target = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "punct" and tok.value in _ASSIGN_OPS:
            op = self.next().value
            value = self.parse_assignment()
            return self._emit_assignment(op, target, value, start, statement)
        return target

    def _emit_assignment(self, op, target, value, start, statement):
        if op != "=":
            binop = op[:-1]
            value = self._make_binary(binop, _clone_lvalue(target), value)
        if isinstance(target, ELocal):
            value = implicit_cast(value, target.type)
            self.pending.append(SAssign(target.name, value))
            return ELocal(target.name, target.type)
        if isinstance(target, EGlobal):
            value = implicit_cast(value, target.type)
            self.pending.append(SGlobalSet(target.name, value))
            return EGlobal(target.name, target.type)
        if isinstance(target, ELoad):
            array = self.module.arrays[target.array]
            value = implicit_cast(value, value_type_of(array.elem_type))
            # Index expressions may have side effects hoisted already;
            # re-using them for the value read is safe (they are pure now).
            self.pending.append(SStore(target.array, target.indices, value))
            if statement:
                return None
            return ELoad(target.array, [_clone(e) for e in target.indices],
                         target.type)
        raise ParseError("invalid assignment target",
                         self.tokens[start].line)

    def parse_conditional(self):
        cond = self.parse_binary(1)
        if self.eat("punct", "?"):
            then = self.parse_assignment()
            self.expect("punct", ":")
            els = self.parse_conditional()
            ctype = usual_conversions(then.type, els.type)
            then = implicit_cast(then, ctype)
            els = implicit_cast(els, ctype)
            cond = self._to_bool(cond)
            if _is_pure(then) and _is_pure(els):
                return ESelect(cond, then, els, ctype)
            # Impure arm: lower through a temporary and an if.
            temp = self.func.new_temp(ctype, "sel")
            self.pending.append(SIf(cond, [SAssign(temp, then)],
                                    [SAssign(temp, els)]))
            return ELocal(temp, ctype)
        return cond

    def parse_binary(self, min_prec):
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "punct":
                return left
            prec = _PRECEDENCE.get(tok.value)
            if prec is None or prec < min_prec:
                return left
            op = self.next().value
            if op in ("&&", "||"):
                left = self._parse_logical(op, left, prec)
                continue
            right = self.parse_binary(prec + 1)
            left = self._make_binary(op, left, right)

    def _parse_logical(self, op, left, prec):
        """Short-circuit && / ||, lowered to a temp + nested if."""
        left = self._to_bool(left)
        saved = self.pending
        self.pending = []
        right = self._to_bool(self.parse_binary(prec + 1))
        right_pre = self.pending
        self.pending = saved
        if not right_pre and _is_pure(right) and _is_pure(left):
            # Pure operands: evaluate eagerly with bitwise semantics
            # (both sides are 0/1 already).
            return EBin("&" if op == "&&" else "|", left, right, "i32")
        temp = self.func.new_temp("i32", "log")
        if op == "&&":
            self.pending.append(SAssign(temp, EConst(0, "i32")))
            self.pending.append(
                SIf(left, right_pre + [SAssign(temp, right)], []))
        else:
            self.pending.append(SAssign(temp, EConst(1, "i32")))
            self.pending.append(
                SIf(EUn("!", left, "i32"),
                    right_pre + [SAssign(temp, right)], []))
        return ELocal(temp, "i32")

    def _to_bool(self, expr):
        if isinstance(expr, EBin) and expr.op in ("==", "!=", "<", "<=",
                                                  ">", ">="):
            return expr
        if isinstance(expr, EUn) and expr.op == "!":
            return expr
        zero = EConst(0.0 if is_float(expr.type) else 0, expr.type)
        return EBin("!=", expr, zero, "i32")

    def _make_binary(self, op, left, right):
        if op in ("==", "!=", "<", "<=", ">", ">="):
            ctype = usual_conversions(left.type, right.type)
            return EBin(op, implicit_cast(left, ctype),
                        implicit_cast(right, ctype), "i32")
        if op in ("<<", ">>"):
            return EBin(op, left, implicit_cast(right, "i32"), left.type)
        ctype = usual_conversions(left.type, right.type)
        if op == "%" and ctype == "f64":
            return ECall("fmod", [implicit_cast(left, "f64"),
                                  implicit_cast(right, "f64")], "f64")
        return EBin(op, implicit_cast(left, ctype),
                    implicit_cast(right, ctype), ctype)

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "punct" and tok.value == "(" and \
                self._peek_is_cast():
            self.next()
            vtype, _storage, struct_name = self.parse_type()
            if struct_name is not None or vtype is None:
                raise ParseError("cannot cast to this type", tok.line)
            self.expect("punct", ")")
            return implicit_cast(self.parse_unary(), vtype)
        if tok.kind == "punct" and tok.value in ("-", "+", "!", "~"):
            self.next()
            expr = self.parse_unary()
            if tok.value == "+":
                return expr
            if tok.value == "-":
                if isinstance(expr, EConst) and not expr.no_fold:
                    return EConst(-expr.value, expr.type)
                return EUn("neg", expr, expr.type)
            if tok.value == "!":
                return EUn("!", self._to_bool(expr), "i32")
            return EUn("~", expr, expr.type)
        if tok.kind == "punct" and tok.value in ("++", "--"):
            self.next()
            target = self.parse_unary()
            one = EConst(1.0 if is_float(target.type) else 1, target.type)
            self._emit_assignment("+=" if tok.value == "++" else "-=",
                                  target, one, self.pos, True)
            return _clone_lvalue(target)
        return self.parse_postfix()

    def _peek_is_cast(self):
        tok = self.peek(1)
        return tok.kind == "kw" and tok.value in (
            "int", "unsigned", "signed", "long", "short", "char", "double",
            "float", "const")

    def parse_postfix(self):
        expr = self.parse_primary()
        while True:
            if self.at("punct", "["):
                expr = self._parse_index(expr)
            elif self.at("punct", "."):
                self.next()
                member = self.expect("ident").value
                expr = self._resolve_member(expr, member)
            elif self.at("punct", "++") or self.at("punct", "--"):
                op = self.next().value
                delta = 1 if op == "++" else -1
                # Post-increment: snapshot old value into a temp.
                temp = self.func.new_temp(expr.type, "post")
                self.pending.append(SAssign(temp, expr))
                one = EConst(float(abs(delta)) if is_float(expr.type)
                             else abs(delta), expr.type)
                self._emit_assignment("+=" if delta > 0 else "-=",
                                      _clone_lvalue(expr), one,
                                      self.pos, True)
                expr = ELocal(temp, expr.type)
            else:
                return expr

    def _parse_index(self, expr):
        if not isinstance(expr, (ELoad, _ArrayRef, _NameRef)):
            raise ParseError("only arrays can be indexed", self.peek().line)
        if isinstance(expr, ELoad):
            ref = _ArrayRef(expr.array, expr.indices)
        else:
            ref = expr
        self.expect("punct", "[")
        index = implicit_cast(self.parse_expression(), "i32")
        self.expect("punct", "]")
        ref.indices.append(index)
        if isinstance(ref, _NameRef):
            # Struct array: completion happens at the member access.
            return ref
        array = self.module.arrays[ref.array]
        if len(ref.indices) == len(array.dims):
            return ELoad(ref.array, ref.indices,
                         value_type_of(array.elem_type))
        return ref

    def _resolve_member(self, expr, member):
        # Struct variables were flattened to name__member at declaration.
        if isinstance(expr, _NameRef):
            if expr.indices:
                flat = f"{expr.name}__{member}"
                array = self.module.arrays.get(flat)
                if array is None or len(expr.indices) != len(array.dims):
                    raise ParseError(
                        f"bad struct-array member access {flat!r}",
                        self.peek().line)
                return ELoad(flat, expr.indices,
                             value_type_of(array.elem_type))
            flat = f"{expr.name}__{member}"
            return self._resolve_name(flat)
        if isinstance(expr, _ArrayRef):
            flat = f"{expr.array}__{member}"
            array = self.module.arrays.get(flat)
            if array is None:
                raise ParseError(f"unknown struct member {member!r}",
                                 self.peek().line)
            if len(expr.indices) != len(array.dims):
                raise ParseError("wrong number of indices before member",
                                 self.peek().line)
            return ELoad(flat, expr.indices, value_type_of(array.elem_type))
        raise ParseError(f"cannot access member {member!r}",
                         self.peek().line)

    def _resolve_name(self, name):
        if self.scope is not None:
            vtype = self.scope.lookup(name)
            if vtype is not None:
                return ELocal(name, vtype)
        if name in self.module.globals:
            g = self.module.globals[name]
            return EGlobal(name, g.type)
        if name in self.module.arrays:
            return _ArrayRef(name, [])
        if name in self.struct_vars:
            return _NameRef(name)
        raise ParseError(f"undeclared identifier {name!r}",
                         self.peek().line)

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "num":
            if tok.is_float:
                return EConst(float(tok.value), "f64")
            if tok.is_long or tok.value > 0x7FFFFFFF:
                return EConst(int(tok.value), "u64" if tok.is_unsigned
                              else "i64")
            return EConst(int(tok.value), "u32" if tok.is_unsigned
                          else "i32")
        if tok.kind == "char":
            return EConst(int(tok.value), "i32")
        if tok.kind == "ident":
            name = tok.value
            if self.at("punct", "("):
                return self._parse_call(name, tok.line)
            return self._resolve_name(name)
        if tok.kind == "punct" and tok.value == "(":
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        if tok.kind == "str":
            return _StringRef(tok.value)
        raise ParseError(f"unexpected token {tok.value!r}", tok.line)

    def _parse_call(self, name, line):
        self.expect("punct", "(")
        args = []
        while not self.at("punct", ")"):
            args.append(self.parse_assignment())
            if not self.eat("punct", ","):
                break
        self.expect("punct", ")")
        if name == "printf":
            return self._lower_printf(args, line)
        if name in BUILTINS:
            ret, ptypes = BUILTINS[name]
            if len(args) != len(ptypes):
                raise ParseError(f"{name} expects {len(ptypes)} args", line)
            args = [implicit_cast(a, t) for a, t in zip(args, ptypes)]
            return ECall(name, args, ret)
        func = self.module.functions.get(name)
        if func is None:
            raise ParseError(f"call to undeclared function {name!r} "
                             "(add a prototype)", line)
        if len(args) != len(func.params):
            raise ParseError(f"{name} expects {len(func.params)} args", line)
        args = [implicit_cast(a, t)
                for a, (_, t) in zip(args, func.params)]
        return ECall(name, args, func.ret)

    def _lower_printf(self, args, line):
        """printf → one host print per value argument (format text is
        dropped; the harness only needs the numeric output for checksums)."""
        for arg in args:
            if isinstance(arg, _StringRef):
                continue
            if is_float(arg.type):
                self.pending.append(SExpr(ECall("__print_f64", [arg], None)))
            elif arg.type in ("i64", "u64"):
                self.pending.append(SExpr(ECall("__print_i64", [arg], None)))
            else:
                self.pending.append(SExpr(ECall("__print_i32", [arg], None)))
        return EConst(0, "i32")


# _ArrayRef/_NameRef/_StringRef are parser-internal partial expressions.
class _ArrayRef:
    __slots__ = ("array", "indices")
    type = None

    def __init__(self, array, indices):
        self.array = array
        self.indices = indices


class _NameRef:
    __slots__ = ("name", "indices")
    type = None

    def __init__(self, name):
        self.name = name
        self.indices = []


class _StringRef:
    __slots__ = ("text",)
    type = "i32"

    def __init__(self, text):
        self.text = text


def _is_pure(expr):
    """No calls anywhere (loads are treated as pure; indices are bounded by
    construction in the benchmark kernels)."""
    if isinstance(expr, ECall):
        return False
    from repro.ir.nodes import child_exprs
    return all(_is_pure(c) for c in child_exprs(expr))


def _clone(expr):
    if isinstance(expr, EConst):
        return EConst(expr.value, expr.type, expr.no_fold)
    if isinstance(expr, ELocal):
        return ELocal(expr.name, expr.type)
    if isinstance(expr, EGlobal):
        return EGlobal(expr.name, expr.type)
    if isinstance(expr, ELoad):
        return ELoad(expr.array, [_clone(i) for i in expr.indices],
                     expr.type)
    if isinstance(expr, EBin):
        return EBin(expr.op, _clone(expr.left), _clone(expr.right),
                    expr.type, expr.relaxed)
    if isinstance(expr, EUn):
        return EUn(expr.op, _clone(expr.expr), expr.type)
    if isinstance(expr, ECast):
        return ECast(_clone(expr.expr), expr.type, expr.no_fold)
    if isinstance(expr, ECall):
        return ECall(expr.name, [_clone(a) for a in expr.args], expr.type)
    if isinstance(expr, ESelect):
        return ESelect(_clone(expr.cond), _clone(expr.then),
                       _clone(expr.els), expr.type)
    raise CompileError(f"cannot clone {type(expr).__name__}")


def _clone_lvalue(expr):
    return _clone(expr)


def parse_c(source, name="module"):
    """Parse preprocessed C-subset source into an IR :class:`Module`."""
    return CParser(source, name).parse_module()
