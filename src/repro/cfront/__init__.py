"""C-subset frontend: preprocessor, lexer, parser (direct to IR), and the
§3.1 source-to-source transformations (exception removal, union→struct).
"""

from repro.cfront.lexer import tokenize_c
from repro.cfront.parser import parse_c
from repro.cfront.preproc import preprocess
from repro.cfront.transform import (
    remove_exceptions,
    replace_unions,
    transform_source,
)

__all__ = [
    "parse_c",
    "preprocess",
    "remove_exceptions",
    "replace_unions",
    "tokenize_c",
    "transform_source",
]
