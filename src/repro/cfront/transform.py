"""Source-to-source transformations from §3.1.

Cheerp cannot compile two C/C++ constructs the benchmark suites use:

* **Exceptions** — Cheerp strips ``catch`` blocks but keeps ``throw``
  statements, so any thrown exception segfaults.  :func:`remove_exceptions`
  rewrites ``try``/``catch`` into an error-flag predicate (the paper's
  Fig. 3a).
* **Unions** — unsupported outright.  :func:`replace_unions` rewrites each
  ``union`` into a ``struct`` carrying every member (the paper's Fig. 3b
  uses multiple structs + casts; without pointers our subset expresses the
  same data with one struct whose members alias by convention).

Both transforms are textual/structural (they run before parsing), exactly
like the manual edits the paper's authors applied to 30 of the 41
benchmarks.
"""

from __future__ import annotations

import re

from repro.errors import CompileError

_THROW = re.compile(r"throw\s+[^;]+;")
_CATCH = re.compile(r"catch\s*\([^)]*\)")


def _find_block(source, open_index):
    """Return the index one past the matching '}' for the '{' at
    ``open_index``."""
    depth = 0
    for i in range(open_index, len(source)):
        if source[i] == "{":
            depth += 1
        elif source[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    raise CompileError("unbalanced braces in try/catch block")


def remove_exceptions(source, flag_name="__error"):
    """Rewrite try/catch/throw into flag-predicated error handling.

    ``throw expr;`` becomes ``__error = 1;`` and each ``catch`` block
    becomes ``if (__error) { ... }`` with the exception binding removed —
    the transformation of the paper's Fig. 3(a).
    """
    if "try" not in source and "throw" not in source:
        return source
    out = source
    declared = f"int {flag_name} = 0;\n"

    # throw <expr>; -> set the error flag.
    out = _THROW.sub(f"{flag_name} = 1;", out)

    # try { BODY } -> BODY (braces kept as a plain block).
    while True:
        match = re.search(r"\btry\s*\{", out)
        if not match:
            break
        open_brace = out.index("{", match.start())
        out = out[:match.start()] + out[open_brace:]

    # catch (...) { BODY } -> if (<flag>) { BODY }
    while True:
        match = _CATCH.search(out)
        if not match:
            break
        open_brace = out.index("{", match.end())
        out = (out[:match.start()] + f"if ({flag_name}) " +
               out[open_brace:])

    # References to the bound exception object cannot survive; e.what()
    # style calls are dropped line-wise.
    out = re.sub(r"[^\n;]*e\.what\(\)[^\n;]*;", "", out)
    return declared + out


_UNION = re.compile(r"\bunion\b")


def replace_unions(source):
    """Rewrite ``union X { ... };`` (and every ``union X`` use) into the
    ``struct`` equivalent.

    In the paper's Fig. 3(b) the union is replaced by structs plus casts;
    our pointer-free subset keeps all members in one struct, which
    preserves the benchmarks' observable behaviour (they never rely on
    bit-aliasing between union members after the authors' own transform)."""
    return _UNION.sub("struct", source)


def transform_source(source):
    """Apply all §3.1 transformations in order."""
    return replace_unions(remove_exceptions(source))
