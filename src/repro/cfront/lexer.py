"""Lexer for the C subset. Token kinds: ``num`` (value, is_float, is_long),
``str``, ``char``, ``ident``, ``kw``, ``punct``, ``eof``."""

from __future__ import annotations

from repro.errors import ParseError

C_KEYWORDS = {
    "int", "unsigned", "signed", "long", "short", "char", "double", "float",
    "void", "if", "else", "for", "while", "do", "return", "break",
    "continue", "static", "const", "struct", "union", "sizeof", "typedef",
    "extern", "volatile", "register",
}

_PUNCTUATORS = [
    "<<=", ">>=", "...", "->", "++", "--", "<<", ">>", "<=", ">=", "==",
    "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "{", "}", "(", ")", "[", "]", ";", ",", ".", "+", "-", "*", "/", "%",
    "&", "|", "^", "~", "!", "<", ">", "=", "?", ":",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
            "'": "'", '"': '"'}


class CToken:
    __slots__ = ("kind", "value", "line", "is_float", "is_long",
                 "is_unsigned")

    def __init__(self, kind, value, line, is_float=False, is_long=False,
                 is_unsigned=False):
        self.kind = kind
        self.value = value
        self.line = line
        self.is_float = is_float
        self.is_long = is_long
        self.is_unsigned = is_unsigned

    def __repr__(self):
        return f"CToken({self.kind}, {self.value!r})"


def tokenize_c(source):
    """Tokenize preprocessed C-subset source."""
    tokens = []
    i = 0
    n = len(source)
    line = 1
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and
                            source[i + 1].isdigit()):
            j = i
            is_float = False
            if source.startswith(("0x", "0X"), i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                value = int(source[i:j], 16)
            else:
                while j < n and (source[j].isdigit() or source[j] == "."):
                    if source[j] == ".":
                        is_float = True
                    j += 1
                if j < n and source[j] in "eE":
                    is_float = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                    while j < n and source[j].isdigit():
                        j += 1
                text = source[i:j]
                value = float(text) if is_float else int(text)
            is_long = False
            is_unsigned = False
            while j < n and source[j] in "uUlLfF":
                if source[j] in "lL":
                    is_long = True
                elif source[j] in "uU":
                    is_unsigned = True
                elif source[j] in "fF":
                    is_float = True
                    value = float(value)
                j += 1
            tokens.append(CToken("num", value, line, is_float, is_long,
                                 is_unsigned))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            tokens.append(CToken("kw" if word in C_KEYWORDS else "ident",
                                 word, line))
            i = j
            continue
        if ch == "'":
            if source[i + 1] == "\\":
                value = _ESCAPES.get(source[i + 2], source[i + 2])
                end = i + 3
            else:
                value = source[i + 1]
                end = i + 2
            if end >= n or source[end] != "'":
                raise ParseError("malformed char literal", line)
            tokens.append(CToken("char", ord(value), line))
            i = end + 1
            continue
        if ch == '"':
            j = i + 1
            buf = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    buf.append(_ESCAPES.get(source[j + 1], source[j + 1]))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string literal", line)
            tokens.append(CToken("str", "".join(buf), line))
            i = j + 1
            continue
        for punct in _PUNCTUATORS:
            if source.startswith(punct, i):
                tokens.append(CToken("punct", punct, line))
                i += len(punct)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line)
    tokens.append(CToken("eof", None, line))
    return tokens
