"""Minimal C preprocessor.

Supports what the benchmark suites need: object-like ``#define``, ``-D``
command-line definitions (how input sizes are selected, §3.2), ``#ifdef`` /
``#ifndef`` / ``#else`` / ``#endif``, ``#include`` (ignored — the toolchain
facades decide library linkage, §3.2), and comment stripping.
"""

from __future__ import annotations

import re

from repro.errors import ParseError

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def _strip_comments(source):
    out = []
    i = 0
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            i = n if j < 0 else j
        elif ch == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                raise ParseError("unterminated comment")
            out.append("\n" * source.count("\n", i, j))
            i = j + 2
        elif ch in "'\"":
            j = i + 1
            while j < n and source[j] != ch:
                j += 2 if source[j] == "\\" else 1
            out.append(source[i:j + 1])
            i = j + 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _substitute(line, defines):
    """Replace defined identifiers (token-aware, repeated to a fixed
    point so macros may reference macros)."""
    for _ in range(8):
        changed = False

        def repl(match):
            nonlocal changed
            name = match.group(0)
            if name in defines:
                changed = True
                return str(defines[name])
            return name

        line = _IDENT.sub(repl, line)
        if not changed:
            return line
    return line


def preprocess(source, defines=None):
    """Run the preprocessor; returns expanded source text.

    ``defines`` maps macro names to replacement text (ints are accepted and
    stringified) — the ``-D`` mechanism the toolchains use for input sizes.
    """
    defines = dict(defines or {})
    out = []
    # Stack of booleans: is the current conditional region active?
    active_stack = [True]
    for lineno, raw in enumerate(_strip_comments(source).split("\n"), 1):
        line = raw.strip()
        if line.startswith("#"):
            directive = line[1:].strip()
            if directive.startswith("include"):
                out.append("")
                continue
            if directive.startswith("define"):
                if all(active_stack):
                    rest = directive[len("define"):].strip()
                    match = _IDENT.match(rest)
                    if not match:
                        raise ParseError("malformed #define", lineno)
                    name = match.group(0)
                    body = rest[match.end():].strip()
                    defines[name] = _substitute(body, defines) if body else "1"
                out.append("")
                continue
            if directive.startswith("undef"):
                if all(active_stack):
                    defines.pop(directive[len("undef"):].strip(), None)
                out.append("")
                continue
            if directive.startswith("ifdef"):
                name = directive[len("ifdef"):].strip()
                active_stack.append(name in defines)
                out.append("")
                continue
            if directive.startswith("ifndef"):
                name = directive[len("ifndef"):].strip()
                active_stack.append(name not in defines)
                out.append("")
                continue
            if directive.startswith("else"):
                if len(active_stack) < 2:
                    raise ParseError("#else without #if", lineno)
                active_stack[-1] = not active_stack[-1]
                out.append("")
                continue
            if directive.startswith("endif"):
                if len(active_stack) < 2:
                    raise ParseError("#endif without #if", lineno)
                active_stack.pop()
                out.append("")
                continue
            if directive.startswith("pragma"):
                out.append("")
                continue
            raise ParseError(f"unsupported directive {line!r}", lineno)
        if all(active_stack):
            out.append(_substitute(raw, defines))
        else:
            out.append("")
    if len(active_stack) != 1:
        raise ParseError("unterminated #if block")
    return "\n".join(out)
