"""Host environment: the Web/ECMAScript builtins the subject programs use.

Native functions execute at native cost (a small constant plus, for bulk
APIs like WebCrypto, a low per-byte cost) — the mechanism behind Table 9's
result that the W3C-API SHA implementation beats both Cheerp-generated code
and library JavaScript.
"""

from __future__ import annotations

import hashlib
import math

from repro.engine.hostlib import JS_MATH
from repro.jsengine.values import (
    JSArray,
    JSObject,
    JSTypedArray,
    NativeFunction,
    UNDEFINED,
    js_to_str,
)


def _num(args, i, default=0.0):
    if i < len(args):
        value = args[i]
        if isinstance(value, bool):
            return 1.0 if value else 0.0
        if isinstance(value, float):
            return value
        try:
            return float(js_to_str(value))
        except ValueError:
            return math.nan
    return default


def _nf(name, fn, cycles=10.0):
    return NativeFunction(name, fn, cycles)


def _libm_nf(name, fn, arity, cycles):
    """Wrap one shared-registry libm entry (ECMAScript semantics — e.g.
    Math.pow(0, -1) is Infinity and Math.exp saturates, where Python's
    math functions raise) as a ``Math`` property."""
    if arity == 1:
        return _nf(name, lambda e, t, a, _fn=fn: float(_fn(_num(a, 0))),
                   cycles)
    return _nf(name, lambda e, t, a, _fn=fn: float(_fn(_num(a, 0),
                                                       _num(a, 1))), cycles)


def make_math(engine):
    def _sqrt(e, this, a):
        v = _num(a, 0)
        return math.nan if v < 0 else math.sqrt(v)

    def _random(e, this, a):
        # Deterministic LCG: reproducible experiments need a seeded source.
        e._rng_state = (e._rng_state * 6364136223846793005 +
                        1442695040888963407) & 0xFFFFFFFFFFFFFFFF
        return (e._rng_state >> 11) / float(1 << 53)

    props = {
        "sqrt": _nf("sqrt", _sqrt, 15.0),
        "abs": _nf("abs", lambda e, t, a: abs(_num(a, 0)), 4.0),
        "floor": _nf("floor", lambda e, t, a: float(math.floor(_num(a, 0))),
                     5.0),
        "ceil": _nf("ceil", lambda e, t, a: float(math.ceil(_num(a, 0))),
                    5.0),
        "round": _nf("round", lambda e, t, a: float(math.floor(_num(a, 0)
                                                               + 0.5)), 5.0),
        "min": _nf("min", lambda e, t, a: min(_num(a, i)
                                              for i in range(len(a))), 5.0),
        "max": _nf("max", lambda e, t, a: max(_num(a, i)
                                              for i in range(len(a))), 5.0),
        "random": _nf("random", _random, 12.0),
        "PI": math.pi,
        "E": math.e,
    }
    # Transcendentals come from the shared host-shim registry: one libm
    # wiring (with per-call native costs) for all engines.
    for name, (fn, arity, cycles) in JS_MATH.items():
        props[name] = _libm_nf(name, fn, arity, cycles)
    return JSObject(props)


def make_console(engine):
    def _log(e, this, args):
        e.console_output.append(" ".join(js_to_str(v) for v in args))
        return UNDEFINED

    return JSObject({"log": _nf("log", _log, 200.0),
                     "error": _nf("error", _log, 200.0)})


def make_performance(engine):
    def _now(e, this, args):
        return e.virtual_now_ms()

    return JSObject({"now": _nf("now", _now, 30.0)})


def _digest_bytes(algorithm, data):
    algo = js_to_str(algorithm).lower().replace("-", "")
    if algo in ("sha1",):
        h = hashlib.sha1(data)
    elif algo in ("sha256",):
        h = hashlib.sha256(data)
    elif algo in ("sha512",):
        h = hashlib.sha512(data)
    else:
        raise ValueError(f"unsupported digest {algorithm!r}")
    return h.digest()


def make_crypto(engine):
    def _digest(e, this, args):
        algorithm = args[0]
        buf = args[1]
        if isinstance(buf, (JSArray, JSTypedArray)):
            data = bytes(int(v) & 0xFF for v in buf.items)
        else:
            data = js_to_str(buf).encode("utf-8")
        # Native hashing: ~1.5 cycles/byte, charged on top of the base cost.
        e.stats.cycles += 1.5 * len(data)
        out = JSTypedArray("Uint8Array", len(_digest_bytes(algorithm, data)))
        out.items = [float(b) for b in _digest_bytes(algorithm, data)]
        e.heap.register(out)
        return out

    subtle = JSObject({"digest": _nf("digest", _digest, 400.0)})
    return JSObject({"subtle": subtle})


def make_global_env(engine):
    """The global object contents for a fresh engine realm."""

    def _parse_int(e, this, args):
        text = js_to_str(args[0]).strip()
        base = int(_num(args, 1, 10.0)) or 10
        try:
            return float(int(text, base))
        except ValueError:
            digits = ""
            for ch in text:
                if ch.isdigit() or (digits in ("", "-") and ch == "-"):
                    digits += ch
                else:
                    break
            try:
                return float(int(digits, base))
            except ValueError:
                return math.nan

    def _parse_float(e, this, args):
        try:
            return float(js_to_str(args[0]).strip())
        except ValueError:
            return math.nan

    def _array_ctor(e, this, args):
        if len(args) == 1 and isinstance(args[0], float):
            arr = JSArray([UNDEFINED] * int(args[0]))
        else:
            arr = JSArray(list(args))
        e.heap.register(arr)
        return arr

    def _typed_ctor(kind):
        def make(e, this, args):
            length = int(_num(args, 0)) if args else 0
            arr = JSTypedArray(kind, length)
            e.heap.register(arr)
            return arr
        return _nf(kind, make, 40.0)

    env = {
        "Float64Array": _typed_ctor("Float64Array"),
        "Int32Array": _typed_ctor("Int32Array"),
        "Uint8Array": _typed_ctor("Uint8Array"),
        "Uint16Array": _typed_ctor("Uint16Array"),
        "Uint32Array": _typed_ctor("Uint32Array"),
        "Math": make_math(engine),
        "console": make_console(engine),
        "performance": make_performance(engine),
        "crypto": make_crypto(engine),
        "Date": JSObject({"now": _nf(
            "now", lambda e, t, a: e.virtual_now_ms(), 30.0)}),
        "Number": JSObject({
            "MAX_SAFE_INTEGER": 9007199254740991.0,
            "isInteger": _nf("isInteger", lambda e, t, a: isinstance(
                a[0], float) and a[0] == int(a[0]), 5.0),
        }),
        "Array": JSObject({
            "isArray": _nf("isArray",
                           lambda e, t, a: isinstance(a[0], JSArray), 5.0),
            "__call__": _nf("Array", _array_ctor, 30.0),
        }),
        "String": JSObject({
            "fromCharCode": _nf(
                "fromCharCode",
                lambda e, t, a: "".join(chr(int(v)) for v in a), 8.0),
        }),
        "parseInt": _nf("parseInt", _parse_int, 20.0),
        "parseFloat": _nf("parseFloat", _parse_float, 20.0),
        "isNaN": _nf("isNaN", lambda e, t, a: _num(a, 0) != _num(a, 0), 5.0),
        "NaN": math.nan,
        "Infinity": math.inf,
        "undefined": UNDEFINED,
    }
    return env
