"""Runtime value representations for the JS engine.

Numbers are Python floats (JS has only doubles); strings are Python ``str``;
``null`` is ``None``; ``undefined`` is the :data:`UNDEFINED` sentinel.
Arrays/objects/typed arrays are thin wrappers so the GC can track them with
weak references (Python object reachability stands in for the JS heap graph,
which is exactly the property the paper's memory findings rest on).
"""

from __future__ import annotations


class _Undefined:
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "undefined"

    def __bool__(self):
        return False


UNDEFINED = _Undefined()

#: Approximate engine object-header size in bytes (V8-like).
HEADER_BYTES = 32


class JSArray:
    """A JS array: elements boxed, 8 bytes per slot plus header."""

    __slots__ = ("items", "__weakref__")

    def __init__(self, items=None):
        self.items = items if items is not None else []

    @property
    def heap_bytes(self):
        return HEADER_BYTES + 8 * len(self.items)

    def __repr__(self):
        return f"JSArray({self.items!r})"


class SparseItems:
    """Zero-filled element storage materialised on write.

    Backs :class:`JSTypedArray` so paper-scale buffers (EXTRALARGE
    PolyBench arrays are tens of MB) cost memory proportional to the
    elements the scaled kernels actually touch."""

    __slots__ = ("_length", "_data")

    def __init__(self, length):
        self._length = int(length)
        self._data = {}

    def __len__(self):
        return self._length

    def __getitem__(self, index):
        return self._data.get(index, 0.0)

    def __setitem__(self, index, value):
        self._data[index] = value

    def __iter__(self):
        get = self._data.get
        for i in range(self._length):
            yield get(i, 0.0)


class JSTypedArray:
    """Float64Array / Int32Array / Uint8Array / Uint32Array.

    Cheerp's genericjs output uses typed arrays as the backing store for C
    memory.  DevTools' *JS heap* metric counts only the wrapper object —
    the backing store is external ArrayBuffer memory — which is why
    compiler-generated JavaScript shows a flat ~0.9 MB heap at every input
    size (Tables 4/6) while hand-written programs using plain arrays show
    multi-MB heaps (Table 9)."""

    __slots__ = ("kind", "items", "width", "__weakref__")

    _WIDTHS = {"Float64Array": 8, "Int32Array": 4, "Uint8Array": 1,
               "Uint32Array": 4, "Uint16Array": 2}

    def __init__(self, kind, length):
        self.kind = kind
        self.width = self._WIDTHS[kind]
        self.items = SparseItems(length)

    @property
    def heap_bytes(self):
        return HEADER_BYTES + self.width * len(self.items)

    @property
    def devtools_bytes(self):
        return HEADER_BYTES

    def __repr__(self):
        return f"{self.kind}(len={len(self.items)})"


class JSObject:
    """A plain JS object (string-keyed properties)."""

    __slots__ = ("props", "__weakref__")

    def __init__(self, props=None):
        self.props = props if props is not None else {}

    @property
    def heap_bytes(self):
        return HEADER_BYTES + 16 * len(self.props)

    def __repr__(self):
        return f"JSObject({list(self.props)})"


class JSFunction:
    """A compiled JS function (parameters + bytecode + tiering state)."""

    __slots__ = ("name", "params", "code", "consts", "num_locals",
                 "call_count", "backedge_count", "tier", "threaded",
                 "codegen", "__weakref__")

    def __init__(self, name, params, code, consts, num_locals):
        self.name = name
        self.params = params
        self.code = code
        self.consts = consts
        self.num_locals = num_locals
        self.call_count = 0
        self.backedge_count = 0
        self.tier = 0
        #: Lazily built ``(engine, ThreadedFunction)`` pair — the threaded
        #: translation pre-binds engine state, so it is keyed by engine.
        self.threaded = None
        #: Lazily built ``(engine, run | DECLINED)`` pair for the codegen
        #: tier; keyed by engine for the same reason.
        self.codegen = None

    @property
    def heap_bytes(self):
        return HEADER_BYTES + 16 * len(self.code)

    def __repr__(self):
        return f"JSFunction({self.name})"


class NativeFunction:
    """A host (engine-native) function: Web APIs, Math, console, ...

    ``fn`` receives ``(engine, this, args)``; ``cycles`` is the abstract cost
    charged per call (native code is fast — this is why the W3C WebCrypto
    SHA in Table 9 beats everything)."""

    __slots__ = ("name", "fn", "cycles")

    def __init__(self, name, fn, cycles=10.0):
        self.name = name
        self.fn = fn
        self.cycles = cycles

    def __repr__(self):
        return f"NativeFunction({self.name})"


def js_truthy(value):
    """ECMAScript ToBoolean."""
    if value is UNDEFINED or value is None or value is False:
        return False
    if value is True:
        return True
    if isinstance(value, float):
        return value != 0.0 and value == value
    if isinstance(value, str):
        return len(value) > 0
    return True


def js_number_to_str(value):
    """ECMAScript Number-to-String for the common cases."""
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "Infinity"
    if value == float("-inf"):
        return "-Infinity"
    if value == int(value) and abs(value) < 1e21:
        return str(int(value))
    return repr(value)


def js_to_str(value):
    """ECMAScript ToString for the subset's value kinds."""
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return js_number_to_str(value)
    if value is UNDEFINED:
        return "undefined"
    if value is None:
        return "null"
    if isinstance(value, JSArray):
        return ",".join(js_to_str(v) for v in value.items)
    return str(value)


def to_int32(value):
    """ECMAScript ToInt32 (the `x|0` coercion)."""
    # Fast paths: a finite number already in int32 range — the common
    # case for compiler-produced `x|0` arithmetic.  ``int()`` truncates
    # toward zero exactly like the wrap-around path below, and ``type``
    # (not ``isinstance``) keeps bools on the slow path.
    if type(value) is float:
        if -2147483648.0 <= value <= 2147483647.0:
            return int(value)
    elif type(value) is int:
        if -2147483648 <= value <= 2147483647:
            return value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, str):
        try:
            value = float(value)
        except ValueError:
            return 0
    if not isinstance(value, (int, float)):
        return 0
    if value != value or value in (float("inf"), float("-inf")):
        return 0
    v = int(value) & 0xFFFFFFFF
    return v - 0x100000000 if v & 0x80000000 else v


def to_uint32(value):
    """ECMAScript ToUint32 (the `x>>>0` coercion)."""
    return to_int32(value) & 0xFFFFFFFF
