"""JavaScript engine model.

A real (small) JavaScript implementation — lexer, parser, bytecode compiler,
stack interpreter — wrapped in the performance model the paper studies:

* **Parsing & startup**: JS source must be lexed/parsed/compiled at load
  time (unlike Wasm, which ships pre-compiled bytecode) — the mechanism
  behind Wasm's startup advantage on small inputs (§4.3).
* **Tiered JIT**: functions start in the interpreter tier; hot functions
  and hot loops (back-edge counters) tier up to the optimizing tier with a
  much lower per-op cost — the mechanism behind Fig. 10's large JS JIT
  speedups.
* **Garbage collection**: allocations are tracked with weak references;
  collections reclaim dead objects, keeping the JS heap flat across input
  sizes — the mechanism behind Tables 4/6/8's memory results.

Engine tier parameters live in :class:`JsEngineConfig`; browser profiles in
:mod:`repro.env` instantiate them per engine (V8, SpiderMonkey, Chakra-Blink).
"""

from repro.jsengine.config import JsEngineConfig
from repro.jsengine.engine import JsEngine, JsExecutionStats
from repro.jsengine.lexer import tokenize_js
from repro.jsengine.parser import parse_js
from repro.jsengine.values import JSArray, JSObject, JSTypedArray, UNDEFINED

__all__ = [
    "JSArray",
    "JSObject",
    "JSTypedArray",
    "JsEngine",
    "JsEngineConfig",
    "JsExecutionStats",
    "UNDEFINED",
    "parse_js",
    "tokenize_js",
]
