"""Mark-sweep garbage collector model.

Reachability is delegated to Python's own object graph: every JS heap object
is registered with a weak reference, so an object is *live* exactly while
something in the interpreter (stack slot, local, global, array element)
still references it.  A collection sweeps dead registrations and charges a
pause cost proportional to the surviving live set.

This is the mechanism behind the paper's memory findings: JS heap usage
stays flat as input grows (Tables 4/6) because temporaries die and are
reclaimed, while Wasm's linear memory only ever grows.
"""

from __future__ import annotations

import weakref


class GcHeap:
    """Allocation tracker + collection cost model for one engine instance."""

    def __init__(self, baseline_bytes=262144, trigger_bytes=2 * 1024 * 1024,
                 pause_base_cycles=8000.0, pause_per_live_byte=0.02):
        #: Fixed engine overhead (contexts, builtins, parsed code metadata).
        self.baseline_bytes = baseline_bytes
        self.trigger_bytes = trigger_bytes
        self.pause_base_cycles = pause_base_cycles
        self.pause_per_live_byte = pause_per_live_byte
        self._registry = []          # list of (weakref, size_fn_snapshot)
        self._ephemeral_bytes = 0    # short-lived garbage (strings, temps)
        self.allocated_since_gc = 0
        self.total_allocated = 0
        self.gc_runs = 0
        self.gc_pause_cycles = 0.0
        self.peak_heap_bytes = baseline_bytes

    def register(self, obj):
        """Track a weak-referenceable heap object (array/object/function).

        Typed arrays account only their wrapper: the backing store is
        external (ArrayBuffer) memory, outside the GC'd JS heap — exactly
        how V8/SpiderMonkey treat it, and the reason Cheerp-generated JS
        keeps a flat heap at every input size (Tables 4/6)."""
        size = getattr(obj, "devtools_bytes", obj.heap_bytes)
        self._registry.append(weakref.ref(obj))
        self._bump(size)

    def note_ephemeral(self, nbytes):
        """Account short-lived garbage that cannot hold a weakref (strings,
        boxed temporaries)."""
        self._ephemeral_bytes += nbytes
        self._bump(nbytes)

    def _bump(self, size):
        self.allocated_since_gc += size
        self.total_allocated += size
        used = self.used_bytes()
        if used > self.peak_heap_bytes:
            self.peak_heap_bytes = used

    def needs_collection(self):
        return self.allocated_since_gc >= self.trigger_bytes

    def live_bytes(self):
        """GC-heap bytes held by still-reachable registered objects
        (typed-array backings are external and excluded)."""
        total = 0
        alive = []
        for ref in self._registry:
            obj = ref()
            if obj is not None:
                total += getattr(obj, "devtools_bytes", obj.heap_bytes)
                alive.append(ref)
        self._registry = alive
        return total

    def used_bytes(self):
        """Current heap usage as DevTools would report it: baseline +
        allocations not yet collected."""
        return self.baseline_bytes + self.allocated_since_gc \
            + self._ephemeral_bytes // 4

    def collect(self):
        """Run a full collection; returns the pause cost in cycles."""
        live = self.live_bytes()
        pause = self.pause_base_cycles + self.pause_per_live_byte * live
        self.gc_runs += 1
        self.gc_pause_cycles += pause
        self.allocated_since_gc = 0
        self._ephemeral_bytes = 0
        return pause

    def steady_state_bytes(self):
        """Heap usage after a final full collection — the paper's reported
        JS memory metric (live set + engine baseline)."""
        return self.baseline_bytes + self.live_bytes()

    def devtools_bytes(self):
        """DevTools JS-heap snapshot: live objects, with typed-array
        backing stores counted as external (wrapper header only)."""
        total = 0
        alive = []
        for ref in self._registry:
            obj = ref()
            if obj is not None:
                total += getattr(obj, "devtools_bytes", obj.heap_bytes)
                alive.append(ref)
        self._registry = alive
        return self.baseline_bytes + total
