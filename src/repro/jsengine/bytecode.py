"""Bytecode definition for the JS engine.

Like the Wasm substrate, instructions are ``(op, arg)`` tuples, each charged
an abstract cycle cost and attributed to an operation class; the per-class
counters feed the paper's Table 12 operation-count comparison.
"""

from __future__ import annotations

import enum

from repro.engine.opclass import OpClass


class JsOp(enum.IntEnum):
    CONST = 0        # arg: constant value
    LOADL = 1        # arg: local slot
    STOREL = 2       # arg: local slot (pops)
    LOADG = 3        # arg: global name
    STOREG = 4       # arg: global name (pops)
    ADD = 5
    SUB = 6
    MUL = 7
    DIV = 8
    MOD = 9
    NEG = 10
    NOT = 11
    BNOT = 12
    BAND = 13
    BOR = 14
    BXOR = 15
    SHL = 16
    SHR = 17
    USHR = 18
    LT = 19
    LE = 20
    GT = 21
    GE = 22
    EQ = 23
    NE = 24
    SEQ = 25
    SNE = 26
    JMP = 27         # arg: target pc
    JF = 28          # arg: target pc (pop; jump if falsy)
    JT = 29          # arg: target pc (pop; jump if truthy)
    JBACK = 30       # arg: target pc (loop back-edge; bumps JIT counter)
    CALL = 31        # arg: nargs; stack: [callee, a1..an]
    METHOD = 32      # arg: (name, nargs); stack: [obj, a1..an]
    RET = 33
    RETU = 34
    NEWARR = 35      # arg: n elements popped
    NEWOBJ = 36      # arg: tuple of keys; n values popped
    GETIDX = 37
    SETIDX = 38      # stack: [obj, idx, val] -> val
    GETMEM = 39      # arg: name
    SETMEM = 40      # arg: name; stack: [obj, val] -> val
    DUP = 41
    POP = 42
    TYPEOF = 43
    NEWCALL = 44     # arg: nargs; stack: [ctor, a1..an]
    DUP2 = 45        # duplicate top two entries
    INCIDX = 46      # arg: (delta, is_post); stack: [obj, idx] -> value
    INCMEM = 47      # arg: (name, delta, is_post); stack: [obj] -> value
    COMMA = 48       # pop-below: [a, b] -> b
    IMUL = 49        # Math.imul intrinsic (engines compile it to one mul)


def _costs():
    """Abstract cycle costs in the *optimized* tier; the entry-tier factor
    multiplies these at run time.

    Property/index access is pricier than arithmetic (shape checks, bounds
    checks); calls carry frame setup; allocation carries heap work.
    """
    cost = [1.0] * (max(JsOp) + 1)
    expensive = {
        JsOp.MUL: 3.0, JsOp.IMUL: 3.0, JsOp.DIV: 20.0, JsOp.MOD: 22.0,
        JsOp.LOADG: 3.0, JsOp.STOREG: 3.0,
        JsOp.GETIDX: 3.5, JsOp.SETIDX: 4.0,
        JsOp.GETMEM: 3.0, JsOp.SETMEM: 3.5,
        JsOp.INCIDX: 6.0, JsOp.INCMEM: 5.0,
        JsOp.CALL: 14.0, JsOp.METHOD: 16.0, JsOp.NEWCALL: 30.0,
        JsOp.NEWARR: 25.0, JsOp.NEWOBJ: 30.0,
        JsOp.JMP: 1.0, JsOp.JF: 1.5, JsOp.JT: 1.5, JsOp.JBACK: 1.5,
        JsOp.RET: 4.0, JsOp.RETU: 4.0,
        JsOp.CONST: 0.5, JsOp.POP: 0.25, JsOp.DUP: 0.5, JsOp.DUP2: 0.75,
    }
    for op, value in expensive.items():
        cost[op] = value
    return cost


JS_OP_COST = _costs()


def _opt_costs():
    """Optimized-tier costs: TurboFan/Ion inline hot callees, elide frames,
    scalar-replace short-lived objects (escape analysis), and specialise
    property/element access through inline caches.  This is why
    JIT-compiled object-heavy JavaScript (e.g. Long.js) approaches native
    cost per operation (§4.6.2)."""
    cost = list(JS_OP_COST)
    cost[JsOp.CALL] = 4.0        # inlined frames
    cost[JsOp.METHOD] = 5.0
    cost[JsOp.NEWCALL] = 12.0
    cost[JsOp.NEWARR] = 8.0      # escape analysis / cheap young alloc
    cost[JsOp.NEWOBJ] = 8.0
    cost[JsOp.GETMEM] = 1.0      # monomorphic inline cache hit
    cost[JsOp.SETMEM] = 1.2
    cost[JsOp.GETIDX] = 1.8
    cost[JsOp.SETIDX] = 2.2
    cost[JsOp.INCIDX] = 3.0
    cost[JsOp.INCMEM] = 2.5
    cost[JsOp.LOADG] = 1.0
    cost[JsOp.STOREG] = 1.2
    return cost


#: Per-op costs once a function runs in the optimizing tier (multiplied by
#: the profile's ``tier1_factor``).
JS_OP_COST_OPT = _opt_costs()


def _classes():
    table = [OpClass.OTHER] * (max(JsOp) + 1)
    mapping = {
        OpClass.ADD: (JsOp.ADD, JsOp.SUB, JsOp.NEG),
        OpClass.MUL: (JsOp.MUL, JsOp.IMUL),
        OpClass.DIV: (JsOp.DIV,),
        OpClass.REM: (JsOp.MOD,),
        OpClass.SHIFT: (JsOp.SHL, JsOp.SHR, JsOp.USHR),
        OpClass.AND: (JsOp.BAND,),
        OpClass.OR: (JsOp.BOR,),
        OpClass.XOR: (JsOp.BXOR,),
        OpClass.CMP: (JsOp.LT, JsOp.LE, JsOp.GT, JsOp.GE, JsOp.EQ,
                      JsOp.NE, JsOp.SEQ, JsOp.SNE, JsOp.NOT),
        OpClass.CONST: (JsOp.CONST,),
        OpClass.LOCAL: (JsOp.LOADL, JsOp.STOREL),
        OpClass.GLOBAL: (JsOp.LOADG, JsOp.STOREG),
        OpClass.LOAD: (JsOp.GETIDX, JsOp.GETMEM),
        OpClass.STORE: (JsOp.SETIDX, JsOp.SETMEM, JsOp.INCIDX, JsOp.INCMEM),
        OpClass.CONTROL: (JsOp.JMP, JsOp.JF, JsOp.JT, JsOp.JBACK, JsOp.RET,
                          JsOp.RETU, JsOp.POP, JsOp.DUP, JsOp.DUP2,
                          JsOp.COMMA),
        OpClass.CALL: (JsOp.CALL, JsOp.METHOD, JsOp.NEWCALL),
        OpClass.MEMORY: (JsOp.NEWARR, JsOp.NEWOBJ),
    }
    for cls, ops in mapping.items():
        for op in ops:
            table[op] = cls
    return table


JS_OP_CLASS = _classes()
