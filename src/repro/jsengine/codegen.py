"""Codegen execution tier for the JS engine: threaded blocks → Python.

Walks the same basic blocks the threaded tier builds
(:mod:`repro.jsengine.threaded`) and emits one generated Python function
per ``JSFunction``: the operand stack is lowered to slot variables
``s0..sK`` (depths are static in compiler output; hand-built bytecode
with inconsistent join depths makes the translator decline), locals to
``l0..lN``, and dispatch to a ``bi`` block index looping over
``if bi == k`` arms.

Exactness follows the threaded tier's rules (see its module docstring),
restated as they apply to emitted source:

* **Cycles self-charge per op** with the charge ``cost[op] * factor``
  folded to one literal per op, in the reference ladder's left-fold
  order; dynamic extras (boxed-element penalties, GC pauses, native-call
  costs) are added at the same points.  Integer counters batch per
  block; trap points get explicit guards whose rewind statements
  subtract the integer suffix.
* **Dual tier bodies.**  Each block arm re-checks ``fn.tier`` on entry
  (tier changes only at terminators: ``JBACK`` OSR and call returns) and
  selects a tier-0 or tier-1 body with that tier's cost table, factor,
  and profile key bit baked in.
* **GC checks at allocation points only**, inlined where the threaded
  tier calls its ``gc_check`` closure.
* **Shadow locals.**  The frame keeps the same 14-slot shadow list the
  threaded tier rides in ``acc[2]``, written at exactly the same sites —
  and the emitted arms route popped values *through* the shadow slots
  instead of Python temporaries, so the generated frame never pins a
  heap object the reference frame would not.  Dead stack slots above the
  current depth are cleared to ``None`` before every point that can
  collect, because a lowered slot (unlike a popped list entry) would
  otherwise keep its last value alive.

The generated source depends only on the bytecode and translation flags
(tier factors, JIT enablement, profiling) — instance state is bound by
``make(ns)`` — so translation units are served from the persistent
compile cache (:mod:`repro.engine.codegen`).
"""

from __future__ import annotations

import math

from repro.engine.codegen import (
    DECLINED, Emitter, codegen_enabled, literal, load_factory, unit_key,
)
from repro.engine.threaded import class_deltas, split_blocks
from repro.jsengine import threaded as _thr
from repro.jsengine.bytecode import JS_OP_CLASS, JS_OP_COST, JS_OP_COST_OPT
from repro.jsengine.values import (
    JSArray,
    JSFunction,
    JSObject,
    JSTypedArray,
    NativeFunction,
    SparseItems,
    UNDEFINED,
    js_to_str,
    js_truthy,
    to_int32,
    to_uint32,
)
from repro.obs import SCHED, get_registry

__all__ = ["codegen_enabled", "translate", "DECLINED"]

#: Emission kind per pure-binop shadow writer, derived from the threaded
#: tier's table so the two stay in lockstep.
_SHADOW_KIND = {}
for _op, _w in _thr._SHADOW_BIN.items():
    if _w is _thr._sh_ab:
        _SHADOW_KIND[_op] = "ab"
    elif _w is _thr._sh_ab_num:
        _SHADOW_KIND[_op] = "ab_num"
    elif _w is _thr._sh_b:
        _SHADOW_KIND[_op] = "b"
    elif _w is _thr._sh_b_num:
        _SHADOW_KIND[_op] = "b_num"
    elif _w is _thr._sh_shl:
        _SHADOW_KIND[_op] = "shl"
    else:                                 # pragma: no cover - new writer
        raise AssertionError(f"unknown shadow writer for op {_op}")


def _flow(op, arg):
    """(pops, pushes) for one non-terminator opcode."""
    if op in (0, 1, 3):
        return 0, 1
    if op in (2, 4, 42):
        return 1, 0
    if op == 5 or op in _thr._BINVAL:
        return 2, 1
    if op in (10, 11, 12, 43, 39, 47):
        return 1, 1
    if op == 41:
        return 1, 2
    if op == 45:
        return 2, 4
    if op in (37, 40, 46):
        return 2, 1
    if op == 38:
        return 3, 1
    if op == 35:
        return arg, 1
    if op == 36:
        return len(arg), 1
    return 0, 0


def _analyse(code, ranges, block_index):
    """Static operand-stack depths: per-block entry depth and the max.

    Returns ``(entry_depth, max_depth)`` or ``None`` when a join is
    entered at two different depths or a depth would go negative (the
    compiler never produces either; hand-built bytecode falls back to
    the threaded tier)."""
    if not ranges:
        return {}, 0
    entry = {0: 0}
    work = [0]
    max_d = 0
    n = len(code)

    def join(pc, depth):
        if pc >= n:
            return True
        tbi = block_index[pc]
        if tbi in entry:
            return entry[tbi] == depth
        entry[tbi] = depth
        work.append(tbi)
        return True

    while work:
        bi = work.pop()
        start, end = ranges[bi]
        d = entry[bi]
        ops = code[start:end]
        has_term = bool(ops) and ops[-1][0] in _thr._TERM_OPS
        body = ops[:-1] if has_term else ops
        for op, arg in body:
            pops, pushes = _flow(op, arg)
            if d < pops:
                return None
            if d + pushes > max_d:
                max_d = d + pushes
            d += pushes - pops
        if not has_term:
            if not join(end, d):
                return None
            continue
        op, arg = ops[-1]
        if op in (28, 29):                # JF / JT
            if d < 1:
                return None
            d -= 1
            if not (join(arg, d) and join(end, d)):
                return None
        elif op in (27, 30):              # JMP / JBACK
            if not join(arg, d):
                return None
        elif op == 33:                    # RET
            if d < 1:
                return None
        elif op == 34:                    # RETU
            pass
        else:                             # CALL / METHOD / NEWCALL
            nargs = arg[1] if op == 32 else arg
            if d < nargs + 1:
                return None
            d -= nargs
            if not join(end, d):
                return None
    return entry, max_d


def _literalizable(value):
    if isinstance(value, tuple):
        return all(isinstance(v, str) for v in value)
    try:
        literal(value)
    except ValueError:
        return False
    return True


class _FnEmitter:
    """Emits the ``run`` body for one JS function."""

    def __init__(self, fn, code, ranges, block_index, entry_depth,
                 max_depth, jit_enabled, profiling, f0, f1, const_index):
        self.fn = fn
        self.code = code
        self.ranges = ranges
        self.block_index = block_index
        self.entry_depth = entry_depth
        self.max_depth = max_depth
        self.jit_enabled = jit_enabled
        self.profiling = profiling
        self.factors = (f0, f1)
        self.const_index = const_index
        self.names = set()                # ns names the source references
        #: Per-block integer-counter deltas, flushed lazily (see
        #: ``emit_flush``): ``{bi: (n_ops, [(class, delta), ...])}``.
        self.block_counts = {}
        #: Per-(block, tier) profiler cells: ``{(bi, tier): [(key, d)]}``.
        self.block_profs = {}
        self.out = Emitter()

    def use(self, name):
        self.names.add(name)
        return name

    def bi_of(self, pc):
        return -1 if pc >= len(self.code) else self.block_index[pc]

    def const_expr(self, pc, value):
        j = self.const_index.get(pc)
        if j is not None:
            return f"{self.use('K')}[{j}]"
        if isinstance(value, tuple):
            return repr(value)
        return literal(value)

    # -- fragments ------------------------------------------------------

    def emit_jump(self, tbi, fall_bi=None):
        if tbi == -1:
            self.out.emit(f"return {self.use('u_')}")
        elif tbi == fall_bi:
            self.out.emit(f"bi = {tbi}")
        else:
            self.out.emit(f"bi = {tbi}")
            self.out.emit("continue")

    def emit_clears(self, depth):
        """Kill dead stack slots before a point that can collect: the
        reference's popped list entries are gone; a lowered slot would
        otherwise pin its last value through the collection."""
        for j in range(depth, self.max_depth):
            self.out.emit(f"s{j} = None")

    def emit_gc_check(self):
        heap = self.use("heap")
        self.out.emit(f"if {heap}.allocated_since_gc >= "
                      f"{heap}.trigger_bytes:")
        with self.out.block():
            self.out.emit(f"p_ = {heap}.collect()")
            self.out.emit(f"{self.use('stats')}.gc_runs += 1")
            self.out.emit("stats.gc_pause_cycles += p_")
            self.out.emit("cyc += p_")

    def emit_rewind(self, classes, idx):
        n_sfx = len(classes) - (idx + 1)
        if n_sfx:
            self.out.emit(f"{self.use('stats')}.instructions -= {n_sfx}")
        for ci, d in class_deltas(classes[idx + 1:]):
            self.out.emit(f"{self.use('counts')}[{ci}] -= {d}")

    def emit_flush(self):
        """Apply the per-block integer counters the dispatch loop
        accumulated in locals.  Runs once, in the ``finally``, so it
        covers returns and escaping exceptions alike."""
        out = self.out
        for bi in sorted(self.block_counts):
            n_ops, deltas = self.block_counts[bi]
            out.emit(f"if nb{bi}:")
            with out.block():
                mul = f"nb{bi}" if n_ops == 1 else f"{n_ops} * nb{bi}"
                out.emit(f"{self.use('stats')}.instructions += {mul}")
                for ci, dc in deltas:
                    mul = f"nb{bi}" if dc == 1 else f"{dc} * nb{bi}"
                    out.emit(f"{self.use('counts')}[{ci}] += {mul}")
        for bi, tier in sorted(self.block_profs):
            acc = f"pf{bi}_{tier}"
            out.emit(f"if {acc}:")
            with out.block():
                for key, dc in self.block_profs[(bi, tier)]:
                    mul = acc if dc == 1 else f"{dc} * {acc}"
                    out.emit(f"{self.use('fprof')}[{key}] = "
                             f"fprof.get({key}, 0) + {mul}")

    def guarded(self, body_lines, classes, idx):
        """Wrap raising statements in the integer-suffix rewind guard
        (cycles self-charge, so only ``instructions``/``op_counts``
        rewind — exactly the threaded tier's ``make_rewind``)."""
        if idx + 1 >= len(classes):       # nothing after it to rewind
            for line in body_lines:
                self.out.emit(line)
            return
        self.out.emit("try:")
        with self.out.block():
            for line in body_lines:
                self.out.emit(line)
        self.out.emit("except BaseException:")
        with self.out.block():
            self.emit_rewind(classes, idx)
            self.out.emit("raise")

    # -- one straight-line op at static depth d; returns the new depth --

    def i32(self, x):
        """Inline ToInt32 of one slot: the finite-in-range float fast path
        as an expression (``int()`` truncates toward zero exactly like the
        wrap-around), falling back to the bound coercion."""
        return (f"(int({x}) if type({x}) is float and "
                f"-2147483648.0 <= {x} <= 2147483647.0 "
                f"else {self.use('ti32')}({x}))")

    def u32(self, x):
        """Inline ToUint32 of one slot (same fast path, wrapped)."""
        return (f"(int({x}) & 0xFFFFFFFF if type({x}) is float and "
                f"-2147483648.0 <= {x} <= 2147483647.0 "
                f"else {self.use('tu32')}({x}))")

    def emit_binval(self, op, d):
        """The value computation of one pure binop, assigned to the result
        slot.  The hot operators are inlined as expressions over the slot
        variables — observably identical to the threaded tier's
        ``_BINVAL`` functions (same coercions in the same order), minus
        one Python call per op.  The rest fall back to the bound value
        function."""
        out = self.out
        a, b = f"s{d - 2}", f"s{d - 1}"

        def num(x):
            return f"({x} if type({x}) is float else {self.use('tonum')}({x}))"

        if op in (6, 7):                       # SUB / MUL
            out.emit(f"{a} = {num(a)} {'-' if op == 6 else '*'} {num(b)}")
        elif op == 8:                          # DIV (C99 signed-zero rules)
            out.emit(f"t_ = {num(a)}")
            out.emit(f"n_ = {num(b)}")
            out.emit("if n_ == 0.0:")
            with out.block():
                out.emit(f"{a} = float('nan') if (t_ == 0.0 or t_ != t_) "
                         f"else {self.use('copysign')}(float('inf'), t_) * "
                         f"{self.use('copysign')}(1.0, n_)")
            out.emit("else:")
            with out.block():
                out.emit(f"{a} = t_ / n_")
        elif op in (13, 14, 15):               # BAND / BOR / BXOR
            sym = {13: "&", 14: "|", 15: "^"}[op]
            out.emit(f"{a} = float({self.i32(a)} {sym} {self.i32(b)})")
        elif op == 16:                         # SHL (int32 wrap-around)
            out.emit(f"i_ = ({self.i32(a)} << ({self.u32(b)} & 31)) "
                     f"& 0xFFFFFFFF")
            out.emit(f"{a} = float(i_ - 0x100000000 "
                     f"if i_ & 0x80000000 else i_)")
        elif op == 17:                         # SHR
            out.emit(f"{a} = float({self.i32(a)} >> ({self.u32(b)} & 31))")
        elif op == 18:                         # USHR
            out.emit(f"{a} = float({self.u32(a)} >> ({self.u32(b)} & 31))")
        elif op in (19, 20, 21, 22):           # LT / LE / GT / GE
            # Numbers compare directly (``_to_number`` of a float is the
            # float); anything else takes the full string-aware path.
            sym = {19: "<", 20: "<=", 21: ">", 22: ">="}[op]
            out.emit(f"{a} = {a} {sym} {b} "
                     f"if type({a}) is float and type({b}) is float "
                     f"else {self.use(f'vf{op}')}({a}, {b})")
        elif op == 25:                         # SEQ
            out.emit(f"{a} = type({a}) is type({b}) and {a} == {b}")
        elif op == 26:                         # SNE
            out.emit(f"{a} = not (type({a}) is type({b}) and {a} == {b})")
        elif op == 49:                         # IMUL
            out.emit(f"i_ = {self.i32(a)} * {self.i32(b)}")
            out.emit(f"{a} = float(i_ if -2147483648 <= i_ <= 2147483647 "
                     f"else {self.use('ti32')}(i_))")
        else:                                  # MOD / EQ / NE
            out.emit(f"{a} = {self.use(f'vf{op}')}({a}, {b})")

    def emit_op(self, pc, instr, d, charges, classes, idx, factor):
        op, arg = instr
        out = self.out
        out.emit(f"cyc += {literal(charges[idx])}")
        if op == 1:       # LOADL
            out.emit(f"s{d} = l{arg}")
            return d + 1
        if op == 0:       # CONST
            out.emit(f"s{d} = {self.const_expr(pc, arg)}")
            return d + 1
        if op == 2:       # STOREL
            out.emit(f"l{arg} = s{d - 1}")
            return d - 1
        if op == 5:       # ADD
            out.emit(f"sh[4] = s{d - 2}")
            out.emit(f"sh[5] = s{d - 1}")
            out.emit("if type(sh[4]) is float and type(sh[5]) is float:")
            with out.block():
                out.emit(f"s{d - 2} = sh[4] + sh[5]")
            out.emit("else:")
            with out.block():
                out.emit(f"sh[6] = {self.use('jadd')}(sh[4], sh[5])")
                out.emit("if isinstance(sh[6], str):")
                with out.block():
                    out.emit(f"{self.use('note')}(16 + 2 * len(sh[6]))")
                out.emit(f"s{d - 2} = sh[6]")
                self.emit_clears(d - 1)
                self.emit_gc_check()
            return d - 1
        if op in _thr._BINVAL:
            kind = _SHADOW_KIND[op]
            if kind == "ab":
                out.emit(f"sh[4] = s{d - 2}")
                out.emit(f"sh[5] = s{d - 1}")
            elif kind == "ab_num":
                out.emit("sh[4] = 0.0")
                out.emit("sh[5] = 0.0")
            elif kind == "b":
                out.emit(f"sh[5] = s{d - 1}")
            elif kind == "b_num":
                out.emit("sh[5] = 0.0")
            else:                         # shl
                out.emit("sh[5] = 0.0")
                out.emit("sh[6] = 0.0")
            self.emit_binval(op, d)
            return d - 1
        if op == 37:      # GETIDX
            out.emit(f"sh[0] = s{d - 1}")
            out.emit(f"sh[1] = s{d - 2}")
            out.emit(f"if type(sh[1]) is {self.use('JSArray')}:")
            with out.block():
                out.emit(f"cyc += {literal(1.6 * factor)}")
                # Inline of ``_element_get``'s array path.  ``t_`` briefly
                # holds the raw items list; it is reset before any later
                # GC point so the generated frame's live set stays equal
                # to the threaded tier's.
                self.guarded(
                    ["i_ = int(sh[0])",
                     "t_ = sh[1].items",
                     f"s{d - 2} = t_[i_] if 0 <= i_ < len(t_) "
                     f"else {self.use('u_')}",
                     "t_ = 0.0"], classes, idx)
            out.emit(f"elif type(sh[1]) is {self.use('JSTypedArray')}:")
            with out.block():
                # Same inline, with the typed-array miss value (0.0) and
                # no JSArray surcharge — mirroring ``_element_get``.  The
                # usual backing store is ``SparseItems``, whose dict we
                # read directly; host code (crypto digests) may swap in a
                # plain list, hence the type guard.
                self.guarded(
                    ["i_ = int(sh[0])",
                     "t_ = sh[1].items",
                     f"if type(t_) is {self.use('Sparse')}:",
                     f"    s{d - 2} = t_._data.get(i_, 0.0) "
                     f"if 0 <= i_ < t_._length else 0.0",
                     "else:",
                     f"    s{d - 2} = t_[i_] if 0 <= i_ < len(t_) else 0.0",
                     "t_ = 0.0"], classes, idx)
            out.emit("else:")
            with out.block():
                self.guarded([f"s{d - 2} = {self.use('eget')}"
                              f"(sh[1], sh[0])"], classes, idx)
            return d - 1
        if op == 38:      # SETIDX
            out.emit(f"sh[2] = s{d - 1}")
            out.emit(f"sh[3] = s{d - 2}")
            out.emit(f"sh[1] = s{d - 3}")
            out.emit(f"if type(sh[1]) is {self.use('JSArray')}:")
            with out.block():
                out.emit(f"cyc += {literal(2.0 * factor)}")
            self.guarded([f"{self.use('setw')}({self.use('heap')}, sh[1], "
                          f"sh[3], sh[2], sh)"], classes, idx)
            out.emit(f"s{d - 3} = sh[2]")
            self.emit_clears(d - 2)
            self.emit_gc_check()
            return d - 2
        if op == 10:      # NEG
            out.emit(f"s{d - 1} = -{self.use('tonum')}(s{d - 1})")
            return d
        if op == 11:      # NOT
            out.emit(f"s{d - 1} = not {self.use('truthy')}(s{d - 1})")
            return d
        if op == 12:      # BNOT
            out.emit(f"s{d - 1} = float(~{self.use('ti32')}(s{d - 1}))")
            return d
        if op == 3:       # LOADG
            out.emit(f"s{d} = {self.use('glb')}.get({arg!r}, "
                     f"{self.use('u_')})")
            return d + 1
        if op == 4:       # STOREG
            out.emit(f"{self.use('glb')}[{arg!r}] = s{d - 1}")
            return d - 1
        if op == 39:      # GETMEM
            out.emit(f"sh[1] = s{d - 1}")
            self.guarded([f"s{d - 1} = {self.use('mget')}(sh[1], "
                          f"{arg!r})"], classes, idx)
            return d
        if op == 40:      # SETMEM
            out.emit(f"sh[2] = s{d - 1}")
            out.emit(f"sh[1] = s{d - 2}")
            body = [f"if isinstance(sh[1], {self.use('JSObject')}):",
                    f"    sh[1].props[{arg!r}] = sh[2]"]
            if arg == "length":
                body += [f"elif isinstance(sh[1], "
                         f"{self.use('JSArray')}):",
                         f"    del sh[1].items"
                         f"[int({self.use('tonum')}(sh[2])):]"]
            body += ["else:",
                     f"    raise {self.use('err')}("
                     f"{literal(f'cannot set {arg} on ')}"
                     f" + type(sh[1]).__name__)"]
            self.guarded(body, classes, idx)
            out.emit(f"s{d - 2} = sh[2]")
            return d - 1
        if op == 35:      # NEWARR
            items = ", ".join(f"s{d - arg + i}" for i in range(arg))
            out.emit(f"sh[12] = [{items}]")
            out.emit(f"sh[11] = {self.use('JSArray')}(sh[12])")
            out.emit(f"{self.use('reg_')}(sh[11])")
            out.emit(f"s{d - arg} = sh[11]")
            self.emit_clears(d - arg + 1)
            self.emit_gc_check()
            return d - arg + 1
        if op == 36:      # NEWOBJ
            nk = len(arg)
            values = ", ".join(f"s{d - nk + i}" for i in range(nk))
            out.emit(f"sh[13] = [{values}]")
            out.emit(f"sh[1] = {self.use('JSObject')}(dict(zip("
                     f"{self.const_expr(pc, tuple(arg))}, sh[13])))")
            out.emit(f"{self.use('reg_')}(sh[1])")
            out.emit(f"s{d - nk} = sh[1]")
            self.emit_clears(d - nk + 1)
            self.emit_gc_check()
            return d - nk + 1
        if op == 41:      # DUP
            out.emit(f"s{d} = s{d - 1}")
            return d + 1
        if op == 45:      # DUP2
            out.emit(f"s{d} = s{d - 2}")
            out.emit(f"s{d + 1} = s{d - 1}")
            return d + 2
        if op == 42:      # POP
            return d - 1
        if op == 43:      # TYPEOF
            out.emit(f"sh[6] = s{d - 1}")
            out.emit("if isinstance(sh[6], float):")
            with out.block():
                out.emit(f"s{d - 1} = 'number'")
            out.emit("elif isinstance(sh[6], str):")
            with out.block():
                out.emit(f"s{d - 1} = 'string'")
            out.emit("elif isinstance(sh[6], bool):")
            with out.block():
                out.emit(f"s{d - 1} = 'boolean'")
            out.emit(f"elif sh[6] is {self.use('u_')}:")
            with out.block():
                out.emit(f"s{d - 1} = 'undefined'")
            out.emit(f"elif isinstance(sh[6], ({self.use('JSFunction')}, "
                     f"{self.use('NativeFunction')})):")
            with out.block():
                out.emit(f"s{d - 1} = 'function'")
            out.emit("else:")
            with out.block():
                out.emit(f"s{d - 1} = 'object'")
            return d
        if op == 46:      # INCIDX
            delta, is_post = arg
            out.emit(f"sh[3] = s{d - 1}")
            out.emit(f"sh[1] = s{d - 2}")
            self.guarded([
                f"t_ = {self.use('tonum')}({self.use('eget')}"
                f"(sh[1], sh[3]))",
                f"n_ = t_ + {literal(delta)}",
                "i_ = int(sh[3])",
                "sh[0] = 0.0",
                f"if isinstance(sh[1], ({self.use('JSArray')}, "
                f"{self.use('JSTypedArray')})):",
                "    sh[1].items[i_] = n_",
                "else:",
                f"    sh[1].props[{self.use('jstr')}(sh[3])] = n_",
            ], classes, idx)
            out.emit(f"s{d - 2} = {'t_' if is_post else 'n_'}")
            return d - 1
        if op == 47:      # INCMEM
            name, delta, is_post = arg
            out.emit(f"sh[1] = s{d - 1}")
            self.guarded([
                f"t_ = {self.use('tonum')}({self.use('mget')}"
                f"(sh[1], {name!r}))",
                f"n_ = t_ + {literal(delta)}",
                f"sh[1].props[{name!r}] = n_",
            ], classes, idx)
            out.emit(f"s{d - 1} = {'t_' if is_post else 'n_'}")
            return d
        raise _thr.JsRuntimeError(     # pragma: no cover - pre-checked
            f"{self.fn.name}: unimplemented bytecode op {op} "
            f"(codegen tier)")

    # -- terminators ----------------------------------------------------

    def emit_term(self, instr, d, bi, fall_bi, charges, factor, tier0):
        op, arg = instr
        out = self.out
        out.emit(f"cyc += {literal(charges[-1])}")
        if op == 27:      # JMP
            self.emit_jump(self.bi_of(arg), fall_bi)
            return
        if op in (28, 29):                # JF / JT
            test = "" if op == 29 else "not "
            out.emit(f"if {test}(s{d - 1} if type(s{d - 1}) is bool "
                     f"else {self.use('truthy')}(s{d - 1})):")
            with out.block():
                self.emit_jump(self.bi_of(arg))
            self.emit_jump(fall_bi, fall_bi)
            return
        if op == 30:      # JBACK
            if tier0 and self.jit_enabled:
                out.emit(f"{self.use('fn')}.backedge_count += 1")
                out.emit(f"if {self.use('hot')}(fn.backedge_count):")
                with out.block():
                    out.emit(f"{self.use('tier_up')}(fn)"
                             "  # on-stack replacement")
            self.emit_jump(self.bi_of(arg), fall_bi)
            return
        if op == 33:      # RET
            out.emit(f"return s{d - 1}")
            return
        if op == 34:      # RETU
            out.emit(f"return {self.use('u_')}")
            return
        # CALL / METHOD / NEWCALL
        is_method = op == 32
        if is_method:
            name, nargs = arg
        else:
            name, nargs = None, arg
        nd = d - nargs - 1                # depth with args + target popped
        args_list = ", ".join(f"s{nd + 1 + i}" for i in range(nargs))
        out.emit(f"sh[7] = [{args_list}]")
        if op == 44:      # NEWCALL
            out.emit(f"sh[10] = s{nd}")
            self.emit_clears(nd)
            out.emit(f"s{nd} = {self.use('construct')}(sh[10], sh[7])")
            self.emit_gc_check()
            self.emit_jump(fall_bi, fall_bi)
            return
        if is_method:
            out.emit(f"sh[9] = s{nd}")
            out.emit(f"sh[8] = {self.use('mget')}(sh[9], {name!r})")
        else:
            out.emit(f"sh[8] = s{nd}")
            out.emit(f"sh[9] = {self.use('u_')}")
        self.emit_clears(nd)
        out.emit(f"if isinstance(sh[8], {self.use('JSFunction')}):")
        with out.block():
            out.emit(f"{self.use('stats')}.cycles += cyc")
            out.emit("cyc = 0.0")
            out.emit(f"s{nd} = {self.use('call')}({self.use('engine')}, "
                     f"sh[8], sh[7], sh[9])")
        out.emit(f"elif isinstance(sh[8], {self.use('NativeFunction')}):")
        with out.block():
            out.emit(f"cyc += sh[8].cycles * {literal(factor)}")
            out.emit(f"s{nd} = sh[8].fn(engine, sh[9], sh[7])")
        out.emit("else:")
        with out.block():
            if is_method:
                out.emit(f"raise {self.use('err')}("
                         f"{literal(f'{arg} is not a function')})")
            else:
                out.emit(f"raise {self.use('err')}(repr(sh[8])"
                         f" + ' is not a function')")
        self.emit_gc_check()
        self.emit_jump(fall_bi, fall_bi)

    # -- whole blocks ---------------------------------------------------

    def emit_tier(self, ops, start, entry_d, bi, fall_bi, tier):
        cost = JS_OP_COST_OPT if tier else JS_OP_COST
        factor = self.factors[tier]
        charges = [cost[op] * factor for op, _a in ops]
        classes = [int(JS_OP_CLASS[op]) for op, _a in ops]
        if self.profiling and ops:
            tbit = tier << 8
            self.out.emit(f"pf{bi}_{tier} += 1")
            self.block_profs[(bi, tier)] = [
                (op + tbit, dc)
                for op, dc in class_deltas(list(o for o, _a in ops))]
        has_term = bool(ops) and ops[-1][0] in _thr._TERM_OPS
        body = ops[:-1] if has_term else ops
        d = entry_d
        for idx, instr in enumerate(body):
            d = self.emit_op(start + idx, instr, d, charges, classes,
                             idx, factor)
        if has_term:
            self.emit_term(ops[-1], d, bi, fall_bi, charges, factor,
                           tier == 0)
        else:
            self.emit_jump(fall_bi, fall_bi)

    def emit_block(self, bi):
        out = self.out
        start, end = self.ranges[bi]
        out.emit(f"if bi == {bi}:")
        with out.block():
            if bi not in self.entry_depth:
                # CFG-unreachable: never entered at runtime.
                out.emit(f"raise {self.use('err')}"
                         f"('codegen: entered unreachable block {bi}')")
                return
            ops = self.code[start:end]
            if ops:
                # Integer counters accumulate in a per-block local and
                # flush in the function's ``finally`` — integer adds
                # commute, so every externally observable value (incl.
                # trap paths, whose guards rewind the engine counters
                # directly) matches the threaded tier's eager batching.
                out.emit(f"nb{bi} += 1")
                self.block_counts[bi] = (len(ops), list(class_deltas(
                    [int(JS_OP_CLASS[op]) for op, _a in ops])))
            entry_d = self.entry_depth[bi]
            fall_bi = self.bi_of(end)
            out.emit(f"if {self.use('fn')}.tier:")
            with out.block():
                self.emit_tier(ops, start, entry_d, bi, fall_bi, 1)
            out.emit("else:")
            with out.block():
                self.emit_tier(ops, start, entry_d, bi, fall_bi, 0)

    def build(self):
        out = self.out
        body = Emitter()
        self.out = body
        with body.block():                # inside `def run(args):`
            with body.block():
                nparams = len(self.fn.params)
                if nparams:
                    body.emit("_na = len(args)")
                for i in range(nparams):
                    body.emit(f"l{i} = args[{i}] if {i} < _na "
                              f"else {self.use('u_')}")
                for j in range(nparams, self.fn.num_locals):
                    body.emit(f"l{j} = {self.use('u_')}")
                if self.max_depth:
                    chain = " = ".join(
                        f"s{i}" for i in range(self.max_depth))
                    body.emit(f"{chain} = None")
                body.emit(f"sh = [None] * {_thr._NSHADOW}")
                body.emit("cyc = 0.0")
                live = [bi for bi, (start, end) in enumerate(self.ranges)
                        if bi in self.entry_depth and end > start]
                accs = [f"nb{bi}" for bi in live]
                if self.profiling:
                    accs += [f"pf{bi}_{t}" for bi in live for t in (0, 1)]
                if accs:
                    body.emit(" = ".join(accs) + " = 0")
                body.emit("try:")
                with body.block():
                    if not self.ranges:
                        body.emit(f"return {self.use('u_')}")
                    else:
                        body.emit("bi = 0")
                        body.emit("while True:")
                        with body.block():
                            for bi in range(len(self.ranges)):
                                self.emit_block(bi)
                            body.emit("raise AssertionError"
                                      "('codegen: lost dispatch')")
                body.emit("finally:")
                with body.block():
                    body.emit(f"{self.use('stats')}.cycles += cyc")
                    self.emit_flush()
        self.out = out
        out.emit("def make(ns):")
        with out.block():
            for name in sorted(self.names):
                out.emit(f"{name} = ns[{name!r}]")
            out.emit("def run(args):")
            out.lines.extend(body.lines)
            out.emit("return run")
        return out.source()


def translate(fn, engine):
    """Build (or load warm) the generated runner for one JS function on
    one engine; ``None`` means the translator declined and the caller
    should use the threaded tier."""
    code = fn.code
    for pc, (op, _arg) in enumerate(code):
        if op not in _thr.SUPPORTED_OPS:
            raise _thr.JsRuntimeError(
                f"{fn.name}: unimplemented bytecode op {op} at pc {pc} "
                f"(codegen tier has no handler)")

    leaders = {0}
    for pc, (op, arg) in enumerate(code):
        if op in _thr._TERM_OPS:
            leaders.add(pc + 1)
            if op in _thr._JUMPS:
                leaders.add(arg)
    ranges = split_blocks(len(code), leaders)
    block_index = {start: bi for bi, (start, _end) in enumerate(ranges)}

    flow = _analyse(code, ranges, block_index)
    reg = get_registry()
    if flow is None:
        reg.counter_add("interp.js.codegen_declined", 1, SCHED)
        return None
    entry_depth, max_depth = flow

    tiering = engine.tiering
    f0 = tiering.exec_factor(0)
    f1 = tiering.exec_factor(1)
    jit_enabled = engine.config.jit_enabled
    profiling = engine._profile is not None

    # Constants the source cannot spell (UNDEFINED, non-string object
    # keys) ride in an ``ns`` list; indices are assigned in pc order so a
    # warm cache hit (which skips source generation) rebuilds the exact
    # same list.
    const_index = {}
    consts = []
    for pc, (op, arg) in enumerate(code):
        if op == 0 and not _literalizable(arg):
            const_index[pc] = len(consts)
            consts.append(arg)
        elif op == 36 and not _literalizable(tuple(arg)):
            const_index[pc] = len(consts)
            consts.append(tuple(arg))

    key = unit_key("js", (
        repr(code), len(fn.params), fn.num_locals, jit_enabled,
        repr((f0, f1)), profiling))

    def build_source():
        emitter = _FnEmitter(fn, code, ranges, block_index, entry_depth,
                             max_depth, jit_enabled, profiling, f0, f1,
                             const_index)
        return emitter.build()

    factory = load_factory("js", key, build_source)

    ns = {
        "engine": engine, "fn": fn, "stats": engine.stats,
        "counts": engine.stats.op_counts, "heap": engine.heap,
        "glb": engine.globals, "u_": UNDEFINED, "K": consts,
        "call": _execute, "construct": engine._construct,
        "mget": engine._member_get, "eget": _element_get,
        "jadd": _js_add, "tonum": _to_number, "truthy": js_truthy,
        "jstr": js_to_str, "ti32": to_int32, "tu32": to_uint32,
        "copysign": math.copysign, "setw": _thr._setidx_work,
        "note": engine.heap.note_ephemeral, "reg_": engine.heap.register,
        "err": _thr.JsRuntimeError, "JSArray": JSArray,
        "Sparse": SparseItems,
        "JSObject": JSObject, "JSTypedArray": JSTypedArray,
        "JSFunction": JSFunction, "NativeFunction": NativeFunction,
        "hot": tiering.backedge_hot, "tier_up": engine._tier_up,
    }
    for op, f in _thr._BINVAL.items():
        ns[f"vf{op}"] = f
    if profiling:
        ns["fprof"] = engine._profile.frame(fn.name)

    reg.counter_add("interp.js.codegen_functions", 1, SCHED)
    reg.counter_add("interp.js.codegen_blocks", len(ranges), SCHED)
    return factory(ns)


# Bound at the bottom to break the import cycle with the interpreter
# (which imports this module at *its* bottom).
from repro.jsengine.interpreter import (  # noqa: E402
    _element_get, _js_add, _to_number, execute as _execute,
)
