"""AST → bytecode compiler for the JS engine.

Scope model: function parameters and ``var``/``let`` declarations inside a
function body become numbered local slots; everything else resolves to the
global object at run time.  Top-level declarations are globals.  (Closures
are outside the subset — none of Cheerp's output or the paper's benchmark
programs need them.)
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.jsengine.bytecode import JsOp
from repro.jsengine.values import JSFunction

_BINOP = {
    "+": JsOp.ADD, "-": JsOp.SUB, "*": JsOp.MUL, "/": JsOp.DIV,
    "%": JsOp.MOD, "&": JsOp.BAND, "|": JsOp.BOR, "^": JsOp.BXOR,
    "<<": JsOp.SHL, ">>": JsOp.SHR, ">>>": JsOp.USHR,
    "<": JsOp.LT, "<=": JsOp.LE, ">": JsOp.GT, ">=": JsOp.GE,
    "==": JsOp.EQ, "!=": JsOp.NE, "===": JsOp.SEQ, "!==": JsOp.SNE,
}

_COMPOUND = {"+=": JsOp.ADD, "-=": JsOp.SUB, "*=": JsOp.MUL, "/=": JsOp.DIV,
             "%=": JsOp.MOD, "&=": JsOp.BAND, "|=": JsOp.BOR,
             "^=": JsOp.BXOR, "<<=": JsOp.SHL, ">>=": JsOp.SHR,
             ">>>=": JsOp.USHR}


def _hoist_vars(node, names):
    """Collect var/let declarations (function-scoped hoisting)."""
    kind = node[0]
    if kind == "var":
        for name, _ in node[1]:
            names.append(name)
    elif kind == "block":
        for stmt in node[1]:
            _hoist_vars(stmt, names)
    elif kind == "if":
        _hoist_vars(node[2], names)
        if node[3] is not None:
            _hoist_vars(node[3], names)
    elif kind == "while":
        _hoist_vars(node[2], names)
    elif kind == "dowhile":
        _hoist_vars(node[1], names)
    elif kind == "for":
        if node[1] is not None:
            _hoist_vars(node[1], names)
        _hoist_vars(node[4], names)


class _FunctionCompiler:
    def __init__(self, name, params, body, toplevel=False):
        self.name = name
        self.toplevel = toplevel
        self.code = []
        self.loops = []  # stack of (break_patches, continue_patches)
        self.slots = {}
        self.inner_functions = []
        if not toplevel:
            for p in params:
                self.slots[p] = len(self.slots)
            hoisted = []
            _hoist_vars(body, hoisted)
            for name_ in hoisted:
                if name_ not in self.slots:
                    self.slots[name_] = len(self.slots)
        self.params = params
        self.body = body

    # -- emission helpers --------------------------------------------------

    def emit(self, op, arg=None):
        self.code.append((int(op), arg))
        return len(self.code) - 1

    def patch(self, pc, target=None):
        op, _ = self.code[pc]
        self.code[pc] = (op, target if target is not None else len(self.code))

    # -- top level ----------------------------------------------------------

    def compile(self):
        self.compile_statement(self.body)
        self.emit(JsOp.RETU)
        return JSFunction(self.name, self.params, self.code, None,
                          len(self.slots))

    # -- statements ----------------------------------------------------------

    def compile_statement(self, node):
        kind = node[0]
        if kind == "block":
            for stmt in node[1]:
                self.compile_statement(stmt)
        elif kind == "expr":
            self.compile_expression(node[1])
            self.emit(JsOp.POP)
        elif kind == "var":
            for name, init in node[1]:
                if init is None:
                    continue
                self.compile_expression(init)
                self.emit_store_name(name)
        elif kind == "if":
            self.compile_expression(node[1])
            jf = self.emit(JsOp.JF)
            self.compile_statement(node[2])
            if node[3] is not None:
                jend = self.emit(JsOp.JMP)
                self.patch(jf)
                self.compile_statement(node[3])
                self.patch(jend)
            else:
                self.patch(jf)
        elif kind == "while":
            start = len(self.code)
            self.compile_expression(node[1])
            jf = self.emit(JsOp.JF)
            self.loops.append(([], []))
            self.compile_statement(node[2])
            breaks, continues = self.loops.pop()
            for pc in continues:
                self.patch(pc, start)
            self.emit(JsOp.JBACK, start)
            self.patch(jf)
            for pc in breaks:
                self.patch(pc)
        elif kind == "dowhile":
            start = len(self.code)
            self.loops.append(([], []))
            self.compile_statement(node[1])
            breaks, continues = self.loops.pop()
            cond_pc = len(self.code)
            for pc in continues:
                self.patch(pc, cond_pc)
            self.compile_expression(node[2])
            jf = self.emit(JsOp.JF)
            self.emit(JsOp.JBACK, start)
            self.patch(jf)
            for pc in breaks:
                self.patch(pc)
        elif kind == "for":
            if node[1] is not None:
                self.compile_statement(node[1])
            start = len(self.code)
            jf = None
            if node[2] is not None:
                self.compile_expression(node[2])
                jf = self.emit(JsOp.JF)
            self.loops.append(([], []))
            self.compile_statement(node[4])
            breaks, continues = self.loops.pop()
            update_pc = len(self.code)
            for pc in continues:
                self.patch(pc, update_pc)
            if node[3] is not None:
                self.compile_expression(node[3])
                self.emit(JsOp.POP)
            self.emit(JsOp.JBACK, start)
            if jf is not None:
                self.patch(jf)
            for pc in breaks:
                self.patch(pc)
        elif kind == "return":
            if node[1] is not None:
                self.compile_expression(node[1])
                self.emit(JsOp.RET)
            else:
                self.emit(JsOp.RETU)
        elif kind == "break":
            if not self.loops:
                raise CompileError("break outside loop")
            self.loops[-1][0].append(self.emit(JsOp.JMP))
        elif kind == "continue":
            if not self.loops:
                raise CompileError("continue outside loop")
            self.loops[-1][1].append(self.emit(JsOp.JMP))
        elif kind == "func":
            # Nested/toplevel function declaration: compiled separately and
            # installed as a global before execution starts (hoisting).
            sub = _FunctionCompiler(node[1], node[2], node[3])
            fn = sub.compile()
            self.inner_functions.append(fn)
            self.inner_functions.extend(sub.inner_functions)
        elif kind == "empty":
            pass
        else:
            raise CompileError(f"cannot compile statement {kind!r}")

    def emit_store_name(self, name):
        if name in self.slots:
            self.emit(JsOp.STOREL, self.slots[name])
        else:
            self.emit(JsOp.STOREG, name)

    def emit_load_name(self, name):
        if name in self.slots:
            self.emit(JsOp.LOADL, self.slots[name])
        else:
            self.emit(JsOp.LOADG, name)

    # -- expressions ---------------------------------------------------------

    def compile_expression(self, node):
        kind = node[0]
        if kind == "num":
            self.emit(JsOp.CONST, float(node[1]))
        elif kind == "str":
            self.emit(JsOp.CONST, node[1])
        elif kind == "bool":
            self.emit(JsOp.CONST, node[1])
        elif kind == "null":
            self.emit(JsOp.CONST, None)
        elif kind == "undefined":
            from repro.jsengine.values import UNDEFINED
            self.emit(JsOp.CONST, UNDEFINED)
        elif kind == "ident":
            self.emit_load_name(node[1])
        elif kind == "bin":
            if node[1] == ",":
                self.compile_expression(node[2])
                self.emit(JsOp.POP)
                self.compile_expression(node[3])
            else:
                self.compile_expression(node[2])
                self.compile_expression(node[3])
                self.emit(_BINOP[node[1]])
        elif kind == "logical":
            self.compile_expression(node[2])
            self.emit(JsOp.DUP)
            skip = self.emit(JsOp.JF if node[1] == "&&" else JsOp.JT)
            self.emit(JsOp.POP)
            self.compile_expression(node[3])
            self.patch(skip)
        elif kind == "un":
            if node[1] == "typeof":
                self.compile_expression(node[2])
                self.emit(JsOp.TYPEOF)
            elif node[1] == "+":
                self.compile_expression(node[2])
            else:
                self.compile_expression(node[2])
                self.emit({"-": JsOp.NEG, "!": JsOp.NOT,
                           "~": JsOp.BNOT}[node[1]])
        elif kind == "assign":
            self.compile_assignment(node)
        elif kind == "cond":
            self.compile_expression(node[1])
            jf = self.emit(JsOp.JF)
            self.compile_expression(node[2])
            jend = self.emit(JsOp.JMP)
            self.patch(jf)
            self.compile_expression(node[3])
            self.patch(jend)
        elif kind == "call":
            callee = node[1]
            if callee == ("member", ("ident", "Math"), "imul") and \
                    len(node[2]) == 2:
                # Engines intrinsify Math.imul — so do we.
                self.compile_expression(node[2][0])
                self.compile_expression(node[2][1])
                self.emit(JsOp.IMUL)
            elif callee[0] == "member":
                self.compile_expression(callee[1])
                for arg in node[2]:
                    self.compile_expression(arg)
                self.emit(JsOp.METHOD, (callee[2], len(node[2])))
            else:
                self.compile_expression(callee)
                for arg in node[2]:
                    self.compile_expression(arg)
                self.emit(JsOp.CALL, len(node[2]))
        elif kind == "new":
            self.compile_expression(node[1])
            for arg in node[2]:
                self.compile_expression(arg)
            self.emit(JsOp.NEWCALL, len(node[2]))
        elif kind == "member":
            self.compile_expression(node[1])
            self.emit(JsOp.GETMEM, node[2])
        elif kind == "index":
            self.compile_expression(node[1])
            self.compile_expression(node[2])
            self.emit(JsOp.GETIDX)
        elif kind == "array":
            for elem in node[1]:
                self.compile_expression(elem)
            self.emit(JsOp.NEWARR, len(node[1]))
        elif kind == "object":
            keys = tuple(k for k, _ in node[1])
            for _, value in node[1]:
                self.compile_expression(value)
            self.emit(JsOp.NEWOBJ, keys)
        elif kind in ("pre", "post"):
            self.compile_incdec(node)
        else:
            raise CompileError(f"cannot compile expression {kind!r}")

    def compile_assignment(self, node):
        _, op, target, value = node
        tkind = target[0]
        if tkind == "ident":
            if op == "=":
                self.compile_expression(value)
            else:
                self.emit_load_name(target[1])
                self.compile_expression(value)
                self.emit(_COMPOUND[op])
            self.emit(JsOp.DUP)
            self.emit_store_name(target[1])
        elif tkind == "member":
            self.compile_expression(target[1])
            if op == "=":
                self.compile_expression(value)
            else:
                self.emit(JsOp.DUP)
                self.emit(JsOp.GETMEM, target[2])
                self.compile_expression(value)
                self.emit(_COMPOUND[op])
            self.emit(JsOp.SETMEM, target[2])
        elif tkind == "index":
            self.compile_expression(target[1])
            self.compile_expression(target[2])
            if op == "=":
                self.compile_expression(value)
            else:
                self.emit(JsOp.DUP2)
                self.emit(JsOp.GETIDX)
                self.compile_expression(value)
                self.emit(_COMPOUND[op])
            self.emit(JsOp.SETIDX)
        else:
            raise CompileError(f"invalid assignment target {tkind!r}")

    def compile_incdec(self, node):
        kind, op, target = node
        delta = 1.0 if op == "++" else -1.0
        is_post = kind == "post"
        tkind = target[0]
        if tkind == "ident":
            self.emit_load_name(target[1])
            if is_post:
                self.emit(JsOp.DUP)
                self.emit(JsOp.CONST, delta)
                self.emit(JsOp.ADD)
                self.emit_store_name(target[1])
            else:
                self.emit(JsOp.CONST, delta)
                self.emit(JsOp.ADD)
                self.emit(JsOp.DUP)
                self.emit_store_name(target[1])
        elif tkind == "index":
            self.compile_expression(target[1])
            self.compile_expression(target[2])
            self.emit(JsOp.INCIDX, (delta, is_post))
        elif tkind == "member":
            self.compile_expression(target[1])
            self.emit(JsOp.INCMEM, (target[2], delta, is_post))
        else:
            raise CompileError(f"invalid ++/-- target {tkind!r}")


def compile_program(program_ast):
    """Compile a parsed program.

    Returns ``(toplevel_fn, functions)`` where ``functions`` is the list of
    declared :class:`JSFunction` objects (hoisted to globals)."""
    top = _FunctionCompiler("<toplevel>", [], program_ast, toplevel=True)
    toplevel_fn = top.compile()
    return toplevel_fn, top.inner_functions


def script_code_unit(toplevel_fn, functions, name="<script>"):
    """The compiled script as a :class:`~repro.engine.compilemodel.
    CodeUnit`: total bytecode size plus a static opclass census, so the
    engine's startup compile can be priced by a modeled compiler instead
    of a flat per-op constant."""
    from repro.engine.compilemodel import CodeUnit, empty_census
    from repro.jsengine.bytecode import JS_OP_CLASS
    counts = empty_census()
    total_ops = 0
    for fn in (toplevel_fn, *functions):
        total_ops += len(fn.code)
        for op, _arg in fn.code:
            counts[JS_OP_CLASS[op]] += 1
    return CodeUnit(name=name, static_instrs=total_ops,
                    functions=1 + len(functions),
                    opclass_counts=tuple(counts))
