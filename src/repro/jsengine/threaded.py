"""Threaded-code execution tier for the JS bytecode interpreter.

Exactness rules (see :mod:`repro.engine.threaded`) as they apply here:

* **Cycles self-charge per op.**  The charge stream is
  ``JS_OP_COST[op] * tier_factor`` with non-dyadic factors (1.12, 0.73,
  3.2, ...), plus dynamic extras (boxed-element penalties, GC pauses,
  ``NativeFunction`` costs).  Reordering those float additions is not
  bit-exact, so every handler adds its own pre-bound constant in exactly
  the reference ladder's left-fold order; only the integer counters
  (``instructions``, ``op_counts``) batch per block, with rewinds on
  handlers that can raise.
* **Dual tier variants.**  A function's tier picks its cost table and
  factor, and can only change at block terminators (``JBACK`` OSR,
  call returns).  Each block carries a tier-0 and a tier-1 handler
  sequence with charges pre-bound for that tier; the trampoline selects
  per block entry.
* **GC checks only where the counter can rise.**  The reference checks
  ``allocated_since_gc`` after *every* op, but the counter only moves on
  allocation (``ADD`` string path, ``SETIDX`` extends, ``NEWARR``/
  ``NEWOBJ``, calls into allocating callees), so checking at exactly
  those points — and entering frames already over-trigger through the
  reference ladder (the ``execute`` gate) — reproduces every collection
  at the same op with the same pause arithmetic.
* **Flush discipline.**  The frame-local ``acc[0]`` cycle accumulator is
  flushed to ``stats.cycles`` only where the reference flushes its local:
  before recursing into a ``JSFunction`` callee, and in the frame's
  ``finally``.  ``performance.now()`` therefore reads identical mid-run
  values.  ``NEWCALL`` deliberately does *not* flush (neither does the
  reference), and ``RET``/``RETU`` return before any GC check.
* **Shadow locals mirror the reference frame's arm locals.**  GC
  reachability is delegated to Python's object graph, so the reference
  ladder's *stale* frame locals (``obj`` from the last GETIDX, ``a``/``b``
  from the last binop, the last ``call_args`` list, ...) pin heap objects
  until the next arm rebinds them — and that changes ``live_bytes()`` at
  collection time, hence the pause cycles.  Handler locals die at handler
  return, so each frame carries a shadow slot per reference local name
  (``acc[2]``), written exactly where the reference rebinds that name.
  Slots the reference only ever rebinds to numbers on a given arm are
  written as ``0.0``: shadow contents are observable *only* through the
  liveness of registered objects, so any non-heap value is equivalent.
"""

from __future__ import annotations

import math

from repro.clibm import c_fmod
from repro.engine.threaded import (
    class_deltas, fuse_straight_line, match_tail, split_blocks,
)
from repro.jsengine.bytecode import JS_OP_CLASS, JS_OP_COST, JS_OP_COST_OPT
from repro.obs import SCHED, get_registry
from repro.jsengine.values import (
    JSArray,
    JSFunction,
    JSObject,
    JSTypedArray,
    NativeFunction,
    UNDEFINED,
    js_to_str,
    js_truthy,
    to_int32,
    to_uint32,
)

_TERM_OPS = frozenset((27, 28, 29, 30, 31, 32, 33, 34, 44))
_JUMPS = frozenset((27, 28, 29, 30))

#: Ops the threaded tier translates.  ``COMMA`` (48) is absent by design:
#: the compiler never emits it and the reference ladder has no arm for it
#: either — both tiers reject it with a structured error.
SUPPORTED_OPS = frozenset(range(48)) | {49}


def _setidx_work(heap, obj, index, value, sh):
    """The reference SETIDX body (everything after the boxed-element
    penalty), shared by the single and fused handlers."""
    if isinstance(obj, JSArray):
        i = int(index)
        items = obj.items
        sh[_SH_I] = 0.0
        sh[_SH_ITEMS] = items
        if i >= len(items):
            heap.note_ephemeral(8 * (i + 1 - len(items)))
            items.extend([UNDEFINED] * (i + 1 - len(items)))
        items[i] = value
    elif isinstance(obj, JSTypedArray):
        i = int(index)
        sh[_SH_I] = 0.0
        if 0 <= i < len(obj.items):
            if obj.width == 8:
                obj.items[i] = _to_number(value)
            elif obj.kind == "Uint8Array":
                obj.items[i] = float(to_int32(value) & 0xFF)
            elif obj.kind == "Uint16Array":
                obj.items[i] = float(to_int32(value) & 0xFFFF)
            elif obj.kind == "Uint32Array":
                obj.items[i] = float(to_uint32(value))
            else:
                obj.items[i] = float(to_int32(value))
    elif isinstance(obj, JSObject):
        obj.props[js_to_str(index)] = value
    else:
        raise JsRuntimeError(f"cannot index-assign {type(obj).__name__}")


def _shl(a, b):
    b = to_uint32(b) & 31
    v = (to_int32(a) << b) & 0xFFFFFFFF
    return float(v - 0x100000000 if v & 0x80000000 else v)


def _div(a, b):
    a = a if type(a) is float else _to_number(a)
    b = b if type(b) is float else _to_number(b)
    if b == 0.0:
        if a == 0.0 or a != a:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return a / b


def _lt(a, b):
    if isinstance(a, str) and isinstance(b, str):
        return a < b
    return _to_number(a) < _to_number(b)


def _le(a, b):
    if isinstance(a, str) and isinstance(b, str):
        return a <= b
    return _to_number(a) <= _to_number(b)


def _gt(a, b):
    if isinstance(a, str) and isinstance(b, str):
        return a > b
    return _to_number(a) > _to_number(b)


def _ge(a, b):
    if isinstance(a, str) and isinstance(b, str):
        return a >= b
    return _to_number(a) >= _to_number(b)


#: Pure (never-raising, never-allocating) binary value functions; the
#: comparisons return the same Python bools the reference pushes.
_BINVAL = {
    6: lambda a, b: (a if type(a) is float else _to_number(a)) -
    (b if type(b) is float else _to_number(b)),
    7: lambda a, b: (a if type(a) is float else _to_number(a)) *
    (b if type(b) is float else _to_number(b)),
    8: _div,
    9: lambda a, b: c_fmod(_to_number(a), _to_number(b)),
    13: lambda a, b: float(to_int32(a) & to_int32(b)),
    14: lambda a, b: float(to_int32(a) | to_int32(b)),
    15: lambda a, b: float(to_int32(a) ^ to_int32(b)),
    16: _shl,
    17: lambda a, b: float(to_int32(a) >> (to_uint32(b) & 31)),
    18: lambda a, b: float(to_uint32(a) >> (to_uint32(b) & 31)),
    19: _lt, 20: _le, 21: _gt, 22: _ge,
    23: lambda a, b: _js_loose_eq(a, b),
    24: lambda a, b: not _js_loose_eq(a, b),
    25: lambda a, b: type(a) is type(b) and a == b,
    26: lambda a, b: not (type(a) is type(b) and a == b),
    49: lambda a, b: float(to_int32(to_int32(a) * to_int32(b))),
}

_CMP_OPS = frozenset((19, 20, 21, 22, 23, 24, 25, 26))

# Shadow-local slots (see module docstring): one per reference arm local
# that can hold — and therefore pin — a registered heap object.  The
# frame's shadow list rides in ``acc[2]``.
_SH_I = 0        # i        (GETIDX any-typed index; int elsewhere)
_SH_OBJ = 1      # obj
_SH_VALUE = 2    # value
_SH_INDEX = 3    # index
_SH_A = 4        # a
_SH_B = 5        # b
_SH_V = 6        # v
_SH_ARGS = 7     # call_args
_SH_CALLEE = 8   # callee
_SH_THIS = 9     # this_val
_SH_CTOR = 10    # ctor
_SH_ARRAY = 11   # array
_SH_ITEMS = 12   # items
_SH_VALUES = 13  # values
_NSHADOW = 14


def _sh_ab(sh, a, b):
    sh[_SH_A] = a
    sh[_SH_B] = b


def _sh_b(sh, a, b):
    sh[_SH_B] = b


def _sh_ab_num(sh, a, b):
    sh[_SH_A] = 0.0
    sh[_SH_B] = 0.0


def _sh_b_num(sh, a, b):
    sh[_SH_B] = 0.0


def _sh_shl(sh, a, b):
    sh[_SH_B] = 0.0
    sh[_SH_V] = 0.0


#: op → mirror of exactly the names that op's reference arm rebinds.
#: Most arms bind the popped originals; DIV rebinds both to coerced
#: floats, EQ/NE and the bitwise ops bind only ``b``, the shifts rebind
#: ``b`` (and SHL also ``v``) to numbers.  ADD is handled in its own
#: handler (it also binds ``v`` on the non-float path).
_SHADOW_BIN = {
    6: _sh_ab, 7: _sh_ab, 9: _sh_ab,
    8: _sh_ab_num,
    13: _sh_b, 14: _sh_b, 15: _sh_b,
    16: _sh_shl, 17: _sh_b_num, 18: _sh_b_num,
    19: _sh_ab, 20: _sh_ab, 21: _sh_ab, 22: _sh_ab,
    23: _sh_b, 24: _sh_b,
    25: _sh_ab, 26: _sh_ab,
    49: _sh_ab,
}


def _build_patterns():
    patterns = {}

    def add(pat, key):
        patterns.setdefault(pat[0], []).append((pat, key))

    for bop in (5,) + tuple(_BINVAL):
        add((1, 1, bop, 2), ("llbs", bop))
        add((1, 1, bop), ("llb", bop))
        add((1, 0, bop, 2), ("lcbs", bop))
        add((1, 0, bop), ("lcb", bop))
    add((1, 1, 37), ("llgi", None))
    add((1, 1, 1, 38, 42), ("lllsp", None))
    add((1, 1, 1, 38), ("llls", None))
    add((0, 2), ("cs", None))
    add((1, 2), ("ls", None))
    for entries in patterns.values():
        entries.sort(key=lambda e: len(e[0]), reverse=True)
    return patterns


def _build_tail_patterns():
    tails = []
    for br in (28, 29):                   # JF / JT
        for cmp_op in _CMP_OPS:
            tails.append(((1, 1, cmp_op, br), ("llc", cmp_op, br)))
            tails.append(((1, 0, cmp_op, br), ("lcc", cmp_op, br)))
            tails.append(((cmp_op, br), ("cb", cmp_op, br)))
    tails.append(((1, 33), ("lret", None, None)))
    tails.sort(key=lambda e: len(e[0]), reverse=True)
    return tails


_PATTERNS = _build_patterns()
_TAIL_PATTERNS = _build_tail_patterns()


class _Block:
    __slots__ = ("n", "deltas", "op_deltas", "seq0", "term0", "seq1",
                 "term1")

    def __init__(self, n, deltas, op_deltas, seq0, term0, seq1, term1):
        self.n = n
        self.deltas = deltas
        self.op_deltas = op_deltas    # sparse (opcode, count) — profiler
        self.seq0 = seq0
        self.term0 = term0
        self.seq1 = seq1
        self.term1 = term1


class ThreadedFunction:
    __slots__ = ("fn", "blocks", "nparams", "num_locals")

    def __init__(self, fn, blocks, nparams, num_locals):
        self.fn = fn
        self.blocks = blocks
        self.nparams = nparams
        self.num_locals = num_locals


def translate(fn, engine):
    code = fn.code
    n = len(code)
    for pc, (op, _arg) in enumerate(code):
        if op not in SUPPORTED_OPS:
            raise JsRuntimeError(
                f"{fn.name}: unimplemented bytecode op {op} at pc {pc} "
                f"(threaded tier has no handler)")

    leaders = {0}
    for pc, (op, arg) in enumerate(code):
        if op in _TERM_OPS:
            leaders.add(pc + 1)
            if op in _JUMPS:
                leaders.add(arg)
    ranges = split_blocks(n, leaders)
    block_index = {start: bi for bi, (start, _end) in enumerate(ranges)}

    def bi_of(pc):
        return -1 if pc >= n else block_index[pc]

    stats = engine.stats
    counts = stats.op_counts
    heap = engine.heap
    globals_ = engine.globals
    tiering = engine.tiering
    jit_enabled = engine.config.jit_enabled
    klass = JS_OP_CLASS

    def gc_check(acc):
        # Reference post-op GC check (trace is None on this path: the
        # execute() gate sends traced runs down the reference ladder).
        if heap.allocated_since_gc >= heap.trigger_bytes:
            pause = heap.collect()
            stats.gc_runs += 1
            stats.gc_pause_cycles += pause
            acc[0] += pause

    blocks = []
    handler_total = 0
    fusion_wins = 0
    for start, end in ranges:
        ops = code[start:end]
        blk_n = len(ops)
        classes = [int(klass[op]) for op, _a in ops]
        deltas = class_deltas(classes)
        nbi = bi_of(end)

        def make_rewind(idx):
            """Subtract the integer charges for instructions after ``idx``
            (cycles are self-charged, so only counts/instret rewind)."""
            n_sfx = blk_n - (idx + 1)
            delta_sfx = class_deltas(classes[idx + 1:])

            def rewind():
                stats.instructions -= n_sfx
                for ci, d in delta_sfx:
                    counts[ci] -= d
            return rewind

        def build_variant(cost, factor, tier0):
            charges = [cost[op] * factor for op, _a in ops]
            idx_extra = 1.6 * factor
            set_extra = 2.0 * factor

            def single(instr, idx):
                op, arg = instr
                c = charges[idx]
                if op == 1:       # LOADL
                    def h(st, lo, acc, c=c, i=arg):
                        acc[0] += c
                        st.append(lo[i])
                    return h
                if op == 0:       # CONST
                    def h(st, lo, acc, c=c, k=arg):
                        acc[0] += c
                        st.append(k)
                    return h
                if op == 2:       # STOREL
                    def h(st, lo, acc, c=c, i=arg):
                        acc[0] += c
                        lo[i] = st.pop()
                    return h
                if op == 5:       # ADD
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        b = st.pop()
                        a = st.pop()
                        sh = acc[2]
                        sh[_SH_A] = a
                        sh[_SH_B] = b
                        if type(a) is float and type(b) is float:
                            st.append(a + b)
                        else:
                            v = _js_add(a, b)
                            sh[_SH_V] = v
                            if isinstance(v, str):
                                heap.note_ephemeral(16 + 2 * len(v))
                            st.append(v)
                            gc_check(acc)
                    return h
                if op in _BINVAL:
                    def h(st, lo, acc, c=c, f=_BINVAL[op],
                          w=_SHADOW_BIN[op]):
                        acc[0] += c
                        b = st.pop()
                        a = st[-1]
                        w(acc[2], a, b)
                        st[-1] = f(a, b)
                    return h
                if op == 37:      # GETIDX
                    rw = make_rewind(idx)

                    def h(st, lo, acc, c=c, ex=idx_extra, rw=rw):
                        acc[0] += c
                        i = st.pop()
                        obj = st.pop()
                        sh = acc[2]
                        sh[_SH_I] = i
                        sh[_SH_OBJ] = obj
                        if type(obj) is JSArray:
                            acc[0] += ex
                        try:
                            st.append(_element_get(obj, i))
                        except BaseException:
                            rw()
                            raise
                    return h
                if op == 38:      # SETIDX
                    rw = make_rewind(idx)

                    def h(st, lo, acc, c=c, ex=set_extra, rw=rw):
                        acc[0] += c
                        value = st.pop()
                        index = st.pop()
                        obj = st.pop()
                        sh = acc[2]
                        sh[_SH_VALUE] = value
                        sh[_SH_INDEX] = index
                        sh[_SH_OBJ] = obj
                        if type(obj) is JSArray:
                            acc[0] += ex
                        try:
                            _setidx_work(heap, obj, index, value, sh)
                        except BaseException:
                            rw()
                            raise
                        st.append(value)
                        gc_check(acc)
                    return h
                if op == 10:      # NEG
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        st[-1] = -_to_number(st[-1])
                    return h
                if op == 11:      # NOT
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        st[-1] = not js_truthy(st[-1])
                    return h
                if op == 12:      # BNOT
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        st[-1] = float(~to_int32(st[-1]))
                    return h
                if op == 3:       # LOADG
                    def h(st, lo, acc, c=c, name=arg):
                        acc[0] += c
                        st.append(globals_.get(name, UNDEFINED))
                    return h
                if op == 4:       # STOREG
                    def h(st, lo, acc, c=c, name=arg):
                        acc[0] += c
                        globals_[name] = st.pop()
                    return h
                if op == 39:      # GETMEM
                    rw = make_rewind(idx)

                    def h(st, lo, acc, c=c, name=arg, rw=rw):
                        acc[0] += c
                        obj = st.pop()
                        acc[2][_SH_OBJ] = obj
                        try:
                            st.append(engine._member_get(obj, name))
                        except BaseException:
                            rw()
                            raise
                    return h
                if op == 40:      # SETMEM
                    rw = make_rewind(idx)

                    def h(st, lo, acc, c=c, name=arg, rw=rw):
                        acc[0] += c
                        value = st.pop()
                        obj = st.pop()
                        sh = acc[2]
                        sh[_SH_VALUE] = value
                        sh[_SH_OBJ] = obj
                        try:
                            if isinstance(obj, JSObject):
                                obj.props[name] = value
                            elif isinstance(obj, JSArray) and \
                                    name == "length":
                                new_len = int(_to_number(value))
                                del obj.items[new_len:]
                            else:
                                raise JsRuntimeError(
                                    f"cannot set {name} on "
                                    f"{type(obj).__name__}")
                        except BaseException:
                            rw()
                            raise
                        st.append(value)
                    return h
                if op == 35:      # NEWARR
                    def h(st, lo, acc, c=c, count=arg):
                        acc[0] += c
                        if count:
                            items = st[-count:]
                            del st[-count:]
                        else:
                            items = []
                        array = JSArray(items)
                        heap.register(array)
                        sh = acc[2]
                        sh[_SH_ITEMS] = items
                        sh[_SH_ARRAY] = array
                        st.append(array)
                        gc_check(acc)
                    return h
                if op == 36:      # NEWOBJ
                    def h(st, lo, acc, c=c, keys=arg):
                        acc[0] += c
                        nkeys = len(keys)
                        if nkeys:
                            values = st[-nkeys:]
                            del st[-nkeys:]
                        else:
                            values = []
                        obj = JSObject(dict(zip(keys, values)))
                        heap.register(obj)
                        sh = acc[2]
                        sh[_SH_VALUES] = values
                        sh[_SH_OBJ] = obj
                        st.append(obj)
                        gc_check(acc)
                    return h
                if op == 41:      # DUP
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        st.append(st[-1])
                    return h
                if op == 45:      # DUP2
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        st.append(st[-2])
                        st.append(st[-2])
                    return h
                if op == 42:      # POP
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        st.pop()
                    return h
                if op == 43:      # TYPEOF
                    def h(st, lo, acc, c=c):
                        acc[0] += c
                        v = st.pop()
                        acc[2][_SH_V] = v
                        if isinstance(v, float):
                            st.append("number")
                        elif isinstance(v, str):
                            st.append("string")
                        elif isinstance(v, bool):
                            st.append("boolean")
                        elif v is UNDEFINED:
                            st.append("undefined")
                        elif isinstance(v, (JSFunction, NativeFunction)):
                            st.append("function")
                        else:
                            st.append("object")
                    return h
                if op == 46:      # INCIDX
                    rw = make_rewind(idx)
                    delta, is_post = arg

                    def h(st, lo, acc, c=c, delta=delta, is_post=is_post,
                          rw=rw):
                        acc[0] += c
                        index = st.pop()
                        obj = st.pop()
                        sh = acc[2]
                        sh[_SH_INDEX] = index
                        sh[_SH_OBJ] = obj
                        try:
                            old = _to_number(_element_get(obj, index))
                            new = old + delta
                            i = int(index)
                            sh[_SH_I] = 0.0
                            if isinstance(obj, (JSArray, JSTypedArray)):
                                obj.items[i] = new
                            else:
                                obj.props[js_to_str(index)] = new
                        except BaseException:
                            rw()
                            raise
                        st.append(old if is_post else new)
                    return h
                if op == 47:      # INCMEM
                    rw = make_rewind(idx)
                    name, delta, is_post = arg

                    def h(st, lo, acc, c=c, name=name, delta=delta,
                          is_post=is_post, rw=rw):
                        acc[0] += c
                        obj = st.pop()
                        acc[2][_SH_OBJ] = obj
                        try:
                            old = _to_number(engine._member_get(obj, name))
                            new = old + delta
                            obj.props[name] = new
                        except BaseException:
                            rw()
                            raise
                        st.append(old if is_post else new)
                    return h
                raise JsRuntimeError(
                    f"{fn.name}: unimplemented bytecode op {op} "
                    f"(threaded tier)")

            def fused(key, fops, idx):
                kind = key[0]
                cs = charges[idx:idx + len(fops)]
                if kind in ("llbs", "llb", "lcbs", "lcb"):
                    bop = key[1]
                    i = fops[0][1]
                    j = fops[1][1]
                    store = kind.endswith("s")
                    k = fops[3][1] if store else None
                    from_local = kind[1] == "l"
                    if bop == 5:
                        # ADD keeps the float fast path, the string
                        # allocation charge, and the post-op GC check in
                        # reference order; the trailing STOREL charge (if
                        # fused) lands after the check, as the ladder does.
                        cst = cs[3] if store else None

                        def h(st, lo, acc, cs=cs, i=i, j=j, k=k, cst=cst,
                              from_local=from_local):
                            t = acc[0]
                            t += cs[0]
                            t += cs[1]
                            t += cs[2]
                            acc[0] = t
                            a = lo[i]
                            b = lo[j] if from_local else j
                            sh = acc[2]
                            sh[_SH_A] = a
                            sh[_SH_B] = b
                            if type(a) is float and type(b) is float:
                                v = a + b
                            else:
                                v = _js_add(a, b)
                                sh[_SH_V] = v
                                if isinstance(v, str):
                                    heap.note_ephemeral(16 + 2 * len(v))
                                    gc_check(acc)
                                elif type(a) is not float or \
                                        type(b) is not float:
                                    gc_check(acc)
                            if k is None:
                                st.append(v)
                            else:
                                acc[0] += cst
                                lo[k] = v
                        return h
                    f = _BINVAL[bop]
                    w = _SHADOW_BIN[bop]
                    if store:
                        def h(st, lo, acc, cs=cs, f=f, w=w, i=i, j=j, k=k,
                              from_local=from_local):
                            t = acc[0]
                            t += cs[0]
                            t += cs[1]
                            t += cs[2]
                            t += cs[3]
                            acc[0] = t
                            a = lo[i]
                            b = lo[j] if from_local else j
                            w(acc[2], a, b)
                            lo[k] = f(a, b)
                        return h

                    def h(st, lo, acc, cs=cs, f=f, w=w, i=i, j=j,
                          from_local=from_local):
                        t = acc[0]
                        t += cs[0]
                        t += cs[1]
                        t += cs[2]
                        acc[0] = t
                        a = lo[i]
                        b = lo[j] if from_local else j
                        w(acc[2], a, b)
                        st.append(f(a, b))
                    return h
                if kind == "llgi":
                    rw = make_rewind(idx + 2)
                    i = fops[0][1]
                    j = fops[1][1]

                    def h(st, lo, acc, cs=cs, i=i, j=j, ex=idx_extra,
                          rw=rw):
                        t = acc[0]
                        t += cs[0]
                        t += cs[1]
                        t += cs[2]
                        acc[0] = t
                        obj = lo[i]
                        sh = acc[2]
                        sh[_SH_I] = lo[j]
                        sh[_SH_OBJ] = obj
                        if type(obj) is JSArray:
                            acc[0] += ex
                        try:
                            st.append(_element_get(obj, lo[j]))
                        except BaseException:
                            rw()
                            raise
                    return h
                if kind in ("llls", "lllsp"):
                    rw = make_rewind(idx + 3)
                    i = fops[0][1]
                    j = fops[1][1]
                    k = fops[2][1]
                    cpop = cs[4] if kind == "lllsp" else None

                    def h(st, lo, acc, cs=cs, i=i, j=j, k=k, cpop=cpop,
                          ex=set_extra, rw=rw):
                        t = acc[0]
                        t += cs[0]
                        t += cs[1]
                        t += cs[2]
                        t += cs[3]
                        acc[0] = t
                        obj = lo[i]
                        value = lo[k]
                        sh = acc[2]
                        sh[_SH_VALUE] = value
                        sh[_SH_INDEX] = lo[j]
                        sh[_SH_OBJ] = obj
                        if type(obj) is JSArray:
                            acc[0] += ex
                        try:
                            _setidx_work(heap, obj, lo[j], value, sh)
                        except BaseException:
                            rw()
                            raise
                        if cpop is None:
                            st.append(value)
                        gc_check(acc)
                        if cpop is not None:
                            acc[0] += cpop
                    return h
                if kind == "cs":
                    k = fops[1][1]
                    c0 = fops[0][1]

                    def h(st, lo, acc, cs=cs, c0=c0, k=k):
                        t = acc[0]
                        t += cs[0]
                        t += cs[1]
                        acc[0] = t
                        lo[k] = c0
                    return h
                if kind == "ls":
                    i = fops[0][1]
                    k = fops[1][1]

                    def h(st, lo, acc, cs=cs, i=i, k=k):
                        t = acc[0]
                        t += cs[0]
                        t += cs[1]
                        acc[0] = t
                        lo[k] = lo[i]
                    return h
                return None

            def make_term(instr, cond=None, pre_charges=()):
                op, arg = instr
                c = charges[blk_n - 1]
                if op == 27:      # JMP
                    tbi = bi_of(arg)

                    def term(st, lo, acc, c=c, tbi=tbi):
                        acc[0] += c
                        return tbi
                    return term
                if op in (28, 29):  # JF / JT
                    tbi = bi_of(arg)
                    on_true = op == 29
                    if cond is None:
                        def term(st, lo, acc, c=c, tbi=tbi, nbi=nbi,
                                 on_true=on_true):
                            acc[0] += c
                            if js_truthy(st.pop()) == on_true:
                                return tbi
                            return nbi
                    else:
                        def term(st, lo, acc, pcs=pre_charges, c=c,
                                 cond=cond, tbi=tbi, nbi=nbi,
                                 on_true=on_true):
                            t = acc[0]
                            for pc_ in pcs:
                                t += pc_
                            t += c
                            acc[0] = t
                            if bool(cond(st, lo, acc[2])) == on_true:
                                return tbi
                            return nbi
                    return term
                if op == 30:      # JBACK
                    tbi = bi_of(arg)
                    if tier0 and jit_enabled:
                        backedge_hot = tiering.backedge_hot

                        def term(st, lo, acc, c=c, tbi=tbi):
                            acc[0] += c
                            fn.backedge_count += 1
                            if backedge_hot(fn.backedge_count):
                                engine._tier_up(fn)  # on-stack replacement
                            return tbi
                    else:
                        def term(st, lo, acc, c=c, tbi=tbi):
                            acc[0] += c
                            return tbi
                    return term
                if op == 33:      # RET
                    if cond is not None:
                        # Fused LOADL+RET: cond is the local index here.
                        i = cond

                        def term(st, lo, acc, pcs=pre_charges, c=c, i=i):
                            t = acc[0]
                            for pc_ in pcs:
                                t += pc_
                            t += c
                            acc[0] = t
                            acc[1] = lo[i]
                            return -1
                        return term

                    def term(st, lo, acc, c=c):
                        acc[0] += c
                        acc[1] = st.pop()
                        return -1
                    return term
                if op == 34:      # RETU
                    def term(st, lo, acc, c=c):
                        acc[0] += c
                        acc[1] = UNDEFINED
                        return -1
                    return term
                if op in (31, 32):  # CALL / METHOD
                    is_method = op == 32
                    if is_method:
                        name, nargs = arg
                    else:
                        name, nargs = None, arg

                    def term(st, lo, acc, c=c, name=name, nargs=nargs,
                             is_method=is_method, arg=arg, nbi=nbi,
                             factor=factor):
                        acc[0] += c
                        if nargs:
                            call_args = st[-nargs:]
                            del st[-nargs:]
                        else:
                            call_args = []
                        sh = acc[2]
                        sh[_SH_ARGS] = call_args
                        if is_method:
                            this_val = st.pop()
                            sh[_SH_THIS] = this_val
                            callee = engine._member_get(this_val, name)
                        else:
                            callee = st.pop()
                            this_val = UNDEFINED
                            sh[_SH_THIS] = UNDEFINED
                        sh[_SH_CALLEE] = callee
                        if isinstance(callee, JSFunction):
                            stats.cycles += acc[0]
                            acc[0] = 0.0
                            st.append(execute(engine, callee, call_args,
                                              this_val))
                        elif isinstance(callee, NativeFunction):
                            acc[0] += callee.cycles * factor
                            st.append(callee.fn(engine, this_val,
                                                call_args))
                        else:
                            raise JsRuntimeError(
                                f"{arg if is_method else callee!r} "
                                f"is not a function")
                        gc_check(acc)
                        return nbi
                    return term
                # NEWCALL — no flush before _construct (reference keeps
                # its frame-local cycles unflushed across it too).
                def term(st, lo, acc, c=c, nargs=arg, nbi=nbi):
                    acc[0] += c
                    if nargs:
                        call_args = st[-nargs:]
                        del st[-nargs:]
                    else:
                        call_args = []
                    ctor = st.pop()
                    sh = acc[2]
                    sh[_SH_ARGS] = call_args
                    sh[_SH_CTOR] = ctor
                    st.append(engine._construct(ctor, call_args))
                    gc_check(acc)
                    return nbi
                return term

            has_term = bool(ops) and ops[-1][0] in _TERM_OPS
            body = ops[:-1] if has_term else ops
            term = None
            if has_term and ops[-1][0] in (28, 29, 33):
                hit = match_tail(ops, lambda o: o[0], _TAIL_PATTERNS)
                if hit is not None:
                    key, ln = hit
                    kind = key[0]
                    pre = tuple(charges[blk_n - ln:blk_n - 1])
                    if kind == "llc":
                        f = _BINVAL[key[1]]
                        w = _SHADOW_BIN[key[1]]
                        i, j = ops[-4][1], ops[-3][1]

                        def cond(st, lo, sh, f=f, w=w, i=i, j=j):
                            a = lo[i]
                            b = lo[j]
                            w(sh, a, b)
                            return f(a, b)
                        term = make_term(ops[-1], cond, pre)
                    elif kind == "lcc":
                        f = _BINVAL[key[1]]
                        w = _SHADOW_BIN[key[1]]
                        i, k = ops[-4][1], ops[-3][1]

                        def cond(st, lo, sh, f=f, w=w, i=i, k=k):
                            a = lo[i]
                            w(sh, a, k)
                            return f(a, k)
                        term = make_term(ops[-1], cond, pre)
                    elif kind == "cb":
                        f = _BINVAL[key[1]]
                        w = _SHADOW_BIN[key[1]]

                        def cond(st, lo, sh, f=f, w=w):
                            b = st.pop()
                            a = st.pop()
                            w(sh, a, b)
                            return f(a, b)
                        term = make_term(ops[-1], cond, pre)
                    else:             # "lret"
                        term = make_term(ops[-1], ops[-2][1], pre)
                    if term is not None:
                        body = ops[:-ln]
            if term is None:
                if has_term:
                    term = make_term(ops[-1])
                else:
                    def term(st, lo, acc, nbi=nbi):
                        return nbi
            seq = fuse_straight_line(body, lambda o: o[0], _PATTERNS,
                                     single, fused)
            # Closures saved by fusion: straight-line wins plus the ops a
            # fused block tail folded into the terminator closure.
            wins = (len(body) - len(seq)) + max(0, blk_n - len(body) - 1)
            return seq, term, wins

        f0 = tiering.exec_factor(0)
        f1 = tiering.exec_factor(1)
        seq0, term0, wins0 = build_variant(JS_OP_COST, f0, True)
        seq1, term1, _wins1 = build_variant(JS_OP_COST_OPT, f1, False)
        op_deltas = class_deltas([op for op, _a in ops])
        handler_total += len(seq0)
        fusion_wins += wins0
        blocks.append(_Block(blk_n, deltas, op_deltas, seq0, term0, seq1,
                             term1))

    reg = get_registry()
    reg.counter_add("interp.js.translated_functions", 1, SCHED)
    reg.counter_add("interp.js.translated_blocks", len(blocks), SCHED)
    reg.counter_add("interp.js.handlers", handler_total, SCHED)
    reg.counter_add("interp.js.fused_superinstructions", fusion_wins, SCHED)
    return ThreadedFunction(fn, blocks, len(fn.params), fn.num_locals)


def run(engine, fn, tf, args):
    """Execute a translated frame.  The caller (``execute``) has already
    done the tier-up preamble and the over-trigger / trace gating."""
    locals_ = list(args[:tf.nparams])
    if len(locals_) < tf.num_locals:
        locals_ += [UNDEFINED] * (tf.num_locals - len(locals_))
    stack = []
    stats = engine.stats
    counts = stats.op_counts
    blocks = tf.blocks
    # [cycle accumulator, return value, shadow locals] — the shadow list
    # mirrors the reference frame's arm locals for GC reachability.
    acc = [0.0, UNDEFINED, [None] * _NSHADOW]
    prof = engine._profile
    fprof = prof.frame(fn.name) if prof is not None else None
    bi = 0 if blocks else -1
    try:
        while bi >= 0:
            blk = blocks[bi]
            stats.instructions += blk.n
            for ci, d in blk.deltas:
                counts[ci] += d
            if fn.tier:
                if fprof is not None:
                    for op, d in blk.op_deltas:
                        key = op + 256
                        fprof[key] = fprof.get(key, 0) + d
                for h in blk.seq1:
                    h(stack, locals_, acc)
                bi = blk.term1(stack, locals_, acc)
            else:
                if fprof is not None:
                    for op, d in blk.op_deltas:
                        fprof[op] = fprof.get(op, 0) + d
                for h in blk.seq0:
                    h(stack, locals_, acc)
                bi = blk.term0(stack, locals_, acc)
    finally:
        stats.cycles += acc[0]
    return acc[1]


# Bound at the bottom to break the import cycle: the interpreter imports
# this module at *its* bottom, so by the time either body needs these
# names at runtime, both namespaces are complete.
from repro.jsengine.interpreter import (  # noqa: E402
    JsRuntimeError, _element_get, _js_add, _js_loose_eq, _to_number, execute,
)
