"""Recursive-descent parser for the JavaScript subset.

Produces a lightweight tagged-tuple AST:

Expressions::

    ('num', value)               ('str', value)        ('ident', name)
    ('bool', value)              ('null',)             ('undefined',)
    ('bin', op, left, right)     ('logical', op, l, r) ('un', op, expr)
    ('assign', op, target, val)  ('cond', c, t, f)     ('call', callee, args)
    ('new', callee, args)        ('member', obj, name) ('index', obj, expr)
    ('array', elems)             ('object', pairs)
    ('pre', op, target)          ('post', op, target)

Statements::

    ('var', [(name, init_or_None), ...])   ('expr', expr)
    ('if', cond, then, else_or_None)       ('while', cond, body)
    ('dowhile', body, cond)                ('for', init, cond, update, body)
    ('return', expr_or_None)               ('break',)  ('continue',)
    ('block', stmts)                       ('func', name, params, body)
    ('empty',)

The subset covers what Cheerp's genericjs output and our manually-written
benchmark programs need; unsupported constructs raise :class:`ParseError`.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.jsengine.lexer import tokenize_js

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
               "<<=", ">>=", ">>>="}

# Binary operator precedence (higher binds tighter).
_PRECEDENCE = {
    "||": 1, "&&": 2,
    "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class _Parser:
    def __init__(self, tokens):
        self.tokens = tokens
        self.pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, ahead=0):
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self):
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind, value=None):
        tok = self.peek()
        return tok.kind == kind and (value is None or tok.value == value)

    def eat(self, kind, value=None):
        if self.at(kind, value):
            return self.next()
        return None

    def expect(self, kind, value=None):
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            want = value if value is not None else kind
            raise ParseError(f"expected {want!r}, got {tok.value!r}",
                             tok.line, tok.col)
        return tok

    # -- program ----------------------------------------------------------

    def parse_program(self):
        stmts = []
        while not self.at("eof"):
            stmts.append(self.parse_statement())
        return ("block", stmts)

    # -- statements -------------------------------------------------------

    def parse_statement(self):
        tok = self.peek()
        if tok.kind == "punct" and tok.value == "{":
            return self.parse_block()
        if tok.kind == "punct" and tok.value == ";":
            self.next()
            return ("empty",)
        if tok.kind == "kw":
            handler = {
                "var": self._parse_var, "let": self._parse_var,
                "const": self._parse_var,
                "function": self._parse_function,
                "if": self._parse_if, "while": self._parse_while,
                "do": self._parse_dowhile, "for": self._parse_for,
                "return": self._parse_return,
                "break": self._parse_break,
                "continue": self._parse_continue,
            }.get(tok.value)
            if handler:
                return handler()
        expr = self.parse_expression()
        self.eat("punct", ";")
        return ("expr", expr)

    def parse_block(self):
        self.expect("punct", "{")
        stmts = []
        while not self.at("punct", "}"):
            if self.at("eof"):
                raise ParseError("unterminated block", self.peek().line)
            stmts.append(self.parse_statement())
        self.next()
        return ("block", stmts)

    def _parse_var(self):
        self.next()  # var/let/const
        decls = []
        while True:
            name = self.expect("ident").value
            init = None
            if self.eat("punct", "="):
                init = self.parse_assignment()
            decls.append((name, init))
            if not self.eat("punct", ","):
                break
        self.eat("punct", ";")
        return ("var", decls)

    def _parse_function(self):
        self.next()
        name = self.expect("ident").value
        self.expect("punct", "(")
        params = []
        while not self.at("punct", ")"):
            params.append(self.expect("ident").value)
            if not self.eat("punct", ","):
                break
        self.expect("punct", ")")
        body = self.parse_block()
        return ("func", name, params, body)

    def _parse_if(self):
        self.next()
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        then = self.parse_statement()
        els = None
        if self.eat("kw", "else"):
            els = self.parse_statement()
        return ("if", cond, then, els)

    def _parse_while(self):
        self.next()
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        return ("while", cond, self.parse_statement())

    def _parse_dowhile(self):
        self.next()
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("punct", "(")
        cond = self.parse_expression()
        self.expect("punct", ")")
        self.eat("punct", ";")
        return ("dowhile", body, cond)

    def _parse_for(self):
        self.next()
        self.expect("punct", "(")
        init = None
        if not self.at("punct", ";"):
            if self.at("kw", "var") or self.at("kw", "let"):
                init = self._parse_var()
            else:
                init = ("expr", self.parse_expression())
                self.eat("punct", ";")
        else:
            self.next()
        cond = None
        if not self.at("punct", ";"):
            cond = self.parse_expression()
        self.expect("punct", ";")
        update = None
        if not self.at("punct", ")"):
            update = self.parse_expression()
        self.expect("punct", ")")
        return ("for", init, cond, update, self.parse_statement())

    def _parse_return(self):
        tok = self.next()
        if self.at("punct", ";") or self.at("punct", "}") or \
                self.peek().line != tok.line:
            self.eat("punct", ";")
            return ("return", None)
        expr = self.parse_expression()
        self.eat("punct", ";")
        return ("return", expr)

    def _parse_break(self):
        self.next()
        self.eat("punct", ";")
        return ("break",)

    def _parse_continue(self):
        self.next()
        self.eat("punct", ";")
        return ("continue",)

    # -- expressions ------------------------------------------------------

    def parse_expression(self):
        expr = self.parse_assignment()
        while self.at("punct", ","):
            self.next()
            expr = ("bin", ",", expr, self.parse_assignment())
        return expr

    def parse_assignment(self):
        left = self.parse_conditional()
        tok = self.peek()
        if tok.kind == "punct" and tok.value in _ASSIGN_OPS:
            self.next()
            if left[0] not in ("ident", "member", "index"):
                raise ParseError("invalid assignment target",
                                 tok.line, tok.col)
            return ("assign", tok.value, left, self.parse_assignment())
        return left

    def parse_conditional(self):
        cond = self.parse_binary(1)
        if self.eat("punct", "?"):
            then = self.parse_assignment()
            self.expect("punct", ":")
            return ("cond", cond, then, self.parse_assignment())
        return cond

    def parse_binary(self, min_prec):
        left = self.parse_unary()
        while True:
            tok = self.peek()
            if tok.kind != "punct":
                return left
            prec = _PRECEDENCE.get(tok.value)
            if prec is None or prec < min_prec:
                return left
            self.next()
            right = self.parse_binary(prec + 1)
            kind = "logical" if tok.value in ("&&", "||") else "bin"
            left = (kind, tok.value, left, right)

    def parse_unary(self):
        tok = self.peek()
        if tok.kind == "punct" and tok.value in ("-", "+", "!", "~"):
            self.next()
            return ("un", tok.value, self.parse_unary())
        if tok.kind == "punct" and tok.value in ("++", "--"):
            self.next()
            target = self.parse_unary()
            return ("pre", tok.value, target)
        if tok.kind == "kw" and tok.value == "typeof":
            self.next()
            return ("un", "typeof", self.parse_unary())
        if tok.kind == "kw" and tok.value == "new":
            self.next()
            callee = self.parse_postfix(allow_call=False)
            args = []
            if self.eat("punct", "("):
                while not self.at("punct", ")"):
                    args.append(self.parse_assignment())
                    if not self.eat("punct", ","):
                        break
                self.expect("punct", ")")
            return self._postfix_chain(("new", callee, args))
        return self.parse_postfix()

    def parse_postfix(self, allow_call=True):
        expr = self.parse_primary()
        expr = self._postfix_chain(expr, allow_call)
        tok = self.peek()
        if tok.kind == "punct" and tok.value in ("++", "--"):
            self.next()
            return ("post", tok.value, expr)
        return expr

    def _postfix_chain(self, expr, allow_call=True):
        while True:
            if self.eat("punct", "."):
                name = self.next()
                if name.kind not in ("ident", "kw"):
                    raise ParseError("expected property name",
                                     name.line, name.col)
                expr = ("member", expr, name.value)
            elif self.at("punct", "["):
                self.next()
                index = self.parse_expression()
                self.expect("punct", "]")
                expr = ("index", expr, index)
            elif allow_call and self.at("punct", "("):
                self.next()
                args = []
                while not self.at("punct", ")"):
                    args.append(self.parse_assignment())
                    if not self.eat("punct", ","):
                        break
                self.expect("punct", ")")
                expr = ("call", expr, args)
            else:
                return expr

    def parse_primary(self):
        tok = self.next()
        if tok.kind == "num":
            return ("num", tok.value)
        if tok.kind == "str":
            return ("str", tok.value)
        if tok.kind == "ident":
            return ("ident", tok.value)
        if tok.kind == "kw":
            if tok.value == "true":
                return ("bool", True)
            if tok.value == "false":
                return ("bool", False)
            if tok.value == "null":
                return ("null",)
            if tok.value == "undefined":
                return ("undefined",)
            raise ParseError(f"unexpected keyword {tok.value!r}",
                             tok.line, tok.col)
        if tok.kind == "punct":
            if tok.value == "(":
                expr = self.parse_expression()
                self.expect("punct", ")")
                return expr
            if tok.value == "[":
                elems = []
                while not self.at("punct", "]"):
                    elems.append(self.parse_assignment())
                    if not self.eat("punct", ","):
                        break
                self.expect("punct", "]")
                return ("array", elems)
            if tok.value == "{":
                pairs = []
                while not self.at("punct", "}"):
                    key = self.next()
                    if key.kind not in ("ident", "str", "kw", "num"):
                        raise ParseError("bad object key", key.line, key.col)
                    self.expect("punct", ":")
                    pairs.append((str(key.value), self.parse_assignment()))
                    if not self.eat("punct", ","):
                        break
                self.expect("punct", "}")
                return ("object", pairs)
        raise ParseError(f"unexpected token {tok.value!r}", tok.line, tok.col)


def parse_js(source):
    """Parse JS-subset source into (program_ast, token_count).

    The token count drives the engine's parse-cost model."""
    tokens = tokenize_js(source)
    parser = _Parser(tokens)
    program = parser.parse_program()
    return program, len(tokens)
