"""Engine configuration: the tunable constants that distinguish V8,
SpiderMonkey, and Chakra/Blink-fork engines in the reproduction.

Every constant here is a *mechanism parameter*, not a result: the paper's
tables emerge from executing real programs under these cost models.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class JsEngineConfig:
    """Parameters of the JS execution pipeline.

    Tier factors multiply per-bytecode-op cost: ``tier0_factor`` is the
    entry tier (V8's Ignition interpreter, SpiderMonkey's Baseline),
    ``tier1_factor`` the optimizing JIT (TurboFan / Ion).
    """

    name: str = "generic"
    # Startup pipeline.
    parse_cycles_per_token: float = 18.0
    compile_cycles_per_op: float = 6.0
    tier1_compile_cycles_per_op: float = 80.0
    startup_cycles: float = 50000.0
    # Tiering.
    jit_enabled: bool = True
    tier0_factor: float = 9.0
    tier1_factor: float = 1.0
    call_threshold: int = 8
    backedge_threshold: int = 500
    # Host-call overhead (JS → native builtins).
    native_call_cycles: float = 12.0
    # GC parameters.
    gc_baseline_bytes: int = 262144
    gc_trigger_bytes: int = 2 * 1024 * 1024
    gc_pause_base_cycles: float = 8000.0
    gc_pause_per_live_byte: float = 0.02
    # Free-form notes rendered in reports.
    notes: dict = field(default_factory=dict)

    def without_jit(self):
        """The `--no-opt` configuration (Table 11): entry tier only."""
        cfg = JsEngineConfig(**{f: getattr(self, f) for f in (
            "name", "parse_cycles_per_token", "compile_cycles_per_op",
            "tier1_compile_cycles_per_op", "startup_cycles", "jit_enabled",
            "tier0_factor", "tier1_factor", "call_threshold",
            "backedge_threshold", "native_call_cycles",
            "gc_baseline_bytes", "gc_trigger_bytes",
            "gc_pause_base_cycles", "gc_pause_per_live_byte")})
        cfg.jit_enabled = False
        cfg.name = self.name + "-no-opt"
        return cfg
