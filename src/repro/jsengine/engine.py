"""The JS engine facade: parse → compile → execute, with full accounting.

One :class:`JsEngine` models one page's JavaScript realm.  ``load_script``
follows the paper's execution pipeline for JavaScript (§2.2.1): source is
parsed at run time (cost ∝ tokens), compiled to bytecode (cost ∝ ops), then
interpreted with JIT tier-up for hot code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.codegen import codegen_enabled
from repro.engine.stats import EngineStats
from repro.engine.threaded import fast_interp_enabled
from repro.engine.tiering import TierController, TierPolicy
from repro.errors import ReproError
from repro.jsengine import host as host_module
from repro.obs import new_profile
from repro.jsengine.compiler import compile_program, script_code_unit
from repro.jsengine.config import JsEngineConfig
from repro.jsengine.gc import GcHeap
from repro.jsengine.interpreter import (
    JsRuntimeError,
    _STRING_METHODS,
    _to_number,
    execute,
)
from repro.jsengine.parser import parse_js
from repro.jsengine.values import (
    JSArray,
    JSFunction,
    JSObject,
    JSTypedArray,
    NativeFunction,
    UNDEFINED,
    js_to_str,
)


@dataclass
class JsExecutionStats(EngineStats):
    """Accounting for one engine realm.

    Extends the shared :class:`~repro.engine.stats.EngineStats` protocol
    with the JS pipeline stages that precede execution (parse, token
    counts) and JIT promotion counts; ``compile_cycles`` lives on the
    shared base now.  ``cycles`` covers execution + GC pauses, as in the
    real engines' profiler attribution."""

    parse_cycles: float = 0.0
    tokens_parsed: int = 0
    tier_ups: int = 0
    #: The slice of ``compile_cycles`` charged by JIT promotions (the
    #: rest is the startup bytecode compile).
    tier_up_compile_cycles: float = 0.0

    @property
    def exec_ops(self):
        """Legacy name for the shared ``instructions`` counter."""
        return self.instructions

    @exec_ops.setter
    def exec_ops(self, value):
        self.instructions = value


class JsEngine:
    """A JavaScript realm with the paper's performance model attached."""

    def __init__(self, config=None, cycles_per_ms=400000.0):
        self.config = config or JsEngineConfig()
        self.cycles_per_ms = cycles_per_ms
        self.stats = JsExecutionStats()
        self.tiering = TierController(TierPolicy.from_js_config(self.config))
        #: Optional :class:`repro.engine.trace.ExecutionTrace`; when set,
        #: tier-up and GC events are emitted as they happen.
        self.trace = None
        self._fast = fast_interp_enabled()
        self._codegen = codegen_enabled()
        self._profile = new_profile("js")
        self.heap = GcHeap(
            baseline_bytes=self.config.gc_baseline_bytes,
            trigger_bytes=self.config.gc_trigger_bytes,
            pause_base_cycles=self.config.gc_pause_base_cycles,
            pause_per_live_byte=self.config.gc_pause_per_live_byte)
        self.globals = {}
        self.console_output = []
        self._rng_state = 0x9E3779B97F4A7C15
        self._string_method_cache = {}
        self._array_method_cache = {}
        self.globals.update(host_module.make_global_env(self))
        self.stats.cycles += self.config.startup_cycles

    # -- public API ---------------------------------------------------------

    def load_script(self, source):
        """Parse, compile, and run a script, charging the startup pipeline."""
        program, token_count = parse_js(source)
        self.stats.tokens_parsed += token_count
        self.stats.parse_cycles += \
            token_count * self.config.parse_cycles_per_token
        toplevel, functions = compile_program(program)
        # Price the bytecode compile with the policy's entry-tier model
        # (the per-instruction model reproduces the legacy flat-rate
        # arithmetic exactly; modeled compilers see the opclass census).
        unit = script_code_unit(toplevel, functions)
        self.stats.compile_cycles += \
            self.tiering.policy.basic.compile_cycles(unit)
        for fn in functions:
            self.heap.register(fn)
            self.globals[fn.name] = fn
        return execute(self, toplevel, [])

    def call_global(self, name, *args):
        """Call a previously loaded global function from the host side."""
        fn = self.globals.get(name)
        if not isinstance(fn, JSFunction):
            raise ReproError(f"no JS function named {name!r}")
        return execute(self, fn, list(args))

    def total_cycles(self):
        return (self.stats.parse_cycles + self.stats.compile_cycles +
                self.stats.cycles)

    def virtual_now_ms(self):
        """The engine's ``performance.now()``: virtual time derived from
        cycles executed so far."""
        return self.total_cycles() / self.cycles_per_ms

    def heap_used_bytes(self):
        """DevTools-style JS heap usage (steady state after collection)."""
        return self.heap.steady_state_bytes()

    # -- engine internals (used by the interpreter) ---------------------------

    def _tier_up(self, fn):
        """Promote a hot function to the optimizing tier and charge the
        compile time (TurboFan/Ion are slow compilers)."""
        fn.tier = 1
        self.stats.tier_ups += 1
        compile_cycles = self.tiering.tier_up_compile_cycles(len(fn.code))
        self.stats.compile_cycles += compile_cycles
        self.stats.tier_up_compile_cycles += compile_cycles
        if self.trace is not None:
            self.trace.emit("tier-up", self.total_cycles(), compile_cycles,
                            tier=self.tiering.policy.optimizing_name,
                            function=fn.name)

    def _string_method(self, name):
        nf = self._string_method_cache.get(name)
        if nf is None:
            py = _STRING_METHODS.get(name)
            if py is None:
                raise JsRuntimeError(f"string has no method {name!r}")
            nf = NativeFunction(name, lambda e, this, args, _py=py:
                                _register_if_array(e, _py(this, args)), 12.0)
            self._string_method_cache[name] = nf
        return nf

    def _array_method(self, name):
        nf = self._array_method_cache.get(name)
        if nf is None:
            py = _ARRAY_METHODS.get(name)
            if py is None:
                raise JsRuntimeError(f"array has no method {name!r}")
            nf = NativeFunction(name, py, 12.0)
            self._array_method_cache[name] = nf
        return nf

    def _member_get(self, obj, name):
        if isinstance(obj, JSObject):
            value = obj.props.get(name, UNDEFINED)
            return value
        if isinstance(obj, (JSArray, JSTypedArray)):
            if name == "length":
                return float(len(obj.items))
            return self._array_method(name)
        if isinstance(obj, str):
            if name == "length":
                return float(len(obj))
            return self._string_method(name)
        if obj is UNDEFINED or obj is None:
            raise JsRuntimeError(
                f"cannot read property {name!r} of {js_to_str(obj)}")
        raise JsRuntimeError(
            f"cannot read property {name!r} of {type(obj).__name__}")

    def _construct(self, ctor, args):
        if isinstance(ctor, NativeFunction):
            return ctor.fn(self, UNDEFINED, args)
        if isinstance(ctor, JSObject) and "__call__" in ctor.props:
            return ctor.props["__call__"].fn(self, UNDEFINED, args)
        if isinstance(ctor, JSFunction):
            # Constructor-style JS function: create `this`, run, return it.
            this = JSObject()
            self.heap.register(this)
            execute(self, ctor, args, this)
            return this
        raise JsRuntimeError(f"{ctor!r} is not a constructor")


def _register_if_array(engine, value):
    if isinstance(value, (JSArray, JSObject, JSTypedArray)):
        engine.heap.register(value)
    return value


def _arr_push(engine, this, args):
    engine.heap.note_ephemeral(8 * len(args))
    this.items.extend(args)
    return float(len(this.items))


def _arr_pop(engine, this, args):
    return this.items.pop() if this.items else UNDEFINED

def _arr_shift(engine, this, args):
    return this.items.pop(0) if this.items else UNDEFINED


def _arr_index_of(engine, this, args):
    target = args[0]
    for i, value in enumerate(this.items):
        if type(value) is type(target) and value == target:
            return float(i)
    return -1.0


def _arr_join(engine, this, args):
    sep = js_to_str(args[0]) if args else ","
    text = sep.join(js_to_str(v) for v in this.items)
    engine.heap.note_ephemeral(16 + 2 * len(text))
    return text


def _arr_slice(engine, this, args):
    start = int(_to_number(args[0])) if args else 0
    end = int(_to_number(args[1])) if len(args) > 1 else len(this.items)
    out = JSArray(this.items[start:end])
    engine.heap.register(out)
    return out


def _arr_fill(engine, this, args):
    value = args[0] if args else UNDEFINED
    for i in range(len(this.items)):
        this.items[i] = value
    return this


def _arr_concat(engine, this, args):
    items = list(this.items)
    for a in args:
        if isinstance(a, JSArray):
            items.extend(a.items)
        else:
            items.append(a)
    out = JSArray(items)
    engine.heap.register(out)
    return out


_ARRAY_METHODS = {
    "push": _arr_push,
    "pop": _arr_pop,
    "shift": _arr_shift,
    "indexOf": _arr_index_of,
    "join": _arr_join,
    "slice": _arr_slice,
    "fill": _arr_fill,
    "concat": _arr_concat,
}
