"""Bytecode interpreter with tiered-JIT cost accounting.

Semantics are real (programs compute real results); the performance model
charges each op ``JS_OP_COST[op] * tier_factor`` where the tier factor drops
when a function gets hot (call-count or back-edge thresholds) — V8/
SpiderMonkey-style tiering.  GC pauses are charged when the allocation
budget fills.
"""

from __future__ import annotations

import math

from repro.clibm import c_fmod
from repro.errors import ReproError
from repro.jsengine.bytecode import (
    JS_OP_CLASS, JS_OP_COST, JS_OP_COST_OPT, JsOp,
)
from repro.jsengine.values import (
    JSArray,
    JSFunction,
    JSObject,
    JSTypedArray,
    NativeFunction,
    UNDEFINED,
    js_to_str,
    js_truthy,
    to_int32,
    to_uint32,
)


class JsRuntimeError(ReproError):
    """Raised for runtime type errors in the JS subset."""


def _to_number(value):
    if isinstance(value, float):
        return value
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, str):
        text = value.strip()
        if not text:
            return 0.0
        try:
            return float(text)
        except ValueError:
            return math.nan
    if value is None:
        return 0.0
    return math.nan


def _js_add(a, b):
    if type(a) is float and type(b) is float:
        return a + b
    if isinstance(a, str) or isinstance(b, str):
        return js_to_str(a) + js_to_str(b)
    return _to_number(a) + _to_number(b)


def _js_loose_eq(a, b):
    if type(a) is type(b):
        return a == b
    if a is None and b is UNDEFINED or a is UNDEFINED and b is None:
        return True
    if isinstance(a, (float, bool)) or isinstance(b, (float, bool)):
        return _to_number(a) == _to_number(b)
    return a is b


def _element_get(obj, index):
    if isinstance(obj, (JSArray, JSTypedArray)):
        i = int(index)
        items = obj.items
        if 0 <= i < len(items):
            return items[i]
        return UNDEFINED if isinstance(obj, JSArray) else 0.0
    if isinstance(obj, str):
        i = int(index)
        return obj[i] if 0 <= i < len(obj) else UNDEFINED
    if isinstance(obj, JSObject):
        return obj.props.get(js_to_str(index), UNDEFINED)
    raise JsRuntimeError(f"cannot index {type(obj).__name__}")


_STRING_METHODS = {
    "charCodeAt": lambda s, args: float(ord(s[int(args[0])]))
    if 0 <= int(args[0]) < len(s) else math.nan,
    "charAt": lambda s, args: s[int(args[0])]
    if 0 <= int(args[0]) < len(s) else "",
    "indexOf": lambda s, args: float(s.find(js_to_str(args[0]),
                                            int(args[1]) if len(args) > 1 else 0)),
    "lastIndexOf": lambda s, args: float(s.rfind(js_to_str(args[0]))),
    "slice": lambda s, args: s[slice(int(args[0]) if args else None,
                                     int(args[1]) if len(args) > 1 else None)],
    "substring": lambda s, args: s[int(args[0]):int(args[1])]
    if len(args) > 1 else s[int(args[0]):],
    "toLowerCase": lambda s, args: s.lower(),
    "toUpperCase": lambda s, args: s.upper(),
    "split": lambda s, args: JSArray(s.split(js_to_str(args[0]))
                                     if args else [s]),
    "replace": lambda s, args: s.replace(js_to_str(args[0]),
                                         js_to_str(args[1]), 1),
    "repeat": lambda s, args: s * int(args[0]),
    "trim": lambda s, args: s.strip(),
}


def execute(engine, fn, args, this=None):
    """Run a :class:`JSFunction` frame to completion; returns its value."""
    cfg = engine.config
    stats = engine.stats
    heap = engine.heap
    globals_ = engine.globals

    tiering = engine.tiering
    if cfg.jit_enabled and fn.tier == 0:
        fn.call_count += 1
        if tiering.call_hot(fn.call_count):
            engine._tier_up(fn)

    prof = engine._profile
    if prof is not None:
        # Frame entry — counted here, before the tier gate, so both
        # execution tiers agree on per-function call counts.
        prof.call(fn.name)

    if engine._fast and engine.trace is None \
            and heap.allocated_since_gc < heap.trigger_bytes:
        # Threaded tier.  Frames entered with the GC already over-trigger
        # (an allocating construct/host call) stay on the reference
        # ladder, whose after-every-op check collects at the exact point;
        # traced runs also stay here so trace events keep their ordering.
        if engine._codegen:
            # Codegen tier: the threaded blocks compiled to generated
            # Python.  ``translate`` may decline (non-compiler bytecode
            # shapes); the sentinel pins the decision per engine.
            cg = fn.codegen
            if cg is None or cg[0] is not engine:
                cg = (engine,
                      _codegen.translate(fn, engine) or _codegen.DECLINED)
                fn.codegen = cg
            if cg[1] is not _codegen.DECLINED:
                return cg[1](args)
        cached = fn.threaded
        if cached is None or cached[0] is not engine:
            cached = (engine, _threaded.translate(fn, engine))
            fn.threaded = cached
        return _threaded.run(engine, fn, cached[1], args)

    factor = tiering.exec_factor(fn.tier)
    cost = JS_OP_COST_OPT if fn.tier else JS_OP_COST
    # Profile keys pack the executing tier into bits 8+; ``tbit`` follows
    # exactly the same refresh discipline as ``cost`` so the recorded
    # tier always matches the tier that priced the op.
    fprof = prof.frame(fn.name) if prof is not None else None
    tbit = fn.tier << 8

    nparams = len(fn.params)
    locals_ = list(args[:nparams])
    locals_ += [UNDEFINED] * (fn.num_locals - len(locals_))
    stack = []
    push = stack.append
    pop = stack.pop
    code = fn.code
    n = len(code)
    pc = 0
    klass = JS_OP_CLASS
    counts = stats.op_counts
    cycles = 0.0
    instret = 0
    result = UNDEFINED

    try:
        while pc < n:
            op, arg = code[pc]
            cycles += cost[op] * factor
            counts[klass[op]] += 1
            instret += 1
            if fprof is not None:
                key = op + tbit
                fprof[key] = fprof.get(key, 0) + 1
            pc += 1

            if op == 1:       # LOADL
                push(locals_[arg])
            elif op == 0:     # CONST
                push(arg)
            elif op == 2:     # STOREL
                locals_[arg] = pop()
            elif op == 37:    # GETIDX
                i = pop()
                obj = pop()
                if type(obj) is JSArray:
                    # Boxed elements: tag/hole checks that typed arrays
                    # (and their elements-kind fast paths) avoid — part
                    # of why hand-written plain-array code loses to
                    # compiler-generated typed-array code (Table 9).
                    cycles += 1.6 * factor
                push(_element_get(obj, i))
            elif op == 38:    # SETIDX
                value = pop()
                index = pop()
                obj = pop()
                if type(obj) is JSArray:
                    cycles += 2.0 * factor
                if isinstance(obj, JSArray):
                    i = int(index)
                    items = obj.items
                    if i >= len(items):
                        heap.note_ephemeral(8 * (i + 1 - len(items)))
                        items.extend([UNDEFINED] * (i + 1 - len(items)))
                    items[i] = value
                elif isinstance(obj, JSTypedArray):
                    i = int(index)
                    if 0 <= i < len(obj.items):
                        if obj.width == 8:
                            obj.items[i] = _to_number(value)
                        elif obj.kind == "Uint8Array":
                            obj.items[i] = float(to_int32(value) & 0xFF)
                        elif obj.kind == "Uint16Array":
                            obj.items[i] = float(to_int32(value) & 0xFFFF)
                        elif obj.kind == "Uint32Array":
                            obj.items[i] = float(to_uint32(value))
                        else:
                            obj.items[i] = float(to_int32(value))
                elif isinstance(obj, JSObject):
                    obj.props[js_to_str(index)] = value
                else:
                    raise JsRuntimeError(
                        f"cannot index-assign {type(obj).__name__}")
                push(value)
            elif op == 5:     # ADD
                b = pop(); a = pop()
                if type(a) is float and type(b) is float:
                    push(a + b)
                else:
                    v = _js_add(a, b)
                    if isinstance(v, str):
                        heap.note_ephemeral(16 + 2 * len(v))
                    push(v)
            elif op == 6:     # SUB
                b = pop(); a = pop()
                push((a if type(a) is float else _to_number(a)) -
                     (b if type(b) is float else _to_number(b)))
            elif op == 7:     # MUL
                b = pop(); a = pop()
                push((a if type(a) is float else _to_number(a)) *
                     (b if type(b) is float else _to_number(b)))
            elif op == 8:     # DIV
                b = pop(); a = pop()
                a = a if type(a) is float else _to_number(a)
                b = b if type(b) is float else _to_number(b)
                if b == 0.0:
                    if a == 0.0 or a != a:
                        push(math.nan)
                    else:
                        push(math.copysign(math.inf, a) *
                             math.copysign(1.0, b))
                else:
                    push(a / b)
            elif op == 9:     # MOD
                b = pop(); a = pop()
                # c_fmod matches the ECMAScript % operator: NaN for a zero
                # divisor, NaN operands, or an infinite dividend.
                push(c_fmod(_to_number(a), _to_number(b)))
            elif op == 28:    # JF
                if not js_truthy(pop()):
                    pc = arg
            elif op == 29:    # JT
                if js_truthy(pop()):
                    pc = arg
            elif op == 27:    # JMP
                pc = arg
            elif op == 30:    # JBACK
                pc = arg
                if fn.tier == 0 and cfg.jit_enabled:
                    fn.backedge_count += 1
                    if tiering.backedge_hot(fn.backedge_count):
                        engine._tier_up(fn)      # on-stack replacement
                        factor = tiering.exec_factor(fn.tier)
                        cost = JS_OP_COST_OPT
                        tbit = fn.tier << 8
            elif op == 19:    # LT
                b = pop(); a = pop()
                if isinstance(a, str) and isinstance(b, str):
                    push(a < b)
                else:
                    push(_to_number(a) < _to_number(b))
            elif op == 20:
                b = pop(); a = pop()
                if isinstance(a, str) and isinstance(b, str):
                    push(a <= b)
                else:
                    push(_to_number(a) <= _to_number(b))
            elif op == 21:
                b = pop(); a = pop()
                if isinstance(a, str) and isinstance(b, str):
                    push(a > b)
                else:
                    push(_to_number(a) > _to_number(b))
            elif op == 22:
                b = pop(); a = pop()
                if isinstance(a, str) and isinstance(b, str):
                    push(a >= b)
                else:
                    push(_to_number(a) >= _to_number(b))
            elif op == 23:    # EQ
                b = pop(); push(_js_loose_eq(pop(), b))
            elif op == 24:    # NE
                b = pop(); push(not _js_loose_eq(pop(), b))
            elif op == 25:    # SEQ
                b = pop(); a = pop()
                push(type(a) is type(b) and a == b)
            elif op == 26:    # SNE
                b = pop(); a = pop()
                push(not (type(a) is type(b) and a == b))
            elif op == 13:    # BAND
                b = pop(); push(float(to_int32(pop()) & to_int32(b)))
            elif op == 14:    # BOR
                b = pop(); push(float(to_int32(pop()) | to_int32(b)))
            elif op == 15:    # BXOR
                b = pop(); push(float(to_int32(pop()) ^ to_int32(b)))
            elif op == 16:    # SHL
                b = to_uint32(pop()) & 31
                v = (to_int32(pop()) << b) & 0xFFFFFFFF
                push(float(v - 0x100000000 if v & 0x80000000 else v))
            elif op == 17:    # SHR
                b = to_uint32(pop()) & 31
                push(float(to_int32(pop()) >> b))
            elif op == 18:    # USHR
                b = to_uint32(pop()) & 31
                push(float(to_uint32(pop()) >> b))
            elif op == 10:    # NEG
                push(-_to_number(pop()))
            elif op == 11:    # NOT
                push(not js_truthy(pop()))
            elif op == 12:    # BNOT
                push(float(~to_int32(pop())))
            elif op == 3:     # LOADG
                if arg in globals_:
                    push(globals_[arg])
                else:
                    push(UNDEFINED)
            elif op == 4:     # STOREG
                globals_[arg] = pop()
            elif op == 39:    # GETMEM
                obj = pop()
                push(engine._member_get(obj, arg))
            elif op == 40:    # SETMEM
                value = pop()
                obj = pop()
                if isinstance(obj, JSObject):
                    obj.props[arg] = value
                elif isinstance(obj, JSArray) and arg == "length":
                    new_len = int(_to_number(value))
                    del obj.items[new_len:]
                else:
                    raise JsRuntimeError(
                        f"cannot set {arg} on {type(obj).__name__}")
                push(value)
            elif op == 31 or op == 32:   # CALL / METHOD
                if op == 31:
                    nargs = arg
                    call_args = stack[len(stack) - nargs:]
                    del stack[len(stack) - nargs:]
                    callee = pop()
                    this_val = UNDEFINED
                else:
                    name, nargs = arg
                    call_args = stack[len(stack) - nargs:]
                    del stack[len(stack) - nargs:]
                    this_val = pop()
                    callee = engine._member_get(this_val, name)
                if isinstance(callee, JSFunction):
                    stats.cycles += cycles
                    stats.exec_ops += instret
                    cycles = 0.0
                    instret = 0
                    push(execute(engine, callee, call_args, this_val))
                    factor = tiering.exec_factor(fn.tier)
                    cost = JS_OP_COST_OPT if fn.tier else JS_OP_COST
                    tbit = fn.tier << 8
                elif isinstance(callee, NativeFunction):
                    cycles += callee.cycles * factor
                    push(callee.fn(engine, this_val, call_args))
                else:
                    raise JsRuntimeError(
                        f"{arg if op == 32 else callee!r} is not a function")
            elif op == 33:    # RET
                result = pop()
                break
            elif op == 34:    # RETU
                result = UNDEFINED
                break
            elif op == 35:    # NEWARR
                items = stack[len(stack) - arg:] if arg else []
                if arg:
                    del stack[len(stack) - arg:]
                array = JSArray(items)
                heap.register(array)
                push(array)
            elif op == 36:    # NEWOBJ
                keys = arg
                nkeys = len(keys)
                values = stack[len(stack) - nkeys:] if nkeys else []
                if nkeys:
                    del stack[len(stack) - nkeys:]
                obj = JSObject(dict(zip(keys, values)))
                heap.register(obj)
                push(obj)
            elif op == 44:    # NEWCALL
                nargs = arg
                call_args = stack[len(stack) - nargs:] if nargs else []
                if nargs:
                    del stack[len(stack) - nargs:]
                ctor = pop()
                push(engine._construct(ctor, call_args))
            elif op == 41:    # DUP
                push(stack[-1])
            elif op == 45:    # DUP2
                push(stack[-2])
                push(stack[-2])
            elif op == 42:    # POP
                pop()
            elif op == 43:    # TYPEOF
                v = pop()
                if isinstance(v, float):
                    push("number")
                elif isinstance(v, str):
                    push("string")
                elif isinstance(v, bool):
                    push("boolean")
                elif v is UNDEFINED:
                    push("undefined")
                elif isinstance(v, (JSFunction, NativeFunction)):
                    push("function")
                else:
                    push("object")
            elif op == 46:    # INCIDX
                delta, is_post = arg
                index = pop()
                obj = pop()
                old = _to_number(_element_get(obj, index))
                new = old + delta
                i = int(index)
                if isinstance(obj, (JSArray, JSTypedArray)):
                    obj.items[i] = new
                else:
                    obj.props[js_to_str(index)] = new
                push(old if is_post else new)
            elif op == 49:    # IMUL
                b = pop(); a = pop()
                push(float(to_int32(to_int32(a) * to_int32(b))))
            elif op == 47:    # INCMEM
                name, delta, is_post = arg
                obj = pop()
                old = _to_number(engine._member_get(obj, name))
                new = old + delta
                obj.props[name] = new
                push(old if is_post else new)
            else:
                raise JsRuntimeError(f"unimplemented bytecode op {op}")

            if heap.allocated_since_gc >= heap.trigger_bytes:
                pause = heap.collect()
                stats.gc_runs += 1
                stats.gc_pause_cycles += pause
                if engine.trace is not None:
                    engine.trace.emit(
                        "gc",
                        stats.parse_cycles + stats.compile_cycles +
                        stats.cycles + cycles, pause)
                cycles += pause
    finally:
        stats.cycles += cycles
        stats.exec_ops += instret

    return result


# Bound at the bottom to break the cycle with the threaded tier, which
# imports this module's helpers (the cycle resolves in either load order).
from repro.jsengine import threaded as _threaded  # noqa: E402
from repro.jsengine import codegen as _codegen  # noqa: E402
