"""Lexer for the JavaScript subset.

Token kinds: ``num``, ``str``, ``ident``, ``kw``, ``punct``, ``eof``.
The token count is also the engine's parse-cost unit (V8-style parsing is
roughly linear in tokens).
"""

from __future__ import annotations

from repro.errors import ParseError

KEYWORDS = {
    "var", "let", "const", "function", "return", "if", "else", "for",
    "while", "do", "break", "continue", "new", "true", "false", "null",
    "undefined", "typeof", "in", "of",
}

# Longest first so '>>>=' wins over '>>>' etc.
_PUNCTUATORS = [
    ">>>=", "===", "!==", ">>>", "<<=", ">>=", "&&", "||", "==", "!=",
    "<=", ">=", "<<", ">>", "++", "--", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "=>", "{", "}", "(", ")", "[", "]", ";", ",", "<",
    ">", "+", "-", "*", "/", "%", "&", "|", "^", "!", "~", "?", ":", "=",
    ".",
]


class Token:
    __slots__ = ("kind", "value", "line", "col")

    def __init__(self, kind, value, line, col):
        self.kind = kind
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


def tokenize_js(source):
    """Tokenize JS-subset source; returns a list of :class:`Token` ending
    with an ``eof`` token."""
    tokens = []
    i = 0
    n = len(source)
    line = 1
    line_start = 0
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            line_start = i + 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if ch == "/" and i + 1 < n:
            if source[i + 1] == "/":
                while i < n and source[i] != "\n":
                    i += 1
                continue
            if source[i + 1] == "*":
                end = source.find("*/", i + 2)
                if end < 0:
                    raise ParseError("unterminated comment", line)
                line += source.count("\n", i, end)
                i = end + 2
                continue
        col = i - line_start + 1
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("num", float(int(source[i:j], 16)),
                                    line, col))
                i = j
                continue
            while j < n and (source[j].isdigit() or source[j] in ".eE" or
                             (source[j] in "+-" and source[j - 1] in "eE")):
                j += 1
            tokens.append(Token("num", float(source[i:j]), line, col))
            i = j
            continue
        if ch.isalpha() or ch in "_$":
            j = i
            while j < n and (source[j].isalnum() or source[j] in "_$"):
                j += 1
            word = source[i:j]
            tokens.append(Token("kw" if word in KEYWORDS else "ident",
                                word, line, col))
            i = j
            continue
        if ch in "'\"":
            quote = ch
            j = i + 1
            buf = []
            while j < n and source[j] != quote:
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", "r": "\r",
                                "\\": "\\", "'": "'", '"': '"',
                                "0": "\0"}.get(esc, esc))
                    j += 2
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise ParseError("unterminated string", line)
            tokens.append(Token("str", "".join(buf), line, col))
            i = j + 1
            continue
        for punct in _PUNCTUATORS:
            if source.startswith(punct, i):
                tokens.append(Token("punct", punct, line, col))
                i += len(punct)
                break
        else:
            raise ParseError(f"unexpected character {ch!r}", line, col)
    tokens.append(Token("eof", None, line, 0))
    return tokens
