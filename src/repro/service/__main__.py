"""CLI entry point: ``python -m repro.service``.

Default mode starts the server and blocks until ``POST /shutdown`` (or
SIGINT).  ``--smoke`` exercises the full loop in one process — start an
ephemeral server, stream one tiny sweep through it twice (cold, then
memo-warm), verify the streamed result lines are byte-identical to the
direct path and that the warm pass hit the cache, shut down — and exits
non-zero on any mismatch.  Tier-1 CI runs the smoke.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from repro.service.server import SweepServer, run_server

#: The smoke request: one tiny cell, cheap enough for CI.
SMOKE_PAYLOAD = {
    "benchmarks": ["atax"],
    "targets": ["wasm"],
    "opt_levels": ["O2"],
    "sizes": ["S"],
    "repetitions": 1,
    "client": "smoke",
}


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve benchmark sweeps over HTTP (JSONL streaming).")
    parser.add_argument("--host", default=None,
                        help="bind host (default REPRO_SERVICE_HOST or "
                             "127.0.0.1)")
    parser.add_argument("--port", type=int, default=None,
                        help="bind port (default REPRO_SERVICE_PORT or "
                             "0 = ephemeral)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="scheduler workers per sweep "
                             "(default REPRO_JOBS)")
    parser.add_argument("--smoke", action="store_true",
                        help="start, stream one tiny sweep twice "
                             "(cold + warm), verify, and exit")
    return parser.parse_args(argv)


async def _smoke(args):
    from repro.cache import get_cache
    from repro.service.cells import direct_lines
    from repro.service.client import get_json, request_lines

    server = SweepServer(host=args.host, port=args.port, jobs=args.jobs)
    await server.start()
    host, port = server.host, server.port
    print(f"smoke: server on http://{host}:{port}", flush=True)
    loop = asyncio.get_running_loop()
    try:
        health = await loop.run_in_executor(
            None, lambda: get_json(host, port, "/healthz"))
        if health != {"ok": True}:
            print(f"smoke: bad healthz {health!r}", flush=True)
            return 1

        def stream():
            return [line for line in request_lines(host, port, SMOKE_PAYLOAD)
                    if json.loads(line).get("event") == "result"]

        cold = await loop.run_in_executor(None, stream)
        hits_before = get_cache().stats.hits
        warm = await loop.run_in_executor(None, stream)
        if not cold:
            print("smoke: no result lines streamed", flush=True)
            return 1
        if cold != warm:
            print("smoke: warm stream differs from cold stream", flush=True)
            return 1
        if get_cache().stats.hits <= hits_before:
            print("smoke: warm pass did not hit the result cache",
                  flush=True)
            return 1
        cells = server.service.last_cells
        direct = await loop.run_in_executor(
            server.service._executor,
            lambda: [line.encode("utf-8") for line in direct_lines(cells)])
        if cold != direct:
            print("smoke: streamed lines differ from direct path",
                  flush=True)
            return 1
        stats = await loop.run_in_executor(
            None, lambda: get_json(host, port, "/stats"))
        swept = stats["counters"].get("service.cells.swept", 0)
        warm_hits = stats["counters"].get("service.cells.warm", 0)
        print(f"smoke: ok — {len(cold)} cell(s), swept={swept}, "
              f"warm={warm_hits}", flush=True)
        return 0
    finally:
        await server.stop()


def main(argv=None):
    args = _parse_args(argv)
    if args.smoke:
        return asyncio.run(_smoke(args))
    try:
        asyncio.run(run_server(host=args.host, port=args.port,
                               jobs=args.jobs))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
