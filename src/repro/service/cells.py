"""Cell execution shared by the sweep service and ``run_all.py --cells``.

One *cell* (:class:`~repro.service.requests.CellSpec`) is the smallest
schedulable unit of the measurement matrix: compile one benchmark with
one toolchain at one opt level and measure it under one engine profile.
The service's workers and the direct command-line path both run cells
through :func:`run_cell` and serialize them with :func:`result_line`, so
a JSONL line streamed over HTTP is byte-identical to the line a direct
invocation of the same cell prints — that equality is the service's
correctness contract (and is pinned by the end-to-end tests and
``tools/bench_service.py``).

Results are memoized under the ``service-cell`` kind with
``replay_metrics=True``: a warm cell replays the DET metrics the cold
run recorded, so a memo-warm server exports the same deterministic
counters as a cold one.
"""

from __future__ import annotations

import json

from repro.cache import cached_result
from repro.service.requests import MEMO_KIND, CellSpec

#: Cheerp linear heap used for benchmark cells (matches
#: ``ExperimentContext``'s default, §3.2).
HEAP_BYTES = 2 * 1024 * 1024

#: Per-process toolchain instances (workers build each compiler once).
_TOOLCHAINS = {}

#: Per-process engine profile instances, keyed by profile name.
_PROFILES = {}


def _toolchain(name):
    toolchain = _TOOLCHAINS.get(name)
    if toolchain is None:
        from repro.compilers import (
            CheerpCompiler, EmscriptenCompiler, LlvmX86Compiler,
        )
        factories = {
            "cheerp": lambda: CheerpCompiler(linear_heap_size=HEAP_BYTES),
            "emscripten": EmscriptenCompiler,
            "llvm-x86": LlvmX86Compiler,
        }
        toolchain = _TOOLCHAINS[name] = factories[name]()
    return toolchain


def profile_for(name):
    """Resolve a profile name to ``(BrowserProfile, PlatformSpec)``."""
    entry = _PROFILES.get(name)
    if entry is None:
        from repro import env
        factory = getattr(env, name.replace("-", "_"))
        profile = factory()
        platform = env.MOBILE if profile.platform_kind == "mobile" \
            else env.DESKTOP
        entry = _PROFILES[name] = (profile, platform)
    return entry


def compute_cell(spec):
    """Live execution of one cell; returns a JSON-clean result dict."""
    from repro.harness import PageRunner
    from repro.suites import get_benchmark

    benchmark = get_benchmark(spec.benchmark)
    defines = benchmark.defines(spec.size)
    toolchain = _toolchain(spec.toolchain)
    if spec.target == "x86":
        from repro.native import execute_program
        artifact = toolchain.compile(benchmark.source, defines,
                                     spec.opt_level, benchmark.name)
        cycles = execute_program(artifact.program, "main")[1].cycles
        return {"target": "x86", "name": benchmark.name,
                "toolchain": artifact.toolchain,
                "opt_level": artifact.opt_level,
                "code_size": artifact.code_size, "cycles": cycles}
    profile, platform = profile_for(spec.profile)
    # With REPRO_TRACE=1 the harness records the engine phase timeline,
    # whose events become leaf spans of the running attempt (see
    # ExecutionTrace.finalize).  Tracing bypasses the measurement-level
    # memo, but the engine is deterministic so the returned values — and
    # the DET metrics slice — are identical either way.
    from repro.obs import trace_enabled
    runner = PageRunner(profile, platform, repetitions=spec.repetitions,
                        trace=trace_enabled())
    if spec.target == "wasm":
        artifact = toolchain.compile_wasm(benchmark.source, defines,
                                          spec.opt_level, benchmark.name)
        measurement = runner.run_wasm(artifact)
    else:
        artifact = toolchain.compile_js(benchmark.source, defines,
                                        spec.opt_level, benchmark.name)
        measurement = runner.run_js(artifact)
    return {
        "target": measurement.target,
        "name": measurement.name,
        "browser": measurement.browser,
        "platform": measurement.platform,
        "toolchain": artifact.toolchain,
        "opt_level": artifact.opt_level,
        "code_size": measurement.code_size,
        "time_ms": measurement.time_ms,
        "times_ms": list(measurement.times_ms),
        "memory_kb": measurement.memory_kb,
        "output": list(measurement.output),
    }


def run_cell(spec):
    """One cell, served from the result cache when warm.

    ``replay_metrics=True`` keeps the DET metrics slice identical between
    cold and memo-warm serves; the flag is part of the key, so these
    entries never collide with a plain caller's."""
    return cached_result(MEMO_KIND, spec.key_parts(),
                         lambda: compute_cell(spec), replay_metrics=True)


def run_cell_task(spec_tuple):
    """Module-level (picklable) sweep-worker entry point."""
    return run_cell(CellSpec.from_tuple(spec_tuple))


def result_line(spec, value, trace=None):
    """The canonical JSONL result line for one completed cell.  Both the
    service stream and the direct path emit exactly this string.  When a
    :class:`~repro.obs.TraceContext` is supplied (``REPRO_TRACE=1``) the
    line additionally carries the cell's trace/span ids; with tracing
    off the ``trace`` key is absent and the byte contract is untouched."""
    record = {"event": "result", "cell": spec.as_dict(),
              "key": spec.cell_key(), "value": value}
    if trace is not None:
        record["trace"] = {"trace_id": trace.trace_id,
                           "span_id": trace.span_id}
    return json.dumps(record, sort_keys=True)


def failure_line(spec, failure, trace=None):
    """JSONL line for a cell that exhausted its retries.  Failure lines
    carry schedule-dependent fields (attempt counts) and are *not* part
    of the byte-equality contract."""
    record = {"event": "cell_failed", "cell": spec.as_dict(),
              "key": spec.cell_key(), "error": failure["error"],
              "message": failure["message"], "kind": failure["kind"],
              "attempts": failure["attempts"]}
    if trace is not None:
        record["trace"] = {"trace_id": trace.trace_id,
                           "span_id": trace.span_id}
    return json.dumps(record, sort_keys=True)


def direct_lines(cells, trace=None):
    """The reference serial path: run every cell in canonical order in
    this process and return the result lines (what ``run_all.py --cells``
    prints, and what a service stream must reproduce byte-for-byte).

    ``trace`` is an optional request-root :class:`~repro.obs.TraceContext`;
    each cell then runs under a ``("cell", key)`` child span (the same
    derivation the service uses) and its line carries the child's ids."""
    from repro.obs import trace_span

    lines = []
    for spec in cells:
        if trace is None:
            lines.append(result_line(spec, run_cell(spec)))
            continue
        with trace_span("cell", ctx=trace, parts=(spec.cell_key(),),
                        cell=spec.label()) as ctx:
            value = run_cell(spec)
        lines.append(result_line(spec, value, trace=ctx))
    return lines
