"""Minimal stdlib client for the sweep service.

Thin wrappers over :mod:`http.client` used by the CLI smoke mode, the
tests and ``tools/bench_service.py``.  :func:`request_lines` streams a
sweep and yields raw JSONL lines (bytes, no trailing newline) so callers
can compare them byte-for-byte against the direct path;
:func:`request_sweep` parses them into dicts for convenience.
"""

from __future__ import annotations

import http.client
import json


class ServiceError(RuntimeError):
    """A non-200 response from the sweep service."""

    def __init__(self, status, payload):
        super().__init__(f"HTTP {status}: {payload}")
        self.status = status
        self.payload = payload


def _connect(host, port, timeout):
    return http.client.HTTPConnection(host, port, timeout=timeout)


def request_lines(host, port, payload, timeout=600.0):
    """POST one sweep request; yield each raw JSONL line as bytes."""
    conn = _connect(host, port, timeout)
    try:
        body = json.dumps(payload).encode("utf-8")
        conn.request("POST", "/sweep", body=body,
                     headers={"Content-Type": "application/json",
                              "Content-Length": str(len(body))})
        response = conn.getresponse()
        if response.status != 200:
            raise ServiceError(response.status,
                               response.read().decode("utf-8", "replace"))
        buffer = b""
        while True:
            chunk = response.read(65536)
            if not chunk:
                break
            buffer += chunk
            while b"\n" in buffer:
                line, buffer = buffer.split(b"\n", 1)
                if line:
                    yield line
        if buffer:
            yield buffer
    finally:
        conn.close()


def request_sweep(host, port, payload, timeout=600.0):
    """POST one sweep request; return the parsed event dicts."""
    return [json.loads(line)
            for line in request_lines(host, port, payload, timeout=timeout)]


def get_text(host, port, path, timeout=30.0):
    """GET a plain-text endpoint (``/metrics``)."""
    conn = _connect(host, port, timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        data = response.read().decode("utf-8", "replace")
        if response.status != 200:
            raise ServiceError(response.status, data)
        return data
    finally:
        conn.close()


def get_json(host, port, path, timeout=30.0):
    """GET a JSON endpoint (``/healthz``, ``/stats``)."""
    conn = _connect(host, port, timeout)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        data = response.read().decode("utf-8", "replace")
        if response.status != 200:
            raise ServiceError(response.status, data)
        return json.loads(data)
    finally:
        conn.close()


def post_shutdown(host, port, timeout=30.0):
    """Ask the server to stop; returns its acknowledgement."""
    conn = _connect(host, port, timeout)
    try:
        conn.request("POST", "/shutdown",
                     headers={"Content-Length": "0"})
        response = conn.getresponse()
        data = response.read().decode("utf-8", "replace")
        if response.status != 200:
            raise ServiceError(response.status, data)
        return json.loads(data)
    finally:
        conn.close()
