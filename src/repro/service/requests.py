"""Experiment-request validation and canonicalization into sweep cells.

A service request describes a slice of the paper's measurement matrix as
a cross product: *benchmarks × targets × toolchains × opt levels × input
sizes × engine profiles*, at a fixed repetition count.  Canonicalization
turns that product into a sorted, deduplicated tuple of
:class:`CellSpec` values — the unit the job engine dedupes, caches and
schedules.  Two requests describing the same slice in different spellings
(scalar vs one-element list, unsorted benchmark names, an explicit
default) canonicalize to the *same* cells and therefore the same cache
keys, which is what makes cross-client deduplication work.

Request payload (JSON object; scalars are promoted to one-element lists):

``benchmarks``
    explicit benchmark names, and/or ``suite`` — one of ``all`` /
    ``polybench`` / ``chstone`` / ``quick`` (the CI subset).  Default,
    when neither is given: ``quick``.
``targets``
    execution targets, from ``wasm`` / ``js`` / ``x86``  (default
    ``wasm``).
``toolchains``
    compilers, from ``cheerp`` / ``emscripten`` / ``llvm-x86``.  Default:
    each target's canonical compiler.  Invalid (target, toolchain) pairs
    in the product are skipped; a request whose product is empty is an
    error.
``opt_levels``
    from the toolchains' shared level set (default ``O2``).
``sizes``
    input-size classes, validated per benchmark (default ``M``).
``profiles``
    browser engine profiles (default ``chrome-desktop``).
``repetitions``
    1..10 (default 2).
``client``
    opaque client id for per-client budgets (default ``anonymous``).
``progress``
    stream per-cell scheduler progress events too (default off).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache import result_key
from repro.compilers.base import OPT_LEVELS
from repro.suites import all_benchmarks

#: The memoization namespace shared by the service and ``run_all.py
#: --cells``: one cell result, DET metrics replayed on warm hits.
MEMO_KIND = "service-cell"

TARGETS = ("wasm", "js", "x86")

#: Which compilers can produce which target.
TOOLCHAINS_BY_TARGET = {
    "wasm": ("cheerp", "emscripten"),
    "js": ("cheerp",),
    "x86": ("llvm-x86",),
}

#: Each target's canonical compiler, used when the request names none.
DEFAULT_TOOLCHAIN = {"wasm": "cheerp", "js": "cheerp", "x86": "llvm-x86"}

SUITES = ("all", "polybench", "chstone", "quick")

#: Engine profile names the cell runner can resolve (repro.env factories).
PROFILE_NAMES = (
    "chrome-desktop", "firefox-desktop", "edge-desktop",
    "chrome-mobile", "firefox-mobile", "edge-mobile",
)

MAX_REPETITIONS = 10

#: Hard cap on one request's cross product, enforced before admission
#: control so a hostile request cannot balloon server memory.
MAX_REQUEST_CELLS = 4096


class RequestError(ValueError):
    """A malformed or unsatisfiable experiment request (HTTP 400)."""


@dataclass(frozen=True, order=True)
class CellSpec:
    """One fully-pinned sweep cell.

    The field order defines the canonical cell ordering (and therefore
    the order result lines stream in); every field participates in the
    cache key, so two specs are interchangeable iff they are equal."""

    benchmark: str
    target: str
    toolchain: str
    opt_level: str
    size: str
    profile: str
    repetitions: int

    def key_parts(self):
        return (self.benchmark, self.target, self.toolchain,
                self.opt_level, self.size, self.profile,
                str(self.repetitions))

    def cell_key(self):
        """Content-addressed result key (includes the package code
        fingerprint via :func:`repro.cache.result_key`)."""
        return result_key(MEMO_KIND, self.key_parts(), replay_metrics=True)

    def label(self):
        """Human-readable scheduler label (failure reports, fault
        injection, progress events)."""
        return "|".join(self.key_parts())

    def as_dict(self):
        return {"benchmark": self.benchmark, "target": self.target,
                "toolchain": self.toolchain, "opt_level": self.opt_level,
                "size": self.size, "profile": self.profile,
                "repetitions": self.repetitions}

    def as_tuple(self):
        return (self.benchmark, self.target, self.toolchain,
                self.opt_level, self.size, self.profile, self.repetitions)

    @classmethod
    def from_tuple(cls, parts):
        return cls(*parts)


@dataclass(frozen=True)
class SweepRequest:
    """A canonicalized request: sorted unique cells plus client info."""

    cells: tuple
    client: str
    progress: bool

    @property
    def cell_count(self):
        return len(self.cells)


def _as_list(payload, key, default):
    """A request field as a non-empty list of strings; scalars promote."""
    value = payload.get(key, default)
    if isinstance(value, (str, int)):
        value = [value]
    if not isinstance(value, (list, tuple)) or not value:
        raise RequestError(f"{key!r} must be a value or non-empty list")
    return [str(item) for item in value]


def _benchmarks(payload):
    by_name = {b.name: b for b in all_benchmarks()}
    names = []
    if "suite" in payload:
        suite = str(payload["suite"]).strip().lower()
        if suite not in SUITES:
            raise RequestError(
                f"unknown suite {suite!r}: expected one of {SUITES}")
        if suite == "quick":
            from repro.experiments.common import QUICK_SET
            names.extend(n for n in by_name if n in QUICK_SET)
        elif suite == "all":
            names.extend(by_name)
        else:
            wanted = "PolyBenchC" if suite == "polybench" else "CHStone"
            names.extend(n for n, b in by_name.items() if b.suite == wanted)
    if "benchmarks" in payload:
        for name in _as_list(payload, "benchmarks", None):
            if name not in by_name:
                raise RequestError(f"unknown benchmark {name!r}")
            names.append(name)
    if not names:
        from repro.experiments.common import QUICK_SET
        names.extend(n for n in by_name if n in QUICK_SET)
    return [by_name[name] for name in dict.fromkeys(names)]


def canonicalize_request(payload):
    """Validate one request payload and expand it into a
    :class:`SweepRequest` of sorted, deduplicated cells.

    Raises :class:`RequestError` on anything malformed; never touches
    the cache or scheduler."""
    if not isinstance(payload, dict):
        raise RequestError("request body must be a JSON object")
    benchmarks = _benchmarks(payload)
    targets = _as_list(payload, "targets", ["wasm"])
    for target in targets:
        if target not in TARGETS:
            raise RequestError(
                f"unknown target {target!r}: expected one of {TARGETS}")
    toolchains = _as_list(payload, "toolchains", None) \
        if "toolchains" in payload else None
    if toolchains is not None:
        known = sorted({tc for tcs in TOOLCHAINS_BY_TARGET.values()
                        for tc in tcs})
        for toolchain in toolchains:
            if toolchain not in known:
                raise RequestError(f"unknown toolchain {toolchain!r}: "
                                   f"expected one of {tuple(known)}")
    opt_levels = _as_list(payload, "opt_levels", ["O2"])
    for level in opt_levels:
        if level not in OPT_LEVELS:
            raise RequestError(f"unknown opt level {level!r}: expected "
                               f"one of {OPT_LEVELS}")
    sizes = _as_list(payload, "sizes", ["M"])
    profiles = _as_list(payload, "profiles", ["chrome-desktop"])
    for profile in profiles:
        if profile not in PROFILE_NAMES:
            raise RequestError(f"unknown profile {profile!r}: expected "
                               f"one of {PROFILE_NAMES}")
    repetitions = payload.get("repetitions", 2)
    if not isinstance(repetitions, int) or isinstance(repetitions, bool) \
            or not 1 <= repetitions <= MAX_REPETITIONS:
        raise RequestError(
            f"repetitions must be an integer in 1..{MAX_REPETITIONS}")
    client = str(payload.get("client", "anonymous")) or "anonymous"
    progress = bool(payload.get("progress", False))

    cells = set()
    for benchmark in benchmarks:
        for size in sizes:
            if size not in benchmark.sizes:
                raise RequestError(
                    f"benchmark {benchmark.name!r} has no size {size!r} "
                    f"(has {tuple(sorted(benchmark.sizes))})")
            for target in targets:
                pair_toolchains = toolchains if toolchains is not None \
                    else [DEFAULT_TOOLCHAIN[target]]
                for toolchain in pair_toolchains:
                    if toolchain not in TOOLCHAINS_BY_TARGET[target]:
                        continue      # invalid pair in the product
                    for level in opt_levels:
                        for profile in profiles:
                            cells.add(CellSpec(
                                benchmark=benchmark.name, target=target,
                                toolchain=toolchain, opt_level=level,
                                size=size, profile=profile,
                                repetitions=repetitions))
    if not cells:
        raise RequestError("request selects no valid (target, toolchain) "
                           "cells")
    if len(cells) > MAX_REQUEST_CELLS:
        raise RequestError(f"request expands to {len(cells)} cells, over "
                           f"the per-request cap of {MAX_REQUEST_CELLS}")
    return SweepRequest(cells=tuple(sorted(cells)), client=client,
                        progress=progress)
