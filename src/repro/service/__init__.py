"""Benchmark-as-a-service: an asyncio sweep server over the harness.

The service turns the batch measurement pipeline into a long-lived,
request-driven one: clients POST experiment-matrix slices, the server
canonicalizes them into cells, dedupes against in-flight work and the
content-addressed result cache, batches the rest into scheduler sweeps,
and streams per-cell JSONL results that are byte-identical to a direct
``results/run_all.py --cells`` run of the same cells.

Layering: ``repro.service`` sits at the top of the stack (it may import
anything in ``repro``); nothing else in ``repro`` may import it.  See
``tools/check_layering.py``.
"""

from repro.service.cells import (
    compute_cell,
    direct_lines,
    failure_line,
    profile_for,
    result_line,
    run_cell,
    run_cell_task,
)
from repro.service.client import (
    ServiceError,
    get_json,
    get_text,
    post_shutdown,
    request_lines,
    request_sweep,
)
from repro.service.jobs import (
    DEFAULT_BATCH,
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_BUDGET,
    DEFAULT_MAX_CELLS,
    SERVICE_BATCH_ENV,
    SERVICE_BATCH_WINDOW_ENV,
    SERVICE_BUDGET_ENV,
    SERVICE_MAX_CELLS_ENV,
    AdmissionError,
    SweepJob,
    SweepService,
)
from repro.service.requests import (
    MAX_REPETITIONS,
    MAX_REQUEST_CELLS,
    MEMO_KIND,
    PROFILE_NAMES,
    SUITES,
    TARGETS,
    TOOLCHAINS_BY_TARGET,
    CellSpec,
    RequestError,
    SweepRequest,
    canonicalize_request,
)
from repro.service.server import (
    SERVICE_HOST_ENV,
    SERVICE_PORT_ENV,
    SweepServer,
    run_server,
)

__all__ = [
    "AdmissionError",
    "CellSpec",
    "DEFAULT_BATCH",
    "DEFAULT_BATCH_WINDOW_S",
    "DEFAULT_BUDGET",
    "DEFAULT_MAX_CELLS",
    "MAX_REPETITIONS",
    "MAX_REQUEST_CELLS",
    "MEMO_KIND",
    "PROFILE_NAMES",
    "RequestError",
    "SERVICE_BATCH_ENV",
    "SERVICE_BATCH_WINDOW_ENV",
    "SERVICE_BUDGET_ENV",
    "SERVICE_HOST_ENV",
    "SERVICE_MAX_CELLS_ENV",
    "SERVICE_PORT_ENV",
    "SUITES",
    "ServiceError",
    "SweepJob",
    "SweepRequest",
    "SweepServer",
    "SweepService",
    "TARGETS",
    "TOOLCHAINS_BY_TARGET",
    "canonicalize_request",
    "compute_cell",
    "direct_lines",
    "failure_line",
    "get_json",
    "get_text",
    "post_shutdown",
    "profile_for",
    "request_lines",
    "request_sweep",
    "result_line",
    "run_cell",
    "run_cell_task",
    "run_server",
]
