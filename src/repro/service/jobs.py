"""The sweep service's job engine: dedupe, batching, admission, budgets.

Transport-free core (the HTTP layer in :mod:`repro.service.server` is a
thin shell over it).  One :class:`SweepService` owns:

* an **in-flight table** mapping cell keys to futures — two concurrent
  requests for the same cell share one future, so the cell is scheduled
  (and counted by the scheduler) exactly once;
* a **warm probe** against the content-addressed result cache
  (:func:`repro.cache.lookup`) that serves memoized cells without
  touching the scheduler at all;
* a **batcher** that coalesces cells admitted within a short window
  (``REPRO_SERVICE_BATCH_WINDOW``) into one
  :func:`~repro.harness.parallel.run_sweep` call of up to
  ``REPRO_SERVICE_BATCH`` cells, riding the scheduler's existing
  retry/timeout/fault machinery, with per-cell results streamed out of
  the scheduler's ``on_result`` hook the moment each cell lands;
* **admission control** (``REPRO_SERVICE_MAX_CELLS`` outstanding cells
  server-wide) and **per-client budgets**
  (``REPRO_SERVICE_BUDGET`` in-flight cells per client id) — both reject
  with :class:`AdmissionError` (HTTP 429) instead of queueing unboundedly;
* **shard maintenance**: after every sweep one shard of the disk store
  is swept for orphaned temp files, round-robin, so no maintenance pass
  ever scans the whole store;
* **distributed tracing**: every admitted request opens a deterministic
  :class:`~repro.obs.TraceContext` (ids derived from the request
  sequence number, client and cell keys — never wallclock), each cell a
  child context.  Dedupe hits, warm-cache probes and batch membership
  emit link spans, and the scheduling context rides
  :func:`~repro.harness.parallel.run_sweep` to the workers, so one
  exported trace links request → cell → attempt → engine phase.

Threading model: all bookkeeping (in-flight table, budgets, counters)
happens on the event loop; sweeps and warm probes run on a single
dedicated executor thread, which also serializes every metrics-registry
mutation the service performs.  Scheduler worker processes hand results
back through ``loop.call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

from repro.cache import MISS, get_cache, lookup
from repro.harness.parallel import run_sweep
from repro.obs import (
    SCHED, TraceContext, emit_span, env_float, env_int, get_registry,
)
from repro.service.cells import run_cell_task
from repro.service.requests import MEMO_KIND, canonicalize_request

#: Max cells per scheduler sweep (one batch).
SERVICE_BATCH_ENV = "REPRO_SERVICE_BATCH"

#: Seconds the batcher waits for a burst to coalesce before sweeping.
SERVICE_BATCH_WINDOW_ENV = "REPRO_SERVICE_BATCH_WINDOW"

#: Server-wide cap on outstanding (queued + running) cells.
SERVICE_MAX_CELLS_ENV = "REPRO_SERVICE_MAX_CELLS"

#: Per-client cap on in-flight requested cells.
SERVICE_BUDGET_ENV = "REPRO_SERVICE_BUDGET"

DEFAULT_BATCH = 64
DEFAULT_BATCH_WINDOW_S = 0.02
DEFAULT_MAX_CELLS = 1024
DEFAULT_BUDGET = 256


class AdmissionError(RuntimeError):
    """The request was refused by admission control (HTTP 429)."""


class SweepJob:
    """One admitted request: its canonical cells and their futures.

    ``futures`` aligns with ``request.cells``; each resolves to
    ``("ok" | "warm" | "failed", payload)``.  ``trace`` is the request's
    root :class:`~repro.obs.TraceContext` and ``cell_traces`` its
    per-cell children (aligned with ``request.cells``); for deduped
    cells the *owning* request's context did the scheduling, so this
    request's child only appears in its dedupe link span.  The creator
    must call :meth:`close` (typically in a ``finally``) to release the
    client's budget."""

    def __init__(self, service, request, futures, deduped, new_keys,
                 trace=None, cell_traces=()):
        self.service = service
        self.request = request
        self.futures = futures
        self.deduped = deduped
        self.new_keys = new_keys
        self.trace = trace
        self.cell_traces = list(cell_traces)
        self._closed = False

    def close(self):
        if self._closed:
            return
        self._closed = True
        self.service._release_client(self.request.client,
                                     self.request.cell_count)


class SweepService:
    """Loop-bound job engine; create and drive it from one event loop."""

    def __init__(self, jobs=None, batch_max=None, batch_window=None,
                 max_cells=None, client_budget=None, sweep_tmp_age=3600.0):
        self.jobs = jobs
        self.batch_max = batch_max if batch_max is not None else \
            env_int(SERVICE_BATCH_ENV, DEFAULT_BATCH, minimum=1)
        self.batch_window = batch_window if batch_window is not None else \
            env_float(SERVICE_BATCH_WINDOW_ENV, DEFAULT_BATCH_WINDOW_S,
                      minimum=0.0)
        self.max_cells = max_cells if max_cells is not None else \
            env_int(SERVICE_MAX_CELLS_ENV, DEFAULT_MAX_CELLS, minimum=0)
        self.client_budget = client_budget if client_budget is not None \
            else env_int(SERVICE_BUDGET_ENV, DEFAULT_BUDGET, minimum=0)
        self.sweep_tmp_age = sweep_tmp_age
        self._inflight = {}        # cell key -> asyncio.Future
        self._pending = []         # [CellSpec] awaiting the next batch
        self._client_load = {}     # client id -> in-flight requested cells
        self._outstanding = 0      # unique cells queued or running
        self._shard_cursor = 0
        self._request_seq = 0      # per-process request counter (trace ids)
        self._batch_seq = 0        # per-process batch counter (trace ids)
        self._cell_traces = {}     # cell key -> owning TraceContext
        self.last_cells = ()       # cells of the last admitted request
        self._loop = None
        self._wake = None
        self._batcher = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-sweep")

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._batcher = asyncio.create_task(self._batch_loop())

    async def stop(self):
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        for future in self._inflight.values():
            if not future.done():
                future.set_result(("failed", {
                    "error": "ServiceStopped",
                    "message": "service shut down before the cell ran",
                    "kind": "lost", "attempts": 0}))
        self._inflight.clear()
        self._pending.clear()
        self._outstanding = 0
        self._client_load.clear()
        self._cell_traces.clear()
        self._executor.shutdown(wait=True)

    # -- submission ----------------------------------------------------------

    def _count(self, name, value=1):
        get_registry().counter_add(f"service.{name}", value, SCHED)

    def _release_client(self, client, cells):
        load = self._client_load.get(client, 0) - cells
        if load > 0:
            self._client_load[client] = load
        else:
            self._client_load.pop(client, None)

    def admit(self, payload):
        """Canonicalize and admit one request payload.

        Returns a :class:`SweepJob` whose futures resolve as cells
        complete (warm cells resolve after the next executor turn).
        Raises :class:`~repro.service.requests.RequestError` on a
        malformed payload and :class:`AdmissionError` when over
        capacity or budget.  Must be called on the service's loop.

        Every admitted request opens a deterministic trace: the root id
        derives from the per-process request sequence number, the client
        id and the canonical cell keys (never wallclock), and each cell
        gets a ``("cell", key)`` child context.  New cells record their
        context as the *owner* that will schedule them; a dedupe hit
        instead emits a ``service.dedupe`` link span pointing at the
        owning request's span."""
        request = canonicalize_request(payload)
        self.last_cells = request.cells
        self._count("requests")
        self._request_seq += 1
        root = TraceContext.root(
            "request", self._request_seq, request.client,
            *(spec.cell_key() for spec in request.cells))
        self._count("cells.requested", request.cell_count)
        new_specs = [spec for spec in request.cells
                     if spec.cell_key() not in self._inflight]
        if self._outstanding + len(new_specs) > self.max_cells:
            self._count("rejected")
            raise AdmissionError(
                f"over capacity: {self._outstanding} cell(s) outstanding "
                f"+ {len(new_specs)} new > {self.max_cells} "
                f"(REPRO_SERVICE_MAX_CELLS)")
        load = self._client_load.get(request.client, 0)
        if load + request.cell_count > self.client_budget:
            self._count("rejected")
            raise AdmissionError(
                f"client {request.client!r} budget exceeded: {load} "
                f"in flight + {request.cell_count} requested > "
                f"{self.client_budget} (REPRO_SERVICE_BUDGET)")
        self._client_load[request.client] = load + request.cell_count

        futures = []
        new_keys = []
        cell_traces = []
        for spec in request.cells:
            key = spec.cell_key()
            ctx = root.child("cell", key)
            cell_traces.append(ctx)
            future = self._inflight.get(key)
            if future is None:
                future = self._loop.create_future()
                self._inflight[key] = future
                self._outstanding += 1
                self._cell_traces[key] = ctx
                new_keys.append((key, spec))
            else:
                owner = self._cell_traces.get(key)
                link = {}
                if owner is not None:
                    link = {"link_trace_id": owner.trace_id,
                            "link_span_id": owner.span_id}
                emit_span(ctx.child("service.dedupe"), "service.dedupe",
                          time.time(), 0.0, cell=spec.label(), **link)
            futures.append(future)
        deduped = request.cell_count - len(new_keys)
        if deduped:
            self._count("cells.deduped", deduped)
        if new_keys:
            # Probe the result cache off-loop (the probe replays DET
            # metrics; the executor serializes all registry access), then
            # queue the misses for the batcher.
            self._loop.create_task(self._admit_new(new_keys))
        return SweepJob(self, request, futures, deduped,
                        [key for key, _spec in new_keys],
                        trace=root, cell_traces=cell_traces)

    async def _admit_new(self, new_keys):
        try:
            probes = await self._loop.run_in_executor(
                self._executor, self._probe_warm,
                [(spec, self._cell_traces.get(key))
                 for key, spec in new_keys])
        except Exception as exc:   # defensive: never strand a future
            for key, _spec in new_keys:
                self._settle(key, ("failed", {
                    "error": type(exc).__name__, "message": str(exc),
                    "kind": "lost", "attempts": 0}))
            return
        queued = False
        for (key, spec), value in zip(new_keys, probes):
            if value is MISS:
                self._pending.append(spec)
                queued = True
            else:
                self._count("cells.warm")
                self._settle(key, ("warm", value))
        if queued:
            self._wake.set()

    @staticmethod
    def _probe_warm(pairs):
        values = []
        for spec, ctx in pairs:
            started = time.time()
            t0 = time.perf_counter()
            value = lookup(MEMO_KIND, spec.key_parts(),
                           replay_metrics=True)
            if ctx is not None:
                emit_span(ctx.child("service.cache_probe"),
                          "service.cache_probe", started,
                          time.perf_counter() - t0,
                          outcome="hit" if value is not MISS else "miss",
                          cell=spec.label())
            values.append(value)
        return values

    def _settle(self, key, outcome):
        future = self._inflight.pop(key, None)
        self._cell_traces.pop(key, None)
        if future is not None and not future.done():
            future.set_result(outcome)
            self._outstanding -= 1

    # -- batching ------------------------------------------------------------

    async def _batch_loop(self):
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._pending:
                if self.batch_window:
                    await asyncio.sleep(self.batch_window)
                batch = self._pending[:self.batch_max]
                del self._pending[:len(batch)]
                if not batch:
                    break
                await self._loop.run_in_executor(
                    self._executor, self._run_batch, batch)

    def _run_batch(self, batch):
        """One scheduler sweep over a batch of cells (executor thread).

        Every cell is self-describing, so any mix of benchmarks,
        toolchains, levels and profiles rides one sweep; the batch bound
        exists to keep per-sweep worker lifetimes reasonable.  Each
        member's owning trace context rides the sweep (the scheduler
        ships it to the worker over the Pipe protocol) and additionally
        gets a ``service.batch`` membership span covering the sweep, so
        an exported trace shows which cells shared a batch."""
        self._count("sweeps")
        self._count("cells.swept", len(batch))
        self._batch_seq += 1
        batch_seq = self._batch_seq
        keys = [spec.cell_key() for spec in batch]
        traces = [self._cell_traces.get(key) for key in keys]
        started = time.time()
        t0 = time.perf_counter()

        def on_result(index, _label, value, failure):
            if failure is not None:
                outcome = ("failed", {
                    "error": failure.error, "message": failure.message,
                    "kind": failure.kind, "attempts": failure.attempts})
            else:
                outcome = ("ok", value)
            self._loop.call_soon_threadsafe(self._settle, keys[index],
                                            outcome)

        try:
            run_sweep(run_cell_task, [spec.as_tuple() for spec in batch],
                      jobs=self.jobs, labels=[spec.label() for spec in batch],
                      on_result=on_result, traces=traces)
        except BaseException as exc:  # defensive: never strand a future
            for key in keys:
                self._loop.call_soon_threadsafe(self._settle, key, (
                    "failed", {"error": type(exc).__name__,
                               "message": str(exc), "kind": "lost",
                               "attempts": 0}))
            raise
        finally:
            duration = time.perf_counter() - t0
            for spec, ctx in zip(batch, traces):
                if ctx is not None:
                    emit_span(ctx.child("service.batch", batch_seq),
                              "service.batch", started, duration,
                              batch=batch_seq, size=len(batch),
                              cell=spec.label())
            self._sweep_one_shard()

    def _sweep_one_shard(self):
        """Round-robin orphan-temp sweep of one disk-store shard."""
        cache = get_cache()
        shards = cache.shards()
        if not shards:
            return
        shard = shards[self._shard_cursor % len(shards)]
        self._shard_cursor += 1
        removed = cache.sweep_tmp(max_age_s=self.sweep_tmp_age, shard=shard)
        if removed:
            self._count("tmp_swept", removed)

    # -- introspection -------------------------------------------------------

    def stats(self):
        """JSON-clean operational snapshot (the ``/stats`` endpoint)."""
        registry = get_registry()
        service = {name: value
                   for name, value in registry.export([SCHED]).items()
                   if name.startswith(("service.", "sched.", "cache."))}
        return {
            "outstanding_cells": self._outstanding,
            "pending_cells": len(self._pending),
            "inflight_cells": len(self._inflight),
            "clients": dict(sorted(self._client_load.items())),
            "limits": {"batch": self.batch_max,
                       "batch_window_s": self.batch_window,
                       "max_cells": self.max_cells,
                       "client_budget": self.client_budget},
            "counters": service,
            "store": get_cache().stats.as_dict(),
        }
