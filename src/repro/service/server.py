"""Stdlib-only asyncio HTTP front end for the sweep service.

A deliberately small HTTP/1.1 implementation over ``asyncio`` streams —
no frameworks, no threads per connection.  Endpoints:

``POST /sweep``
    Body: one experiment-request JSON object (see
    :mod:`repro.service.requests`).  Response: ``application/x-ndjson``
    streamed as the sweep progresses and closed at the end —

    * one ``accepted`` line (cell counts, dedupe/warm split),
    * with ``"progress": true``: ``progress`` lines for this request's
      cells — scheduler lifecycle events (``stage`` of ``cell_dispatch``
      / ``cell``) forwarded live from the obs event tap,
    * one ``result`` line per cell **in canonical cell order** — each
      byte-identical to the line ``results/run_all.py --cells`` prints
      for the same cell — or a ``cell_failed`` line for cells that
      exhausted their retries,
    * one closing ``done`` line.

``GET /healthz``
    Liveness: ``{"ok": true}``.

``GET /stats``
    Operational snapshot: outstanding/pending cells, client budgets,
    ``service.*`` counters, artifact-store stats.

``GET /metrics``
    Prometheus text exposition (v0.0.4) of the metrics registry — every
    sample labelled with its stability tag (``det``/``sched``/``wall``)
    — plus operational gauges: artifact-store hit/miss counts and
    outstanding/pending cells.

``POST /shutdown``
    Graceful stop (enabled by default; disable with
    ``allow_shutdown=False`` for exposed deployments).

Tracing: every ``/sweep`` request opens a deterministic trace (see
:mod:`repro.obs.tracing`); progress lines are routed to their owning
request by trace id, so two overlapping streams never see each other's
progress.  With ``REPRO_TRACE=1`` every streamed line additionally
carries its trace/span ids; with tracing off those fields are stripped
and the stream is byte-identical to an untraced server's.

Errors are JSON: 400 for malformed requests, 404 unknown path, 429 from
admission control, 500 otherwise.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

from repro.cache import RESULT_CACHE_ENV, get_cache
from repro.obs import (
    add_listener, emit_span, get_registry, remove_listener,
    render_prometheus, trace_enabled,
)
from repro.service.cells import failure_line, result_line
from repro.service.jobs import AdmissionError, SweepService
from repro.service.requests import RequestError

#: Default bind host/port (port 0 = ephemeral, reported after start).
SERVICE_HOST_ENV = "REPRO_SERVICE_HOST"
SERVICE_PORT_ENV = "REPRO_SERVICE_PORT"

_MAX_BODY = 4 * 1024 * 1024
_MAX_HEADER_LINES = 100


class _HttpError(Exception):
    def __init__(self, status, reason, message):
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.message = message


_STATUS_TEXT = {200: "OK", 400: "Bad Request", 404: "Not Found",
                405: "Method Not Allowed", 413: "Payload Too Large",
                429: "Too Many Requests", 500: "Internal Server Error"}


def _head(status, content_type, extra=()):
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
             f"Content-Type: {content_type}", "Connection: close",
             *extra, "", ""]
    return "\r\n".join(lines).encode("ascii")


class SweepServer:
    """One listening socket over one :class:`SweepService`."""

    def __init__(self, host=None, port=None, service=None,
                 allow_shutdown=True, **service_kwargs):
        self.host = host if host is not None else \
            os.environ.get(SERVICE_HOST_ENV, "127.0.0.1")
        if port is None:
            try:
                port = int(os.environ.get(SERVICE_PORT_ENV, "0"))
            except ValueError:
                port = 0
        self.port = port
        self.service = service or SweepService(**service_kwargs)
        self.allow_shutdown = allow_shutdown
        self._server = None
        self._stopping = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind, start the service, and begin accepting connections.
        Memoization is forced on for this process: a sweep server without
        the result cache would recompute every warm cell."""
        os.environ.setdefault(RESULT_CACHE_ENV, "1")
        self._stopping = asyncio.Event()
        await self.service.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self):
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()
        if self._stopping is not None:
            self._stopping.set()

    async def serve_until_stopped(self):
        """Run until :meth:`stop` (or ``POST /shutdown``)."""
        await self._stopping.wait()

    # -- request plumbing ----------------------------------------------------

    async def _handle_connection(self, reader, writer):
        try:
            try:
                method, path, body = await self._read_request(reader)
            except _HttpError as exc:
                await self._send_error(writer, exc)
                return
            try:
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                await self._send_error(writer, exc)
            except (RequestError, json.JSONDecodeError) as exc:
                await self._send_error(writer, _HttpError(
                    400, "bad request", str(exc)))
            except AdmissionError as exc:
                await self._send_error(writer, _HttpError(
                    429, "rejected", str(exc)))
            except Exception as exc:
                await self._send_error(writer, _HttpError(
                    500, "internal error", f"{type(exc).__name__}: {exc}"))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass                      # client went away mid-exchange
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) != 3:
            raise _HttpError(400, "bad request",
                             f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        for _ in range(_MAX_HEADER_LINES):
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _HttpError(400, "bad request", "too many headers")
        body = b""
        length = headers.get("content-length")
        if length:
            try:
                length = int(length)
            except ValueError:
                raise _HttpError(400, "bad request",
                                 "bad Content-Length") from None
            if length > _MAX_BODY:
                raise _HttpError(413, "too large",
                                 f"body over {_MAX_BODY} bytes")
            body = await reader.readexactly(length)
        return method, path.split("?", 1)[0], body

    async def _send_error(self, writer, exc):
        writer.write(_head(exc.status, "application/json"))
        writer.write(json.dumps(
            {"error": exc.reason, "message": exc.message},
            sort_keys=True).encode("utf-8") + b"\n")
        await writer.drain()

    async def _send_json(self, writer, payload):
        writer.write(_head(200, "application/json"))
        writer.write(json.dumps(payload, sort_keys=True,
                                default=str).encode("utf-8") + b"\n")
        await writer.drain()

    # -- routing -------------------------------------------------------------

    async def _route(self, method, path, body, writer):
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, {"ok": True})
        elif path == "/stats" and method == "GET":
            await self._send_json(writer, self.service.stats())
        elif path == "/metrics" and method == "GET":
            await self._send_metrics(writer)
        elif path == "/sweep" and method == "POST":
            payload = json.loads(body.decode("utf-8") or "{}")
            await self._stream_sweep(payload, writer)
        elif path == "/shutdown" and method == "POST":
            if not self.allow_shutdown:
                raise _HttpError(404, "not found", "shutdown disabled")
            await self._send_json(writer, {"stopping": True})
            asyncio.get_running_loop().create_task(self.stop())
        elif path in ("/healthz", "/stats", "/metrics", "/sweep",
                      "/shutdown"):
            raise _HttpError(405, "method not allowed",
                             f"{method} not allowed on {path}")
        else:
            raise _HttpError(404, "not found", f"no route for {path}")

    async def _send_metrics(self, writer):
        """``GET /metrics``: Prometheus text rendering of the registry
        plus store / scheduler health gauges."""
        service = self.service
        extra = {
            "service.outstanding_cells": service._outstanding,
            "service.pending_cells": len(service._pending),
            "service.inflight_cells": len(service._inflight),
        }
        for name, value in get_cache().stats.as_dict().items():
            extra[f"store.{name}"] = value
        text = render_prometheus(get_registry(), extra_gauges=extra)
        writer.write(_head(200, "text/plain; version=0.0.4"))
        writer.write(text.encode("utf-8"))
        await writer.drain()

    # -- the sweep stream ----------------------------------------------------

    async def _stream_sweep(self, payload, writer):
        job = self.service.admit(payload)     # may raise 400/429 pre-headers
        request = job.request
        root = job.trace
        traced = trace_enabled()
        loop = asyncio.get_running_loop()
        progress_token = None
        started = time.time()
        t0 = time.perf_counter()
        completed = failed = 0
        try:
            writer.write(_head(200, "application/x-ndjson"))
            accepted = {
                "event": "accepted", "client": request.client,
                "cells": request.cell_count, "deduped": job.deduped,
                "scheduled": len(job.new_keys)}
            if traced:
                accepted["trace"] = {"trace_id": root.trace_id,
                                     "span_id": root.span_id}
            await self._write_line(writer, accepted)
            if request.progress:
                progress_token = self._tap_progress(job, writer, loop,
                                                    traced)
            for spec, ctx, future in zip(request.cells, job.cell_traces,
                                         job.futures):
                status, value = await asyncio.shield(future)
                trace = ctx if traced else None
                if status == "failed":
                    failed += 1
                    writer.write(failure_line(spec, value, trace=trace)
                                 .encode("utf-8") + b"\n")
                else:
                    completed += 1
                    writer.write(result_line(spec, value, trace=trace)
                                 .encode("utf-8") + b"\n")
                await writer.drain()
            done = {
                "event": "done", "cells": request.cell_count,
                "completed": completed, "failed": failed}
            if traced:
                done["trace"] = {"trace_id": root.trace_id,
                                 "span_id": root.span_id}
            await self._write_line(writer, done)
        finally:
            if progress_token is not None:
                remove_listener(progress_token)
            job.close()
            emit_span(root, "service.request", started,
                      time.perf_counter() - t0, client=request.client,
                      cells=request.cell_count, deduped=job.deduped,
                      completed=completed, failed=failed)

    def _tap_progress(self, job, writer, loop, traced):
        """Forward this request's scheduler lifecycle events into the
        stream, routed by trace id: only events carrying the request's
        own ``trace_id`` are forwarded, so two overlapping streams never
        receive each other's progress lines (a deduped cell's progress
        belongs to the request that scheduled it).  With tracing off the
        trace fields are stripped from the payload, keeping the stream
        byte-identical to an untraced server's.  The tap fires on the
        executor thread (scheduler side), so writes hop to the loop; a
        closed writer ends the tap's output harmlessly."""
        trace_id = job.trace.trace_id

        def write_progress(record):
            if record.get("event") not in ("cell_dispatch", "cell"):
                return
            if record.get("trace_id") != trace_id:
                return
            payload = dict(record)
            payload["stage"] = payload.pop("event")
            payload["event"] = "progress"
            if not traced:
                for field in ("trace_id", "span_id", "parent_span_id"):
                    payload.pop(field, None)
            line = json.dumps(payload, sort_keys=True, default=str)

            def push():
                try:
                    writer.write(line.encode("utf-8") + b"\n")
                except (ConnectionError, RuntimeError):
                    pass
            loop.call_soon_threadsafe(push)

        return add_listener(write_progress)

    async def _write_line(self, writer, payload):
        writer.write(json.dumps(payload, sort_keys=True,
                                default=str).encode("utf-8") + b"\n")
        await writer.drain()


async def run_server(host=None, port=None, **kwargs):
    """Start a server and run until stopped; returns after shutdown."""
    server = SweepServer(host=host, port=port, **kwargs)
    await server.start()
    print(f"sweep service listening on http://{server.host}:{server.port} "
          f"(cache at {get_cache().root})", flush=True)
    try:
        await server.serve_until_stopped()
    finally:
        await server.stop()
