"""Wallclock spans bridging the metrics registry and the event sink.

A span times a region of work.  Its duration lands in a ``<name>.wall_ms``
counter tagged ``wall`` (never parity-compared) and its entry count in
``<name>.count`` tagged ``sched`` (spans fire per compile/per cell, which
depends on cache warmth and scheduling).  Deterministic facts about the
region — node counts, rewrites, hit/miss — are recorded separately as
``det``/``sched`` counters by the caller; the span only owns time.

When the JSONL sink is enabled each span also emits one ``span`` event
carrying its structured fields plus the region's ``outcome`` — ``ok``
when the body returned, ``raised`` when it propagated an exception — so
failed regions are distinguishable in traces.  A raising region still
books its ``wall_ms``/``count`` metrics before re-raising.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

from repro.obs.events import emit, events_enabled
from repro.obs.metrics import SCHED, WALL, get_registry


@contextmanager
def span(name, /, **fields):
    """Time a region: ``with span("pass.dce", module=m.name): ...``

    The span name is positional-only so callers can attach a ``name``
    field of their own (the event carries the span under ``span``)."""
    t0 = time.perf_counter()
    outcome = "ok"
    try:
        yield fields
    except BaseException:
        outcome = "raised"
        raise
    finally:
        wall_ms = (time.perf_counter() - t0) * 1000.0
        reg = get_registry()
        reg.counter_add(name + ".wall_ms", wall_ms, WALL)
        reg.counter_add(name + ".count", 1, SCHED)
        if events_enabled():
            emit("span", span=name, wall_ms=round(wall_ms, 3),
                 outcome=outcome, **fields)
