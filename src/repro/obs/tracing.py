"""Distributed trace/span context with deterministic ids.

One *trace* is the causal timeline of one unit of top-level work — an
HTTP sweep request, a ``run_all.py --cells`` invocation, one experiment
sweep.  Within a trace, *spans* nest: request → cell → scheduler attempt
(including retries and timeout-killed attempts) → engine phase.  The
context (:class:`TraceContext`: ``trace_id``, ``span_id``,
``parent_id``) propagates across process boundaries over the existing
worker Pipe protocol as a plain tuple (:meth:`TraceContext.to_wire`),
and within a process via a per-thread activation stack
(:func:`activate` / :func:`current`).

**Ids are deterministic.**  Every id is a truncated SHA-256 of its
parents plus caller-supplied discriminators (cell keys, attempt
counters, phase indices) — never wallclock, never randomness.  Two runs
of the same request sequence produce the same ids, so traces are
diffable and the timeout path can re-derive a killed worker's span id
on the scheduler side.

**Tracing is opt-in and inert when off.**  ``REPRO_TRACE=1`` arms it;
the default leaves every byte of the deterministic surface (streamed
JSONL, DET metric snapshots) identical to an untraced build.  Span
*events* additionally require the event sink
(:mod:`repro.obs.events`) to have somewhere to deliver — a
``REPRO_EVENTS`` path or an in-process listener — mirroring every other
event producer.

Layering: this module is the bottom of ``repro.obs`` — it may import
only :mod:`repro.obs.events` and :mod:`repro.obs.envflags`, pinned by
``tools/check_layering.py``.  Everything above (harness, service,
engine trace forwarding) imports *it*, so context propagation can never
pull scheduler or server code into a leaf.
"""

from __future__ import annotations

import hashlib
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.obs.envflags import env_flag
from repro.obs.events import emit, events_enabled

#: Arms tracing: trace fields on streamed service lines, span events in
#: the event sink, context shipping to sweep workers.  Off by default —
#: the untraced surfaces must stay byte-identical.
TRACE_ENV = "REPRO_TRACE"

#: Hex digits per id (64 bits — plenty at trace scale, short enough to
#: stay readable in JSONL).
_ID_HEX = 16

#: Field separator for id derivation; never appears in cell keys.
_SEP = "\x1f"


def trace_enabled():
    """True when ``REPRO_TRACE`` is explicitly on (opt-in knob)."""
    return env_flag(TRACE_ENV, default=False)


def derive_id(*parts):
    """Deterministic id from discriminator parts: a truncated SHA-256.

    Parts are stringified and joined with an out-of-band separator, so
    ``derive_id("a", "bc")`` and ``derive_id("ab", "c")`` differ."""
    digest = hashlib.sha256(
        _SEP.join(str(part) for part in parts).encode("utf-8"))
    return digest.hexdigest()[:_ID_HEX]


@dataclass(frozen=True)
class TraceContext:
    """One position in a trace: where new child spans attach."""

    trace_id: str
    span_id: str
    parent_id: str = None

    @classmethod
    def root(cls, *parts):
        """Open a new trace.  ``parts`` are the deterministic seed —
        cell keys, request sequence numbers, client ids."""
        trace_id = derive_id("trace", *parts)
        return cls(trace_id=trace_id,
                   span_id=derive_id(trace_id, "root"), parent_id=None)

    def child(self, *parts):
        """Context for a child span of this one.  ``parts`` must make
        the child unique among its siblings (name + attempt counter,
        cell key, phase index...)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=derive_id(self.trace_id, self.span_id, *parts),
            parent_id=self.span_id)

    def fields(self):
        """The dict stamped into events and JSONL lines."""
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_span_id"] = self.parent_id
        return out

    # -- cross-process wire format ---------------------------------------

    def to_wire(self):
        return (self.trace_id, self.span_id, self.parent_id)

    @classmethod
    def from_wire(cls, wire):
        if wire is None:
            return None
        trace_id, span_id, parent_id = wire
        return cls(trace_id=trace_id, span_id=span_id, parent_id=parent_id)


# -- per-thread activation stack -------------------------------------------

_tls = threading.local()


def _stack():
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = _tls.stack = []
    return stack


def current():
    """The innermost activated context of this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


@contextmanager
def activate(ctx):
    """Make ``ctx`` the thread's current context for the ``with`` body.
    ``None`` is accepted and leaves the stack untouched, so callers can
    pass an optional context straight through."""
    if ctx is None:
        yield None
        return
    stack = _stack()
    stack.append(ctx)
    try:
        yield ctx
    finally:
        stack.pop()


# -- span emission ----------------------------------------------------------


def emit_span(ctx, name, start_ts, duration_s, outcome="ok", **fields):
    """Emit one finished span as a ``tspan`` event.

    ``start_ts`` is an epoch timestamp (``time.time()``), ``duration_s``
    wallclock seconds.  Ids come from ``ctx`` (deterministic); only the
    timestamps are wallclock, and they live outside the deterministic
    surface like every other event field.  No-op when the event sink has
    nowhere to deliver."""
    if ctx is None or not events_enabled():
        return
    emit("tspan", name=name, ts_us=int(start_ts * 1e6),
         dur_us=max(0, int(duration_s * 1e6)), outcome=outcome,
         **ctx.fields(), **fields)


@contextmanager
def trace_span(name, *, ctx=None, parts=(), **fields):
    """Run a region as a child span of ``ctx`` (or the thread's current
    context) and emit it on exit.

    Yields the child context (activated for the body, so nested spans —
    including engine phase forwarding — attach under it) or ``None``
    when there is no enclosing context, in which case the body runs
    untraced at zero cost.  ``parts`` disambiguates siblings; the span
    records ``outcome`` ``ok``/``raised`` and re-raises unchanged."""
    parent = ctx if ctx is not None else current()
    if parent is None:
        yield None
        return
    child = parent.child(name, *parts)
    start_ts = time.time()
    t0 = time.perf_counter()
    outcome = "ok"
    try:
        with activate(child):
            yield child
    except BaseException:
        outcome = "raised"
        raise
    finally:
        emit_span(child, name, start_ts, time.perf_counter() - t0,
                  outcome=outcome, **fields)
