"""JSONL event sink, enabled by ``REPRO_EVENTS=<path>``, plus an
in-process listener tap used by long-lived front ends.

Events are append-only diagnostic records (spans, cache probes,
scheduler cell lifecycles, engine phase traces) — one JSON object per
line, tagged with the emitting pid.  They are *not* part of the
deterministic surface: worker processes interleave freely and wallclock
fields differ run to run.  Deterministic comparisons go through
:mod:`repro.obs.metrics` instead.

The sink is fork-aware: the file handle is cached per (path, pid) and
reopened after a fork so each worker appends through its own handle
(O_APPEND keeps whole lines intact across processes).  All I/O is
best-effort; a broken sink never fails the run.

**Listeners** (:func:`add_listener` / :func:`remove_listener`) receive
each event record as a dict, in-process, before it is serialized.  The
sweep service uses this to stream per-cell scheduler progress to HTTP
clients without routing through a file.  A listener is bound to the pid
that registered it: a forked worker purges the inherited foreign-pid
tokens on its first listener-table access (registration, enablement
check, or delivery) and therefore never delivers into a parent's
callback; like the file sink, a listener that raises is dropped from
that delivery rather than failing the emitting code path.
"""

from __future__ import annotations

import json
import os

EVENTS_ENV = "REPRO_EVENTS"

_state = {"path": None, "pid": None, "fh": None}

#: token -> (registering pid, callback).  Tokens are monotonically
#: assigned so remove_listener is O(1) and double-removal is harmless.
_listeners = {}
_next_token = 0

#: The pid whose listeners currently populate ``_listeners``.  A forked
#: child inherits the parent's table; the first listener-table access in
#: the child purges the foreign tokens once (instead of re-checking the
#: owner on every delivery) and rebinds the table to the child's pid.
_listeners_pid = None


def _purge_foreign():
    """Drop listeners inherited across a fork; returns this pid.

    Called on every listener-table access; after the first call in a
    process it is a single pid comparison."""
    global _listeners_pid
    pid = os.getpid()
    if _listeners_pid != pid:
        if _listeners:
            for token, (owner, _cb) in list(_listeners.items()):
                if owner != pid:
                    del _listeners[token]
        _listeners_pid = pid
    return pid


def add_listener(callback):
    """Register an in-process event listener; returns a removal token.

    The callback receives the full record dict of every :func:`emit` in
    this process (events become "enabled" for emitters as long as at
    least one listener is registered, even without ``REPRO_EVENTS``)."""
    global _next_token
    pid = _purge_foreign()
    _next_token += 1
    _listeners[_next_token] = (pid, callback)
    return _next_token


def remove_listener(token):
    """Unregister a listener; unknown/stale tokens are ignored."""
    _listeners.pop(token, None)


def events_enabled():
    """True when emitting has somewhere to go: a JSONL path is armed or
    an in-process listener registered by *this* process is live."""
    if os.environ.get(EVENTS_ENV):
        return True
    if not _listeners:
        return False
    _purge_foreign()
    return bool(_listeners)


def _handle(path):
    pid = os.getpid()
    if _state["fh"] is None or _state["path"] != path \
            or _state["pid"] != pid:
        old = _state["fh"]
        _state["fh"] = None
        if old is not None and _state["pid"] == pid:
            try:
                old.close()
            except OSError:
                pass
        try:
            _state["fh"] = open(path, "a", encoding="utf-8")
        except OSError:
            # A failed open must not leave the previous path/pid behind:
            # stale bookkeeping would make the close-on-reopen guard
            # above compare against a handle that no longer exists.
            _state["path"] = None
            _state["pid"] = None
            return None
        _state["path"] = path
        _state["pid"] = pid
    return _state["fh"]


def _deliver(record):
    _purge_foreign()
    for _token, (_owner, callback) in list(_listeners.items()):
        try:
            callback(record)
        except Exception:
            pass                  # a broken listener never fails the run


def emit(kind, /, **fields):
    """Append one event record; no-op unless ``REPRO_EVENTS`` is set or
    a listener is registered.

    ``kind`` is positional-only so callers can carry a ``kind`` field of
    their own (compile spans, failure records); the event's own kind
    lands under the ``event`` key."""
    path = os.environ.get(EVENTS_ENV)
    record = {"event": kind, "pid": os.getpid()}
    record.update(fields)
    if _listeners:
        _deliver(record)
    if not path:
        return
    fh = _handle(path)
    if fh is None:
        return
    try:
        fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        fh.flush()
    except (OSError, ValueError):
        pass
