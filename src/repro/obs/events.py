"""JSONL event sink, enabled by ``REPRO_EVENTS=<path>``.

Events are append-only diagnostic records (spans, cache probes,
scheduler cell lifecycles, engine phase traces) — one JSON object per
line, tagged with the emitting pid.  They are *not* part of the
deterministic surface: worker processes interleave freely and wallclock
fields differ run to run.  Deterministic comparisons go through
:mod:`repro.obs.metrics` instead.

The sink is fork-aware: the file handle is cached per (path, pid) and
reopened after a fork so each worker appends through its own handle
(O_APPEND keeps whole lines intact across processes).  All I/O is
best-effort; a broken sink never fails the run.
"""

from __future__ import annotations

import json
import os

EVENTS_ENV = "REPRO_EVENTS"

_state = {"path": None, "pid": None, "fh": None}


def events_enabled():
    return bool(os.environ.get(EVENTS_ENV))


def _handle(path):
    pid = os.getpid()
    if _state["fh"] is None or _state["path"] != path \
            or _state["pid"] != pid:
        old = _state["fh"]
        _state["fh"] = None
        if old is not None and _state["pid"] == pid:
            try:
                old.close()
            except OSError:
                pass
        try:
            _state["fh"] = open(path, "a", encoding="utf-8")
        except OSError:
            return None
        _state["path"] = path
        _state["pid"] = pid
    return _state["fh"]


def emit(kind, /, **fields):
    """Append one event record; no-op unless ``REPRO_EVENTS`` is set.

    ``kind`` is positional-only so callers can carry a ``kind`` field of
    their own (compile spans, failure records); the event's own kind
    lands under the ``event`` key."""
    path = os.environ.get(EVENTS_ENV)
    if not path:
        return
    fh = _handle(path)
    if fh is None:
        return
    record = {"event": kind, "pid": os.getpid()}
    record.update(fields)
    try:
        fh.write(json.dumps(record, sort_keys=True, default=str) + "\n")
        fh.flush()
    except (OSError, ValueError):
        pass
