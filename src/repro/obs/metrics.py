"""Deterministic metrics registry: counters, gauges, histograms.

Determinism is structural, not aspirational:

* **Counters** accumulate integers on an ``int`` fast path and floats as
  exact :class:`fractions.Fraction` values.  Fraction addition is
  associative *and* commutative with no rounding, so a counter's final
  value is independent of the order (and process grouping) in which the
  increments happened — the one ``float()`` conversion at export time is
  correctly rounded.  Serial and parallel sweeps therefore export
  byte-identical values.
* **Gauges** merge by ``max`` (a commutative, associative, idempotent
  reduction) rather than last-write-wins, which would be
  schedule-dependent.
* **Histograms** are integer bucket counts over bounds fixed when the
  histogram is first observed.

Every metric carries a *stability* tag:

* ``det``   — deterministic counts/cycles; golden-comparable across
  schedules, cache warmth and interpreter tiers.
* ``sched`` — depends on cache warmth or scheduling (cache hits,
  retries, translation counts); reproducible only for a fixed schedule.
* ``wall``  — wallclock; never compared.

A name's stability is fixed at first use; re-registering it with a
different tag raises, so a metric cannot silently drift out of the
parity-checked set.

Worker processes ship their increments home as :meth:`diff` payloads
(pickleable; Fractions pickle exactly) which the parent folds in with
:meth:`apply` — see ``repro.harness.parallel``.
"""

from __future__ import annotations

from bisect import bisect_right
from fractions import Fraction

DET = "det"
SCHED = "sched"
WALL = "wall"

_STABILITIES = (DET, SCHED, WALL)

#: Default histogram bucket upper bounds (powers of two, ms/count scale).
DEFAULT_BOUNDS = tuple(2 ** i for i in range(0, 21))

_ZERO = Fraction(0)


class Counter:
    """Monotonic sum with exact float accumulation."""

    __slots__ = ("ints", "frac")

    def __init__(self, ints=0, frac=_ZERO):
        self.ints = ints
        self.frac = frac

    def add(self, value):
        if isinstance(value, int):
            self.ints += value
        else:
            self.frac += Fraction(value)

    @property
    def value(self):
        """Plain number: int when no float was ever added, else the
        correctly-rounded float of the exact sum."""
        if not self.frac:
            return self.ints
        return float(self.ints + self.frac)


class Gauge:
    """High-water mark (max-merge; order-independent)."""

    __slots__ = ("peak",)

    def __init__(self, peak=None):
        self.peak = peak

    def observe(self, value):
        if self.peak is None or value > self.peak:
            self.peak = value

    @property
    def value(self):
        return self.peak


class Histogram:
    """Integer bucket counts over fixed upper bounds (last bucket is
    overflow)."""

    __slots__ = ("bounds", "counts")

    def __init__(self, bounds=DEFAULT_BOUNDS, counts=None):
        self.bounds = tuple(bounds)
        self.counts = list(counts) if counts is not None \
            else [0] * (len(self.bounds) + 1)

    def observe(self, value, n=1):
        self.counts[bisect_right(self.bounds, value)] += n

    @property
    def value(self):
        return {"bounds": list(self.bounds), "counts": list(self.counts)}


class MetricsRegistry:
    """Name -> instrument, with a stability tag per name."""

    def __init__(self):
        self._counters = {}
        self._gauges = {}
        self._hists = {}
        self._stability = {}

    # -- registration ----------------------------------------------------

    def _tag(self, name, stability):
        if stability not in _STABILITIES:
            raise ValueError(f"unknown stability {stability!r}")
        prev = self._stability.get(name)
        if prev is None:
            self._stability[name] = stability
        elif prev != stability:
            raise ValueError(
                f"metric {name!r} already registered as {prev!r}, "
                f"refusing {stability!r}")

    # -- recording -------------------------------------------------------

    def counter_add(self, name, value, stability=DET):
        self._tag(name, stability)
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter()
        counter.add(value)

    def gauge_max(self, name, value, stability=DET):
        self._tag(name, stability)
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge()
        gauge.observe(value)

    def hist_observe(self, name, value, stability=DET,
                     bounds=DEFAULT_BOUNDS):
        self._tag(name, stability)
        hist = self._hists.get(name)
        if hist is None:
            hist = self._hists[name] = Histogram(bounds)
        hist.observe(value)

    # -- snapshot / diff / merge ----------------------------------------

    def snapshot(self):
        """Opaque copy of the full state (pair with :meth:`restore` or
        :meth:`diff`)."""
        return (
            {n: (c.ints, c.frac) for n, c in self._counters.items()},
            {n: g.peak for n, g in self._gauges.items()},
            {n: (h.bounds, list(h.counts)) for n, h in self._hists.items()},
            dict(self._stability),
        )

    def restore(self, snap):
        counters, gauges, hists, stability = snap
        self._counters = {n: Counter(i, f) for n, (i, f) in counters.items()}
        self._gauges = {n: Gauge(p) for n, p in gauges.items()}
        self._hists = {n: Histogram(b, c) for n, (b, c) in hists.items()}
        self._stability = dict(stability)

    def diff(self, snap):
        """Pickleable increment relative to ``snap`` — everything added
        since the snapshot was taken, mergeable with :meth:`apply`."""
        counters, gauges, hists, _ = snap
        dcounters = {}
        for name, c in self._counters.items():
            base = counters.get(name)
            base_i, base_f = base if base is not None else (0, _ZERO)
            di, df = c.ints - base_i, c.frac - base_f
            # A newly registered counter ships even at zero delta: a
            # zero-valued counter (e.g. a pass that ran but rewrote
            # nothing) must appear in the merged export exactly as it
            # would after a serial run.
            if di or df or base is None:
                dcounters[name] = (self._stability[name], di, df)
        dgauges = {}
        for name, g in self._gauges.items():
            base = gauges.get(name)
            if g.peak is not None and (base is None or g.peak > base):
                dgauges[name] = (self._stability[name], g.peak)
        dhists = {}
        for name, h in self._hists.items():
            base = hists.get(name, (h.bounds, [0] * len(h.counts)))[1]
            delta = [a - b for a, b in zip(h.counts, base)]
            if any(delta):
                dhists[name] = (self._stability[name], h.bounds, delta)
        return {"counters": dcounters, "gauges": dgauges, "hists": dhists}

    def apply(self, payload):
        """Fold a :meth:`diff` payload in.  Counter addition is exact and
        gauges max-merge, so application order does not matter."""
        for name, (stability, di, df) in payload["counters"].items():
            self._tag(name, stability)
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            counter.ints += di
            counter.frac += df
        for name, (stability, peak) in payload["gauges"].items():
            self.gauge_max(name, peak, stability)
        for name, (stability, bounds, delta) in payload["hists"].items():
            self._tag(name, stability)
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = Histogram(bounds)
            for i, d in enumerate(delta):
                hist.counts[i] += d
        return self

    # -- export ----------------------------------------------------------

    def stability(self, name):
        return self._stability.get(name)

    def export(self, stabilities=None):
        """Plain sorted ``{name: value}`` dict, optionally filtered to a
        set of stability tags (JSON-clean)."""
        if stabilities is not None:
            stabilities = frozenset(stabilities)
        out = {}
        for name in sorted(self._stability):
            if stabilities is not None and \
                    self._stability[name] not in stabilities:
                continue
            if name in self._counters:
                out[name] = self._counters[name].value
            elif name in self._gauges:
                out[name] = self._gauges[name].value
            elif name in self._hists:
                out[name] = self._hists[name].value
        return out

    def reset(self):
        self._counters.clear()
        self._gauges.clear()
        self._hists.clear()
        self._stability.clear()


def _prom_name(name):
    """Metric name to Prometheus spelling: ``repro_`` prefix, separators
    flattened to underscores."""
    safe = "".join(ch if ch.isalnum() else "_" for ch in name)
    return "repro_" + safe


def render_prometheus(registry, extra_gauges=None):
    """Prometheus text exposition (v0.0.4) of one registry.

    Counters export as ``counter`` samples, gauges as ``gauge``,
    histograms as cumulative ``le`` buckets plus a ``_count`` total.
    Every sample carries its stability tag (``det``/``sched``/``wall``)
    as a label, so scrapers can select the deterministic slice the same
    way the parity tests do.  ``extra_gauges`` — ``{name: value}`` or
    ``{name: (value, {label: v})}`` — lets front ends append
    operational numbers (store stats, outstanding cells) that live
    outside the registry."""
    lines = []

    def sample(name, labels, value):
        if isinstance(value, float):
            text = repr(value)
        else:
            text = str(value)
        rendered = ",".join(f'{k}="{v}"' for k, v in labels.items())
        lines.append(f"{name}{{{rendered}}} {text}" if rendered
                     else f"{name} {text}")

    for name in sorted(registry._stability):
        stability = registry._stability[name]
        prom = _prom_name(name)
        labels = {"stability": stability}
        if name in registry._counters:
            lines.append(f"# TYPE {prom} counter")
            sample(prom, labels, registry._counters[name].value)
        elif name in registry._gauges:
            value = registry._gauges[name].value
            if value is None:
                continue
            lines.append(f"# TYPE {prom} gauge")
            sample(prom, labels, value)
        elif name in registry._hists:
            hist = registry._hists[name]
            lines.append(f"# TYPE {prom} histogram")
            cumulative = 0
            for bound, count in zip(hist.bounds, hist.counts):
                cumulative += count
                sample(prom + "_bucket", {**labels, "le": str(bound)},
                       cumulative)
            cumulative += hist.counts[-1]
            sample(prom + "_bucket", {**labels, "le": "+Inf"}, cumulative)
            sample(prom + "_count", labels, cumulative)
    for name, value in sorted((extra_gauges or {}).items()):
        labels = {}
        if isinstance(value, tuple):
            value, labels = value
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        sample(prom, labels, value)
    return "\n".join(lines) + "\n"


_REGISTRY = MetricsRegistry()


def get_registry():
    """The process-global registry (one per worker process)."""
    return _REGISTRY


def reset_registry():
    _REGISTRY.reset()
    return _REGISTRY
