"""Shared boolean environment-knob parsing for ``REPRO_*`` flags.

The apparatus grew two incompatible spellings of "is this knob on?":
``REPRO_CACHE`` treated *unset/empty/unrecognized* as **on** (anything
but an explicit ``0``/``off``/``false``/``no`` enabled the disk layer)
while ``REPRO_RESULT_CACHE`` required an explicit ``1``/``on``/``true``/
``yes`` and treated everything else as **off**.  Both behaviours are
intentional — they differ only in their *default* — so the one helper
here captures them as a ``default`` parameter:

* ``env_flag(name, default=False)``: off unless explicitly truthy.
* ``env_flag(name, default=True)``: on unless explicitly falsy.

Unset and empty/whitespace values always yield the default, and an
unrecognized token (``"maybe"``) also yields the default rather than
guessing.  Every boolean ``REPRO_*`` knob routes through this helper so
the two default policies stay the only two policies.

This module lives in ``repro.obs`` because the telemetry layer is the
one leaf every other layer (including ``repro.cache``) may import.
"""

from __future__ import annotations

import os

#: Tokens accepted as an explicit "on" (case-insensitive).
TRUTHY = ("1", "on", "true", "yes")

#: Tokens accepted as an explicit "off" (case-insensitive).
FALSY = ("0", "off", "false", "no")


def parse_flag(raw, default=False):
    """Interpret one raw environment value as a boolean.

    ``None``, empty, and unrecognized values yield ``default``; only the
    explicit :data:`TRUTHY`/:data:`FALSY` tokens override it."""
    if raw is None:
        return default
    token = raw.strip().lower()
    if not token:
        return default
    if token in TRUTHY:
        return True
    if token in FALSY:
        return False
    return default


def env_flag(name, default=False):
    """The boolean value of environment variable ``name``.

    ``default=False`` knobs are opt-in (``REPRO_RESULT_CACHE``-style),
    ``default=True`` knobs are opt-out (``REPRO_CACHE``-style)."""
    return parse_flag(os.environ.get(name), default)


def env_int(name, default=0, minimum=None):
    """Integer environment knob with a default for unset/empty/garbage
    values; clamped from below when ``minimum`` is given."""
    raw = os.environ.get(name, "").strip()
    value = default
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = default
    if minimum is not None and value < minimum:
        value = minimum
    return value


def env_float(name, default=0.0, minimum=None):
    """Float environment knob with the same conventions as
    :func:`env_int`."""
    raw = os.environ.get(name, "").strip()
    value = default
    if raw:
        try:
            value = float(raw)
        except ValueError:
            value = default
    if minimum is not None and value < minimum:
        value = minimum
    return value
