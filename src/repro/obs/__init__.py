"""Unified telemetry layer (metrics, spans, events, profiler).

``repro.obs`` is the observability substrate every other layer may use:
the compiler pipeline, the cache, the three engines, the harness and the
results tooling all report through it.  To keep that fan-in safe the
package is a *leaf*: it imports nothing from ``repro`` outside itself
(stdlib only), enforced by ``tools/check_layering.py``.

Three kinds of instrument:

* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and histograms that is deterministic by construction.  Every
  metric carries a stability tag (``det`` / ``sched`` / ``wall``) saying
  how reproducible its value is; ``det`` metrics are golden-comparable
  across schedules, cache warmth and interpreter tiers.
* :mod:`repro.obs.spans` — wallclock spans that feed ``wall`` metrics
  and the JSONL event sink (:mod:`repro.obs.events`, ``REPRO_EVENTS``).
* :mod:`repro.obs.profile` — the per-function/per-op execution profiler
  the engines drive when ``REPRO_PROFILE=1``; pure integer counts so the
  reference ladders and the threaded tier produce identical profiles.
* :mod:`repro.obs.tracing` — distributed trace/span context with
  deterministic ids (``REPRO_TRACE=1``), propagated across the worker
  Pipe protocol and exported to Chrome Trace / Perfetto JSON by
  ``tools/trace_export.py``.
"""

from repro.obs.envflags import (
    env_flag, env_float, env_int, parse_flag,
)
from repro.obs.events import (
    EVENTS_ENV, add_listener, emit, events_enabled, remove_listener,
)
from repro.obs.metrics import (
    DET, SCHED, WALL, MetricsRegistry, get_registry, render_prometheus,
    reset_registry,
)
from repro.obs.profile import (
    PROFILE_ENV, EngineProfile, new_profile, profile_enabled,
)
from repro.obs.spans import span
from repro.obs.tracing import (
    TRACE_ENV, TraceContext, activate, current, derive_id, emit_span,
    trace_enabled, trace_span,
)

__all__ = [
    "DET",
    "EVENTS_ENV",
    "EngineProfile",
    "MetricsRegistry",
    "PROFILE_ENV",
    "SCHED",
    "TRACE_ENV",
    "TraceContext",
    "WALL",
    "activate",
    "add_listener",
    "current",
    "derive_id",
    "emit",
    "emit_span",
    "env_flag",
    "env_float",
    "env_int",
    "events_enabled",
    "get_registry",
    "parse_flag",
    "remove_listener",
    "new_profile",
    "profile_enabled",
    "render_prometheus",
    "reset_registry",
    "span",
    "trace_enabled",
    "trace_span",
]
