"""Per-function / per-op execution profiler (``REPRO_PROFILE=1``).

The profile is **integer op-execution counts keyed by raw opcode** (plus
an engine-specific variant bit: JS packs the tier into bits 8+, native
packs the vector flag into bit 8).  Both interpreter tiers execute the
same abstract op stream, so counting ops — never cycles — makes the
profile bit-identical under ``REPRO_FAST_INTERP=0`` and ``=1``: the
reference ladders bump a per-op cell at the charge site, while the
threaded tier applies precomputed per-block ``(op, count)`` deltas at
its existing batch point.  Cycles per opclass are *derived* afterwards
from the static cost tables (``repro.engine.profdecode``).

When profiling is off (the default) ``new_profile`` returns ``None`` and
the engines' hot loops pay one pointer test per frame (reference) or per
block (threaded) — nothing per op.

Granularity caveat: the threaded tier attributes a whole block at its
batch point, so a *trapping* block's ops up to the trap are not counted
there (the reference ladder counts them exactly).  The measured
benchmarks never trap; the wasm budget deopt is exact on both tiers
because the deopt check precedes the block charge.
"""

from __future__ import annotations

from repro.obs.envflags import env_flag

PROFILE_ENV = "REPRO_PROFILE"


def profile_enabled():
    return env_flag(PROFILE_ENV, default=False)


class EngineProfile:
    """Per-function call counts + per-function {op_key: executed}."""

    __slots__ = ("engine", "calls", "ops")

    def __init__(self, engine):
        self.engine = engine
        self.calls = {}
        self.ops = {}

    def call(self, fname):
        self.calls[fname] = self.calls.get(fname, 0) + 1

    def frame(self, fname):
        """The mutable ``{op_key: count}`` dict for one function — bound
        once per frame by the interpreter loops."""
        cells = self.ops.get(fname)
        if cells is None:
            cells = self.ops[fname] = {}
        return cells

    def to_dict(self):
        """JSON/pickle-clean form with sorted, stringified op keys."""
        return {
            "engine": self.engine,
            "calls": {fn: self.calls[fn] for fn in sorted(self.calls)},
            "ops": {fn: {str(k): v for k, v in sorted(cells.items())}
                    for fn, cells in sorted(self.ops.items())},
        }


def new_profile(engine):
    """An :class:`EngineProfile` when profiling is on, else ``None``."""
    return EngineProfile(engine) if profile_enabled() else None
