"""repro — reproduction of "Understanding the Performance of WebAssembly
Applications" (IMC '21).

The package builds every layer of the paper's measurement apparatus as a
deterministic, executable model:

- :mod:`repro.cfront` — C-subset frontend (lexer, parser, source transforms).
- :mod:`repro.ir` — structured IR and the optimization passes whose
  target-dependent behaviour produces the paper's counter-intuitive results.
- :mod:`repro.wasm` — WebAssembly module format, binary encoder, validator,
  linear memory, and a stack-machine VM with instruction counters.
- :mod:`repro.jsengine` — a JavaScript engine model: parser, bytecode
  interpreter, tiering JIT, and mark-sweep GC.
- :mod:`repro.native` — the x86 register-machine model used as the
  "optimizations behave as intended" control.
- :mod:`repro.backends` — IR→Wasm / IR→JS / IR→x86 code generators.
- :mod:`repro.compilers` — Cheerp, Emscripten, and LLVM-x86 toolchain
  facades.
- :mod:`repro.env` — browser engine profiles (Chrome/Firefox/Edge,
  desktop/mobile), flags, and DevTools-style metric collection.
- :mod:`repro.harness` — HTML page model, timers, and the measurement
  runner.
- :mod:`repro.suites` — the 41 PolyBenchC/CHStone benchmarks.
- :mod:`repro.manualjs` — the 9 manually-written JavaScript programs.
- :mod:`repro.apps` — Long.js, Hyphenopoly, and FFmpeg reproductions.
- :mod:`repro.analysis` — statistics and table/figure rendering.
- :mod:`repro.experiments` — one entry point per paper table/figure.
"""

__version__ = "1.0.0"

from repro.errors import (
    CompileError,
    LinkError,
    ParseError,
    ReproError,
    TrapError,
    ValidationError,
)

__all__ = [
    "CompileError",
    "LinkError",
    "ParseError",
    "ReproError",
    "TrapError",
    "ValidationError",
    "__version__",
]
