"""Exception hierarchy shared by every repro subsystem."""


class ReproError(Exception):
    """Base class for all errors raised by the repro toolchain."""


class ParseError(ReproError):
    """Raised when source text (C subset or JS subset) cannot be parsed.

    Carries the offending line/column so toolchain facades can report
    Cheerp-style diagnostics.
    """

    def __init__(self, message, line=None, col=None):
        location = ""
        if line is not None:
            location = f" at line {line}" + (f":{col}" if col is not None else "")
        super().__init__(f"{message}{location}")
        self.line = line
        self.col = col


class CompileError(ReproError):
    """Raised when a frontend/backend cannot lower an input program."""


class LinkError(CompileError):
    """Raised for link-stage failures (e.g. conflicting symbol definitions
    between pre-compiled and explicitly linked libraries, §3.2)."""


class ValidationError(ReproError):
    """Raised when a Wasm module fails validation."""


class TrapError(ReproError):
    """Raised when Wasm execution traps (unreachable, OOB access, exhausted
    linear memory, division by zero)."""


class MeasurementError(ReproError):
    """Raised when the harness detects an invalid measurement, e.g. a
    benchmark whose output differs between repetitions (§3.3.2 averages
    repetitions, which is only sound when every run computes the same
    result)."""


class CacheError(ReproError):
    """Raised for unrecoverable artifact-cache misconfiguration (an
    unusable cache *entry* is never an error — it is treated as stale and
    recompiled)."""


class SweepError(ReproError):
    """Raised when a benchmark × configuration sweep finishes with failed
    cells and the caller asked for strict semantics.

    Carries the partial results so no completed work is discarded:
    ``sweep`` is the full :class:`~repro.harness.parallel.SweepResult`
    (successful values merged in input order plus one structured
    :class:`~repro.harness.parallel.CellFailure` per failed cell), and
    ``failures`` is a shortcut to its failure list.  The message is the
    sweep's human-readable failure report.
    """

    def __init__(self, sweep):
        self.sweep = sweep
        self.failures = list(sweep.failures)
        super().__init__(sweep.report())
