"""Input-size classes (§3.2): Extra Small, Small, Medium, Large, Extra
Large — the PolyBench MINI/SMALL/MEDIUM/LARGE/EXTRALARGE datasets and the
iteration scaling we apply to CHStone."""

from __future__ import annotations

SIZE_CLASSES = ("XS", "S", "M", "L", "XL")

#: Default run-dimension ladder for triple-nested kernels.  The ladder is
#: deliberately wide (M/XS trip-count ratio ~90×) so the JIT-warmup
#: crossover the paper observes between S and M inputs (§4.3) falls in the
#: same place on the scaled dims.
RUN3 = {"XS": 4, "S": 8, "M": 18, "L": 26, "XL": 34}
#: For double-nested kernels.
RUN2 = {"XS": 6, "S": 12, "M": 28, "L": 44, "XL": 60}
#: For single loops / 1-D stencils.
RUN1 = {"XS": 20, "S": 60, "M": 200, "L": 420, "XL": 700}
#: Time steps for stencils.
TSTEPS = {"XS": 2, "S": 3, "M": 4, "L": 5, "XL": 6}


def size_table(**macros):
    """Build the per-size defines table.

    Each keyword maps a macro name to a 5-tuple (XS, S, M, L, XL) or to a
    dict keyed by size class.  Returns ``{size: {macro: value}}``."""
    table = {size: {} for size in SIZE_CLASSES}
    for macro, values in macros.items():
        if isinstance(values, dict):
            for size in SIZE_CLASSES:
                table[size][macro] = values[size]
        else:
            for size, value in zip(SIZE_CLASSES, values):
                table[size][macro] = value
    return table


def capped(paper_values, run_values):
    """Run dims never exceed the paper dims (tiny datasets run in full)."""
    return {size: min(p, r) for size, p, r in
            zip(SIZE_CLASSES, paper_values,
                [run_values[s] for s in SIZE_CLASSES])}
