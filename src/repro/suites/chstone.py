"""CHStone 1.11 benchmarks (the paper's Table 1, lower half).

Authored in the frontend's C subset with CHStone's program structure:
self-contained kernels with embedded test data.  Notable fidelity points:

* **ADPCM** keeps CHStone's stores into a never-read ``result`` array —
  the exact dead-store pattern behind the paper's Fig. 7 -Ofast anomaly.
* **DFADD/DFDIV/DFMUL/DFSIN** are software IEEE-754 double kernels over
  64-bit integers (CHStone's SoftFloat port): the workloads that stress
  i64 legalisation in the JavaScript target (Appendix D's mechanism).
* **AES** computes its S-box from GF(2^8) arithmetic at init (instead of
  shipping the table) and runs real AES-128 rounds; **BLOWFISH** runs the
  16-round Feistel network with LCG-seeded boxes (CHStone seeds from π
  digits; an LCG keystream preserves the computation shape).
* **MIPS** is CHStone's simplified MIPS CPU executing an embedded
  bubble-sort program.

Input-size classes scale the amount of data processed (blocks/samples/
cycles), matching how the paper drove CHStone with five input sets.
"""

from __future__ import annotations

import struct

from repro.suites.inputs import size_table
from repro.suites.registry import Benchmark, register


def _chstone(name, category, description, source, sizes):
    register(Benchmark(name=name, suite="CHStone", category=category,
                       description=description, source=source, sizes=sizes))


def dbits(value):
    """Bit pattern of a Python float as a u64 C literal."""
    return str(struct.unpack("<Q", struct.pack("<d", float(value)))[0]) + "UL"


# ---------------------------------------------------------------------------
# ADPCM — adaptive differential PCM encode/decode
# ---------------------------------------------------------------------------

_chstone("ADPCM", "2c", "Speech signal processing (IMA ADPCM)", r"""
int stepsize[89];
int indexmap[16];
int pcm[PSAMPLES];
int compressed[PSAMPLES];
int decoded[PSAMPLES];
int result[PSAMPLES];
int enc_pred = 0;
int enc_index = 0;
int dec_pred = 0;
int dec_index = 0;

void init_tables() {
  int i;
  int step = 7;
  for (i = 0; i < 89; i++) {
    stepsize[i] = step;
    step = step + (step / 10) + 1;
  }
  indexmap[0] = -1; indexmap[1] = -1; indexmap[2] = -1; indexmap[3] = -1;
  indexmap[4] = 2; indexmap[5] = 4; indexmap[6] = 6; indexmap[7] = 8;
  indexmap[8] = -1; indexmap[9] = -1; indexmap[10] = -1;
  indexmap[11] = -1; indexmap[12] = 2; indexmap[13] = 4;
  indexmap[14] = 6; indexmap[15] = 8;
}

void init_input() {
  int i;
  int value = 0;
  for (i = 0; i < SAMPLES; i++) {
    value = (value * 37 + 111) % 16384;
    pcm[i] = value - 8192;
  }
}

int encode_sample(int sample) {
  int diff, step, code, diffq;
  step = stepsize[enc_index];
  diff = sample - enc_pred;
  code = 0;
  if (diff < 0) {
    code = 8;
    diff = -diff;
  }
  if (diff >= step) {
    code = code | 4;
    diff -= step;
  }
  if (diff >= step / 2) {
    code = code | 2;
    diff -= step / 2;
  }
  if (diff >= step / 4)
    code = code | 1;
  diffq = step / 8;
  if (code & 4)
    diffq += step;
  if (code & 2)
    diffq += step / 2;
  if (code & 1)
    diffq += step / 4;
  if (code & 8)
    enc_pred -= diffq;
  else
    enc_pred += diffq;
  if (enc_pred > 8191)
    enc_pred = 8191;
  else if (enc_pred < -8192)
    enc_pred = -8192;
  enc_index += indexmap[code];
  if (enc_index < 0)
    enc_index = 0;
  if (enc_index > 88)
    enc_index = 88;
  return code;
}

int decode_sample(int code) {
  int step, diffq;
  step = stepsize[dec_index];
  diffq = step / 8;
  if (code & 4)
    diffq += step;
  if (code & 2)
    diffq += step / 2;
  if (code & 1)
    diffq += step / 4;
  if (code & 8)
    dec_pred -= diffq;
  else
    dec_pred += diffq;
  if (dec_pred > 8191)
    dec_pred = 8191;
  else if (dec_pred < -8192)
    dec_pred = -8192;
  dec_index += indexmap[code];
  if (dec_index < 0)
    dec_index = 0;
  if (dec_index > 88)
    dec_index = 88;
  return dec_pred;
}

void adpcm_main() {
  int i, xout1, xout2;
  for (i = 0; i < SAMPLES; i++)
    compressed[i] = encode_sample(pcm[i]);
  for (i = 0; i + 1 < SAMPLES; i += 2) {
    xout1 = decode_sample(compressed[i]);
    xout2 = decode_sample(compressed[i + 1]);
    decoded[i] = xout1;
    decoded[i + 1] = xout2;
    result[i] = xout1;
    result[i + 1] = xout2;
  }
}

int checksum() {
  int i;
  int s = 0;
  for (i = 0; i < SAMPLES; i++)
    s = (s + decoded[i] + compressed[i]) % 1000000007;
  return s;
}

int main() {
  init_tables();
  init_input();
  adpcm_main();
  printf("%d", checksum());
  return 0;
}
""", size_table(PSAMPLES=(4096, 4096, 4096, 8192, 16384),
                SAMPLES=(48, 96, 320, 768, 1536)))

# ---------------------------------------------------------------------------
# AES — AES-128 block encryption
# ---------------------------------------------------------------------------

_chstone("AES", "2a", "AES-128 block cipher", r"""
unsigned char sbox[256];
unsigned char rk[176];
unsigned char state[16];
unsigned char key[16];
unsigned char block[16];
int out_xor = 0;

int gmul(int a, int b) {
  int p, i, hi;
  p = 0;
  for (i = 0; i < 8; i++) {
    if (b & 1)
      p = p ^ a;
    hi = a & 128;
    a = (a << 1) & 255;
    if (hi)
      a = a ^ 27;
    b = b >> 1;
  }
  return p;
}

int gpow(int a, int e) {
  int r;
  r = 1;
  while (e) {
    if (e & 1)
      r = gmul(r, a);
    a = gmul(a, a);
    e = e >> 1;
  }
  return r;
}

void build_sbox() {
  int x, inv, b, r, i;
  sbox[0] = 99;
  for (x = 1; x < 256; x++) {
    inv = gpow(x, 254);
    b = inv;
    r = inv;
    for (i = 0; i < 4; i++) {
      b = ((b << 1) | (b >> 7)) & 255;
      r = r ^ b;
    }
    sbox[x] = (r ^ 99) & 255;
  }
}

void expand_key() {
  int i, k, t0, t1, t2, t3, tmp, rcon;
  for (i = 0; i < 16; i++)
    rk[i] = key[i];
  rcon = 1;
  for (k = 16; k < 176; k += 4) {
    t0 = rk[k - 4];
    t1 = rk[k - 3];
    t2 = rk[k - 2];
    t3 = rk[k - 1];
    if (k % 16 == 0) {
      tmp = t0;
      t0 = sbox[t1] ^ rcon;
      t1 = sbox[t2];
      t2 = sbox[t3];
      t3 = sbox[tmp];
      rcon = gmul(rcon, 2);
    }
    rk[k] = rk[k - 16] ^ t0;
    rk[k + 1] = rk[k - 15] ^ t1;
    rk[k + 2] = rk[k - 14] ^ t2;
    rk[k + 3] = rk[k - 13] ^ t3;
  }
}

void add_round_key(int round) {
  int i;
  for (i = 0; i < 16; i++)
    state[i] = state[i] ^ rk[round * 16 + i];
}

void sub_bytes() {
  int i;
  for (i = 0; i < 16; i++)
    state[i] = sbox[state[i]];
}

void shift_rows() {
  int t;
  t = state[1]; state[1] = state[5]; state[5] = state[9];
  state[9] = state[13]; state[13] = t;
  t = state[2]; state[2] = state[10]; state[10] = t;
  t = state[6]; state[6] = state[14]; state[14] = t;
  t = state[3]; state[3] = state[15]; state[15] = state[11];
  state[11] = state[7]; state[7] = t;
}

void mix_columns() {
  int c, a0, a1, a2, a3;
  for (c = 0; c < 4; c++) {
    a0 = state[4 * c];
    a1 = state[4 * c + 1];
    a2 = state[4 * c + 2];
    a3 = state[4 * c + 3];
    state[4 * c] = gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3;
    state[4 * c + 1] = a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3;
    state[4 * c + 2] = a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3);
    state[4 * c + 3] = gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2);
  }
}

void encrypt_block() {
  int round, i;
  for (i = 0; i < 16; i++)
    state[i] = block[i];
  add_round_key(0);
  for (round = 1; round < 10; round++) {
    sub_bytes();
    shift_rows();
    mix_columns();
    add_round_key(round);
  }
  sub_bytes();
  shift_rows();
  add_round_key(10);
}

int main() {
  int b, i, seed;
  build_sbox();
  for (i = 0; i < 16; i++)
    key[i] = (i * 17 + 5) & 255;
  expand_key();
  seed = 7;
  for (b = 0; b < BLOCKS; b++) {
    for (i = 0; i < 16; i++) {
      seed = (seed * 1103515245 + 12345) & 2147483647;
      block[i] = seed & 255;
    }
    encrypt_block();
    for (i = 0; i < 16; i++)
      out_xor = out_xor ^ (state[i] << (i % 4) * 8);
  }
  printf("%d", out_xor);
  return 0;
}
""", size_table(BLOCKS=(1, 2, 5, 10, 18)))

# ---------------------------------------------------------------------------
# BLOWFISH — Feistel block cipher
# ---------------------------------------------------------------------------

_chstone("BLOWFISH", "2a", "Blowfish data encryption", r"""
unsigned P[18];
unsigned S[1024];
unsigned xl = 0;
unsigned xr = 0;
int out_xor = 0;

unsigned keystream(unsigned st) {
  return st * 1664525U + 1013904223U;
}

void init_boxes() {
  int i;
  unsigned st = 305419896U;
  for (i = 0; i < 18; i++) {
    st = keystream(st);
    P[i] = st;
  }
  for (i = 0; i < 1024; i++) {
    st = keystream(st);
    S[i] = st;
  }
}

unsigned bf_f(unsigned x) {
  unsigned a, b, c, d;
  a = (x >> 24) & 255U;
  b = (x >> 16) & 255U;
  c = (x >> 8) & 255U;
  d = x & 255U;
  return ((S[a] + S[256 + b]) ^ S[512 + c]) + S[768 + d];
}

void bf_encrypt() {
  int i;
  unsigned temp;
  for (i = 0; i < 16; i++) {
    xl = xl ^ P[i];
    xr = bf_f(xl) ^ xr;
    temp = xl;
    xl = xr;
    xr = temp;
  }
  temp = xl;
  xl = xr;
  xr = temp;
  xr = xr ^ P[16];
  xl = xl ^ P[17];
}

int main() {
  int b;
  unsigned st = 2463534242U;
  init_boxes();
  for (b = 0; b < BLOCKS; b++) {
    st = keystream(st);
    xl = xl ^ st;
    st = keystream(st);
    xr = xr ^ st;
    bf_encrypt();
    out_xor = out_xor ^ (int)(xl ^ xr);
  }
  printf("%d", out_xor);
  return 0;
}
""", size_table(BLOCKS=(4, 12, 40, 96, 192)))

# ---------------------------------------------------------------------------
# Soft-float kernels (DFADD / DFDIV / DFMUL / DFSIN)
# ---------------------------------------------------------------------------

_SOFTFLOAT = r"""
unsigned long sf_sign(unsigned long a) {
  return a >> 63;
}

unsigned long sf_exp(unsigned long a) {
  return (a >> 52) & 2047UL;
}

unsigned long sf_frac(unsigned long a) {
  return a & 4503599627370495UL;
}

unsigned long sf_pack(unsigned long s, unsigned long e, unsigned long f) {
  return (s << 63) | (e << 52) | (f & 4503599627370495UL);
}

unsigned long float64_add(unsigned long a, unsigned long b) {
  unsigned long asign, aexp, afrac, bsign, bexp, bfrac;
  unsigned long t, frac, exp;
  int shift;
  asign = sf_sign(a); aexp = sf_exp(a); afrac = sf_frac(a);
  bsign = sf_sign(b); bexp = sf_exp(b); bfrac = sf_frac(b);
  if (aexp == 0UL)
    return b;
  if (bexp == 0UL)
    return a;
  if (aexp < bexp || (aexp == bexp && afrac < bfrac)) {
    t = a; a = b; b = t;
    asign = sf_sign(a); aexp = sf_exp(a); afrac = sf_frac(a);
    bsign = sf_sign(b); bexp = sf_exp(b); bfrac = sf_frac(b);
  }
  afrac = afrac | 4503599627370496UL;
  bfrac = bfrac | 4503599627370496UL;
  shift = (int)(aexp - bexp);
  if (shift > 60)
    bfrac = 0UL;
  else
    bfrac = bfrac >> shift;
  if (asign == bsign) {
    frac = afrac + bfrac;
    exp = aexp;
    if (frac >> 53) {
      frac = frac >> 1;
      exp = exp + 1UL;
    }
  } else {
    frac = afrac - bfrac;
    exp = aexp;
    if (frac == 0UL)
      return 0UL;
    while ((frac >> 52) == 0UL) {
      frac = frac << 1;
      exp = exp - 1UL;
    }
  }
  return sf_pack(asign, exp, frac);
}

unsigned long float64_neg(unsigned long a) {
  return a ^ 9223372036854775808UL;
}

unsigned long float64_sub(unsigned long a, unsigned long b) {
  return float64_add(a, float64_neg(b));
}

unsigned long float64_mul(unsigned long a, unsigned long b) {
  unsigned long asign, aexp, afrac, bsign, bexp, bfrac;
  unsigned long al, ah, bl, bh, lo, mid1, mid2, hi, lo2, carry, z;
  unsigned long sign, exp;
  asign = sf_sign(a); aexp = sf_exp(a); afrac = sf_frac(a);
  bsign = sf_sign(b); bexp = sf_exp(b); bfrac = sf_frac(b);
  sign = asign ^ bsign;
  if (aexp == 0UL || bexp == 0UL)
    return sign << 63;
  afrac = afrac | 4503599627370496UL;
  bfrac = bfrac | 4503599627370496UL;
  al = afrac & 4294967295UL; ah = afrac >> 32;
  bl = bfrac & 4294967295UL; bh = bfrac >> 32;
  lo = al * bl;
  mid1 = ah * bl;
  mid2 = al * bh;
  hi = ah * bh;
  lo2 = lo + ((mid1 & 4294967295UL) << 32);
  carry = 0UL;
  if (lo2 < lo)
    carry = 1UL;
  hi = hi + (mid1 >> 32) + carry;
  lo = lo2;
  lo2 = lo + ((mid2 & 4294967295UL) << 32);
  carry = 0UL;
  if (lo2 < lo)
    carry = 1UL;
  hi = hi + (mid2 >> 32) + carry;
  z = (hi << 12) | (lo2 >> 52);
  exp = aexp + bexp;
  if (z >> 53) {
    z = z >> 1;
    exp = exp - 1022UL;
  } else {
    exp = exp - 1023UL;
  }
  return sf_pack(sign, exp, z);
}

unsigned long float64_div(unsigned long a, unsigned long b) {
  unsigned long asign, aexp, afrac, bsign, bexp, bfrac;
  unsigned long q, rem, sign, exp;
  int i;
  asign = sf_sign(a); aexp = sf_exp(a); afrac = sf_frac(a);
  bsign = sf_sign(b); bexp = sf_exp(b); bfrac = sf_frac(b);
  sign = asign ^ bsign;
  if (aexp == 0UL)
    return sign << 63;
  afrac = afrac | 4503599627370496UL;
  bfrac = bfrac | 4503599627370496UL;
  q = 0UL;
  rem = afrac;
  for (i = 0; i < 55; i++) {
    q = q << 1;
    rem = rem << 1;
    if (rem >= bfrac) {
      rem = rem - bfrac;
      q = q | 1UL;
    }
  }
  if (q >> 54) {
    q = q >> 2;
    exp = aexp - bexp + 1023UL;
  } else {
    q = q >> 1;
    exp = aexp - bexp + 1022UL;
  }
  return sf_pack(sign, exp, q);
}
"""


_DF_MAIN_TEMPLATE = r"""
unsigned long inputs_a[32];
unsigned long inputs_b[32];
long acc = 0;

void init_inputs() {
  int i;
  unsigned long bits;
  bits = %(seed)s;
  for (i = 0; i < 32; i++) {
    bits = bits * 2862933555777941757UL + 3037000493UL;
    inputs_a[i] = sf_pack(bits >> 63, 1013UL + (bits %% 21UL),
                          bits >> 11);
    bits = bits * 2862933555777941757UL + 3037000493UL;
    inputs_b[i] = sf_pack((bits >> 62) & 1UL, 1015UL + (bits %% 17UL),
                          bits >> 11);
  }
}

int main() {
  int r, i;
  unsigned long x;
  init_inputs();
  for (r = 0; r < REPEAT; r++) {
    for (i = 0; i < 32; i++) {
      x = %(op)s(inputs_a[i], inputs_b[i]);
      acc = acc ^ (long)(x >> 1);
    }
  }
  printf("%%ld", acc);
  return 0;
}
"""


def _df_benchmark(name, op, description):
    body = _DF_MAIN_TEMPLATE % {"op": op, "seed": "88172645463325252UL"}
    _chstone(name, "2e", description, _SOFTFLOAT + body,
             size_table(REPEAT=(1, 2, 6, 12, 20)))


_df_benchmark("DFADD", "float64_add", "Soft-float double addition")
_df_benchmark("DFDIV", "float64_div", "Soft-float double division")
_df_benchmark("DFMUL", "float64_mul", "Soft-float double multiplication")

_chstone("DFSIN", "2e", "Soft-float double sine (Taylor series)",
         _SOFTFLOAT + r"""
unsigned long angles[16];
long acc = 0;

unsigned long float64_sin(unsigned long x) {
  unsigned long term, total, x2, fact;
  int k;
  total = x;
  term = x;
  x2 = float64_mul(x, x);
  for (k = 1; k <= 6; k++) {
    term = float64_mul(term, x2);
    if (k == 1)
      fact = %(f3)s;
    else if (k == 2)
      fact = %(f5)s;
    else if (k == 3)
      fact = %(f7)s;
    else if (k == 4)
      fact = %(f9)s;
    else if (k == 5)
      fact = %(f11)s;
    else
      fact = %(f13)s;
    if (k %% 2 == 1)
      total = float64_sub(total, float64_div(term, fact));
    else
      total = float64_add(total, float64_div(term, fact));
  }
  return total;
}

void init_angles() {
  int i;
  for (i = 0; i < 16; i++)
    angles[i] = sf_pack(0UL, 1021UL + (unsigned long)(i %% 3),
                        (unsigned long)(i * 281474976710655) %% 4503599627370495UL);
}

int main() {
  int r, i;
  unsigned long s;
  init_angles();
  for (r = 0; r < REPEAT; r++) {
    for (i = 0; i < 16; i++) {
      s = float64_sin(angles[i]);
      acc = acc ^ (long)(s >> 1);
    }
  }
  printf("%%ld", acc);
  return 0;
}
""" % {"f3": dbits(6.0), "f5": dbits(120.0), "f7": dbits(5040.0),
       "f9": dbits(362880.0), "f11": dbits(39916800.0),
       "f13": dbits(6227020800.0)},
         size_table(REPEAT=(1, 2, 6, 12, 20)))

# ---------------------------------------------------------------------------
# GSM — LPC analysis
# ---------------------------------------------------------------------------

_chstone("GSM", "2c", "GSM 06.10 LPC analysis (autocorrelation + Schur)", r"""
int samples[PSAMPLES];
long L_ACF[9];
int reflection[8];
long PP[9];
long KK[9];

void init_samples() {
  int i, v;
  v = 0;
  for (i = 0; i < NSAMPLES; i++) {
    v = (v * 41 + 23) % 8192;
    samples[i] = v - 4096;
  }
}

void autocorrelation() {
  int k, i, smax, scale, sv;
  smax = 0;
  for (i = 0; i < NSAMPLES; i++) {
    sv = samples[i];
    if (sv < 0)
      sv = -sv;
    if (sv > smax)
      smax = sv;
  }
  scale = 0;
  while (smax > 4095) {
    smax = smax >> 1;
    scale = scale + 1;
  }
  if (scale > 0)
    for (i = 0; i < NSAMPLES; i++)
      samples[i] = samples[i] >> scale;
  for (k = 0; k <= 8; k++) {
    L_ACF[k] = 0L;
    for (i = k; i < NSAMPLES; i++)
      L_ACF[k] += (long)samples[i] * (long)samples[i - k];
  }
}

void schur() {
  int i, m;
  long ltmp;
  for (i = 0; i <= 8; i++) {
    PP[i] = L_ACF[i];
    KK[i] = 0L;
  }
  for (i = 1; i <= 8; i++)
    KK[i] = L_ACF[i];
  for (m = 1; m <= 8; m++) {
    if (PP[0] == 0L)
      reflection[m - 1] = 0;
    else
      reflection[m - 1] = (int)((KK[m] * 32767L) / (PP[0] + 1L));
    for (i = 0; i + m <= 8; i++)
      PP[i] = PP[i] + (KK[i + m] * (long)reflection[m - 1]) / 32768L;
  }
}

int main() {
  int i, s;
  init_samples();
  autocorrelation();
  schur();
  s = 0;
  for (i = 0; i < 8; i++)
    s = (s + reflection[i]) % 1000000007;
  printf("%d", s);
  return 0;
}
""", size_table(PSAMPLES=(4096, 4096, 4096, 8192, 16384),
                NSAMPLES=(64, 128, 400, 960, 1920)))

# ---------------------------------------------------------------------------
# MIPS — simplified processor executing an embedded program
# ---------------------------------------------------------------------------

_chstone("MIPS", "2d", "Simplified MIPS processor (bubble sort program)", r"""
int imem[64];
int regs[32];
int dmem[PDATA];

void load_program() {
  /* Hand-assembled bubble sort over dmem[0..r4):
     opcodes: 1=ADDI d,s,imm  2=ADD d,s,t  3=SUB d,s,t  4=LW d,s,imm
              5=SW t,s,imm    6=BEQ s,t,off  7=SLT d,s,t  8=BNE s,t,off
              9=J addr        0=HALT
     encoding: op*16777216 + a*65536 + b*256 + c (c is signed byte).  */
  imem[0] = 1 * 16777216 + 1 * 65536 + 0 * 256 + 0;     /*  0: i = 0       */
  imem[1] = 7 * 16777216 + 6 * 65536 + 1 * 256 + 4;     /*  1: t = i < n   */
  imem[2] = 6 * 16777216 + 6 * 65536 + 0 * 256 + 18;    /*  2: beq t,0 →18 */
  imem[3] = 1 * 16777216 + 2 * 65536 + 0 * 256 + 0;     /*  3: j = 0       */
  imem[4] = 3 * 16777216 + 7 * 65536 + 4 * 256 + 1;     /*  4: m = n - i   */
  imem[5] = 1 * 16777216 + 7 * 65536 + 7 * 256 + 255;   /*  5: m = m - 1   */
  imem[6] = 7 * 16777216 + 10 * 65536 + 2 * 256 + 7;    /*  6: t = j < m   */
  imem[7] = 6 * 16777216 + 10 * 65536 + 0 * 256 + 16;   /*  7: beq t,0 →16 */
  imem[8] = 4 * 16777216 + 8 * 65536 + 2 * 256 + 0;     /*  8: a = dmem[j] */
  imem[9] = 4 * 16777216 + 9 * 65536 + 2 * 256 + 1;     /*  9: b=dmem[j+1] */
  imem[10] = 7 * 16777216 + 10 * 65536 + 9 * 256 + 8;   /* 10: t = b < a   */
  imem[11] = 6 * 16777216 + 10 * 65536 + 0 * 256 + 14;  /* 11: beq t,0 →14 */
  imem[12] = 5 * 16777216 + 9 * 65536 + 2 * 256 + 0;    /* 12: dmem[j]=b   */
  imem[13] = 5 * 16777216 + 8 * 65536 + 2 * 256 + 1;    /* 13: dmem[j+1]=a */
  imem[14] = 1 * 16777216 + 2 * 65536 + 2 * 256 + 1;    /* 14: j++         */
  imem[15] = 9 * 16777216 + 0 * 65536 + 0 * 256 + 6;    /* 15: j →6        */
  imem[16] = 1 * 16777216 + 1 * 65536 + 1 * 256 + 1;    /* 16: i++         */
  imem[17] = 9 * 16777216 + 0 * 65536 + 0 * 256 + 1;    /* 17: j →1        */
  imem[18] = 0;                                         /* 18: halt        */
}

void init_data() {
  int i, v;
  v = 0;
  for (i = 0; i < NDATA; i++) {
    v = (v * 97 + 31) % 1000;
    dmem[i] = v;
  }
}

void run_cpu() {
  int pc, inst, op, a, b, c, running, steps;
  pc = 0;
  running = 1;
  steps = 0;
  while (running && steps < 1000000) {
    inst = imem[pc];
    op = inst / 16777216;
    a = (inst / 65536) % 256;
    b = (inst / 256) % 256;
    c = inst % 256;
    if (c > 127)
      c = c - 256;
    pc = pc + 1;
    if (op == 0)
      running = 0;
    else if (op == 1)
      regs[a] = regs[b] + c;
    else if (op == 2)
      regs[a] = regs[b] + regs[c];
    else if (op == 3)
      regs[a] = regs[b] - regs[c];
    else if (op == 4)
      regs[a] = dmem[regs[b] + c];
    else if (op == 5)
      dmem[regs[b] + c] = regs[a];
    else if (op == 6) {
      if (regs[a] == regs[b])
        pc = c;
    } else if (op == 7) {
      if (regs[b] < regs[c])
        regs[a] = 1;
      else
        regs[a] = 0;
    } else if (op == 8) {
      if (regs[a] != regs[b])
        pc = c;
    } else if (op == 9)
      pc = c;
    steps = steps + 1;
  }
}

int main() {
  int i, s;
  load_program();
  init_data();
  for (i = 0; i < 32; i++)
    regs[i] = 0;
  regs[4] = NDATA;                 /* n */
  run_cpu();
  s = 0;
  for (i = 0; i < NDATA; i++)
    s = (s * 31 + dmem[i]) % 1000000007;
  printf("%d", s);
  return 0;
}
""", size_table(PDATA=(256, 256, 256, 512, 1024),
                NDATA=(6, 10, 20, 30, 40)))

# ---------------------------------------------------------------------------
# MOTION — MPEG-2 motion vector decoding
# ---------------------------------------------------------------------------

_chstone("MOTION", "2b", "MPEG-2 motion vector decoding", r"""
unsigned char bitstream[PBYTES];
int bitpos = 0;
int mv_sum = 0;

void init_stream() {
  int i;
  unsigned v = 305419896U;
  for (i = 0; i < NBYTES; i++) {
    v = v * 1664525U + 1013904223U;
    bitstream[i] = (v >> 24) & 255U;
  }
}

int getbit() {
  int byte_index, bit_index, bit;
  byte_index = bitpos / 8;
  bit_index = 7 - bitpos % 8;
  bit = (bitstream[byte_index] >> bit_index) & 1;
  bitpos = bitpos + 1;
  return bit;
}

int getbits(int n) {
  int i, v;
  v = 0;
  for (i = 0; i < n; i++)
    v = (v << 1) | getbit();
  return v;
}

int decode_motion_code() {
  int zeros, value;
  zeros = 0;
  while (getbit() == 0 && zeros < 10)
    zeros = zeros + 1;
  if (zeros == 0)
    return 0;
  value = getbits(zeros > 4 ? 4 : zeros);
  value = value + (1 << (zeros > 4 ? 4 : zeros));
  if (getbit())
    return -value;
  return value;
}

void decode_vectors() {
  int f, code, residual, pmv;
  pmv = 0;
  for (f = 0; f < NVECTORS; f++) {
    if (bitpos + 64 >= NBYTES * 8)
      bitpos = 0;
    code = decode_motion_code();
    residual = getbits(3);
    pmv = pmv + code * 8 + residual;
    if (pmv > 2047)
      pmv = pmv - 4096;
    if (pmv < -2048)
      pmv = pmv + 4096;
    mv_sum = (mv_sum + pmv) % 1000000007;
  }
}

int main() {
  init_stream();
  decode_vectors();
  printf("%d", mv_sum);
  return 0;
}
""", size_table(PBYTES=(4096, 4096, 4096, 8192, 16384),
                NBYTES=(512, 1024, 2048, 4096, 8192),
                NVECTORS=(32, 96, 320, 768, 1536)))

# ---------------------------------------------------------------------------
# SHA — SHA-1 hashing
# ---------------------------------------------------------------------------

_chstone("SHA", "2a", "SHA-1 secure hash", r"""
unsigned char message[PBYTES];
unsigned W[80];
unsigned h0 = 1732584193U;
unsigned h1 = 4023233417U;
unsigned h2 = 2562383102U;
unsigned h3 = 271733878U;
unsigned h4 = 3285377520U;

void init_message() {
  int i;
  unsigned v = 19088743U;
  for (i = 0; i < NBYTES; i++) {
    v = v * 69069U + 1234567U;
    message[i] = (v >> 16) & 255U;
  }
}

unsigned rotl(unsigned x, int n) {
  return (x << n) | (x >> (32 - n));
}

void process_block(int offset) {
  unsigned a, b, c, d, e, f, k, temp;
  int t;
  for (t = 0; t < 16; t++)
    W[t] = ((unsigned)message[offset + 4 * t] << 24)
         | ((unsigned)message[offset + 4 * t + 1] << 16)
         | ((unsigned)message[offset + 4 * t + 2] << 8)
         | (unsigned)message[offset + 4 * t + 3];
  for (t = 16; t < 80; t++)
    W[t] = rotl(W[t - 3] ^ W[t - 8] ^ W[t - 14] ^ W[t - 16], 1);
  a = h0; b = h1; c = h2; d = h3; e = h4;
  for (t = 0; t < 80; t++) {
    if (t < 20) {
      f = (b & c) | ((~b) & d);
      k = 1518500249U;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 1859775393U;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 2400959708U;
    } else {
      f = b ^ c ^ d;
      k = 3395469782U;
    }
    temp = rotl(a, 5) + f + e + k + W[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }
  h0 = h0 + a;
  h1 = h1 + b;
  h2 = h2 + c;
  h3 = h3 + d;
  h4 = h4 + e;
}

void pad_message() {
  /* NBYTES is a multiple of 64, so the padding is exactly one block:
     0x80, zeros, then the 64-bit big-endian bit length. */
  int i;
  long bitlen;
  message[NBYTES] = 128;
  for (i = NBYTES + 1; i < NBYTES + 56; i++)
    message[i] = 0;
  bitlen = (long)NBYTES * 8L;
  for (i = 0; i < 8; i++)
    message[NBYTES + 56 + i] = (int)((bitlen >> (56 - 8 * i)) & 255L);
}

int main() {
  int offset;
  init_message();
  pad_message();
  for (offset = 0; offset + 64 <= NBYTES + 64; offset += 64)
    process_block(offset);
  printf("%d", (int)(h0 ^ h1 ^ h2 ^ h3 ^ h4));
  return 0;
}
""", size_table(PBYTES=(16384, 16384, 16384, 32768, 65536),
                NBYTES=(128, 384, 1280, 2560, 5120)))
