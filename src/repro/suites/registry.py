"""Benchmark registry for the 41 subject programs (§4.1, Table 1)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Benchmark:
    """One subject program.

    ``sizes[size_class]`` is the dict of ``-D`` defines for that input
    size; paper-dataset macros carry a ``P`` prefix (array dims), plain
    macros are the scaled loop bounds."""

    name: str
    suite: str               # "PolyBenchC" | "CHStone"
    category: str            # the paper's use-case attribution (§4.1.1)
    description: str
    source: str
    sizes: dict = field(hash=False)

    def defines(self, size="M"):
        return dict(self.sizes[size])


_REGISTRY = {}


def register(benchmark):
    if benchmark.name in _REGISTRY:
        raise ValueError(f"duplicate benchmark {benchmark.name!r}")
    _REGISTRY[benchmark.name] = benchmark
    return benchmark


def _load():
    if _REGISTRY:
        return
    from repro.suites import chstone, polybench  # noqa: F401 (registers)


def get_benchmark(name):
    _load()
    return _REGISTRY[name]


def all_benchmarks():
    _load()
    return list(_REGISTRY.values())


def polybench_benchmarks():
    _load()
    return [b for b in _REGISTRY.values() if b.suite == "PolyBenchC"]


def chstone_benchmarks():
    _load()
    return [b for b in _REGISTRY.values() if b.suite == "CHStone"]


def benchmark_names():
    _load()
    return list(_REGISTRY)
