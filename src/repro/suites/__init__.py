"""Subject programs: the 41 C benchmarks (30 PolyBenchC + 11 CHStone) of
§4.1.1, authored in the frontend's C subset.

Every benchmark carries two families of ``-D`` defines per input-size
class (§3.2: "macros are used to specify the input size"):

* **array dims** (``P*`` macros) follow the PolyBench/CHStone dataset
  sizes, so linear-memory commitments reproduce the paper's memory
  magnitudes (Tables 4/6: ~27 MB at L, ~100 MB at XL);
* **loop bounds** (plain macros) are scaled down so a Python-level VM can
  execute the kernels — trip-count ratios across size classes are
  preserved, which is what the execution-time results depend on.
"""

from repro.suites.registry import (
    Benchmark,
    all_benchmarks,
    benchmark_names,
    chstone_benchmarks,
    get_benchmark,
    polybench_benchmarks,
)
from repro.suites.inputs import SIZE_CLASSES

__all__ = [
    "Benchmark",
    "SIZE_CLASSES",
    "all_benchmarks",
    "benchmark_names",
    "chstone_benchmarks",
    "get_benchmark",
    "polybench_benchmarks",
]
