"""PolyBenchC 4.2.1 benchmarks (the paper's Table 1, upper half).

Authored in the frontend's C subset with the standard PolyBench kernel
semantics.  Array dimensions use the ``P*`` dataset macros (MINI…
EXTRALARGE, so memory magnitudes match the paper); loop bounds use the
scaled plain macros (see :mod:`repro.suites.inputs`).  Initialisation and
checksums only touch the loop region, mirroring how the scaled kernels
execute inside paper-sized buffers.
"""

from __future__ import annotations

from repro.suites.inputs import RUN1, RUN2, RUN3, TSTEPS, size_table
from repro.suites.registry import Benchmark, register


def _polybench(name, category, description, source, sizes):
    register(Benchmark(name=name, suite="PolyBenchC", category=category,
                       description=description, source=source, sizes=sizes))


_R3 = tuple(RUN3[s] for s in ("XS", "S", "M", "L", "XL"))
_R2 = tuple(RUN2[s] for s in ("XS", "S", "M", "L", "XL"))
_R1 = tuple(RUN1[s] for s in ("XS", "S", "M", "L", "XL"))
_TS = tuple(TSTEPS[s] for s in ("XS", "S", "M", "L", "XL"))

# ---------------------------------------------------------------------------
# Data mining
# ---------------------------------------------------------------------------

_polybench("covariance", "1d", "Covariance computation", r"""
double data[PN][PM];
double cov[PM][PM];
double mean[PM];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      data[i][j] = (double)((i * j + 3) % N) / M + 1.0;
}

void kernel_covariance() {
  int i, j, k;
  double float_n = (double)N;
  for (j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++)
      mean[j] += data[i][j];
    mean[j] = mean[j] / float_n;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      data[i][j] -= mean[j];
  for (i = 0; i < M; i++)
    for (j = i; j < M; j++) {
      cov[i][j] = 0.0;
      for (k = 0; k < N; k++)
        cov[i][j] += data[k][i] * data[k][j];
      cov[i][j] = cov[i][j] / (float_n - 1.0);
      cov[j][i] = cov[i][j];
    }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < M; i++)
    for (j = 0; j < M; j++)
      s += cov[i][j];
  return s;
}

int main() {
  init_array();
  kernel_covariance();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(32, 100, 260, 1400, 3000), PM=(28, 80, 240, 1200, 2600),
                N=_R3, M=_R3))

_polybench("correlation", "1d", "Normalized covariance computation", r"""
double data[PN][PM];
double corr[PM][PM];
double mean[PM];
double stddev[PM];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++)
      data[i][j] = (double)((i * j + 7) % N) / M + (double)i / N + 0.5;
}

void kernel_correlation() {
  int i, j, k;
  double float_n = (double)N;
  double eps = 0.1;
  for (j = 0; j < M; j++) {
    mean[j] = 0.0;
    for (i = 0; i < N; i++)
      mean[j] += data[i][j];
    mean[j] = mean[j] / float_n;
  }
  for (j = 0; j < M; j++) {
    stddev[j] = 0.0;
    for (i = 0; i < N; i++)
      stddev[j] += (data[i][j] - mean[j]) * (data[i][j] - mean[j]);
    stddev[j] = stddev[j] / float_n;
    stddev[j] = sqrt(stddev[j]);
    if (stddev[j] <= eps)
      stddev[j] = 1.0;
  }
  for (i = 0; i < N; i++)
    for (j = 0; j < M; j++) {
      data[i][j] -= mean[j];
      data[i][j] = data[i][j] / (sqrt(float_n) * stddev[j]);
    }
  for (i = 0; i < M - 1; i++) {
    corr[i][i] = 1.0;
    for (j = i + 1; j < M; j++) {
      corr[i][j] = 0.0;
      for (k = 0; k < N; k++)
        corr[i][j] += data[k][i] * data[k][j];
      corr[j][i] = corr[i][j];
    }
  }
  corr[M - 1][M - 1] = 1.0;
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < M; i++)
    for (j = 0; j < M; j++)
      s += corr[i][j];
  return s;
}

int main() {
  init_array();
  kernel_correlation();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(32, 100, 260, 1400, 3000), PM=(28, 80, 240, 1200, 2600),
                N=_R3, M=_R3))

# ---------------------------------------------------------------------------
# BLAS routines
# ---------------------------------------------------------------------------

_polybench("gemm", "1c", "Generalized matrix multiplication", r"""
double C[PNI][PNJ];
double A[PNI][PNK];
double B[PNK][PNJ];

void init_array() {
  int i, j;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++)
      C[i][j] = (double)((i * j + 1) % NI) / NI;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NK; j++)
      A[i][j] = (double)(i * (j + 1) % NK) / NK;
  for (i = 0; i < NK; i++)
    for (j = 0; j < NJ; j++)
      B[i][j] = (double)(i * (j + 2) % NJ) / NJ;
}

void kernel_gemm() {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < NI; i++) {
    for (j = 0; j < NJ; j++)
      C[i][j] *= beta;
    for (k = 0; k < NK; k++)
      for (j = 0; j < NJ; j++)
        C[i][j] += alpha * A[i][k] * B[k][j];
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++)
      s += C[i][j];
  return s;
}

int main() {
  init_array();
  kernel_gemm();
  printf("%f", checksum());
  return 0;
}
""", size_table(PNI=(20, 60, 200, 1000, 2000), PNJ=(25, 70, 220, 1100, 2300),
                PNK=(30, 80, 240, 1200, 2600), NI=_R3, NJ=_R3, NK=_R3))

_polybench("gemver", "1c", "Multiple matrix-vector multiplication", r"""
double A[PN][PN];
double u1[PN]; double v1[PN]; double u2[PN]; double v2[PN];
double w[PN]; double x[PN]; double y[PN]; double z[PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    u1[i] = (double)i / N;
    u2[i] = (double)((i + 1) % N) / N / 2.0;
    v1[i] = (double)((i + 2) % N) / N / 4.0;
    v2[i] = (double)((i + 3) % N) / N / 6.0;
    y[i] = (double)((i + 4) % N) / N / 8.0;
    z[i] = (double)((i + 5) % N) / N / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (j = 0; j < N; j++)
      A[i][j] = (double)((i * j) % N) / N;
  }
}

void kernel_gemver() {
  int i, j;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = A[i][j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x[i] = x[i] + beta * A[j][i] * y[j];
  for (i = 0; i < N; i++)
    x[i] = x[i] + z[i];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      w[i] = w[i] + alpha * A[i][j] * x[j];
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += w[i];
  return s;
}

int main() {
  init_array();
  kernel_gemver();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R2))

_polybench("gesummv", "1c", "Summed matrix-vector multiplication", r"""
double A[PN][PN];
double B[PN][PN];
double x[PN]; double y[PN]; double tmp[PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = (double)(i % N) / N;
    for (j = 0; j < N; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i * j + 2) % N) / N;
    }
  }
}

void kernel_gesummv() {
  int i, j;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (j = 0; j < N; j++) {
      tmp[i] = A[i][j] * x[j] + tmp[i];
      y[i] = B[i][j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += y[i];
  return s;
}

int main() {
  init_array();
  kernel_gesummv();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(30, 90, 250, 1300, 2800), N=_R2))

_polybench("symm", "1c", "Symmetric matrix multiplication", r"""
double C[PM][PN];
double A[PM][PM];
double B[PM][PN];

void init_array() {
  int i, j;
  for (i = 0; i < M; i++) {
    for (j = 0; j < N; j++) {
      C[i][j] = (double)((i + j) % 100) / M;
      B[i][j] = (double)((N + i - j) % 100) / M;
    }
    for (j = 0; j < M; j++)
      A[i][j] = (double)((i * j + 1) % 100) / M;
  }
}

void kernel_symm() {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  double temp2;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++) {
      temp2 = 0.0;
      for (k = 0; k < i; k++) {
        C[k][j] += alpha * B[i][j] * A[i][k];
        temp2 += B[k][j] * A[i][k];
      }
      C[i][j] = beta * C[i][j] + alpha * B[i][j] * A[i][i]
                + alpha * temp2;
    }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      s += C[i][j];
  return s;
}

int main() {
  init_array();
  kernel_symm();
  printf("%f", checksum());
  return 0;
}
""", size_table(PM=(20, 60, 200, 1000, 2000), PN=(30, 80, 240, 1200, 2600),
                M=_R3, N=_R3))

_polybench("syrk", "1c", "Symmetric rank k update", r"""
double C[PN][PN];
double A[PN][PM];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++)
      A[i][j] = (double)((i * j + 1) % N) / N;
    for (j = 0; j < N; j++)
      C[i][j] = (double)((i * j + 2) % M) / M;
  }
}

void kernel_syrk() {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += alpha * A[i][k] * A[j][k];
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += C[i][j];
  return s;
}

int main() {
  init_array();
  kernel_syrk();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(30, 80, 240, 1200, 2600), PM=(20, 60, 200, 1000, 2000),
                N=_R3, M=_R3))

_polybench("syr2k", "1c", "Symmetric rank 2k update", r"""
double C[PN][PN];
double A[PN][PM];
double B[PN][PM];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j < M; j++) {
      A[i][j] = (double)((i * j + 1) % N) / N;
      B[i][j] = (double)((i * j + 2) % M) / M;
    }
    for (j = 0; j < N; j++)
      C[i][j] = (double)((i * j + 3) % N) / M;
  }
}

void kernel_syr2k() {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      C[i][j] *= beta;
    for (k = 0; k < M; k++)
      for (j = 0; j <= i; j++)
        C[i][j] += A[j][k] * alpha * B[i][k] + B[j][k] * alpha * A[i][k];
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += C[i][j];
  return s;
}

int main() {
  init_array();
  kernel_syr2k();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(30, 80, 240, 1200, 2600), PM=(20, 60, 200, 1000, 2000),
                N=_R3, M=_R3))

_polybench("trmm", "1c", "Triangular matrix multiplication", r"""
double A[PM][PM];
double B[PM][PN];

void init_array() {
  int i, j;
  for (i = 0; i < M; i++) {
    for (j = 0; j < M; j++)
      A[i][j] = (double)((i * j) % M) / M;
    for (j = 0; j < N; j++)
      B[i][j] = (double)((N + i - j) % N) / N;
  }
}

void kernel_trmm() {
  int i, j, k;
  double alpha = 1.5;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++) {
      for (k = i + 1; k < M; k++)
        B[i][j] += A[k][i] * B[k][j];
      B[i][j] = alpha * B[i][j];
    }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      s += B[i][j];
  return s;
}

int main() {
  init_array();
  kernel_trmm();
  printf("%f", checksum());
  return 0;
}
""", size_table(PM=(20, 60, 200, 1000, 2000), PN=(30, 80, 240, 1200, 2600),
                M=_R3, N=_R3))

# ---------------------------------------------------------------------------
# Linear algebra kernels
# ---------------------------------------------------------------------------

_polybench("2mm", "1c", "Two matrix multiplications", r"""
double tmp[PNI][PNJ];
double A[PNI][PNK];
double B[PNK][PNJ];
double C[PNJ][PNL];
double D[PNI][PNL];

void init_array() {
  int i, j;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NK; j++)
      A[i][j] = (double)((i * j + 1) % NI) / NI;
  for (i = 0; i < NK; i++)
    for (j = 0; j < NJ; j++)
      B[i][j] = (double)(i * (j + 1) % NJ) / NJ;
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NL; j++)
      C[i][j] = (double)((i * (j + 3) + 1) % NL) / NL;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++)
      D[i][j] = (double)(i * (j + 2) % NK) / NK;
}

void kernel_2mm() {
  int i, j, k;
  double alpha = 1.5;
  double beta = 1.2;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
      tmp[i][j] = 0.0;
      for (k = 0; k < NK; k++)
        tmp[i][j] += alpha * A[i][k] * B[k][j];
    }
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++) {
      D[i][j] *= beta;
      for (k = 0; k < NJ; k++)
        D[i][j] += tmp[i][k] * C[k][j];
    }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++)
      s += D[i][j];
  return s;
}

int main() {
  init_array();
  kernel_2mm();
  printf("%f", checksum());
  return 0;
}
""", size_table(PNI=(16, 40, 180, 800, 1600), PNJ=(18, 50, 190, 900, 1800),
                PNK=(22, 70, 210, 1100, 2200), PNL=(24, 80, 220, 1200, 2400),
                NI=_R3, NJ=_R3, NK=_R3, NL=_R3))

_polybench("3mm", "1c", "Three matrix multiplications", r"""
double E[PNI][PNJ];
double A[PNI][PNK];
double B[PNK][PNJ];
double F[PNJ][PNL];
double C[PNJ][PNM];
double D[PNM][PNL];
double G[PNI][PNL];

void init_array() {
  int i, j;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NK; j++)
      A[i][j] = (double)((i * j + 1) % NI) / (5.0 * NI);
  for (i = 0; i < NK; i++)
    for (j = 0; j < NJ; j++)
      B[i][j] = (double)((i * (j + 1) + 2) % NJ) / (5.0 * NJ);
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NM; j++)
      C[i][j] = (double)(i * (j + 3) % NL) / (5.0 * NL);
  for (i = 0; i < NM; i++)
    for (j = 0; j < NL; j++)
      D[i][j] = (double)((i * (j + 2) + 2) % NK) / (5.0 * NK);
}

void kernel_3mm() {
  int i, j, k;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NJ; j++) {
      E[i][j] = 0.0;
      for (k = 0; k < NK; k++)
        E[i][j] += A[i][k] * B[k][j];
    }
  for (i = 0; i < NJ; i++)
    for (j = 0; j < NL; j++) {
      F[i][j] = 0.0;
      for (k = 0; k < NM; k++)
        F[i][j] += C[i][k] * D[k][j];
    }
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++) {
      G[i][j] = 0.0;
      for (k = 0; k < NJ; k++)
        G[i][j] += E[i][k] * F[k][j];
    }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < NI; i++)
    for (j = 0; j < NL; j++)
      s += G[i][j];
  return s;
}

int main() {
  init_array();
  kernel_3mm();
  printf("%f", checksum());
  return 0;
}
""", size_table(PNI=(16, 40, 180, 800, 1600), PNJ=(18, 50, 190, 900, 1800),
                PNK=(20, 60, 200, 1000, 2000), PNL=(22, 70, 210, 1100, 2100),
                PNM=(24, 80, 220, 1200, 2200),
                NI=_R3, NJ=_R3, NK=_R3, NL=_R3, NM=_R3))

_polybench("atax", "1c", "A transposed times Ax", r"""
double A[PM][PN];
double x[PN];
double y[PN];
double tmp[PM];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    x[i] = 1.0 + (double)i / N;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++)
      A[i][j] = (double)((i + j) % N) / (5.0 * M);
}

void kernel_atax() {
  int i, j;
  for (i = 0; i < N; i++)
    y[i] = 0.0;
  for (i = 0; i < M; i++) {
    tmp[i] = 0.0;
    for (j = 0; j < N; j++)
      tmp[i] = tmp[i] + A[i][j] * x[j];
    for (j = 0; j < N; j++)
      y[j] = y[j] + A[i][j] * tmp[i];
  }
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += y[i];
  return s;
}

int main() {
  init_array();
  kernel_atax();
  printf("%f", checksum());
  return 0;
}
""", size_table(PM=(38, 116, 390, 1900, 3800), PN=(42, 124, 410, 2100, 4200),
                M=_R2, N=_R2))

_polybench("bicg", "1c", "Biconjugate gradient stabilization", r"""
double A[PN][PM];
double s[PM];
double q[PN];
double p[PM];
double r[PN];

void init_array() {
  int i, j;
  for (i = 0; i < M; i++)
    p[i] = (double)(i % M) / M;
  for (i = 0; i < N; i++) {
    r[i] = (double)(i % N) / N;
    for (j = 0; j < M; j++)
      A[i][j] = (double)((i * (j + 1)) % N) / N;
  }
}

void kernel_bicg() {
  int i, j;
  for (i = 0; i < M; i++)
    s[i] = 0.0;
  for (i = 0; i < N; i++) {
    q[i] = 0.0;
    for (j = 0; j < M; j++) {
      s[j] = s[j] + r[i] * A[i][j];
      q[i] = q[i] + A[i][j] * p[j];
    }
  }
}

double checksum() {
  int i;
  double total = 0.0;
  for (i = 0; i < M; i++)
    total += s[i];
  for (i = 0; i < N; i++)
    total += q[i];
  return total;
}

int main() {
  init_array();
  kernel_bicg();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(42, 124, 410, 2100, 4200), PM=(38, 116, 390, 1900, 3800),
                N=_R2, M=_R2))

_polybench("doitgen", "1b", "Multi-resolution analysis kernel", r"""
double A[PR][PQ][PP];
double sum[PP];
double C4[PP][PP];

void init_array() {
  int r, q, p;
  for (r = 0; r < NR; r++)
    for (q = 0; q < NQ; q++)
      for (p = 0; p < NP; p++)
        A[r][q][p] = (double)((r * q + p) % NP) / NP;
  for (r = 0; r < NP; r++)
    for (p = 0; p < NP; p++)
      C4[r][p] = (double)(r * p % NP) / NP;
}

void kernel_doitgen() {
  int r, q, p, s;
  for (r = 0; r < NR; r++)
    for (q = 0; q < NQ; q++) {
      for (p = 0; p < NP; p++) {
        sum[p] = 0.0;
        for (s = 0; s < NP; s++)
          sum[p] += A[r][q][s] * C4[s][p];
      }
      for (p = 0; p < NP; p++)
        A[r][q][p] = sum[p];
    }
}

double checksum() {
  int r, q, p;
  double total = 0.0;
  for (r = 0; r < NR; r++)
    for (q = 0; q < NQ; q++)
      for (p = 0; p < NP; p++)
        total += A[r][q][p];
  return total;
}

int main() {
  init_array();
  kernel_doitgen();
  printf("%f", checksum());
  return 0;
}
""", size_table(PR=(8, 20, 40, 110, 220), PQ=(10, 25, 50, 125, 250),
                PP=(12, 30, 60, 128, 270),
                NR=(4, 6, 8, 12, 16), NQ=(4, 6, 10, 12, 16),
                NP=(6, 8, 12, 16, 20)))

_polybench("mvt", "1c", "Matrix vector product and transpose", r"""
double A[PN][PN];
double x1[PN]; double x2[PN];
double y_1[PN]; double y_2[PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    x1[i] = (double)(i % N) / N;
    x2[i] = (double)((i + 1) % N) / N;
    y_1[i] = (double)((i + 3) % N) / N;
    y_2[i] = (double)((i + 4) % N) / N;
    for (j = 0; j < N; j++)
      A[i][j] = (double)(i * j % N) / N;
  }
}

void kernel_mvt() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x1[i] = x1[i] + A[i][j] * y_1[j];
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      x2[i] = x2[i] + A[j][i] * y_2[j];
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += x1[i] + x2[i];
  return s;
}

int main() {
  init_array();
  kernel_mvt();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R2))

# ---------------------------------------------------------------------------
# Linear algebra solvers
# ---------------------------------------------------------------------------

_polybench("cholesky", "1c", "Cholesky matrix decomposition", r"""
double A[PN][PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % N)) / N + 1.0;
    for (j = i + 1; j < N; j++)
      A[i][j] = 0.0;
    A[i][i] = 1.0 + (double)N;
  }
}

void kernel_cholesky() {
  int i, j, k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[j][k];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (k = 0; k < i; k++)
      A[i][i] -= A[i][k] * A[i][k];
    A[i][i] = sqrt(A[i][i]);
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j <= i; j++)
      s += A[i][j];
  return s;
}

int main() {
  init_array();
  kernel_cholesky();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R3))

_polybench("durbin", "1d", "Toeplitz system solver (Yule-Walker)", r"""
double r[PN];
double y[PN];
double z[PN];

void init_array() {
  int i;
  for (i = 0; i < N; i++)
    r[i] = (double)(N + 1 - i) / (2.0 * N);
}

void kernel_durbin() {
  int i, k;
  double alpha, beta, sum;
  y[0] = -r[0];
  beta = 1.0;
  alpha = -r[0];
  for (k = 1; k < N; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    sum = 0.0;
    for (i = 0; i < k; i++)
      sum += r[k - i - 1] * y[i];
    alpha = -(r[k] + sum) / beta;
    for (i = 0; i < k; i++)
      z[i] = y[i] + alpha * y[k - i - 1];
    for (i = 0; i < k; i++)
      y[i] = z[i];
    y[k] = alpha;
  }
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += y[i];
  return s;
}

int main() {
  init_array();
  kernel_durbin();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R2))

_polybench("gramschmidt", "1d", "QR decomposition (Gram-Schmidt)", r"""
double A[PM][PN];
double R[PN][PN];
double Q[PM][PN];

void init_array() {
  int i, j;
  for (i = 0; i < M; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = ((double)((i * j + 1) % M) / M) * 100.0 + 10.0;
      Q[i][j] = 0.0;
    }
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      R[i][j] = 0.0;
}

void kernel_gramschmidt() {
  int i, j, k;
  double nrm;
  for (k = 0; k < N; k++) {
    nrm = 0.0;
    for (i = 0; i < M; i++)
      nrm += A[i][k] * A[i][k];
    R[k][k] = sqrt(nrm);
    for (i = 0; i < M; i++)
      Q[i][k] = A[i][k] / R[k][k];
    for (j = k + 1; j < N; j++) {
      R[k][j] = 0.0;
      for (i = 0; i < M; i++)
        R[k][j] += Q[i][k] * A[i][j];
      for (i = 0; i < M; i++)
        A[i][j] = A[i][j] - Q[i][k] * R[k][j];
    }
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += R[i][j];
  return s;
}

int main() {
  init_array();
  kernel_gramschmidt();
  printf("%f", checksum());
  return 0;
}
""", size_table(PM=(20, 60, 200, 1000, 2000), PN=(30, 80, 240, 1200, 2600),
                M=_R3, N=_R3))

_polybench("lu", "1c", "LU matrix decomposition", r"""
double A[PN][PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    for (j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % N)) / N + 1.0;
    for (j = i + 1; j < N; j++)
      A[i][j] = 0.0;
    A[i][i] = 1.0 + (double)N;
  }
}

void kernel_lu() {
  int i, j, k;
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      for (k = 0; k < j; k++)
        A[i][j] -= A[i][k] * A[k][j];
      A[i][j] = A[i][j] / A[j][j];
    }
    for (j = i; j < N; j++)
      for (k = 0; k < i; k++)
        A[i][j] -= A[i][k] * A[k][j];
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += A[i][j];
  return s;
}

int main() {
  init_array();
  kernel_lu();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R3))

_polybench("ludcmp", "1d", "LU decomposition linear equation solver", r"""
double A[PN][PN];
double b[PN];
double x[PN];
double y[PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = 0.0;
    y[i] = 0.0;
    b[i] = (double)(i + 1) / N / 2.0 + 4.0;
    for (j = 0; j <= i; j++)
      A[i][j] = (double)(-(j % N)) / N + 1.0;
    for (j = i + 1; j < N; j++)
      A[i][j] = 0.0;
    A[i][i] = 1.0 + (double)N;
  }
}

void kernel_ludcmp() {
  int i, j, k;
  double w;
  for (i = 0; i < N; i++) {
    for (j = 0; j < i; j++) {
      w = A[i][j];
      for (k = 0; k < j; k++)
        w -= A[i][k] * A[k][j];
      A[i][j] = w / A[j][j];
    }
    for (j = i; j < N; j++) {
      w = A[i][j];
      for (k = 0; k < i; k++)
        w -= A[i][k] * A[k][j];
      A[i][j] = w;
    }
  }
  for (i = 0; i < N; i++) {
    w = b[i];
    for (j = 0; j < i; j++)
      w -= A[i][j] * y[j];
    y[i] = w;
  }
  for (i = N - 1; i >= 0; i--) {
    w = y[i];
    for (j = i + 1; j < N; j++)
      w -= A[i][j] * x[j];
    x[i] = w / A[i][i];
  }
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += x[i];
  return s;
}

int main() {
  init_array();
  kernel_ludcmp();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R3))

_polybench("trisolv", "1c", "Triangular matrix solver", r"""
double L[PN][PN];
double x[PN];
double b[PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = -999.0;
    b[i] = (double)i / N;
    for (j = 0; j <= i; j++)
      L[i][j] = (double)(i + N - j + 1) * 2.0 / N;
  }
}

void kernel_trisolv() {
  int i, j;
  for (i = 0; i < N; i++) {
    x[i] = b[i];
    for (j = 0; j < i; j++)
      x[i] -= L[i][j] * x[j];
    x[i] = x[i] / L[i][i];
  }
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += x[i];
  return s;
}

int main() {
  init_array();
  kernel_trisolv();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R2))

# ---------------------------------------------------------------------------
# Medley
# ---------------------------------------------------------------------------

_polybench("deriche", "1b", "Edge detection and smoothing filter", r"""
double imgIn[PW][PH];
double imgOut[PW][PH];
double ya[PW][PH];
double yb[PW][PH];

void init_array() {
  int i, j;
  for (i = 0; i < W; i++)
    for (j = 0; j < H; j++)
      imgIn[i][j] = (double)((313 * i + 991 * j) % 65536) / 65535.0;
}

void kernel_deriche() {
  int i, j;
  double alpha = 0.25;
  double k, a1, a2, a3, a4, b1, b2, c1;
  double ym1, ym2, xm1, tm1, tm2, tp1, tp2, yp1, yp2;
  k = (1.0 - exp(-alpha)) * (1.0 - exp(-alpha))
      / (1.0 + 2.0 * alpha * exp(-alpha) - exp(2.0 * alpha));
  a1 = k;
  a2 = k * exp(-alpha) * (alpha - 1.0);
  a3 = k * exp(-alpha) * (alpha + 1.0);
  a4 = -k * exp(-2.0 * alpha);
  b1 = pow(2.0, -alpha);
  b2 = -exp(-2.0 * alpha);
  c1 = 1.0;
  for (i = 0; i < W; i++) {
    ym1 = 0.0;
    ym2 = 0.0;
    xm1 = 0.0;
    for (j = 0; j < H; j++) {
      ya[i][j] = a1 * imgIn[i][j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
      xm1 = imgIn[i][j];
      ym2 = ym1;
      ym1 = ya[i][j];
    }
  }
  for (i = 0; i < W; i++) {
    yp1 = 0.0;
    yp2 = 0.0;
    tp1 = 0.0;
    tp2 = 0.0;
    for (j = H - 1; j >= 0; j--) {
      yb[i][j] = a3 * tp1 + a4 * tp2 + b1 * yp1 + b2 * yp2;
      tp2 = tp1;
      tp1 = imgIn[i][j];
      yp2 = yp1;
      yp1 = yb[i][j];
    }
  }
  for (i = 0; i < W; i++)
    for (j = 0; j < H; j++)
      imgOut[i][j] = c1 * (ya[i][j] + yb[i][j]);
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < W; i++)
    for (j = 0; j < H; j++)
      s += imgOut[i][j];
  return s;
}

int main() {
  init_array();
  kernel_deriche();
  printf("%f", checksum());
  return 0;
}
""", size_table(PW=(64, 192, 720, 1280, 1920), PH=(64, 128, 480, 720, 1080),
                W=(8, 12, 16, 24, 32), H=(8, 10, 16, 20, 24)))

_polybench("floyd-warshall", "1a", "All-pairs shortest paths", r"""
int path[PN][PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      path[i][j] = i * j % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0)
        path[i][j] = 999;
    }
}

void kernel_floyd_warshall() {
  int i, j, k;
  for (k = 0; k < N; k++)
    for (i = 0; i < N; i++)
      for (j = 0; j < N; j++)
        path[i][j] = path[i][j] < path[i][k] + path[k][j]
            ? path[i][j] : path[i][k] + path[k][j];
}

int checksum() {
  int i, j;
  int s = 0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += path[i][j];
  return s;
}

int main() {
  init_array();
  kernel_floyd_warshall();
  printf("%d", checksum());
  return 0;
}
""", size_table(PN=(60, 180, 500, 2800, 5600), N=_R3))

_polybench("nussinov", "1a", "RNA folding prediction (dynamic programming)", r"""
int seq[PN];
int table[PN][PN];

int match(int b1, int b2) {
  return b1 + b2 == 3 ? 1 : 0;
}

int max_score(int s1, int s2) {
  return s1 >= s2 ? s1 : s2;
}

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    seq[i] = (i + 1) % 4;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      table[i][j] = 0;
}

void kernel_nussinov() {
  int i, j, k;
  for (i = N - 1; i >= 0; i--) {
    for (j = i + 1; j < N; j++) {
      if (j - 1 >= 0)
        table[i][j] = max_score(table[i][j], table[i][j - 1]);
      if (i + 1 < N)
        table[i][j] = max_score(table[i][j], table[i + 1][j]);
      if (j - 1 >= 0 && i + 1 < N) {
        if (i < j - 1)
          table[i][j] = max_score(table[i][j],
              table[i + 1][j - 1] + match(seq[i], seq[j]));
        else
          table[i][j] = max_score(table[i][j], table[i + 1][j - 1]);
      }
      for (k = i + 1; k < j; k++)
        table[i][j] = max_score(table[i][j],
            table[i][k] + table[k + 1][j]);
    }
  }
}

int main() {
  init_array();
  kernel_nussinov();
  printf("%d", table[0][N - 1]);
  return 0;
}
""", size_table(PN=(60, 180, 500, 2500, 5500), N=_R3))

# ---------------------------------------------------------------------------
# Stencils
# ---------------------------------------------------------------------------

_polybench("adi", "1a", "Alternating-direction implicit 2D heat solver", r"""
double u[PN][PN];
double v[PN][PN];
double p[PN][PN];
double q[PN][PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      u[i][j] = (double)(i + N - j) / N;
}

void kernel_adi() {
  int t, i, j;
  double DX, DY, DT, B1, B2, mul1, mul2, a, b, c, d, e, f;
  DX = 1.0 / (double)N;
  DY = 1.0 / (double)N;
  DT = 1.0 / (double)TSTEPS;
  B1 = 2.0;
  B2 = 1.0;
  mul1 = B1 * DT / (DX * DX);
  mul2 = B2 * DT / (DY * DY);
  a = -mul1 / 2.0;
  b = 1.0 + mul1;
  c = a;
  d = -mul2 / 2.0;
  e = 1.0 + mul2;
  f = d;
  for (t = 1; t <= TSTEPS; t++) {
    for (i = 1; i < N - 1; i++) {
      v[0][i] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = v[0][i];
      for (j = 1; j < N - 1; j++) {
        p[i][j] = -c / (a * p[i][j - 1] + b);
        q[i][j] = (-d * u[j][i - 1] + (1.0 + 2.0 * d) * u[j][i]
                   - f * u[j][i + 1] - a * q[i][j - 1])
                  / (a * p[i][j - 1] + b);
      }
      v[N - 1][i] = 1.0;
      for (j = N - 2; j >= 1; j--)
        v[j][i] = p[i][j] * v[j + 1][i] + q[i][j];
    }
    for (i = 1; i < N - 1; i++) {
      u[i][0] = 1.0;
      p[i][0] = 0.0;
      q[i][0] = u[i][0];
      for (j = 1; j < N - 1; j++) {
        p[i][j] = -f / (d * p[i][j - 1] + e);
        q[i][j] = (-a * v[i - 1][j] + (1.0 + 2.0 * a) * v[i][j]
                   - c * v[i + 1][j] - d * q[i][j - 1])
                  / (d * p[i][j - 1] + e);
      }
      u[i][N - 1] = 1.0;
      for (j = N - 2; j >= 1; j--)
        u[i][j] = p[i][j] * u[i][j + 1] + q[i][j];
    }
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += u[i][j];
  return s;
}

int main() {
  init_array();
  kernel_adi();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(20, 60, 200, 1000, 2000), N=_R2, TSTEPS=_TS))

_polybench("fdtd-2d", "1a", "2D finite-difference time-domain kernel", r"""
double ex[PNX][PNY];
double ey[PNX][PNY];
double hz[PNX][PNY];
double fict[PTMAX];

void init_array() {
  int i, j;
  for (i = 0; i < TMAX; i++)
    fict[i] = (double)i;
  for (i = 0; i < NX; i++)
    for (j = 0; j < NY; j++) {
      ex[i][j] = (double)(i * (j + 1)) / NX;
      ey[i][j] = (double)(i * (j + 2)) / NY;
      hz[i][j] = (double)(i * (j + 3)) / NX;
    }
}

void kernel_fdtd_2d() {
  int t, i, j;
  for (t = 0; t < TMAX; t++) {
    for (j = 0; j < NY; j++)
      ey[0][j] = fict[t];
    for (i = 1; i < NX; i++)
      for (j = 0; j < NY; j++)
        ey[i][j] = ey[i][j] - 0.5 * (hz[i][j] - hz[i - 1][j]);
    for (i = 0; i < NX; i++)
      for (j = 1; j < NY; j++)
        ex[i][j] = ex[i][j] - 0.5 * (hz[i][j] - hz[i][j - 1]);
    for (i = 0; i < NX - 1; i++)
      for (j = 0; j < NY - 1; j++)
        hz[i][j] = hz[i][j] - 0.7 * (ex[i][j + 1] - ex[i][j]
                                     + ey[i + 1][j] - ey[i][j]);
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < NX; i++)
    for (j = 0; j < NY; j++)
      s += hz[i][j];
  return s;
}

int main() {
  init_array();
  kernel_fdtd_2d();
  printf("%f", checksum());
  return 0;
}
""", size_table(PNX=(20, 60, 200, 1000, 2000), PNY=(30, 80, 240, 1200, 2600),
                PTMAX=(20, 40, 100, 500, 1000),
                NX=_R2, NY=_R2, TMAX=_TS))

_polybench("heat-3d", "1a", "Heat equation over 3D space", r"""
double A[PN][PN][PN];
double B[PN][PN][PN];

void init_array() {
  int i, j, k;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++) {
        A[i][j][k] = (double)(i + j + (N - k)) * 10.0 / N;
        B[i][j][k] = A[i][j][k];
      }
}

void kernel_heat_3d() {
  int t, i, j, k;
  for (t = 1; t <= TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          B[i][j][k] = 0.125 * (A[i + 1][j][k] - 2.0 * A[i][j][k]
                                + A[i - 1][j][k])
                     + 0.125 * (A[i][j + 1][k] - 2.0 * A[i][j][k]
                                + A[i][j - 1][k])
                     + 0.125 * (A[i][j][k + 1] - 2.0 * A[i][j][k]
                                + A[i][j][k - 1])
                     + A[i][j][k];
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        for (k = 1; k < N - 1; k++)
          A[i][j][k] = 0.125 * (B[i + 1][j][k] - 2.0 * B[i][j][k]
                                + B[i - 1][j][k])
                     + 0.125 * (B[i][j + 1][k] - 2.0 * B[i][j][k]
                                + B[i][j - 1][k])
                     + 0.125 * (B[i][j][k + 1] - 2.0 * B[i][j][k]
                                + B[i][j][k - 1])
                     + B[i][j][k];
  }
}

double checksum() {
  int i, j, k;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      for (k = 0; k < N; k++)
        s += A[i][j][k];
  return s;
}

int main() {
  init_array();
  kernel_heat_3d();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(10, 20, 40, 120, 200),
                N=(6, 8, 10, 12, 14), TSTEPS=_TS))

_polybench("jacobi-1d", "1a", "1D Jacobi stencil", r"""
double A[PN];
double B[PN];

void init_array() {
  int i;
  for (i = 0; i < N; i++) {
    A[i] = ((double)i + 2.0) / N;
    B[i] = ((double)i + 3.0) / N;
  }
}

void kernel_jacobi_1d() {
  int t, i;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (i = 1; i < N - 1; i++)
      A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
  }
}

double checksum() {
  int i;
  double s = 0.0;
  for (i = 0; i < N; i++)
    s += A[i];
  return s;
}

int main() {
  init_array();
  kernel_jacobi_1d();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(30, 120, 400, 2000, 4000), N=_R1,
                TSTEPS=(4, 8, 16, 24, 32)))

_polybench("jacobi-2d", "1a", "2D Jacobi stencil", r"""
double A[PN][PN];
double B[PN][PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++) {
      A[i][j] = (double)i * (j + 2) / N;
      B[i][j] = (double)i * (j + 3) / N;
    }
}

void kernel_jacobi_2d() {
  int t, i, j;
  for (t = 0; t < TSTEPS; t++) {
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        B[i][j] = 0.2 * (A[i][j] + A[i][j - 1] + A[i][1 + j]
                         + A[1 + i][j] + A[i - 1][j]);
    for (i = 1; i < N - 1; i++)
      for (j = 1; j < N - 1; j++)
        A[i][j] = 0.2 * (B[i][j] + B[i][j - 1] + B[i][1 + j]
                         + B[1 + i][j] + B[i - 1][j]);
  }
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += A[i][j];
  return s;
}

int main() {
  init_array();
  kernel_jacobi_2d();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(30, 90, 250, 1300, 2800), N=_R2, TSTEPS=_TS))

_polybench("seidel-2d", "1a", "2D Gauss-Seidel stencil", r"""
double A[PN][PN];

void init_array() {
  int i, j;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      A[i][j] = ((double)i * (j + 2) + 2.0) / N;
}

void kernel_seidel_2d() {
  int t, i, j;
  for (t = 0; t <= TSTEPS - 1; t++)
    for (i = 1; i <= N - 2; i++)
      for (j = 1; j <= N - 2; j++)
        A[i][j] = (A[i - 1][j - 1] + A[i - 1][j] + A[i - 1][j + 1]
                   + A[i][j - 1] + A[i][j] + A[i][j + 1]
                   + A[i + 1][j - 1] + A[i + 1][j] + A[i + 1][j + 1])
                  / 9.0;
}

double checksum() {
  int i, j;
  double s = 0.0;
  for (i = 0; i < N; i++)
    for (j = 0; j < N; j++)
      s += A[i][j];
  return s;
}

int main() {
  init_array();
  kernel_seidel_2d();
  printf("%f", checksum());
  return 0;
}
""", size_table(PN=(40, 120, 400, 2000, 4000), N=_R2, TSTEPS=_TS))
