"""WebWorker pool model.

ffmpeg.wasm parallelises frame transcoding across WebWorkers while the JS
implementation is single-threaded — the paper's explanation for the 0.275×
Wasm/JS ratio on the FFmpeg experiment (§4.6.2).

The pool schedules independent work items over N workers: the makespan is
computed by greedy list scheduling plus a postMessage round-trip cost per
item (structured-clone transfers are not free)."""

from __future__ import annotations


class WebWorkerPool:
    """Greedy list scheduler over ``num_workers`` workers."""

    def __init__(self, num_workers=4, post_message_cycles=15000.0):
        if num_workers < 1:
            raise ValueError("need at least one worker")
        self.num_workers = num_workers
        self.post_message_cycles = post_message_cycles

    def makespan_cycles(self, item_cycles):
        """Wall-clock cycles to finish all items (each item also pays the
        postMessage round trip on the worker it runs on)."""
        loads = [0.0] * self.num_workers
        for cycles in sorted(item_cycles, reverse=True):
            index = loads.index(min(loads))
            loads[index] += cycles + self.post_message_cycles
        return max(loads) if loads else 0.0

    def serial_cycles(self, item_cycles):
        """The single-threaded JS equivalent (no postMessage, no overlap)."""
        return float(sum(item_cycles))
