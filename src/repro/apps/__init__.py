"""Real-world applications with dual Wasm/JS implementations (§4.1.3,
Tables 10 and 12): Long.js, Hyphenopoly.js, and FFmpeg."""

from repro.apps.longjs import LongJsApp
from repro.apps.hyphenopoly import HyphenopolyApp
from repro.apps.ffmpeg import FfmpegApp
from repro.apps.workers import WebWorkerPool

__all__ = ["FfmpegApp", "HyphenopolyApp", "LongJsApp", "WebWorkerPool"]
