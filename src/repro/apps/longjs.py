"""Long.js reproduction (§4.6.2, Table 10 rows 1–3, Table 12/Appendix D).

Two faithful implementations of 64-bit two's-complement arithmetic:

* **JavaScript** — the Long.js approach: a long is ``{low, high}`` (two
  32-bit halves) and multiplication splits each half again into 16-bit
  chunks "to avoid overflow" (the paper cites Long.js' own comment);
  division uses the floating-point-approximation loop Long.js uses.
* **WebAssembly** — native ``i64`` instructions, as in Long.js' wasm.wat:
  one ``i64.mul``/``i64.div_s``/``i64.rem_s`` per operation.

The operation-count asymmetry of Table 12 (hundreds of thousands of JS
adds/muls/shifts vs tens of thousands of Wasm ops for 10,000 long
operations) is measured directly from the two engines' per-class counters.
"""

from __future__ import annotations

from repro.env import DESKTOP, chrome_desktop
from repro.harness import install_c_host
from repro.jsengine import JsEngine
from repro.wasm import FuncType, Function, WasmModule, WasmVM
from repro.wasm.instructions import Op, instr as I

LONGJS_JS = r"""
function long_make(low, high) {
  return {low: low | 0, high: high | 0};
}

function long_fromInt(value) {
  return long_make(value, value < 0 ? -1 : 0);
}

function long_fromNumber(value) {
  if (value < 0) {
    return long_neg(long_fromNumber(-value));
  }
  var high = Math.floor(value / 4294967296);
  var low = value - high * 4294967296;
  return long_make(low, high);
}

function long_toNumber(a) {
  return a.high * 4294967296 + (a.low >>> 0);
}

function long_isNegative(a) {
  return a.high < 0;
}

function long_isZero(a) {
  return a.low === 0 && a.high === 0;
}

function long_eq(a, b) {
  return a.low === b.low && a.high === b.high;
}

function long_not(a) {
  return long_make(~a.low, ~a.high);
}

function long_add(a, b) {
  var a48 = a.high >>> 16;
  var a32 = a.high & 65535;
  var a16 = a.low >>> 16;
  var a00 = a.low & 65535;
  var b48 = b.high >>> 16;
  var b32 = b.high & 65535;
  var b16 = b.low >>> 16;
  var b00 = b.low & 65535;
  var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
  c00 += a00 + b00;
  c16 += c00 >>> 16;
  c00 &= 65535;
  c16 += a16 + b16;
  c32 += c16 >>> 16;
  c16 &= 65535;
  c32 += a32 + b32;
  c48 += c32 >>> 16;
  c32 &= 65535;
  c48 += a48 + b48;
  c48 &= 65535;
  return long_make((c16 << 16) | c00, (c48 << 16) | c32);
}

function long_neg(a) {
  return long_add(long_not(a), long_fromInt(1));
}

function long_sub(a, b) {
  return long_add(a, long_neg(b));
}

function long_lt(a, b) {
  if (a.high !== b.high) {
    return a.high < b.high;
  }
  return (a.low >>> 0) < (b.low >>> 0);
}

function long_ge(a, b) {
  return !long_lt(a, b);
}

function long_mul(a, b) {
  /* Long.js: split into four 16-bit chunks to avoid overflow of JS
     doubles (long.js#L56-L59, cited by the paper's Appendix D). */
  var a48 = a.high >>> 16;
  var a32 = a.high & 65535;
  var a16 = a.low >>> 16;
  var a00 = a.low & 65535;
  var b48 = b.high >>> 16;
  var b32 = b.high & 65535;
  var b16 = b.low >>> 16;
  var b00 = b.low & 65535;
  var c48 = 0, c32 = 0, c16 = 0, c00 = 0;
  c00 += a00 * b00;
  c16 += c00 >>> 16;
  c00 &= 65535;
  c16 += a16 * b00;
  c32 += c16 >>> 16;
  c16 &= 65535;
  c16 += a00 * b16;
  c32 += c16 >>> 16;
  c16 &= 65535;
  c32 += a32 * b00;
  c48 += c32 >>> 16;
  c32 &= 65535;
  c32 += a16 * b16;
  c48 += c32 >>> 16;
  c32 &= 65535;
  c32 += a00 * b32;
  c48 += c32 >>> 16;
  c32 &= 65535;
  c48 += a48 * b00 + a32 * b16 + a16 * b32 + a00 * b48;
  c48 &= 65535;
  return long_make((c16 << 16) | c00, (c48 << 16) | c32);
}

function long_div(a, b) {
  /* Long.js division: float approximation with correction loop. */
  var neg, rem, res, approx, approxLong, delta;
  if (long_isZero(b)) {
    return long_fromInt(0);
  }
  neg = false;
  if (long_isNegative(a)) {
    a = long_neg(a);
    neg = !neg;
  }
  if (long_isNegative(b)) {
    b = long_neg(b);
    neg = !neg;
  }
  res = long_fromInt(0);
  rem = a;
  while (long_ge(rem, b)) {
    approx = Math.max(1, Math.floor(long_toNumber(rem) /
                                    long_toNumber(b)));
    approxLong = long_fromNumber(approx);
    delta = long_mul(approxLong, b);
    while (long_lt(rem, delta)) {
      approx = approx - 1;
      approxLong = long_fromNumber(approx);
      delta = long_mul(approxLong, b);
    }
    res = long_add(res, approxLong);
    rem = long_sub(rem, delta);
  }
  return neg ? long_neg(res) : res;
}

function long_mod(a, b) {
  return long_sub(a, long_mul(long_div(a, b), b));
}
"""

_DRIVER = r"""
function run_ops(op, iterations, lhs, rhs) {
  var acc = long_fromInt(0);
  var a = long_fromInt(lhs);
  var b = long_fromInt(rhs);
  var i, r;
  for (i = 0; i < iterations; i++) {
    if (op === 0) {
      r = long_mul(a, b);
    } else if (op === 1) {
      r = long_div(a, b);
    } else {
      r = long_mod(a, b);
    }
    acc = long_add(acc, r);
    a = long_add(a, long_fromInt(1));
  }
  return acc.low ^ acc.high;
}
"""

#: Table 10's three experiments: (label, op code, iterations, lhs, rhs).
EXPERIMENTS = (
    ("multiplication", 0, 10000, 36, -2),
    ("division", 1, 10000, -2, -2),
    ("remainder", 2, 10000, 36, 5),
)


def _wasm_module():
    """Long.js' wasm.wat equivalent: exported per-operation functions, one
    i64 instruction each (plus the wat file's operand-splitting shifts/ors
    that reconstruct i64 values from the 32-bit halves JS hands over —
    where Table 12's Wasm SHIFT/OR counts come from)."""
    module = WasmModule(name="longjs-wasm")
    ft = FuncType(("i32", "i32", "i32", "i32"), ("i64",))

    def combine(lo_index, hi_index):
        # (hi zext << 32) | (lo zext)
        return [
            I(Op.LOCAL_GET, hi_index), I(Op.I64_EXTEND_I32_U),
            I(Op.I64_CONST, 32), I(Op.I64_SHL),
            I(Op.LOCAL_GET, lo_index), I(Op.I64_EXTEND_I32_U),
            I(Op.I64_OR),
        ]

    for name, opcode in (("mul", Op.I64_MUL), ("div_s", Op.I64_DIV_S),
                         ("rem_s", Op.I64_REM_S)):
        body = combine(0, 1) + combine(2, 3) + [I(opcode)]
        module.add_function(Function(name, ft, [], body, exported=True))
    return module


def _split64(value):
    value = int(value) & 0xFFFFFFFFFFFFFFFF
    lo = value & 0xFFFFFFFF
    hi = value >> 32
    return (_sign32(lo), _sign32(hi))


def _sign32(v):
    return v - 0x100000000 if v & 0x80000000 else v


class LongJsApp:
    """Runs Table 10's three Long.js experiments on both implementations."""

    def __init__(self, profile=None, platform=None, iterations=None):
        self.profile = profile or chrome_desktop()
        self.platform = platform or DESKTOP
        #: Override the paper's 10,000 operations (tests use fewer).
        self.iterations = iterations

    def run(self):
        results = {}
        wasm_module = _wasm_module()
        mask = 0xFFFFFFFFFFFFFFFF
        for label, opcode, iterations, lhs, rhs in EXPERIMENTS:
            if self.iterations is not None:
                iterations = self.iterations
            # JavaScript implementation.
            engine = JsEngine(self.profile.js,
                              cycles_per_ms=self.platform.cycles_per_ms)
            install_c_host(engine, [])
            engine.load_script(LONGJS_JS + _DRIVER)
            js_checksum = engine.call_global(
                "run_ops", float(opcode), float(iterations),
                float(lhs), float(rhs))
            js_ms = self.platform.ms(engine.total_cycles())
            js_profile = engine.stats.arithmetic_profile()

            # WebAssembly implementation: Long.js calls the exported wasm
            # function once per operation, crossing the JS↔Wasm boundary
            # each time (instance.exports.mul(alo, ahi, blo, bhi)).
            vm = WasmVM(boundary_cost=self.profile.wasm.boundary_cost)
            instance = vm.instantiate(wasm_module)
            entry = {0: "mul", 1: "div_s", 2: "rem_s"}[opcode]
            acc = 0
            a = lhs & mask
            b = rhs & mask
            for _ in range(iterations):
                alo, ahi = _split64(a)
                blo, bhi = _split64(b)
                result = instance.invoke(entry, alo, ahi, blo, bhi)
                acc = (acc + result) & mask
                a = (a + 1) & mask
            wasm_checksum = _sign32((acc & 0xFFFFFFFF) ^ (acc >> 32))
            wasm_cycles = (instance.stats.cycles *
                           self.profile.wasm.opt_exec_factor +
                           instance.stats.boundary_cycles)
            wasm_ms = self.platform.ms(wasm_cycles)
            results[label] = {
                "iterations": iterations,
                "js_ms": js_ms,
                "wasm_ms": wasm_ms,
                "ratio": wasm_ms / js_ms,
                "js_checksum": int(js_checksum),
                "wasm_checksum": wasm_checksum,
                "js_ops": js_profile,
                "wasm_ops": instance.stats.arithmetic_profile(),
            }
        return results


def _canonical_checksum(value):
    value = int(value) & 0xFFFFFFFF
    return value - 0x100000000 if value & 0x80000000 else value
