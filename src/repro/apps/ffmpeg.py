"""FFmpeg reproduction (§4.6.2, Table 10 row 6): MP4 → AVI transcode.

ffmpeg.wasm parallelises the conversion across WebWorkers while node-ffmpeg's
pure-JS path is single-threaded — the mechanism behind the paper's 0.275
Wasm/JS time ratio.

The transcoder itself is real code: a per-frame pipeline (8×8 block DCT,
quantisation, entropy-size estimate) written in C and compiled to Wasm with
Cheerp; the JS implementation is the equivalent hand-written JavaScript.
Each frame is an independent work item for the worker pool.
"""

from __future__ import annotations

from repro.apps.workers import WebWorkerPool
from repro.compilers import CheerpCompiler
from repro.env import DESKTOP, chrome_desktop
from repro.harness import install_c_host
from repro.harness.runner import wasm_host_imports
from repro.jsengine import JsEngine
from repro.wasm import WasmVM

#: One "frame" of the scaled input video (the paper used a 296 MB MP4; we
#: scale to a deterministic synthetic clip, same per-frame pipeline).
FRAME_BLOCKS = 16          # 8×8 blocks per frame
DEFAULT_FRAMES = 48

_C_TRANSCODE = r"""
double block[64];
double coef[64];
double costab[64];
int frame_seed = 0;
int tables_ready = 0;

void init_costab() {
  int x, u;
  for (x = 0; x < 8; x++)
    for (u = 0; u < 8; u++)
      costab[8 * x + u] =
          cos((2.0 * x + 1.0) * u * 3.14159265358979 / 16.0);
  tables_ready = 1;
}

void load_block(int b) {
  int i;
  int v = frame_seed * 131 + b * 17;
  for (i = 0; i < 64; i++) {
    v = (v * 1103515245 + 12345) & 2147483647;
    block[i] = (double)(v % 256) - 128.0;
  }
}

void dct_8x8() {
  int u, v, x, y;
  double sum, cu, cv;
  for (u = 0; u < 8; u++) {
    for (v = 0; v < 8; v++) {
      sum = 0.0;
      for (x = 0; x < 8; x++)
        for (y = 0; y < 8; y++)
          sum += block[8 * x + y] * costab[8 * x + u] * costab[8 * y + v];
      cu = u == 0 ? 0.70710678 : 1.0;
      cv = v == 0 ? 0.70710678 : 1.0;
      coef[8 * u + v] = 0.25 * cu * cv * sum;
    }
  }
}

int quantize() {
  int i, bits, q;
  bits = 0;
  for (i = 0; i < 64; i++) {
    q = (int)(coef[i] / (8.0 + (double)(i / 8)));
    if (q < 0)
      q = -q;
    while (q > 0) {
      bits = bits + 1;
      q = q / 2;
    }
  }
  return bits;
}

int transcode_frame(int frame) {
  int b, total;
  if (tables_ready == 0)
    init_costab();
  frame_seed = frame;
  total = 0;
  for (b = 0; b < BLOCKS; b++) {
    load_block(b);
    dct_8x8();
    total = total + quantize();
  }
  return total;
}

int main() {
  printf("%d", transcode_frame(0));
  return 0;
}
"""

_JS_TRANSCODE = r"""
var block = new Float64Array(64);
var coef = new Float64Array(64);
var costab = new Float64Array(64);
var frameSeed = 0;
var tablesReady = 0;

function initCostab() {
  var x, u;
  for (x = 0; x < 8; x++) {
    for (u = 0; u < 8; u++) {
      costab[8 * x + u] =
          Math.cos((2 * x + 1) * u * 3.14159265358979 / 16);
    }
  }
  tablesReady = 1;
}

function loadBlock(b) {
  var i, v;
  v = frameSeed * 131 + b * 17;
  for (i = 0; i < 64; i++) {
    v = (Math.imul(v, 1103515245) + 12345) & 2147483647;
    block[i] = (v % 256) - 128;
  }
}

function dct8x8() {
  var u, v, x, y, sum, cu, cv;
  for (u = 0; u < 8; u++) {
    for (v = 0; v < 8; v++) {
      sum = 0;
      for (x = 0; x < 8; x++) {
        for (y = 0; y < 8; y++) {
          sum += block[8 * x + y] * costab[8 * x + u] * costab[8 * y + v];
        }
      }
      cu = u === 0 ? 0.70710678 : 1;
      cv = v === 0 ? 0.70710678 : 1;
      coef[8 * u + v] = 0.25 * cu * cv * sum;
    }
  }
}

function quantize() {
  var i, bits, q;
  bits = 0;
  for (i = 0; i < 64; i++) {
    q = (coef[i] / (8 + Math.floor(i / 8))) | 0;
    if (q < 0) {
      q = -q;
    }
    while (q > 0) {
      bits = bits + 1;
      q = (q / 2) | 0;
    }
  }
  return bits;
}

function transcodeFrame(frame) {
  var b, total;
  if (tablesReady === 0) {
    initCostab();
  }
  frameSeed = frame;
  total = 0;
  for (b = 0; b < BLOCKS; b++) {
    loadBlock(b);
    dct8x8();
    total = total + quantize();
  }
  return total;
}

function main(frames) {
  var f, total;
  total = 0;
  for (f = 0; f < frames; f++) {
    total = total + transcodeFrame(f);
  }
  return total;
}
"""


class FfmpegApp:
    """MP4→AVI transcode, Wasm (WebWorker pool) vs JS (single-threaded)."""

    def __init__(self, profile=None, platform=None, frames=DEFAULT_FRAMES,
                 workers=4):
        self.profile = profile or chrome_desktop()
        self.platform = platform or DESKTOP
        self.frames = frames
        self.pool = WebWorkerPool(num_workers=workers)
        self._cheerp = CheerpCompiler(linear_heap_size=1024 * 1024)

    def run(self):
        # Wasm: measure one frame's cycle cost per frame index, then
        # schedule frames over the worker pool.
        artifact = self._cheerp.compile_wasm(
            _C_TRANSCODE, {"BLOCKS": FRAME_BLOCKS}, "O2", "ffmpeg-wasm")
        frame_cycles = []
        wasm_total = 0
        for frame in range(self.frames):
            output = []
            vm = WasmVM(boundary_cost=self.profile.wasm.boundary_cost)
            instance = vm.instantiate(artifact.module,
                                      wasm_host_imports(output, None))
            result = instance.invoke("transcode_frame", frame)
            wasm_total += int(result)
            frame_cycles.append(
                instance.stats.cycles * self.profile.wasm.opt_exec_factor
                + instance.stats.boundary_cycles)
        wasm_ms = self.platform.ms(self.pool.makespan_cycles(frame_cycles))

        # JS: single engine runs every frame serially.
        engine = JsEngine(self.profile.js,
                          cycles_per_ms=self.platform.cycles_per_ms)
        install_c_host(engine, [])
        engine.load_script(
            f"var BLOCKS = {FRAME_BLOCKS};\n" + _JS_TRANSCODE)
        js_total = int(engine.call_global("main", float(self.frames)))
        js_ms = self.platform.ms(engine.total_cycles())
        return {
            "frames": self.frames,
            "workers": self.pool.num_workers,
            "wasm_ms": wasm_ms,
            "js_ms": js_ms,
            "ratio": wasm_ms / js_ms,
            "wasm_checksum": wasm_total,
            "js_checksum": js_total,
        }
