"""Hyphenopoly.js reproduction (§4.6.2, Table 10 rows 4–5).

Liang's pattern-based hyphenation with two language pattern sets (en-us,
fr), in two implementations:

* **Wasm** — the hyphenation engine written in C (pattern table + text in
  linear memory) and compiled with Cheerp; the input text must be copied
  across the JS↔Wasm boundary, which is why Wasm's advantage is marginal
  here (the paper: "a significant amount of time is spent on input and
  output operations in which WebAssembly is not specialized").
* **JS** — Hyphenopoly's hand-written JavaScript: pattern map + string
  operations.

Both report the number of hyphenation points found over the input text, so
the implementations can be cross-checked.
"""

from __future__ import annotations

from repro.compilers import CheerpCompiler
from repro.env import DESKTOP, chrome_desktop
from repro.harness import install_c_host
from repro.jsengine import JsEngine
from repro.wasm import WasmVM

#: Per-byte cost of marshalling the text into linear memory / back out.
COPY_CYCLES_PER_BYTE = 1.0

#: Simplified TeX-style patterns: (pattern, score-digit string).  A digit
#: at position i scores between pattern chars i-1 and i; odd = hyphen.
PATTERNS = {
    "en-us": [
        ("tio", "2"), ("ation", "04"), ("ing", "2"), ("ter", "1"),
        ("ment", "1"), ("con", "1"), ("ble", "1"), ("tion", "1"),
        ("ous", "1"), ("per", "1"), ("pre", "1"), ("pro", "1"),
        ("ex", "1"), ("un", "1"), ("re", "1"), ("de", "1"),
        ("er", "1"), ("ly", "1"), ("al", "1"), ("ic", "1"),
        ("an", "1"), ("en", "1"), ("on", "1"), ("at", "1"),
    ],
    "fr": [
        ("tion", "1"), ("ment", "1"), ("eur", "1"), ("eau", "1"),
        ("oir", "1"), ("ais", "1"), ("ent", "1"), ("ille", "1"),
        ("ant", "1"), ("que", "1"), ("con", "1"), ("des", "1"),
        ("par", "1"), ("re", "1"), ("de", "1"), ("le", "1"),
        ("la", "1"), ("ou", "1"), ("er", "1"), ("es", "1"),
    ],
}

_SYLLABLES = ["con", "ter", "na", "tion", "al", "ment", "ing", "per",
              "ma", "re", "de", "pro", "ble", "ous", "ex", "un", "so",
              "li", "ve", "ra"]


def make_text(bytes_target=4096, seed=12345):
    """Deterministic synthetic prose (stands in for the paper's 18 KB
    English/French input texts)."""
    words = []
    state = seed
    length = 0
    while length < bytes_target:
        state = (state * 1103515245 + 12345) & 0x7FFFFFFF
        syllable_count = 2 + state % 4
        word = ""
        for _ in range(syllable_count):
            state = (state * 1103515245 + 12345) & 0x7FFFFFFF
            word += _SYLLABLES[state % len(_SYLLABLES)]
        words.append(word)
        length += len(word) + 1
    return " ".join(words)


def _pattern_table_c(patterns):
    """Flatten patterns into a C initializer: for each pattern
    ``len, chars..., digits...`` (digits has len+1 entries)."""
    flat = []
    for pattern, digits in patterns:
        score = [0] * (len(pattern) + 1)
        for i, ch in enumerate(digits):
            if ch.isdigit() and int(ch):
                # Digit applies at offset i within the pattern window.
                score[min(i, len(pattern))] = int(ch)
        flat.append(len(pattern))
        flat.extend(ord(c) for c in pattern)
        flat.extend(score)
    flat.append(0)  # terminator
    return flat


def _c_source(text, patterns):
    table = _pattern_table_c(patterns)
    text_bytes = [ord(c) for c in text]
    return f"""
unsigned char text[{len(text_bytes)}] = {{{", ".join(map(str, text_bytes))}}};
unsigned char patterns[{len(table)}] = {{{", ".join(map(str, table))}}};
int scores[64];

int hyphenate_word(int start, int end) {{
  int i, p, plen, pos, ok, k, points;
  int wlen = end - start;
  if (wlen >= 60)
    wlen = 60;
  for (i = 0; i <= wlen; i++)
    scores[i] = 0;
  p = 0;
  while (patterns[p] != 0) {{
    plen = patterns[p];
    for (pos = 0; pos + plen <= wlen; pos++) {{
      ok = 1;
      for (k = 0; k < plen; k++)
        if (text[start + pos + k] != patterns[p + 1 + k])
          ok = 0;
      if (ok)
        for (k = 0; k <= plen; k++)
          if (patterns[p + 1 + plen + k] > scores[pos + k])
            scores[pos + k] = patterns[p + 1 + plen + k];
    }}
    p = p + 1 + plen + plen + 1;
  }}
  points = 0;
  for (i = 2; i < wlen - 1; i++)
    if (scores[i] % 2 == 1)
      points = points + 1;
  return points;
}}

int main() {{
  int i, start, total;
  total = 0;
  start = 0;
  for (i = 0; i <= {len(text_bytes)}; i++) {{
    if (i == {len(text_bytes)} || text[i] == 32) {{
      if (i > start)
        total = total + hyphenate_word(start, i);
      start = i + 1;
    }}
  }}
  printf("%d", total);
  return 0;
}}
"""


def _js_source(text, patterns):
    pattern_lines = []
    for pattern, digits in patterns:
        score = [0] * (len(pattern) + 1)
        for i, ch in enumerate(digits):
            if ch.isdigit() and int(ch):
                score[min(i, len(pattern))] = int(ch)
        score_js = "[" + ", ".join(str(v) for v in score) + "]"
        pattern_lines.append(
            f'patterns.push({{p: "{pattern}", s: {score_js}}});')
    newline = "\n"
    return f"""
var patterns = [];
{newline.join(pattern_lines)}
var text = "{text}";

function hyphenateWord(word) {{
  var scores = [];
  var i, j, k, pos, entry, pat, ok, points;
  for (i = 0; i <= word.length; i++) {{
    scores.push(0);
  }}
  for (j = 0; j < patterns.length; j++) {{
    entry = patterns[j];
    pat = entry.p;
    for (pos = 0; pos + pat.length <= word.length; pos++) {{
      ok = true;
      for (k = 0; k < pat.length; k++) {{
        if (word.charCodeAt(pos + k) !== pat.charCodeAt(k)) {{
          ok = false;
          k = pat.length;
        }}
      }}
      if (ok) {{
        for (k = 0; k <= pat.length; k++) {{
          if (entry.s[k] > scores[pos + k]) {{
            scores[pos + k] = entry.s[k];
          }}
        }}
      }}
    }}
  }}
  points = 0;
  for (i = 2; i < word.length - 1; i++) {{
    if (scores[i] % 2 === 1) {{
      points = points + 1;
    }}
  }}
  return points;
}}

function main() {{
  var words = text.split(" ");
  var total = 0;
  var i;
  for (i = 0; i < words.length; i++) {{
    if (words[i].length > 0) {{
      total += hyphenateWord(words[i]);
    }}
  }}
  return total;
}}
"""


class HyphenopolyApp:
    """Runs the two Table 10 Hyphenopoly experiments (en-us, fr)."""

    def __init__(self, profile=None, platform=None, text_bytes=4096):
        self.profile = profile or chrome_desktop()
        self.platform = platform or DESKTOP
        self.text_bytes = text_bytes
        self._cheerp = CheerpCompiler(linear_heap_size=1024 * 1024)

    def run_language(self, language):
        patterns = PATTERNS[language]
        text = make_text(self.text_bytes,
                         seed=12345 if language == "en-us" else 54321)
        # Wasm: compile + execute + pay the text marshalling cost.
        artifact = self._cheerp.compile_wasm(
            _c_source(text, patterns), opt_level="O2",
            name=f"hyphenopoly-{language}")
        from repro.harness.runner import wasm_host_imports
        output = []
        vm = WasmVM(boundary_cost=self.profile.wasm.boundary_cost)
        instance = vm.instantiate(artifact.module,
                                  wasm_host_imports(output, None))
        instance.invoke("main")
        wasm_cycles = (instance.stats.cycles *
                       self.profile.wasm.opt_exec_factor +
                       instance.stats.boundary_cycles +
                       2 * len(text) * COPY_CYCLES_PER_BYTE)
        wasm_ms = self.platform.ms(wasm_cycles)
        wasm_points = output[0]

        # JS: parse + execute.
        engine = JsEngine(self.profile.js,
                          cycles_per_ms=self.platform.cycles_per_ms)
        install_c_host(engine, [])
        engine.load_script(_js_source(text, patterns))
        js_points = engine.call_global("main")
        js_ms = self.platform.ms(engine.total_cycles())
        return {
            "language": language,
            "wasm_ms": wasm_ms, "js_ms": js_ms,
            "ratio": wasm_ms / js_ms,
            "wasm_points": int(wasm_points), "js_points": int(js_points),
        }

    def run(self):
        return {language: self.run_language(language)
                for language in ("en-us", "fr")}
