"""Code generators lowering the shared IR to each execution target.

* :mod:`repro.backends.wasm_gen` — Wasm bytecode (stack machine, linear
  memory).
* :mod:`repro.backends.js_gen` — JavaScript source in Cheerp's genericjs
  style (typed-array memory, ``|0`` integer coercions, i64 legalisation via
  a 32-bit-pair runtime).
* :mod:`repro.backends.x86_gen` — the register-machine x86 model where
  LLVM's optimizations behave as designed (the paper's control experiment,
  Fig. 6).
"""

from repro.backends.wasm_gen import WasmCodegenOptions, generate_wasm
from repro.backends.js_gen import JsCodegenOptions, generate_js
from repro.backends.x86_gen import generate_x86

__all__ = [
    "JsCodegenOptions",
    "WasmCodegenOptions",
    "generate_js",
    "generate_wasm",
    "generate_x86",
]
