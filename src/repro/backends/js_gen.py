"""IR → JavaScript source generator (Cheerp "genericjs" style).

The output is real JavaScript (in the engine's subset) with asm.js-era
idioms: typed arrays as C memory, ``|0`` / ``>>>0`` integer coercions,
``Math.imul`` for exact 32-bit multiplication, and 64-bit integers
legalised into ``[lo, hi]`` pairs handled by the library in
:mod:`repro.backends.js_runtime`.

The generated text is then *parsed and executed by the JS engine model* —
so the paper's JS startup costs (parse time ∝ source size) and JIT
behaviour apply to it exactly as they would in a browser.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompileError
from repro.ir.nodes import (
    EBin, ECall, ECast, EConst, EGlobal, ELoad, ELocal, ESelect, EUn,
    SAssign, SBreak, SContinue, SDoWhile, SExpr, SFor, SGlobalSet, SIf,
    SReturn, SStore, SWhile, is_float, walk_all_exprs, walk_stmts,
)
from repro.backends.js_runtime import I64_RUNTIME_JS

_TYPED_ARRAY = {"f64": "Float64Array", "i32": "Int32Array",
                "u32": "Uint32Array", "i8": "Int32Array",
                "u8": "Uint8Array", "i16": "Int32Array",
                "u16": "Uint16Array"}

_MATH_CALLS = {"sqrt": "Math.sqrt", "fabs": "Math.abs",
               "floor": "Math.floor", "ceil": "Math.ceil",
               "exp": "Math.exp", "log": "Math.log", "pow": "Math.pow",
               "sin": "Math.sin", "cos": "Math.cos",
               "copysign": "Math.copysign"}

_I64_BIN = {"+": "__i64_add", "-": "__i64_sub", "*": "__i64_mul",
            "&": "__i64_and", "|": "__i64_or", "^": "__i64_xor"}

_I64_CMP_S = {"==": "__i64_eq", "!=": "__i64_ne", "<": "__i64_lt_s",
              "<=": "__i64_le_s", ">": "__i64_gt_s", ">=": "__i64_ge_s"}
_I64_CMP_U = {"==": "__i64_eq", "!=": "__i64_ne", "<": "__i64_lt_u",
              "<=": "__i64_le_u", ">": "__i64_gt_u", ">=": "__i64_ge_u"}


@dataclass
class JsCodegenOptions:
    """Backend knobs set by the toolchain facades."""

    vector_overhead_stmts: int = 3   # scalarisation cost per iteration
    meta: dict = field(default_factory=dict)


def _is_i64(t):
    return t in ("i64", "u64")


def _is_unsigned(t):
    return t in ("u32", "u8", "u16", "u64")


class _JsGen:
    def __init__(self, ir_module, options):
        self.ir = ir_module
        self.options = options
        self.lines = []
        self.indent = 0
        self.uses_i64 = False
        self.uses_vector = False

    def out(self, text):
        self.lines.append("  " * self.indent + text)

    # -- expressions (value mode) -----------------------------------------

    def expr(self, e):
        if isinstance(e, EConst):
            return self.const(e)
        if isinstance(e, ELocal):
            return e.name
        if isinstance(e, EGlobal):
            return e.name
        if isinstance(e, ELoad):
            return self.load(e)
        if isinstance(e, EBin):
            return self.binop(e)
        if isinstance(e, EUn):
            return self.unop(e)
        if isinstance(e, ECast):
            return self.cast(e)
        if isinstance(e, ECall):
            return self.call(e)
        if isinstance(e, ESelect):
            return (f"({self.cond(e.cond)} ? {self.expr(e.then)}"
                    f" : {self.expr(e.els)})")
        raise CompileError(f"js codegen: bad expr {type(e).__name__}")

    def const(self, e):
        if _is_i64(e.type):
            value = int(e.value) & 0xFFFFFFFFFFFFFFFF
            return f"[{value & 0xFFFFFFFF}, {value >> 32}]"
        if is_float(e.type):
            text = repr(float(e.value))
            return text
        return str(int(e.value))

    def index_of(self, array_name, indices):
        array = self.ir.arrays[array_name]
        text = self.expr(indices[0])
        for dim, index in zip(array.dims[1:], indices[1:]):
            text = f"({text} * {dim} + {self.expr(index)})"
        return text

    def load(self, e):
        idx = self.index_of(e.array, e.indices)
        if _is_i64(self.ir.arrays[e.array].elem_type):
            self.uses_i64 = True
            return f"[{e.array}__lo[{idx}], {e.array}__hi[{idx}]]"
        return f"{e.array}[{idx}]"

    def binop(self, e):
        op = e.op
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return f"({self.cmp(e)} ? 1 : 0)"
        left = self.expr(e.left)
        right = self.expr(e.right)
        t = e.type
        if _is_i64(t):
            self.uses_i64 = True
            if op in _I64_BIN:
                return f"{_I64_BIN[op]}({left}, {right})"
            if op == "<<":
                return f"__i64_shl({left}, {right})"
            if op == ">>":
                fn = "__i64_shr_u" if _is_unsigned(t) else "__i64_shr_s"
                return f"{fn}({left}, {right})"
            if op == "/":
                fn = "__i64_div_u" if _is_unsigned(t) else "__i64_div_s"
                return f"{fn}({left}, {right})"
            if op == "%":
                fn = "__i64_rem_u" if _is_unsigned(t) else "__i64_rem_s"
                return f"{fn}({left}, {right})"
            raise CompileError(f"js codegen: bad i64 op {op!r}")
        if is_float(t):
            return f"({left} {op} {right})"
        unsigned = _is_unsigned(t)
        if op == "+":
            return f"({left} + {right} | 0)"
        if op == "-":
            return f"({left} - {right} | 0)"
        if op == "*":
            return f"Math.imul({left}, {right})"
        if op == "/":
            if unsigned:
                return f"(({left} >>> 0) / ({right} >>> 0) | 0)"
            return f"({left} / {right} | 0)"
        if op == "%":
            if unsigned:
                return f"(({left} >>> 0) % ({right} >>> 0) | 0)"
            return f"({left} % {right} | 0)"
        if op in ("&", "|", "^"):
            return f"({left} {op} {right})"
        if op == "<<":
            return f"({left} << {right})"
        if op == ">>":
            if unsigned:
                return f"({left} >>> {right} | 0)"
            return f"({left} >> {right})"
        raise CompileError(f"js codegen: bad int op {op!r}")

    def cmp(self, e):
        """Render a comparison as a JS boolean expression."""
        ot = e.left.type
        left = self.expr(e.left)
        right = self.expr(e.right)
        if _is_i64(ot):
            self.uses_i64 = True
            table = _I64_CMP_U if _is_unsigned(ot) else _I64_CMP_S
            return f"{table[e.op]}({left}, {right})"
        jsop = {"==": "===", "!=": "!=="}.get(e.op, e.op)
        if _is_unsigned(ot) and e.op not in ("==", "!="):
            return f"(({left} >>> 0) {jsop} ({right} >>> 0))"
        return f"({left} {jsop} {right})"

    def cond(self, e):
        """Render an expression in boolean (condition) context."""
        if isinstance(e, EBin) and e.op in ("==", "!=", "<", "<=", ">",
                                            ">="):
            return self.cmp(e)
        if isinstance(e, EUn) and e.op == "!":
            return f"(!{self.cond(e.expr)})"
        if _is_i64(e.type):
            return f"(__i64_eqz({self.expr(e)}) === 0)"
        return self.expr(e)

    def unop(self, e):
        if _is_i64(e.type):
            self.uses_i64 = True
            inner = self.expr(e.expr)
            if e.op == "neg":
                return f"__i64_neg({inner})"
            if e.op == "~":
                return f"__i64_not({inner})"
            if e.op == "!":
                return f"__i64_eqz({inner})"
        inner = self.expr(e.expr)
        if e.op == "neg":
            if is_float(e.type):
                return f"(-{inner})"
            return f"(-{inner} | 0)"
        if e.op == "!":
            return f"({self.cond(e.expr)} ? 0 : 1)"
        if e.op == "~":
            return f"(~{inner})"
        raise CompileError(f"js codegen: bad unop {e.op!r}")

    def cast(self, e):
        src, dst = e.expr.type, e.type
        inner = self.expr(e.expr)
        if _is_i64(src) and _is_i64(dst):
            return inner
        if _is_i64(dst):
            self.uses_i64 = True
            if src == "f64":
                return f"__i64_from_f64({inner})"
            if _is_unsigned(src):
                return f"__i64_from_u32({inner})"
            return f"__i64_from_i32({inner})"
        if _is_i64(src):
            self.uses_i64 = True
            if dst == "f64":
                if _is_unsigned(src):
                    return f"__u64_to_f64({inner})"
                return f"__i64_to_f64({inner})"
            return f"__i64_to_i32({inner})"
        if dst == "f64":
            if _is_unsigned(src):
                return f"({inner} >>> 0)"
            return inner
        if src == "f64":
            if _is_unsigned(dst):
                return f"({inner} >>> 0)"
            return f"({inner} | 0)"
        if _is_unsigned(src) and not _is_unsigned(dst):
            # A u32 value may be carried in raw unsigned form (e.g. a
            # rematerialized constant >= 2^31); entering signed context
            # must coerce it back to the |0 representation.
            return f"({inner} | 0)"
        # int ↔ int of same width: representation is shared.
        return inner

    def call(self, e):
        args = ", ".join(self.expr(a) for a in e.args)
        if e.name in _MATH_CALLS:
            return f"{_MATH_CALLS[e.name]}({args})"
        if e.name == "fmod":
            a, b = (self.expr(x) for x in e.args)
            return f"({a} % {b})"
        if e.name == "abs":
            a = self.expr(e.args[0])
            return f"({a} < 0 ? -{a} | 0 : {a})"
        return f"{e.name}({args})"

    # -- statements --------------------------------------------------------

    def stmts(self, body):
        for stmt in body:
            self.stmt(stmt)

    def stmt(self, s):
        if isinstance(s, SAssign):
            self.out(f"{s.name} = {self.expr(s.expr)};")
        elif isinstance(s, SGlobalSet):
            self.out(f"{s.name} = {self.expr(s.expr)};")
        elif isinstance(s, SStore):
            array = self.ir.arrays[s.array]
            idx = self.index_of(s.array, s.indices)
            if _is_i64(array.elem_type):
                self.uses_i64 = True
                self.out(f"__s64 = {self.expr(s.expr)};")
                self.out(f"{s.array}__lo[{idx}] = __s64[0];")
                self.out(f"{s.array}__hi[{idx}] = __s64[1];")
            else:
                self.out(f"{s.array}[{idx}] = {self.expr(s.expr)};")
        elif isinstance(s, SIf):
            self.out(f"if ({self.cond(s.cond)}) {{")
            self.indent += 1
            self.stmts(s.then)
            self.indent -= 1
            if s.els:
                self.out("} else {")
                self.indent += 1
                self.stmts(s.els)
                self.indent -= 1
            self.out("}")
        elif isinstance(s, SWhile):
            cond = ("true" if isinstance(s.cond, EConst) and s.cond.value
                    else self.cond(s.cond))
            self.out(f"while ({cond}) {{")
            self.indent += 1
            self.stmts(s.body)
            self.indent -= 1
            self.out("}")
        elif isinstance(s, SDoWhile):
            self.out("do {")
            self.indent += 1
            self.stmts(s.body)
            self.indent -= 1
            self.out(f"}} while ({self.cond(s.cond)});")
        elif isinstance(s, SFor):
            self.for_stmt(s)
        elif isinstance(s, SBreak):
            self.out("break;")
        elif isinstance(s, SContinue):
            self.out("continue;")
        elif isinstance(s, SReturn):
            if s.expr is None:
                self.out("return;")
            else:
                self.out(f"return {self.expr(s.expr)};")
        elif isinstance(s, SExpr):
            self.out(f"{self.expr(s.expr)};")
        else:
            raise CompileError(f"js codegen: bad stmt {type(s).__name__}")

    def for_stmt(self, s):
        self.stmts(s.init)
        cond = ("" if isinstance(s.cond, EConst) and s.cond.value
                else self.cond(s.cond))
        step_exprs = []
        header_ok = True
        for st in s.step:
            if isinstance(st, SAssign):
                step_exprs.append(f"{st.name} = {self.expr(st.expr)}")
            elif isinstance(st, SExpr):
                step_exprs.append(self.expr(st.expr))
            else:
                header_ok = False
                break
        if not header_ok and any(isinstance(st, SContinue)
                                 for st in walk_stmts(s.body)):
            raise CompileError(
                "js codegen: continue in a for with non-expression step")
        if header_ok:
            self.out(f"for (; {cond}; {', '.join(step_exprs)}) {{")
            self.indent += 1
            self.vector_overhead(s)
            self.stmts(s.body)
            self.indent -= 1
            self.out("}")
        else:
            self.out(f"while ({cond or 'true'}) {{")
            self.indent += 1
            self.vector_overhead(s)
            self.stmts(s.body)
            self.stmts(s.step)
            self.indent -= 1
            self.out("}")

    def vector_overhead(self, s):
        """Scalarised vector-loop bookkeeping (no SIMD in the JS target)."""
        if s.vector_width:
            self.uses_vector = True
            for lane in range(1, 1 + self.options.vector_overhead_stmts):
                self.out(f"__vlane = {lane};")

    # -- module ------------------------------------------------------------

    def generate(self):
        ir = self.ir
        body_lines = []
        # Render functions first so uses_i64 is known for the preamble.
        saved = self.lines
        self.lines = body_lines
        for f in ir.functions.values():
            if not f.body:
                continue
            params = ", ".join(name for name, _ in f.params)
            self.out(f"function {f.name}({params}) {{")
            self.indent += 1
            locals_ = [n for n in f.locals]
            if locals_:
                self.out("var " + ", ".join(locals_) + ";")
            self.stmts(f.body)
            self.indent -= 1
            self.out("}")
        self.lines = saved

        # Detect i64 usage that rendering may have missed (e.g. arrays).
        for f in ir.functions.values():
            for e in walk_all_exprs(f.body):
                if _is_i64(getattr(e, "type", None) or ""):
                    self.uses_i64 = True

        preamble = []
        if self.uses_i64:
            preamble.append(I64_RUNTIME_JS)
            preamble.append("var __s64 = [0, 0];")
        if self.uses_vector:
            preamble.append("var __vlane = 0;")
        for g in ir.globals.values():
            if _is_i64(g.type):
                value = int(g.init) & 0xFFFFFFFFFFFFFFFF
                preamble.append(
                    f"var {g.name} = [{value & 0xFFFFFFFF}, "
                    f"{value >> 32}];")
            elif is_float(g.type):
                preamble.append(f"var {g.name} = {float(g.init)!r};")
            else:
                preamble.append(f"var {g.name} = {int(g.init)};")
        for array in ir.arrays.values():
            if _is_i64(array.elem_type):
                preamble.append(
                    f"var {array.name}__lo = new Uint32Array({array.count});")
                preamble.append(
                    f"var {array.name}__hi = new Uint32Array({array.count});")
                if array.init:
                    for i, v in enumerate(array.init):
                        value = int(v) & 0xFFFFFFFFFFFFFFFF
                        preamble.append(
                            f"{array.name}__lo[{i}] = {value & 0xFFFFFFFF};")
                        preamble.append(
                            f"{array.name}__hi[{i}] = {value >> 32};")
            else:
                kind = _TYPED_ARRAY[array.elem_type]
                preamble.append(
                    f"var {array.name} = new {kind}({array.count});")
                if array.init:
                    chunks = _init_lines(array)
                    preamble.extend(chunks)
        return "\n".join(preamble + body_lines) + "\n"


def _init_lines(array):
    """Array initialiser statements (genericjs emits explicit stores)."""
    out = []
    for i, v in enumerate(array.init):
        if is_float(array.elem_type):
            out.append(f"{array.name}[{i}] = {float(v)!r};")
        else:
            out.append(f"{array.name}[{i}] = {int(v)};")
    return out


def generate_js(ir_module, options=None):
    """Lower an IR module to JavaScript source text."""
    return _JsGen(ir_module, options or JsCodegenOptions()).generate()
