"""JavaScript runtime library emitted by the genericjs backend.

64-bit integers do not exist in JavaScript: like real C-to-JS compilers
(and like Long.js, Table 10/12), the backend legalises every i64 value into
a pair of unsigned 32-bit halves ``[lo, hi]`` and every i64 operation into a
call to one of these library functions.  This is the mechanism behind the
paper's Appendix D operation counts: one Wasm ``i64.mul`` becomes dozens of
JS adds/multiplies/shifts.

The library itself is written in the engine's JS subset and is executed by
:mod:`repro.jsengine` like any other program text.
"""

I64_RUNTIME_JS = r"""
function __i64_from_i32(v) {
  return [v >>> 0, v < 0 ? 4294967295 : 0];
}
function __i64_from_u32(v) {
  return [v >>> 0, 0];
}
function __i64_to_i32(a) {
  return a[0] | 0;
}
function __i64_to_f64(a) {
  return (a[1] | 0) * 4294967296 + a[0];
}
function __u64_to_f64(a) {
  return a[1] * 4294967296 + a[0];
}
function __i64_from_f64(v) {
  if (v < 0) {
    var p = __i64_from_f64(-v);
    return __i64_sub([0, 0], p);
  }
  var hi = Math.floor(v / 4294967296);
  var lo = Math.floor(v - hi * 4294967296);
  return [lo >>> 0, hi >>> 0];
}
function __i64_add(a, b) {
  var lo = a[0] + b[0];
  var hi = a[1] + b[1] + (lo > 4294967295 ? 1 : 0);
  return [lo >>> 0, hi >>> 0];
}
function __i64_sub(a, b) {
  var lo = a[0] - b[0];
  var hi = a[1] - b[1] - (lo < 0 ? 1 : 0);
  return [lo >>> 0, hi >>> 0];
}
function __i64_mul(a, b) {
  var a0 = a[0] % 65536; var a1 = Math.floor(a[0] / 65536);
  var a2 = a[1] % 65536; var a3 = Math.floor(a[1] / 65536);
  var b0 = b[0] % 65536; var b1 = Math.floor(b[0] / 65536);
  var b2 = b[1] % 65536; var b3 = Math.floor(b[1] / 65536);
  var c0 = a0 * b0;
  var c1 = a1 * b0 + a0 * b1 + Math.floor(c0 / 65536);
  var c2 = a2 * b0 + a1 * b1 + a0 * b2 + Math.floor(c1 / 65536);
  var c3 = a3 * b0 + a2 * b1 + a1 * b2 + a0 * b3 + Math.floor(c2 / 65536);
  var lo = (c0 % 65536) + (c1 % 65536) * 65536;
  var hi = (c2 % 65536) + (c3 % 65536) * 65536;
  return [lo >>> 0, hi >>> 0];
}
function __i64_neg(a) {
  return __i64_sub([0, 0], a);
}
function __i64_not(a) {
  return [(~a[0]) >>> 0, (~a[1]) >>> 0];
}
function __i64_and(a, b) {
  return [(a[0] & b[0]) >>> 0, (a[1] & b[1]) >>> 0];
}
function __i64_or(a, b) {
  return [(a[0] | b[0]) >>> 0, (a[1] | b[1]) >>> 0];
}
function __i64_xor(a, b) {
  return [(a[0] ^ b[0]) >>> 0, (a[1] ^ b[1]) >>> 0];
}
function __i64_shl(a, k) {
  k = k & 63;
  if (k === 0) { return [a[0], a[1]]; }
  if (k >= 32) { return [0, (a[0] << (k - 32)) >>> 0]; }
  return [(a[0] << k) >>> 0,
          ((a[1] << k) | (a[0] >>> (32 - k))) >>> 0];
}
function __i64_shr_u(a, k) {
  k = k & 63;
  if (k === 0) { return [a[0], a[1]]; }
  if (k >= 32) { return [a[1] >>> (k - 32), 0]; }
  return [((a[0] >>> k) | (a[1] << (32 - k))) >>> 0, a[1] >>> k];
}
function __i64_shr_s(a, k) {
  k = k & 63;
  if (k === 0) { return [a[0], a[1]]; }
  var hs = a[1] | 0;
  if (k >= 32) {
    return [(hs >> (k - 32)) >>> 0, hs < 0 ? 4294967295 : 0];
  }
  return [((a[0] >>> k) | (hs << (32 - k))) >>> 0, (hs >> k) >>> 0];
}
function __i64_eqz(a) {
  return (a[0] === 0 && a[1] === 0) ? 1 : 0;
}
function __i64_eq(a, b) {
  return (a[0] === b[0] && a[1] === b[1]) ? 1 : 0;
}
function __i64_ne(a, b) {
  return (a[0] !== b[0] || a[1] !== b[1]) ? 1 : 0;
}
function __i64_lt_u(a, b) {
  if (a[1] !== b[1]) { return a[1] < b[1] ? 1 : 0; }
  return a[0] < b[0] ? 1 : 0;
}
function __i64_gt_u(a, b) {
  return __i64_lt_u(b, a);
}
function __i64_le_u(a, b) {
  return 1 - __i64_lt_u(b, a);
}
function __i64_ge_u(a, b) {
  return 1 - __i64_lt_u(a, b);
}
function __i64_lt_s(a, b) {
  var ah = a[1] | 0; var bh = b[1] | 0;
  if (ah !== bh) { return ah < bh ? 1 : 0; }
  return a[0] < b[0] ? 1 : 0;
}
function __i64_gt_s(a, b) {
  return __i64_lt_s(b, a);
}
function __i64_le_s(a, b) {
  return 1 - __i64_lt_s(b, a);
}
function __i64_ge_s(a, b) {
  return 1 - __i64_lt_s(a, b);
}
function __i64_isneg(a) {
  return (a[1] | 0) < 0 ? 1 : 0;
}
function __i64_bit(a, i) {
  if (i >= 32) { return (a[1] >>> (i - 32)) & 1; }
  return (a[0] >>> i) & 1;
}
function __i64_setbit(a, i) {
  if (i >= 32) { return [a[0], (a[1] | (1 << (i - 32))) >>> 0]; }
  return [(a[0] | (1 << i)) >>> 0, a[1]];
}
function __i64_div_u(a, b) {
  if (__i64_eqz(b)) { return [0, 0]; }
  var rem = [0, 0];
  var quo = [0, 0];
  var i;
  for (i = 63; i >= 0; i--) {
    rem = __i64_shl(rem, 1);
    if (__i64_bit(a, i)) { rem = __i64_or(rem, [1, 0]); }
    if (__i64_ge_u(rem, b)) {
      rem = __i64_sub(rem, b);
      quo = __i64_setbit(quo, i);
    }
  }
  return quo;
}
function __i64_rem_u(a, b) {
  if (__i64_eqz(b)) { return [0, 0]; }
  var rem = [0, 0];
  var i;
  for (i = 63; i >= 0; i--) {
    rem = __i64_shl(rem, 1);
    if (__i64_bit(a, i)) { rem = __i64_or(rem, [1, 0]); }
    if (__i64_ge_u(rem, b)) { rem = __i64_sub(rem, b); }
  }
  return rem;
}
function __i64_div_s(a, b) {
  var neg = 0;
  var x = a;
  var y = b;
  if (__i64_isneg(x)) { x = __i64_neg(x); neg = 1 - neg; }
  if (__i64_isneg(y)) { y = __i64_neg(y); neg = 1 - neg; }
  var q = __i64_div_u(x, y);
  return neg ? __i64_neg(q) : q;
}
function __i64_rem_s(a, b) {
  var x = a;
  var y = b;
  var neg = __i64_isneg(x);
  if (neg) { x = __i64_neg(x); }
  if (__i64_isneg(y)) { y = __i64_neg(y); }
  var r = __i64_rem_u(x, y);
  return neg ? __i64_neg(r) : r;
}
"""
